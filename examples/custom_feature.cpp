// Authoring a new feature without touching the library: a MySQL-style
// LIMIT clause written as a sub-grammar (with its token file inline),
// composed onto the CoreQuery dialect with the public composer API —
// exactly how the paper's §3.2 grows a language feature by feature.

#include <cstdio>

#include "sqlpl/compose/composer.h"
#include "sqlpl/grammar/text_format.h"
#include "sqlpl/sql/dialects.h"

int main() {
  using namespace sqlpl;

  // 1. The new feature: one sub-grammar + token file, as text.
  Result<Grammar> limit_feature = ParseGrammarText(R"(
    grammar LimitClause;
    tokens { NUMBER = number; }
    query_statement : query_expression [ limit_clause ] ;
    limit_clause : 'LIMIT' NUMBER [ 'OFFSET' NUMBER ] ;
  )");
  if (!limit_feature.ok()) {
    std::printf("feature grammar error: %s\n",
                limit_feature.status().ToString().c_str());
    return 1;
  }

  // 2. Compose it onto a stock dialect.
  SqlProductLine line;
  Result<Grammar> base = line.ComposeGrammar(CoreQueryDialect());
  if (!base.ok()) {
    std::printf("base error: %s\n", base.status().ToString().c_str());
    return 1;
  }
  GrammarComposer composer;
  Result<Grammar> extended = composer.Compose(*base, *limit_feature);
  if (!extended.ok()) {
    std::printf("compose error: %s\n", extended.status().ToString().c_str());
    return 1;
  }
  std::printf("composed CoreQuery + LimitClause (%zu -> %zu productions)\n",
              base->NumProductions(), extended->NumProductions());
  for (const CompositionStep& step : composer.trace()) {
    std::printf("  %s\n", step.ToString().c_str());
  }

  // 3. Build parsers for both and show the difference.
  Result<LlParser> without = ParserBuilder().Build(*base);
  Result<LlParser> with = ParserBuilder().Build(*extended);
  if (!without.ok() || !with.ok()) {
    std::printf("build error\n");
    return 1;
  }
  const char* queries[] = {
      "SELECT name FROM emp ORDER BY name LIMIT 10",
      "SELECT a FROM t LIMIT 5 OFFSET 20",
      "SELECT a FROM t",
  };
  std::printf("\n%-52s %-10s %s\n", "query", "CoreQuery", "+LimitClause");
  for (const char* sql : queries) {
    std::printf("%-52s %-10s %s\n", sql,
                without->Accepts(sql) ? "ok" : "reject",
                with->Accepts(sql) ? "ok" : "reject");
  }
  return 0;
}
