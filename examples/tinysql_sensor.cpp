// TinySQL for sensor networks (TinyDB): composes the acquisitional
// query dialect of the paper's §2.1 — single table in FROM, no aliases,
// aggregation, and the SAMPLE PERIOD / EPOCH DURATION extension features
// — then runs a small "sensor network base station" that admits or
// refuses incoming queries and inspects the acquisitional parameters.

#include <cstdio>

#include "sqlpl/semantics/ast_builder.h"
#include "sqlpl/sql/dialects.h"

namespace {

// Extracts the sample period (ticks) from a parsed acquisitional query,
// or 0 if the clause is absent.
long SamplePeriodOf(const sqlpl::ParseNode& tree) {
  const sqlpl::ParseNode* clause = tree.FindFirst("sample_period_clause");
  if (clause == nullptr) return 0;
  for (const sqlpl::ParseNode* leaf : clause->FindAll("NUMBER")) {
    return std::strtol(leaf->token().text.c_str(), nullptr, 10);
  }
  return 0;
}

}  // namespace

int main() {
  using namespace sqlpl;

  SqlProductLine line;
  DialectSpec spec = TinySqlDialect();
  Result<LlParser> parser = line.BuildParser(spec);
  if (!parser.ok()) {
    std::printf("build error: %s\n", parser.status().ToString().c_str());
    return 1;
  }
  std::printf("TinySQL parser: %zu productions, %zu tokens "
              "(vs %zu features selected)\n\n",
              parser->grammar().NumProductions(),
              parser->grammar().tokens().size(), spec.features.size());

  const char* incoming[] = {
      // Canonical TinyDB acquisitional queries.
      "SELECT nodeid, light, temp FROM sensors SAMPLE PERIOD 2048",
      "SELECT COUNT(*) FROM sensors WHERE light > 400 EPOCH DURATION 1024",
      "SELECT AVG(volume) FROM sensors WHERE floor = 6 GROUP BY roomno "
      "HAVING AVG(volume) > 10",
      "SELECT nodeid FROM sensors SAMPLE PERIOD 1024 FOR 30",
      // Queries a full SQL engine would take but a mote must refuse.
      "SELECT s.light FROM sensors s",          // aliases excluded
      "SELECT a FROM sensors, buffer",          // single-table FROM
      "SELECT light FROM sensors ORDER BY light",  // no ORDER BY on motes
      "INSERT INTO sensors VALUES (1)",         // no DML
  };

  for (const char* sql : incoming) {
    Result<ParseNode> tree = parser->ParseText(sql);
    if (!tree.ok()) {
      std::printf("refused  %s\n         %s\n", sql,
                  tree.status().message().c_str());
      continue;
    }
    std::printf("admitted %s\n", sql);
    long period = SamplePeriodOf(*tree);
    if (period > 0) {
      std::printf("         sample period: %ld ticks\n", period);
    }
    Result<SelectStatement> statement = BuildSelectStatement(*tree);
    if (statement.ok()) {
      std::printf("         projects %zu column(s) from '%s'\n",
                  statement->items.size(),
                  statement->from.empty() ? "?"
                                          : statement->from[0].name.c_str());
    }
  }
  return 0;
}
