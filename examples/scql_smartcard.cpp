// SCQL-style smart-card dialect (ISO 7816-7, paper §2.1): a restricted
// SELECT/INSERT/UPDATE/DELETE plus table, view and privilege definition.
// Demonstrates semantic-action layers on top of the composed parser: a
// card-resident catalog validates every admitted statement.

#include <cstdio>

#include "sqlpl/semantics/validator.h"
#include "sqlpl/sql/dialects.h"

int main() {
  using namespace sqlpl;

  SqlProductLine line;
  DialectSpec spec = ScqlDialect();
  Result<LlParser> parser = line.BuildParser(spec);
  if (!parser.ok()) {
    std::printf("build error: %s\n", parser.status().ToString().c_str());
    return 1;
  }
  std::printf("SCQL parser: %zu productions, %zu tokens\n\n",
              parser->grammar().NumProductions(),
              parser->grammar().tokens().size());

  // The card's fixed file system (its "database").
  DbCatalog card;
  (void)card.AddTable("accounts", {"id", "owner", "balance"});
  (void)card.AddTable("log", {"seq", "op", "amount"});

  const char* commands[] = {
      "SELECT balance FROM accounts WHERE id = 7",
      "UPDATE accounts SET balance = balance - 10 WHERE id = 7",
      "INSERT INTO log (op, amount) VALUES ('debit', 10)",
      "DELETE FROM log WHERE seq = 1",
      "CREATE TABLE limits (id INTEGER, daily DECIMAL(9, 2))",
      "GRANT SELECT ON accounts TO PUBLIC",
      // Semantically invalid: unknown table / column.
      "SELECT balance FROM vault",
      "SELECT pin FROM accounts",
      // Syntactically out of profile.
      "SELECT a FROM accounts ORDER BY a",
      "COMMIT WORK",
  };

  for (const char* sql : commands) {
    Result<ParseNode> tree = parser->ParseText(sql);
    if (!tree.ok()) {
      std::printf("SW 6A80  %s\n         syntax: %s\n", sql,
                  tree.status().message().c_str());
      continue;
    }
    DiagnosticCollector diagnostics;
    Status semantic = ValidateAgainstCatalog(
        card, spec.features, *tree, &diagnostics);
    if (!semantic.ok()) {
      std::printf("SW 6A82  %s\n", sql);
      for (const Diagnostic& diagnostic : diagnostics.diagnostics()) {
        std::printf("         %s\n", diagnostic.ToString().c_str());
      }
      continue;
    }
    std::printf("SW 9000  %s\n", sql);
  }
  return 0;
}
