// E1/E2: regenerates the paper's Figure 1 (Query Specification feature
// diagram) and Figure 2 (Table Expression feature diagram) as ASCII trees
// and Graphviz DOT, plus the headline decomposition counts of §3.1.

#include <cstdio>
#include <cstring>

#include "sqlpl/feature/render.h"
#include "sqlpl/sql/foundation_model.h"

int main(int argc, char** argv) {
  using namespace sqlpl;

  bool dot = argc > 1 && std::strcmp(argv[1], "--dot") == 0;
  const FeatureModel& model = SqlFoundationModel();

  const FeatureDiagram* fig1 = model.Find(kQuerySpecificationDiagram);
  const FeatureDiagram* fig2 = model.Find(kTableExpressionDiagram);
  if (fig1 == nullptr || fig2 == nullptr) {
    std::printf("figure diagrams missing from model\n");
    return 1;
  }

  if (dot) {
    std::printf("%s\n%s\n", RenderDot(*fig1).c_str(),
                RenderDot(*fig2).c_str());
    return 0;
  }

  std::printf("Figure 1: Query Specification Feature Diagram\n");
  std::printf("---------------------------------------------\n");
  std::printf("%s\n", RenderAsciiTree(*fig1).c_str());

  std::printf("Figure 2: Table Expression Feature Diagram\n");
  std::printf("------------------------------------------\n");
  std::printf("%s\n", RenderAsciiTree(*fig2).c_str());

  std::printf("Section 3.1 headline numbers\n");
  std::printf("----------------------------\n");
  std::printf("feature diagrams for SQL Foundation: %zu (paper: 40)\n",
              model.NumDiagrams());
  std::printf("features overall:                    %zu (paper: >500)\n\n",
              model.TotalFeatures());

  std::printf("Per-diagram inventory (name: features)\n");
  for (const FeatureDiagram& diagram : model.diagrams()) {
    std::printf("  %-32s %3zu\n", diagram.name().c_str(),
                diagram.NumFeatures());
  }
  std::printf("\n(run with --dot for Graphviz output)\n");
  return 0;
}
