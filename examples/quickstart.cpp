// Quickstart: the paper's §3.2 worked example in five steps.
//
//  1. Describe the wanted SQL dialect as a feature instance description:
//     {Query Specification, Select List, Select Sublist (cardinality 1),
//      Table Expression {From, Table Reference (cardinality 1)}}
//     plus the optional Set Quantifier and Where features.
//  2. Resolve the composition sequence (requires/excludes).
//  3. Compose the features' sub-grammars and token files.
//  4. Build a parser from the composed grammar.
//  5. Parse SQL that only this dialect understands.

#include <cstdio>

#include "sqlpl/semantics/pretty_printer.h"
#include "sqlpl/sql/dialects.h"

int main() {
  using namespace sqlpl;

  // Step 1: the feature selection (a preset mirroring §3.2).
  DialectSpec spec = WorkedExampleDialect();
  std::printf("dialect '%s' selects %zu features:\n", spec.name.c_str(),
              spec.features.size());
  for (const std::string& feature : spec.features) {
    std::printf("  - %s\n", feature.c_str());
  }

  SqlProductLine line;

  // Step 2: composition sequence.
  Result<CompositionSequence> sequence = line.ResolveSequence(spec);
  if (!sequence.ok()) {
    std::printf("sequence error: %s\n", sequence.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncomposition sequence: %s\n", sequence->ToString().c_str());

  // Step 3: compose.
  Result<Grammar> grammar = line.ComposeGrammar(spec);
  if (!grammar.ok()) {
    std::printf("compose error: %s\n", grammar.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncomposed grammar (%zu productions, %zu tokens):\n%s\n",
              grammar->NumProductions(), grammar->tokens().size(),
              grammar->ToString().c_str());

  // Step 4: build the parser.
  Result<LlParser> parser = line.BuildParser(spec);
  if (!parser.ok()) {
    std::printf("build error: %s\n", parser.status().ToString().c_str());
    return 1;
  }

  // Step 5: parse.
  const char* queries[] = {
      "SELECT name FROM employees",
      "SELECT DISTINCT name FROM employees WHERE dept = 'research'",
      "SELECT a, b FROM t",   // rejected: Select Sublist cardinality is 1
      "SELECT a FROM t, u",   // rejected: Table Reference cardinality is 1
      "SELECT a FROM t GROUP BY a",  // rejected: GroupBy not selected
  };
  for (const char* sql : queries) {
    Result<ParseNode> tree = parser->ParseText(sql);
    if (tree.ok()) {
      std::printf("OK      %s\n", sql);
      std::printf("        -> %s\n", PrintSql(*tree).c_str());
    } else {
      std::printf("reject  %s\n        (%s)\n", sql,
                  tree.status().message().c_str());
    }
  }
  return 0;
}
