// Writes the full product-line report (feature model summary, feature x
// dialect matrix, commonality/variability, composed-grammar metrics) as
// Markdown — the inventory the paper's envisioned feature-selection UI
// would present.
//
// Usage: product_line_report [output-file]   (default: stdout)

#include <cstdio>
#include <fstream>
#include <iostream>

#include "sqlpl/sql/dialects.h"
#include "sqlpl/sql/report.h"

int main(int argc, char** argv) {
  std::string report =
      sqlpl::GenerateProductLineReport(sqlpl::AllPresetDialects());
  if (argc > 1) {
    std::ofstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    file << report;
    std::printf("wrote %zu bytes to %s\n", report.size(), argv[1]);
  } else {
    std::cout << report;
  }
  return 0;
}
