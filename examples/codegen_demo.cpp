// Generates standalone C++ recursive-descent parser source for a dialect
// — the artifact the paper obtains from ANTLR — and writes it to disk.
//
// Usage: codegen_demo [preset-name] [output-directory]

#include <cstdio>
#include <cstring>
#include <fstream>

#include "sqlpl/sql/dialects.h"

int main(int argc, char** argv) {
  using namespace sqlpl;

  DialectSpec spec = WorkedExampleDialect();
  if (argc > 1) {
    bool found = false;
    for (const DialectSpec& preset : AllPresetDialects()) {
      if (preset.name == argv[1]) {
        spec = preset;
        found = true;
      }
    }
    if (!found) {
      std::printf("unknown preset '%s'\n", argv[1]);
      return 1;
    }
  }
  std::string out_dir = argc > 2 ? argv[2] : ".";

  SqlProductLine line;
  Result<GeneratedParser> generated = line.GenerateParserSource(spec);
  if (!generated.ok()) {
    std::printf("codegen error: %s\n", generated.status().ToString().c_str());
    return 1;
  }

  std::string path = out_dir + "/" + generated->file_name;
  std::ofstream file(path);
  if (!file) {
    std::printf("cannot write %s\n", path.c_str());
    return 1;
  }
  file << generated->code;
  std::printf("dialect '%s' -> %s (%zu bytes)\n", spec.name.c_str(),
              path.c_str(), generated->code.size());
  std::printf("\nfirst lines of the generated parser:\n");
  size_t printed = 0;
  for (size_t pos = 0; pos < generated->code.size() && printed < 18;) {
    size_t end = generated->code.find('\n', pos);
    if (end == std::string::npos) end = generated->code.size();
    std::printf("  %s\n",
                generated->code.substr(pos, end - pos).c_str());
    pos = end + 1;
    ++printed;
  }
  std::printf("\ncompile with: g++ -std=c++20 -I%s your_main.cc\n",
              out_dir.c_str());
  return 0;
}
