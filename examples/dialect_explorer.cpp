// The "user interface presenting various SQL statements and their
// features" the paper's §5 describes as work in progress: list diagrams
// and composable features, select features on the command line, compose a
// parser, and parse statements from stdin.
//
// Usage:
//   dialect_explorer --list                     list diagrams + features
//   dialect_explorer --modules                  list composable modules
//   dialect_explorer --preset TinySQL           use a preset dialect
//   dialect_explorer Feature1 Feature2 ...      compose these features
//                                               (closed under requires)
//   ... then type one SQL statement per line on stdin.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "sqlpl/feature/render.h"
#include "sqlpl/semantics/pretty_printer.h"
#include "sqlpl/sql/dialects.h"
#include "sqlpl/sql/foundation_model.h"

namespace {

int ListDiagrams() {
  const sqlpl::FeatureModel& model = sqlpl::SqlFoundationModel();
  std::printf("%zu diagrams, %zu features\n\n", model.NumDiagrams(),
              model.TotalFeatures());
  for (const sqlpl::FeatureDiagram& diagram : model.diagrams()) {
    std::printf("%s\n", sqlpl::RenderInventory(diagram).c_str());
  }
  return 0;
}

int ListModules() {
  const sqlpl::SqlFeatureCatalog& catalog =
      sqlpl::SqlFeatureCatalog::Instance();
  std::printf("%zu composable feature modules (canonical order):\n\n",
              catalog.size());
  for (const sqlpl::SqlFeatureModule& module : catalog.modules()) {
    std::printf("  %-22s %s\n", module.name.c_str(),
                module.description.c_str());
    if (!module.requires_features.empty()) {
      std::printf("  %-22s requires:", "");
      for (const std::string& required : module.requires_features) {
        std::printf(" %s", required.c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqlpl;

  if (argc > 1 && std::strcmp(argv[1], "--list") == 0) return ListDiagrams();
  if (argc > 1 && std::strcmp(argv[1], "--modules") == 0) {
    return ListModules();
  }

  DialectSpec spec;
  if (argc > 2 && std::strcmp(argv[1], "--preset") == 0) {
    for (const DialectSpec& preset : AllPresetDialects()) {
      if (preset.name == argv[2]) spec = preset;
    }
    if (spec.features.empty()) {
      std::printf("unknown preset '%s'; presets are:\n", argv[2]);
      for (const DialectSpec& preset : AllPresetDialects()) {
        std::printf("  %s\n", preset.name.c_str());
      }
      return 1;
    }
  } else if (argc > 1) {
    spec.name = "custom";
    for (int i = 1; i < argc; ++i) spec.features.emplace_back(argv[i]);
    // Close the user's selection under requires so partial selections
    // still compose.
    Result<std::vector<std::string>> closed =
        SqlFeatureCatalog::Instance().RequiredClosure(spec.features);
    if (!closed.ok()) {
      std::printf("error: %s\n", closed.status().ToString().c_str());
      return 1;
    }
    spec.features = *closed;
  } else {
    spec = CoreQueryDialect();
  }

  SqlProductLine line;
  Result<LlParser> parser = line.BuildParser(spec);
  if (!parser.ok()) {
    std::printf("cannot build dialect '%s': %s\n", spec.name.c_str(),
                parser.status().ToString().c_str());
    return 1;
  }

  std::printf("dialect '%s': %zu features -> %zu productions, %zu tokens\n",
              spec.name.c_str(), spec.features.size(),
              parser->grammar().NumProductions(),
              parser->grammar().tokens().size());
  std::printf("composition trace (%zu steps); enter SQL, one statement "
              "per line:\n",
              line.last_trace().size());

  std::string sql;
  while (std::getline(std::cin, sql)) {
    if (sql.empty()) continue;
    Result<ParseNode> tree = parser->ParseText(sql);
    if (!tree.ok()) {
      std::printf("reject: %s\n", tree.status().message().c_str());
      continue;
    }
    std::printf("ok: %s\n", PrintSql(*tree).c_str());
    std::printf("%s", tree->ToTreeString().c_str());
  }
  return 0;
}
