// Dialect server demo: the product line behind a long-lived, concurrent
// front-end (sqlpl/service/). Simulates a small fleet of clients, each
// speaking its own SQL dialect, hammering one DialectService:
//
//  - the first request of each dialect composes + builds its parser
//    (once, even when several clients race for it — single-flight);
//  - every later request is a cache hit on the fingerprint of the
//    feature selection, sharing one immutable parser per dialect;
//  - the service stats report shows hit rate and latency percentiles.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "sqlpl/service/dialect_service.h"
#include "sqlpl/sql/dialects.h"

int main() {
  using namespace sqlpl;

  DialectServiceOptions options;
  options.cache_capacity = 16;
  options.cache_shards = 4;
  options.num_threads = 4;
  DialectService service(options);

  // Each client profile: a dialect plus the statements its devices send.
  struct Client {
    DialectSpec spec;
    std::vector<std::string> statements;
  };
  const std::vector<Client> clients = {
      {TinySqlDialect(),
       {"SELECT light FROM sensors SAMPLE PERIOD 2048",
        "SELECT temp FROM sensors WHERE temp > 90"}},
      {ScqlDialect(),
       {"SELECT holder FROM cards",
        "UPDATE cards SET pin = '1234' WHERE id = 7"}},
      {CoreQueryDialect(),
       {"SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 3",
        "SELECT region, SUM(amount) FROM sales GROUP BY region"}},
      {EmbeddedMinimalDialect(), {"SELECT a FROM t"}},
  };

  // Note the relabeled, reordered CoreQuery spec: same feature set, so
  // it fingerprints onto the same cache entry — no second build.
  DialectSpec relabeled = CoreQueryDialect();
  relabeled.name = "analytics-tenant-42";
  std::reverse(relabeled.features.begin(), relabeled.features.end());

  std::printf("serving %zu dialects from one process...\n\n", clients.size());

  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const Client& client = clients[(t + round) % clients.size()];
        for (const std::string& sql : client.statements) {
          (void)service.Parse(client.spec, sql);
        }
        if (round % 10 == 0) {
          (void)service.Parse(relabeled, "SELECT a, b FROM t");
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  // One request per dialect, printed, to show the tailoring survives.
  for (const Client& client : clients) {
    const std::string& sql = client.statements.front();
    Result<ParseNode> tree = service.Parse(client.spec, sql);
    std::printf("%-16s %s  %s\n", client.spec.name.c_str(),
                tree.ok() ? "OK    " : "reject", sql.c_str());
  }
  std::printf("cross-dialect check: TinySQL query on the SCQL parser -> %s\n",
              service.Accepts(clients[1].spec, clients[0].statements[0])
                  ? "accepted (?)"
                  : "rejected");

  std::printf("\n%s", service.StatsReport().c_str());
  return 0;
}
