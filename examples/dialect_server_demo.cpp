// Dialect server demo: the product line behind a real network serving
// layer (sqlpl/net/). Starts a SqlServer on an ephemeral loopback port,
// then simulates a small fleet of clients, each speaking its own SQL
// dialect, hammering it over the framed wire protocol:
//
//  - each client's first request ships its dialect spec inline; the
//    response returns the spec fingerprint, and every later request
//    carries just those 8 bytes of dialect identity;
//  - the first request of each dialect composes + builds its parser
//    (once, even when several connections race for it — single-flight);
//    every later request is a cache hit sharing one immutable parser;
//  - every response carries a server timing breakdown (parse proper,
//    in-service time, frame turnaround), so the demo can split
//    client-observed latency into parse vs service vs wire cost;
//  - the server drains gracefully at the end: in-flight requests
//    finish, new connections are refused, event loops join.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "sqlpl/net/sql_client.h"
#include "sqlpl/net/sql_client_pool.h"
#include "sqlpl/net/sql_server.h"
#include "sqlpl/service/dialect_service.h"
#include "sqlpl/sql/dialects.h"

int main() {
  using namespace sqlpl;

  DialectServiceOptions service_options;
  service_options.cache_capacity = 16;
  service_options.cache_shards = 4;
  service_options.num_threads = 4;
  DialectService service(service_options);

  net::ServerOptions server_options;
  server_options.port = 0;  // ephemeral: the OS picks a free loopback port
  server_options.num_loops = 2;  // two shards, each with its own
                                 // SO_REUSEPORT acceptor and workers
  server_options.workers_per_shard = 2;
  net::SqlServer server(&service, server_options);
  if (Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.message().c_str());
    return 1;
  }
  std::printf("sql server listening on 127.0.0.1:%u\n\n", server.port());

  // Negotiation tour (docs/CONFIGURATOR.md): before any SQL flows, a
  // client can discover the server's variant catalog, have an invalid
  // spec explained, and auto-complete a partial one.
  {
    net::SqlClient negotiator;
    if (!negotiator.Connect("127.0.0.1", server.port()).ok()) {
      std::fprintf(stderr, "negotiator connect failed\n");
      return 1;
    }

    Result<net::WireCatalogResponse> catalog = negotiator.ListCatalog();
    if (catalog.ok() && catalog->ok()) {
      std::printf("variant catalog (%zu entries):\n",
                  catalog->entries.size());
      for (const net::WireCatalogEntry& entry : catalog->entries) {
        std::printf("  %-16s fp=%016llx  %zu features\n", entry.name.c_str(),
                    static_cast<unsigned long long>(entry.fingerprint),
                    entry.features.size());
      }
    }

    // An invalid spec is refused with its minimal conflict, not a
    // generic build error: Having without GroupBy.
    DialectSpec broken = CoreQueryDialect();
    broken.name = "core-sans-groupby";
    std::erase(broken.features, "GroupBy");
    Result<net::WireValidateResponse> verdict =
        negotiator.ValidateSpec(broken);
    if (verdict.ok() && !verdict->ok()) {
      std::printf("validate %-18s -> %s\n", broken.name.c_str(),
                  verdict->message.c_str());
    }

    // A partial spec auto-completes to the canonical minimal valid
    // dialect; its fingerprint is immediately parseable.
    DialectSpec partial;
    partial.name = "negotiated";
    partial.features = {"QuerySpecification", "Where"};
    Result<net::WireCompleteResponse> completed =
        negotiator.CompleteSpec(partial);
    if (completed.ok() && completed->ok() && completed->has_spec) {
      Result<net::WireParseResponse> first = negotiator.ParseByFingerprint(
          completed->fingerprint, "SELECT a FROM t WHERE a = b");
      std::printf("complete %-17s -> %zu features, parse by fingerprint: %s\n",
                  partial.name.c_str(), completed->spec.features.size(),
                  first.ok() && first->ok() ? "OK" : "reject");
    }
    std::printf("\n");
  }

  // Each client profile: a dialect plus the statements its devices send.
  struct Client {
    DialectSpec spec;
    std::vector<std::string> statements;
  };
  const std::vector<Client> clients = {
      {TinySqlDialect(),
       {"SELECT light FROM sensors SAMPLE PERIOD 2048",
        "SELECT temp FROM sensors WHERE temp > 90"}},
      {ScqlDialect(),
       {"SELECT holder FROM cards",
        "UPDATE cards SET pin = '1234' WHERE id = 7"}},
      {CoreQueryDialect(),
       {"SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 3",
        "SELECT region, SUM(amount) FROM sales GROUP BY region"}},
      {EmbeddedMinimalDialect(), {"SELECT a FROM t"}},
  };

  // Per-dialect timing, split three ways from each response frame.
  struct Timing {
    uint64_t requests = 0;
    uint64_t wire_us = 0;    // client-observed round trip
    uint64_t server_us = 0;  // server frame turnaround
    uint64_t parse_us = 0;   // parse proper
  };
  std::vector<Timing> timings(clients.size());

  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::printf("serving %zu dialects to %d connections x %d rounds...\n\n",
              clients.size(), kThreads, kRounds);

  // One connection (and one SqlClient) per fleet member; each teaches
  // the server its dialects once, then goes fingerprint-only.
  std::vector<Timing> per_thread(kThreads * clients.size());
  std::vector<std::thread> fleet;
  fleet.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    fleet.emplace_back([&, t] {
      net::SqlClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) return;
      std::vector<uint64_t> fingerprints(clients.size(), 0);
      for (int round = 0; round < kRounds; ++round) {
        size_t c = static_cast<size_t>(t + round) % clients.size();
        const Client& profile = clients[c];
        for (const std::string& sql : profile.statements) {
          auto start = std::chrono::steady_clock::now();
          Result<net::WireParseResponse> response =
              fingerprints[c] == 0
                  ? client.Parse(profile.spec, sql)
                  : client.ParseByFingerprint(fingerprints[c], sql);
          auto end = std::chrono::steady_clock::now();
          if (!response.ok()) return;
          if (response->ok()) fingerprints[c] = response->fingerprint;
          Timing& timing = per_thread[static_cast<size_t>(t) *
                                      clients.size() + c];
          ++timing.requests;
          timing.wire_us += static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  end - start)
                  .count());
          timing.server_us += response->server_micros;
          timing.parse_us += response->parse_micros;
        }
      }
    });
  }
  for (std::thread& member : fleet) member.join();
  for (int t = 0; t < kThreads; ++t) {
    for (size_t c = 0; c < clients.size(); ++c) {
      const Timing& timing = per_thread[static_cast<size_t>(t) *
                                        clients.size() + c];
      timings[c].requests += timing.requests;
      timings[c].wire_us += timing.wire_us;
      timings[c].server_us += timing.server_us;
      timings[c].parse_us += timing.parse_us;
    }
  }

  // The async path: a SqlClientPool keeps a window of requests in
  // flight across several connections (one per shard, kernel-balanced
  // by SO_REUSEPORT) with a plain submit/poll loop — the same wire
  // protocol, none of the per-request round-trip stalls above.
  {
    net::SqlClientPoolOptions pool_options;
    pool_options.num_connections = server_options.num_loops;
    net::SqlClientPool pool(pool_options);
    if (!pool.Connect("127.0.0.1", server.port()).ok()) {
      std::fprintf(stderr, "pool connect failed\n");
      return 1;
    }
    net::SqlClient teacher;
    uint64_t fingerprint = 0;
    if (teacher.Connect("127.0.0.1", server.port()).ok()) {
      Result<net::WireParseResponse> taught =
          teacher.Parse(CoreQueryDialect(), "SELECT a FROM t");
      if (taught.ok() && taught->ok()) fingerprint = taught->fingerprint;
    }
    constexpr int kPoolRequests = 2000;
    constexpr size_t kWindow = 64;
    int submitted = 0, completed = 0;
    std::vector<net::WireParseResponse> responses;
    auto start = std::chrono::steady_clock::now();
    while (completed < kPoolRequests) {
      while (submitted < kPoolRequests &&
             pool.outstanding() < kWindow) {
        net::WireParseRequest request;
        request.fingerprint = fingerprint;
        request.sql = "SELECT a, b FROM t WHERE a = 1";
        request.want_tree = false;
        if (!pool.Submit(std::move(request)).ok()) break;
        ++submitted;
      }
      responses.clear();
      if (!pool.Poll(&responses).ok()) break;
      completed += static_cast<int>(responses.size());
    }
    auto end = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(end - start).count();
    std::printf(
        "\npipelined pool: %d requests over %zu connections in %.1f ms "
        "(%.0f req/s)\n",
        completed, pool_options.num_connections, secs * 1e3,
        completed / secs);
  }

  // One request per dialect over a fresh connection, printed, to show
  // the tailoring survives the wire; then a cross-dialect check.
  net::SqlClient probe;
  if (!probe.Connect("127.0.0.1", server.port()).ok()) {
    std::fprintf(stderr, "probe connect failed\n");
    return 1;
  }
  for (const Client& client : clients) {
    const std::string& sql = client.statements.front();
    Result<net::WireParseResponse> response = probe.Parse(client.spec, sql);
    std::printf("%-16s %s  %s\n", client.spec.name.c_str(),
                response.ok() && response->ok() ? "OK    " : "reject",
                sql.c_str());
  }
  Result<net::WireParseResponse> cross =
      probe.Parse(clients[1].spec, clients[0].statements[0]);
  std::printf("cross-dialect check: TinySQL query on the SCQL parser -> %s\n",
              cross.ok() && cross->ok() ? "accepted (?)" : "rejected");

  std::printf("\ntiming breakdown (mean us/request over the batch):\n");
  std::printf("%-16s %8s %8s %10s %9s %9s\n", "dialect", "requests",
              "wire", "turnaround", "parse", "overhead");
  for (size_t c = 0; c < clients.size(); ++c) {
    const Timing& timing = timings[c];
    if (timing.requests == 0) continue;
    double wire = static_cast<double>(timing.wire_us) / timing.requests;
    double turnaround =
        static_cast<double>(timing.server_us) / timing.requests;
    double parse = static_cast<double>(timing.parse_us) / timing.requests;
    std::printf("%-16s %8llu %8.1f %10.1f %9.1f %9.1f\n",
                clients[c].spec.name.c_str(),
                static_cast<unsigned long long>(timing.requests), wire,
                turnaround, parse, wire - turnaround);
  }

  std::printf("\n%s", service.StatsReport().c_str());

  std::printf("\ndraining...\n");
  server.Stop();
  std::printf("drained: %zu open connections\n", server.open_connections());
  return 0;
}
