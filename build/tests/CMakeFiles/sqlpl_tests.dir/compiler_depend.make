# Empty compiler generated dependencies file for sqlpl_tests.
# This may be replaced when dependencies are built.
