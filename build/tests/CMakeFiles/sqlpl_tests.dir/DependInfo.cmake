
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline/monolithic_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/baseline/monolithic_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/baseline/monolithic_test.cc.o.d"
  "/root/repo/tests/codegen/cpp_codegen_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/codegen/cpp_codegen_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/codegen/cpp_codegen_test.cc.o.d"
  "/root/repo/tests/compose/composer_edge_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/compose/composer_edge_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/compose/composer_edge_test.cc.o.d"
  "/root/repo/tests/compose/composer_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/compose/composer_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/compose/composer_test.cc.o.d"
  "/root/repo/tests/compose/composition_sequence_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/compose/composition_sequence_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/compose/composition_sequence_test.cc.o.d"
  "/root/repo/tests/compose/import_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/compose/import_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/compose/import_test.cc.o.d"
  "/root/repo/tests/feature/configuration_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/feature/configuration_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/feature/configuration_test.cc.o.d"
  "/root/repo/tests/feature/feature_diagram_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/feature/feature_diagram_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/feature/feature_diagram_test.cc.o.d"
  "/root/repo/tests/feature/feature_text_format_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/feature/feature_text_format_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/feature/feature_text_format_test.cc.o.d"
  "/root/repo/tests/feature/render_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/feature/render_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/feature/render_test.cc.o.d"
  "/root/repo/tests/grammar/analysis_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/grammar/analysis_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/grammar/analysis_test.cc.o.d"
  "/root/repo/tests/grammar/expr_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/grammar/expr_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/grammar/expr_test.cc.o.d"
  "/root/repo/tests/grammar/grammar_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/grammar/grammar_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/grammar/grammar_test.cc.o.d"
  "/root/repo/tests/grammar/metrics_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/grammar/metrics_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/grammar/metrics_test.cc.o.d"
  "/root/repo/tests/grammar/production_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/grammar/production_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/grammar/production_test.cc.o.d"
  "/root/repo/tests/grammar/text_format_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/grammar/text_format_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/grammar/text_format_test.cc.o.d"
  "/root/repo/tests/grammar/token_set_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/grammar/token_set_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/grammar/token_set_test.cc.o.d"
  "/root/repo/tests/integration/codegen_differential_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/integration/codegen_differential_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/integration/codegen_differential_test.cc.o.d"
  "/root/repo/tests/integration/dialect_matrix_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/integration/dialect_matrix_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/integration/dialect_matrix_test.cc.o.d"
  "/root/repo/tests/integration/figure_configurations_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/integration/figure_configurations_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/integration/figure_configurations_test.cc.o.d"
  "/root/repo/tests/integration/full_corpus_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/integration/full_corpus_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/integration/full_corpus_test.cc.o.d"
  "/root/repo/tests/integration/robustness_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/integration/robustness_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/integration/robustness_test.cc.o.d"
  "/root/repo/tests/integration/worked_example_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/integration/worked_example_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/integration/worked_example_test.cc.o.d"
  "/root/repo/tests/integration/workload_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/integration/workload_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/integration/workload_test.cc.o.d"
  "/root/repo/tests/lexer/lexer_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/lexer/lexer_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/lexer/lexer_test.cc.o.d"
  "/root/repo/tests/parser/ll_parser_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/parser/ll_parser_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/parser/ll_parser_test.cc.o.d"
  "/root/repo/tests/parser/parse_tree_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/parser/parse_tree_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/parser/parse_tree_test.cc.o.d"
  "/root/repo/tests/parser/predicate_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/parser/predicate_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/parser/predicate_test.cc.o.d"
  "/root/repo/tests/semantics/action_registry_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/semantics/action_registry_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/semantics/action_registry_test.cc.o.d"
  "/root/repo/tests/semantics/ast_builder_full_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/semantics/ast_builder_full_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/semantics/ast_builder_full_test.cc.o.d"
  "/root/repo/tests/semantics/ast_builder_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/semantics/ast_builder_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/semantics/ast_builder_test.cc.o.d"
  "/root/repo/tests/semantics/pretty_printer_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/semantics/pretty_printer_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/semantics/pretty_printer_test.cc.o.d"
  "/root/repo/tests/semantics/validator_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/semantics/validator_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/semantics/validator_test.cc.o.d"
  "/root/repo/tests/sql/catalog_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/sql/catalog_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/sql/catalog_test.cc.o.d"
  "/root/repo/tests/sql/classifications_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/sql/classifications_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/sql/classifications_test.cc.o.d"
  "/root/repo/tests/sql/completed_closure_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/sql/completed_closure_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/sql/completed_closure_test.cc.o.d"
  "/root/repo/tests/sql/decomposition_counts_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/sql/decomposition_counts_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/sql/decomposition_counts_test.cc.o.d"
  "/root/repo/tests/sql/dialect_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/sql/dialect_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/sql/dialect_test.cc.o.d"
  "/root/repo/tests/sql/extended_features_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/sql/extended_features_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/sql/extended_features_test.cc.o.d"
  "/root/repo/tests/sql/figures_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/sql/figures_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/sql/figures_test.cc.o.d"
  "/root/repo/tests/sql/report_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/sql/report_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/sql/report_test.cc.o.d"
  "/root/repo/tests/util/diagnostics_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/util/diagnostics_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/util/diagnostics_test.cc.o.d"
  "/root/repo/tests/util/status_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/util/status_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/util/status_test.cc.o.d"
  "/root/repo/tests/util/strings_test.cc" "tests/CMakeFiles/sqlpl_tests.dir/util/strings_test.cc.o" "gcc" "tests/CMakeFiles/sqlpl_tests.dir/util/strings_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sqlpl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
