file(REMOVE_RECURSE
  "libsqlpl.a"
)
