
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqlpl/baseline/monolithic_parser.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/baseline/monolithic_parser.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/baseline/monolithic_parser.cc.o.d"
  "/root/repo/src/sqlpl/codegen/cpp_codegen.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/codegen/cpp_codegen.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/codegen/cpp_codegen.cc.o.d"
  "/root/repo/src/sqlpl/compose/composer.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/compose/composer.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/compose/composer.cc.o.d"
  "/root/repo/src/sqlpl/compose/composition_sequence.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/compose/composition_sequence.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/compose/composition_sequence.cc.o.d"
  "/root/repo/src/sqlpl/compose/token_composer.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/compose/token_composer.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/compose/token_composer.cc.o.d"
  "/root/repo/src/sqlpl/feature/configuration.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/feature/configuration.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/feature/configuration.cc.o.d"
  "/root/repo/src/sqlpl/feature/constraint.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/feature/constraint.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/feature/constraint.cc.o.d"
  "/root/repo/src/sqlpl/feature/feature_diagram.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/feature/feature_diagram.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/feature/feature_diagram.cc.o.d"
  "/root/repo/src/sqlpl/feature/feature_model.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/feature/feature_model.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/feature/feature_model.cc.o.d"
  "/root/repo/src/sqlpl/feature/render.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/feature/render.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/feature/render.cc.o.d"
  "/root/repo/src/sqlpl/feature/text_format.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/feature/text_format.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/feature/text_format.cc.o.d"
  "/root/repo/src/sqlpl/grammar/analysis.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/grammar/analysis.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/grammar/analysis.cc.o.d"
  "/root/repo/src/sqlpl/grammar/expr.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/grammar/expr.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/grammar/expr.cc.o.d"
  "/root/repo/src/sqlpl/grammar/grammar.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/grammar/grammar.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/grammar/grammar.cc.o.d"
  "/root/repo/src/sqlpl/grammar/metrics.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/grammar/metrics.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/grammar/metrics.cc.o.d"
  "/root/repo/src/sqlpl/grammar/production.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/grammar/production.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/grammar/production.cc.o.d"
  "/root/repo/src/sqlpl/grammar/symbol.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/grammar/symbol.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/grammar/symbol.cc.o.d"
  "/root/repo/src/sqlpl/grammar/text_format.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/grammar/text_format.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/grammar/text_format.cc.o.d"
  "/root/repo/src/sqlpl/grammar/token_set.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/grammar/token_set.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/grammar/token_set.cc.o.d"
  "/root/repo/src/sqlpl/lexer/lexer.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/lexer/lexer.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/lexer/lexer.cc.o.d"
  "/root/repo/src/sqlpl/lexer/token.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/lexer/token.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/lexer/token.cc.o.d"
  "/root/repo/src/sqlpl/parser/ll_parser.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/parser/ll_parser.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/parser/ll_parser.cc.o.d"
  "/root/repo/src/sqlpl/parser/parse_tree.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/parser/parse_tree.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/parser/parse_tree.cc.o.d"
  "/root/repo/src/sqlpl/parser/parser_builder.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/parser/parser_builder.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/parser/parser_builder.cc.o.d"
  "/root/repo/src/sqlpl/semantics/action_registry.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/semantics/action_registry.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/semantics/action_registry.cc.o.d"
  "/root/repo/src/sqlpl/semantics/ast.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/semantics/ast.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/semantics/ast.cc.o.d"
  "/root/repo/src/sqlpl/semantics/ast_builder.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/semantics/ast_builder.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/semantics/ast_builder.cc.o.d"
  "/root/repo/src/sqlpl/semantics/catalog.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/semantics/catalog.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/semantics/catalog.cc.o.d"
  "/root/repo/src/sqlpl/semantics/pretty_printer.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/semantics/pretty_printer.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/semantics/pretty_printer.cc.o.d"
  "/root/repo/src/sqlpl/semantics/validator.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/semantics/validator.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/semantics/validator.cc.o.d"
  "/root/repo/src/sqlpl/sql/classifications.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/sql/classifications.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/sql/classifications.cc.o.d"
  "/root/repo/src/sqlpl/sql/dialects.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/sql/dialects.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/sql/dialects.cc.o.d"
  "/root/repo/src/sqlpl/sql/foundation_grammars.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/sql/foundation_grammars.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/sql/foundation_grammars.cc.o.d"
  "/root/repo/src/sqlpl/sql/foundation_model.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/sql/foundation_model.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/sql/foundation_model.cc.o.d"
  "/root/repo/src/sqlpl/sql/product_line.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/sql/product_line.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/sql/product_line.cc.o.d"
  "/root/repo/src/sqlpl/sql/report.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/sql/report.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/sql/report.cc.o.d"
  "/root/repo/src/sqlpl/testing/workload_generator.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/testing/workload_generator.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/testing/workload_generator.cc.o.d"
  "/root/repo/src/sqlpl/util/diagnostics.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/util/diagnostics.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/util/diagnostics.cc.o.d"
  "/root/repo/src/sqlpl/util/status.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/util/status.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/util/status.cc.o.d"
  "/root/repo/src/sqlpl/util/strings.cc" "src/CMakeFiles/sqlpl.dir/sqlpl/util/strings.cc.o" "gcc" "src/CMakeFiles/sqlpl.dir/sqlpl/util/strings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
