# Empty dependencies file for sqlpl.
# This may be replaced when dependencies are built.
