# Empty compiler generated dependencies file for product_line_report.
# This may be replaced when dependencies are built.
