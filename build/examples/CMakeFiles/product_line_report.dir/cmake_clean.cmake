file(REMOVE_RECURSE
  "CMakeFiles/product_line_report.dir/product_line_report.cpp.o"
  "CMakeFiles/product_line_report.dir/product_line_report.cpp.o.d"
  "product_line_report"
  "product_line_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/product_line_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
