file(REMOVE_RECURSE
  "CMakeFiles/tinysql_sensor.dir/tinysql_sensor.cpp.o"
  "CMakeFiles/tinysql_sensor.dir/tinysql_sensor.cpp.o.d"
  "tinysql_sensor"
  "tinysql_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinysql_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
