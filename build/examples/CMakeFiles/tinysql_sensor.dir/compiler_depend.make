# Empty compiler generated dependencies file for tinysql_sensor.
# This may be replaced when dependencies are built.
