# Empty dependencies file for dialect_explorer.
# This may be replaced when dependencies are built.
