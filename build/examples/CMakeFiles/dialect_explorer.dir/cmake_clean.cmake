file(REMOVE_RECURSE
  "CMakeFiles/dialect_explorer.dir/dialect_explorer.cpp.o"
  "CMakeFiles/dialect_explorer.dir/dialect_explorer.cpp.o.d"
  "dialect_explorer"
  "dialect_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dialect_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
