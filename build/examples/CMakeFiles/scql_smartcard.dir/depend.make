# Empty dependencies file for scql_smartcard.
# This may be replaced when dependencies are built.
