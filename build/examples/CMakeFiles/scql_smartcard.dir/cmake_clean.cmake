file(REMOVE_RECURSE
  "CMakeFiles/scql_smartcard.dir/scql_smartcard.cpp.o"
  "CMakeFiles/scql_smartcard.dir/scql_smartcard.cpp.o.d"
  "scql_smartcard"
  "scql_smartcard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scql_smartcard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
