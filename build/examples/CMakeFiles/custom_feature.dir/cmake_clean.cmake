file(REMOVE_RECURSE
  "CMakeFiles/custom_feature.dir/custom_feature.cpp.o"
  "CMakeFiles/custom_feature.dir/custom_feature.cpp.o.d"
  "custom_feature"
  "custom_feature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_feature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
