# Empty dependencies file for custom_feature.
# This may be replaced when dependencies are built.
