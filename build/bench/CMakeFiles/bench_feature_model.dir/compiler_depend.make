# Empty compiler generated dependencies file for bench_feature_model.
# This may be replaced when dependencies are built.
