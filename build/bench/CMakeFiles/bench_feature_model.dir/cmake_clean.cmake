file(REMOVE_RECURSE
  "CMakeFiles/bench_feature_model.dir/bench_feature_model.cc.o"
  "CMakeFiles/bench_feature_model.dir/bench_feature_model.cc.o.d"
  "bench_feature_model"
  "bench_feature_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feature_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
