#!/usr/bin/env bash
# Tier-1 verification plus the ThreadSanitizer smoke pass.
#
#   scripts/check.sh            # full: build + ctest + TSan tsan-smoke
#   scripts/check.sh --fast     # tier-1 only (skip the TSan build)
#
# Tier-1 (the roadmap gate): configure, build, and run the whole test
# suite. The TSan pass rebuilds the service/obs test executables with
# SQLPL_SANITIZE=thread in a separate build tree and runs exactly the
# tests labeled `tsan-smoke` — the concurrency-sensitive serving and
# observability suites (see tests/CMakeLists.txt).

set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1: build =="
cmake -B build -S . > /dev/null
cmake --build build -j "$JOBS"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "$FAST" == "1" ]]; then
  echo "== skipping TSan pass (--fast) =="
  exit 0
fi

echo "== tsan: build (SQLPL_SANITIZE=thread) =="
cmake -B build-tsan -S . -D SQLPL_SANITIZE=thread > /dev/null
cmake --build build-tsan -j "$JOBS" \
  --target sqlpl_service_tests sqlpl_obs_tests

echo "== tsan: ctest -L tsan-smoke =="
(cd build-tsan && ctest -L tsan-smoke --output-on-failure -j "$JOBS")

echo "== all checks passed =="
