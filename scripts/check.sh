#!/usr/bin/env bash
# Tier-1 verification plus the sanitizer passes.
#
#   scripts/check.sh            # full: build + ctest + TSan + ASan +
#                               # bench-regression passes
#   scripts/check.sh --fast     # tier-1 only (skip sanitizers + benches)
#
# Tier-1 (the roadmap gate): configure, build, and run the whole test
# suite. The TSan pass rebuilds the service/obs/net test executables with
# SQLPL_SANITIZE=thread in a separate build tree and runs exactly the
# tests labeled `tsan-smoke` — the concurrency-sensitive serving and
# observability suites (see tests/CMakeLists.txt), which since the
# wire-tracing PR include the flight-recorder rings and the per-loop
# labeled gauges (tests/obs/flight_recorder_test.cc,
# tests/net/trace_wire_test.cc). The ASan pass builds
# a third tree with SQLPL_SANITIZE=address AND SQLPL_FAULT_INJECT=ON and
# runs the `service` label: the fault-injection suite (which skips in
# normal builds) exercises the retry/shed/deadline paths there under
# AddressSanitizer (docs/ROBUSTNESS.md).

set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1: build =="
cmake -B build -S . > /dev/null
cmake --build build -j "$JOBS"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "$FAST" == "1" ]]; then
  echo "== skipping sanitizer passes (--fast) =="
  exit 0
fi

echo "== tsan: build (SQLPL_SANITIZE=thread) =="
cmake -B build-tsan -S . -D SQLPL_SANITIZE=thread > /dev/null
cmake --build build-tsan -j "$JOBS" \
  --target sqlpl_service_tests sqlpl_obs_tests sqlpl_net_tests \
           sqlpl_fm_tests sqlpl_codegen_tests sqlpl_exec_tests

echo "== tsan: ctest -L tsan-smoke =="
(cd build-tsan && ctest -L tsan-smoke --output-on-failure -j "$JOBS")

echo "== asan: build (SQLPL_SANITIZE=address, SQLPL_FAULT_INJECT=ON) =="
cmake -B build-asan -S . -D SQLPL_SANITIZE=address \
  -D SQLPL_FAULT_INJECT=ON > /dev/null
cmake --build build-asan -j "$JOBS" \
  --target sqlpl_service_tests sqlpl_net_tests sqlpl_fm_tests \
           sqlpl_codegen_tests sqlpl_exec_tests

echo "== asan: ctest -L 'service|codegen' =="
# codegen runs under ASan too: the native tier dlopens freshly-compiled
# parsers and hands their token/result buffers across the ABI boundary —
# exactly the code that should never touch freed or out-of-bounds
# memory (docs/NATIVE_TIER.md).
(cd build-asan && ctest -L 'service|codegen' --output-on-failure -j "$JOBS")

# Bench regression gate: rerun the throughput benches from the build
# tree (so the committed BENCH_*.json baselines at the repo root stay
# untouched) and diff them against those baselines. The benches run
# with no extra flags: every binary defaults to 3 repetitions and its
# JSON records the best repetition (bench/bench_json.h), so the gate run
# and the committed baselines are always like-for-like. Don't pass
# --benchmark_min_time here — shortened runs systematically
# under-measure the heavyweight ms-per-iteration benchmarks and trip
# the gate with false regressions.
#
# The threshold here is looser than bench_compare.py's 10% default:
# this stage runs right after the parallel sanitizer builds and test
# suites, so the machine is thermally loaded and the contention-heavy
# multi-threaded benches swing ~20-22% against idle-captured baselines
# on identical code (measured: a post-sanitizer rerun of an unchanged
# tree dipped 5 service/parse benches 20.5-21.7%). Real pessimizations
# (a reintroduced per-token allocation costs 3x) clear 50% on many
# benchmarks at once. For a precise comparison, run the benches and
# bench_compare.py by hand on an idle machine. Refresh baselines after
# an intentional perf change:
#   scripts/bench_compare.py build --update
#
# bench_net also runs here for its mt_curve: the multi-threaded scaling
# sweep gates point-by-point per thread count (items_per_s
# bigger-better, p50/p99 smaller-better — see bench_compare.py), so the
# sharded runtime cannot quietly lose its scaling shape.
echo "== bench: regression check vs committed baselines =="
# bench_native additionally enforces the native tier's absolute
# acceptance gates (≥1.5× promoted speedup on ≥2 dialects, ≥300 MB/s
# SWAR lexing — see docs/NATIVE_TIER.md), which bench_compare.py reads
# from the "gates" array in BENCH_native.json.
# bench_exec's absolute gate (≥50M rows/s fused scan+filter on the
# 1M-row suite — see docs/EXECUTION.md) rides the same mechanism.
for b in bench_lexer bench_parse bench_service bench_fm bench_net \
         bench_native bench_exec; do
  (cd build && "./bench/$b" > /dev/null)
done
python3 "$ROOT/scripts/bench_compare.py" build \
  --threshold 25 --allowed-outliers 3

echo "== all checks passed =="
