#!/usr/bin/env python3
"""Compare freshly-run BENCH_<name>.json files against committed baselines.

Usage:
    scripts/bench_compare.py CURRENT_DIR [BASELINE_DIR] [--threshold PCT]
    scripts/bench_compare.py CURRENT_DIR --update [BASELINE_DIR]

CURRENT_DIR holds just-produced BENCH_*.json files (typically the build
directory after running the bench_* executables); BASELINE_DIR (default:
repo root) holds the committed baselines. For every benchmark name
present in both files the script compares every *shared counter whose
direction is known from its name* and fails (exit 1) on a regression
larger than the threshold (default 10%):

    *_per_s / *_per_second  bigger is better (throughput)
    *_rate                  smaller is better (shed_rate, error rates)
    *_us / *_ns / *_micros  smaller is better (latency figures)

so a benchmark that holds its ns_per_op while its mb_per_s or
statements_per_s collapses (or its shed_rate climbs) no longer slips
through. A benchmark with no known-direction counters falls back to
ns_per_op (smaller is better). Two counter classes are reported but
never gate:

  - percentile counters (p50_*/p99_*...): distribution tails are
    noise-dominated run-to-run, especially in the contention-heavy
    multi-threaded benches — a tail regression that matters shows up in
    the mean/rate figures too;
  - counters whose name encodes no direction: only a human knows which
    way is better.

One nested structure also gates: BENCH_net.json's `mt_curve` (the
multi-threaded scaling sweep) is compared point-by-point per thread
count — items_per_s bigger-better, p50_us/p99_us smaller-better — with
the same threshold and outlier budget, so the serving layer cannot
quietly lose its scaling shape while the single-connection benchmarks
hold.

Benchmarks — and individual counters — present only on one side are
reported with visible NEW/GONE lines but never fail the check
(benchmarks and counters get added and retired; the committed baseline
is refreshed with --update whenever an intentional change lands).

Machine noise: wall-clock benchmarks on shared machines jitter tens of
percent run-to-run, which would drown a 10% threshold. The bench
binaries therefore default to 3 repetitions and record the *best*
repetition in their JSON (min ns_per_op / max rate counters — see
bench/bench_json.h), so both sides of this comparison are
least-interference estimates. Run the benches with no extra flags when
producing files for this script, and rerun once before believing a
marginal failure.

Residual jitter in contention-heavy multi-threaded benchmarks is
absorbed by an outlier budget: up to --allowed-outliers (default 2)
regressions between 1x and 2x the threshold are reported but tolerated.
Anything beyond 2x the threshold, or more outliers than the budget,
fails — a real pessimization regresses many benchmarks, or one by a
lot.

Absolute gates: a bench binary may embed acceptance floors in its JSON
as {"gates":[{"name":..., "value":..., "min":...}, ...]} (BENCH_native
gates its promoted-vs-interpreted speedup and SWAR lexing MB/s this
way). Gates are checked on the freshly-run file alone — no baseline
needed, no relative threshold, no outlier tolerance: value < min fails.
"""

import argparse
import json
import os
import shutil
import sys

RATE_SUFFIXES = ("_per_s", "_per_second")          # bigger is better
COST_SUFFIXES = ("_rate", "_us", "_ns", "_micros")  # smaller is better
PERCENTILE_PREFIXES = ("p50_", "p90_", "p95_", "p99_")


def load_doc(path):
    """The raw JSON document of one BENCH_*.json file."""
    with open(path) as f:
        return json.load(f)


def load_results(doc):
    """Returns {benchmark_name: result_dict} for one parsed document."""
    results = {}
    for result in doc.get("results", []):
        if result.get("error"):
            continue  # errored runs carry zero timings; never compare them
        results[result["name"]] = result
    return results


def metric_direction(name):
    """True = bigger is better, False = smaller, None = unknown."""
    if name == "ns_per_op":
        return False
    if name.endswith(RATE_SUFFIXES):
        return True
    if name.endswith(COST_SUFFIXES):
        return False
    return None


def gating_metrics(result):
    """[(name, value)] of the counters this result is gated on.

    Every known-direction, non-percentile counter gates; a result with
    none falls back to ns_per_op so nothing goes entirely unwatched.
    """
    out = []
    for name, value in sorted(result.get("counters", {}).items()):
        if name.startswith(PERCENTILE_PREFIXES):
            continue
        if metric_direction(name) is None:
            continue
        out.append((name, value))
    if not out:
        out.append(("ns_per_op", result.get("ns_per_op", 0)))
    return out


def compare_file(bench, current, baseline, threshold):
    """Compares one benchmark file.

    Returns (major, minor): formatted strings for regressions beyond
    2x threshold and between 1x and 2x, respectively.
    """
    major = []
    minor = []
    shared = sorted(set(current) & set(baseline))
    only_current = sorted(set(current) - set(baseline))
    only_baseline = sorted(set(baseline) - set(current))
    for name in shared:
        new_metrics = dict(gating_metrics(current[name]))
        base_metrics = dict(gating_metrics(baseline[name]))
        for metric in sorted(set(new_metrics) | set(base_metrics)):
            if metric not in base_metrics:
                print(f"  {'NEW':>10} {name}: counter {metric} has no "
                      "baseline (informational only)")
                continue
            if metric not in new_metrics:
                print(f"  {'GONE':>10} {name}: counter {metric} not in "
                      "this run (informational only)")
                continue
            new_value = new_metrics[metric]
            base_value = base_metrics[metric]
            if base_value <= 0 or new_value <= 0:
                # A zero side (e.g. shed_rate 0) has no meaningful
                # relative change; absolute shifts from zero are visible
                # in the printed values.
                print(f"  {'~':>10} {name}: {metric} {base_value:.3f} -> "
                      f"{new_value:.3f} (zero side, not gated)")
                continue
            if metric_direction(metric):
                change = (new_value - base_value) / base_value
            else:
                change = (base_value - new_value) / base_value
            entry = (f"{bench}/{name}: {metric} {base_value:.1f} -> "
                     f"{new_value:.1f} ({change * 100:+.1f}%)")
            marker = "ok"
            if change < -2 * threshold:
                marker = "REGRESSION"
                major.append(entry)
            elif change < -threshold:
                marker = "outlier"
                minor.append(entry)
            print(f"  {marker:>10} {name}: {metric} {base_value:.1f} -> "
                  f"{new_value:.1f} ({change * 100:+.1f}%)")
        # Percentile / direction-less counters: visible, never gating.
        info = sorted(set(current[name].get("counters", {})) &
                      set(baseline[name].get("counters", {})))
        for metric in info:
            if metric in new_metrics:
                continue  # gated above
            new_value = current[name]["counters"][metric]
            base_value = baseline[name]["counters"][metric]
            print(f"  {'info':>10} {name}: {metric} {base_value:.1f} -> "
                  f"{new_value:.1f} (not gated)")
    # One-sided benchmarks are loudly visible but never gate pass/fail:
    # benchmarks get added and retired, and the committed baseline only
    # catches up at the next --update.
    for name in only_current:
        print(f"  {'NEW':>10} {bench}/{name}: no committed baseline "
              "(informational only; refresh with --update)")
    for name in only_baseline:
        print(f"  {'GONE':>10} {bench}/{name}: in baseline but not in this "
              "run (informational only; refresh with --update)")
    return major, minor


# The multi-threaded scaling curve (BENCH_net.json `mt_curve`) gates
# per thread-count point, and — unlike per-benchmark counters — its
# percentiles gate too: the curve is produced by a fixed closed-loop
# harness whose latency distribution is the *product* being measured
# (a p99 collapse at 8 threads IS the scaling regression the curve
# exists to catch), not a tail statistic of a contended micro-bench.
MT_CURVE_METRICS = (
    ("items_per_s", True),   # bigger is better
    ("p50_us", False),       # smaller is better
    ("p99_us", False),
)


def compare_mt_curve(bench, current_doc, baseline_doc, threshold):
    """Gates the nested mt_curve entries, matched by thread count.

    Returns (major, minor), same contract as compare_file.
    """
    major = []
    minor = []
    current = {p["threads"]: p for p in current_doc.get("mt_curve", [])}
    baseline = {p["threads"]: p for p in baseline_doc.get("mt_curve", [])}
    if not current and not baseline:
        return major, minor
    for threads in sorted(set(current) | set(baseline)):
        label = f"mt_curve[threads={threads}]"
        if threads not in baseline:
            print(f"  {'NEW':>10} {label}: no committed baseline point "
                  "(informational only)")
            continue
        if threads not in current:
            print(f"  {'GONE':>10} {label}: baseline point not in this run "
                  "(informational only)")
            continue
        for metric, bigger in MT_CURVE_METRICS:
            new_value = current[threads].get(metric, 0)
            base_value = baseline[threads].get(metric, 0)
            if base_value <= 0 or new_value <= 0:
                print(f"  {'~':>10} {label}: {metric} {base_value:.3f} -> "
                      f"{new_value:.3f} (zero side, not gated)")
                continue
            if bigger:
                change = (new_value - base_value) / base_value
            else:
                change = (base_value - new_value) / base_value
            entry = (f"{bench}/{label}: {metric} {base_value:.1f} -> "
                     f"{new_value:.1f} ({change * 100:+.1f}%)")
            marker = "ok"
            if change < -2 * threshold:
                marker = "REGRESSION"
                major.append(entry)
            elif change < -threshold:
                marker = "outlier"
                minor.append(entry)
            print(f"  {marker:>10} {label}: {metric} {base_value:.1f} -> "
                  f"{new_value:.1f} ({change * 100:+.1f}%)")
    return major, minor


def check_gates(bench, current_doc):
    """Enforces the file's own absolute acceptance floors.

    Returns formatted failure strings; gates have no noise tolerance —
    the bench binary already records best-of-repetitions.
    """
    failures = []
    for gate in current_doc.get("gates", []):
        name = gate.get("name", "?")
        value = gate.get("value", 0)
        floor = gate.get("min", 0)
        if value < floor:
            marker = "GATE FAIL"
            failures.append(f"{bench}/gate {name}: {value:g} < required "
                            f"{floor:g}")
        else:
            marker = "gate ok"
        print(f"  {marker:>10} {name}: {value:g} (min {floor:g})")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="Diff BENCH_*.json against committed baselines.")
    parser.add_argument("current_dir",
                        help="directory with freshly-run BENCH_*.json")
    parser.add_argument("baseline_dir", nargs="?", default=None,
                        help="directory with committed baselines "
                             "(default: repo root)")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="allowed regression in percent (default 10)")
    parser.add_argument("--allowed-outliers", type=int, default=2,
                        help="tolerated count of minor regressions "
                             "(between 1x and 2x threshold; default 2). "
                             "Contention-heavy multi-threaded benchmarks "
                             "jitter past the threshold even best-of-N; "
                             "a real pessimization regresses many "
                             "benchmarks, or one by a lot.")
    parser.add_argument("--update", action="store_true",
                        help="copy current files over the baselines "
                             "instead of comparing")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_dir = args.baseline_dir or repo_root
    threshold = args.threshold / 100.0

    names = sorted(f for f in os.listdir(args.current_dir)
                   if f.startswith("BENCH_") and f.endswith(".json"))
    if not names:
        print(f"bench_compare: no BENCH_*.json in {args.current_dir}",
              file=sys.stderr)
        return 1

    if args.update:
        for name in names:
            src = os.path.join(args.current_dir, name)
            dst = os.path.join(baseline_dir, name)
            shutil.copyfile(src, dst)
            print(f"updated {dst}")
        return 0

    major = []
    minor = []
    for name in names:
        baseline_path = os.path.join(baseline_dir, name)
        current_doc = load_doc(os.path.join(args.current_dir, name))
        if not os.path.exists(baseline_path):
            print(f"{name}: NEW benchmark file, no committed baseline "
                  "(informational only; commit one with --update)")
            # Absolute gates still apply: they need no baseline.
            major += check_gates(name, current_doc)
            continue
        print(f"{name}:")
        baseline_doc = load_doc(baseline_path)
        file_major, file_minor = compare_file(
            name, load_results(current_doc), load_results(baseline_doc),
            threshold)
        major += file_major
        minor += file_minor
        curve_major, curve_minor = compare_mt_curve(
            name, current_doc, baseline_doc, threshold)
        major += curve_major
        minor += curve_minor
        major += check_gates(name, current_doc)

    if minor:
        print(f"\nbench_compare: {len(minor)} minor outlier(s) between "
              f"{args.threshold:.0f}% and {2 * args.threshold:.0f}% "
              f"({args.allowed_outliers} tolerated):")
        for entry in minor:
            print(f"  {entry}")
    failures = major
    if len(minor) > args.allowed_outliers:
        failures = major + minor
    if failures:
        print(f"\nbench_compare: {len(failures)} regression(s) beyond "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nbench_compare: no regressions beyond {args.threshold:.0f}% "
          "threshold (after outlier tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
