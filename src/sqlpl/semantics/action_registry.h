#ifndef SQLPL_SEMANTICS_ACTION_REGISTRY_H_
#define SQLPL_SEMANTICS_ACTION_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sqlpl/parser/parse_tree.h"
#include "sqlpl/util/diagnostics.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// Shared state threaded through a semantic-action pass over a parse
/// tree: diagnostics plus a free-form attribute blackboard the layered
/// actions communicate through (the FOP analogue of refined fields).
struct SemanticContext {
  DiagnosticCollector diagnostics;
  std::map<std::string, std::string> attributes;
};

/// One semantic action: invoked for every CST rule node whose symbol it
/// was registered for.
using SemanticAction =
    std::function<void(const ParseNode& node, SemanticContext* context)>;

/// Feature-layered semantic actions over parse trees — the library's
/// replacement for the paper's Jak/Mixin implementation of semantics.
/// Each feature contributes actions for the rules its sub-grammar owns;
/// building a dialect's semantics means *composing the layers of exactly
/// the selected features*, never editing a monolithic visitor.
class ActionRegistry {
 public:
  /// Registers `action` for CST nodes with rule symbol `rule`, owned by
  /// `feature`. Multiple actions per rule stack in registration order.
  void Register(std::string feature, std::string rule, SemanticAction action);

  /// Returns a registry holding only the layers of `features` — the
  /// semantic counterpart of composing sub-grammars.
  ActionRegistry ForFeatures(const std::vector<std::string>& features) const;

  /// Runs all matching actions over `tree` in pre-order. Actions report
  /// problems through `context->diagnostics`; returns a configuration
  /// error iff any error diagnostic was added.
  Status Run(const ParseNode& tree, SemanticContext* context) const;

  size_t NumActions() const;
  std::vector<std::string> Features() const;

 private:
  struct Entry {
    std::string feature;
    std::string rule;
    SemanticAction action;
  };
  std::vector<Entry> entries_;
};

}  // namespace sqlpl

#endif  // SQLPL_SEMANTICS_ACTION_REGISTRY_H_
