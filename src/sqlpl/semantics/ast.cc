#include "sqlpl/semantics/ast.h"

namespace sqlpl {

AstExpr AstExpr::Column(std::string name) {
  return {AstExprKind::kColumnRef, std::move(name), {}};
}

AstExpr AstExpr::Literal(std::string text) {
  return {AstExprKind::kLiteral, std::move(text), {}};
}

AstExpr AstExpr::Binary(std::string op, AstExpr lhs, AstExpr rhs) {
  return {AstExprKind::kBinaryOp, std::move(op),
          {std::move(lhs), std::move(rhs)}};
}

AstExpr AstExpr::Unary(std::string op, AstExpr operand) {
  return {AstExprKind::kUnaryOp, std::move(op), {std::move(operand)}};
}

AstExpr AstExpr::Call(std::string name, std::vector<AstExpr> args) {
  return {AstExprKind::kFunctionCall, std::move(name), std::move(args)};
}

AstExpr AstExpr::Star() { return {AstExprKind::kStar, "*", {}}; }

std::string AstExpr::ToString() const {
  switch (kind) {
    case AstExprKind::kColumnRef:
    case AstExprKind::kLiteral:
    case AstExprKind::kStar:
      return value;
    case AstExprKind::kBinaryOp:
      return "(" + children[0].ToString() + " " + value + " " +
             children[1].ToString() + ")";
    case AstExprKind::kUnaryOp:
      return "(" + value + " " + children[0].ToString() + ")";
    case AstExprKind::kFunctionCall: {
      std::string out = value + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i].ToString();
      }
      out += ")";
      return out;
    }
  }
  return value;
}

std::vector<std::string> AstExpr::ReferencedColumns() const {
  std::vector<std::string> out;
  if (kind == AstExprKind::kColumnRef) out.push_back(value);
  for (const AstExpr& child : children) {
    std::vector<std::string> nested = child.ReferencedColumns();
    out.insert(out.end(), nested.begin(), nested.end());
  }
  return out;
}

std::string SelectStatement::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    const SelectItem& item = items[i];
    out += item.is_star ? "*" : item.expr.ToString();
    if (!item.alias.empty()) out += " AS " + item.alias;
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].name;
    if (!from[i].alias.empty()) out += " " + from[i].alias;
  }
  if (where.has_value()) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i].ToString();
    }
  }
  if (having.has_value()) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr.ToString();
      if (order_by[i].descending) out += " DESC";
    }
  }
  return out;
}

}  // namespace sqlpl
