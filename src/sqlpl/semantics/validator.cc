#include "sqlpl/semantics/validator.h"

#include "sqlpl/util/strings.h"

namespace sqlpl {

namespace {

std::string ChainText(const ParseNode& node) {
  std::string out;
  for (const ParseNode* leaf : node.FindAll("IDENTIFIER")) {
    if (!out.empty()) out += '.';
    out += leaf->token().text;
  }
  return out;
}

// Tables (and aliases) named by the FROM clause nearest to `query`.
struct FromScope {
  std::vector<std::string> tables;            // real table names
  std::map<std::string, std::string> alias;   // UPPER(alias) -> table
};

FromScope ScopeOf(const ParseNode& query) {
  FromScope scope;
  const ParseNode* from = query.FindFirst("from_clause");
  if (from == nullptr) return scope;
  for (const ParseNode* primary : from->FindAll("table_primary")) {
    const ParseNode* name = primary->FindFirst("table_name");
    if (name == nullptr) continue;
    std::string table = ChainText(*name);
    const ParseNode* correlation = primary->FindFirst("correlation_clause");
    if (correlation != nullptr) {
      std::vector<const ParseNode*> ids = correlation->FindAll("IDENTIFIER");
      if (!ids.empty()) {
        scope.alias[AsciiStrToUpper(ids.back()->token().text)] = table;
      }
    }
    scope.tables.push_back(std::move(table));
  }
  return scope;
}

}  // namespace

ActionRegistry MakeCatalogValidator(const DbCatalog& catalog) {
  ActionRegistry registry;

  // Layer owned by the From feature: every table *referenced* from a FROM
  // clause must exist. Registered on from_clause (not table_name) so that
  // defining occurrences — CREATE TABLE / CREATE VIEW targets — are not
  // treated as references.
  auto check_table = [&catalog](const ParseNode& name_node,
                                SemanticContext* context) {
    std::string table = ChainText(name_node);
    if (!table.empty() && !catalog.HasTable(table)) {
      context->diagnostics.AddError(
          name_node.FindAll("IDENTIFIER").front()->token().location,
          "unknown table '" + table + "'");
    }
  };
  registry.Register(
      "From", "from_clause",
      [check_table](const ParseNode& node, SemanticContext* context) {
        for (const ParseNode* name : node.FindAll("table_name")) {
          check_table(*name, context);
        }
      });
  // DML layers: the statement's target table is a reference too.
  for (const char* rule :
       {"insert_statement", "update_statement", "delete_statement"}) {
    std::string feature = rule == std::string("insert_statement")
                              ? "InsertStatement"
                          : rule == std::string("update_statement")
                              ? "UpdateStatement"
                              : "DeleteStatement";
    registry.Register(
        feature, rule,
        [check_table](const ParseNode& node, SemanticContext* context) {
          const ParseNode* name = node.FindFirst("table_name");
          if (name != nullptr) check_table(*name, context);
        });
  }

  // Layer owned by the ValueExpressions feature: column references must
  // resolve against the enclosing FROM scope. Registered on the
  // query_specification rule so the scope is computed once per query.
  registry.Register(
      "ValueExpressions", "query_specification",
      [&catalog](const ParseNode& query, SemanticContext* context) {
        FromScope scope = ScopeOf(query);
        if (scope.tables.empty()) return;
        for (const ParseNode* ref : query.FindAll("column_reference")) {
          // Skip references that are actually routine invocations.
          if (ref->FindFirst("routine_call_suffix") != nullptr) continue;
          std::vector<const ParseNode*> ids = ref->FindAll("IDENTIFIER");
          if (ids.empty()) continue;
          if (ids.size() >= 2) {
            // qualifier.column
            std::string qualifier = ids[0]->token().text;
            std::string column = ids[1]->token().text;
            std::string table = qualifier;
            auto alias_it = scope.alias.find(AsciiStrToUpper(qualifier));
            if (alias_it != scope.alias.end()) table = alias_it->second;
            if (!catalog.HasTable(table)) {
              context->diagnostics.AddError(
                  ids[0]->token().location,
                  "unknown table or alias '" + qualifier + "'");
            } else if (!catalog.HasColumn(table, column)) {
              context->diagnostics.AddError(
                  ids[1]->token().location,
                  "table '" + table + "' has no column '" + column + "'");
            }
            continue;
          }
          // Unqualified column: must exist in some table in scope.
          const std::string& column = ids[0]->token().text;
          bool found = false;
          for (const std::string& table : scope.tables) {
            if (catalog.HasColumn(table, column)) {
              found = true;
              break;
            }
          }
          if (!found) {
            context->diagnostics.AddError(
                ids[0]->token().location,
                "column '" + column + "' not found in any table of the "
                "FROM clause");
          }
        }
      });

  return registry;
}

Status ValidateAgainstCatalog(const DbCatalog& catalog,
                              const std::vector<std::string>& features,
                              const ParseNode& tree,
                              DiagnosticCollector* diagnostics) {
  ActionRegistry registry =
      MakeCatalogValidator(catalog).ForFeatures(features);
  SemanticContext context;
  Status status = registry.Run(tree, &context);
  for (const Diagnostic& diagnostic : context.diagnostics.diagnostics()) {
    diagnostics->Add(diagnostic);
  }
  return status;
}

}  // namespace sqlpl
