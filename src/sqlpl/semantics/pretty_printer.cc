#include "sqlpl/semantics/pretty_printer.h"

#include <set>

#include "sqlpl/util/strings.h"

namespace sqlpl {

namespace {

void CollectLeaves(const ParseNode& node, std::vector<const Token*>* out) {
  if (node.is_leaf()) {
    out->push_back(&node.token());
    return;
  }
  for (const ParseNode& child : node.children()) CollectLeaves(child, out);
}

bool IsWordToken(const Token& token) {
  return !token.text.empty() && IsIdentStart(token.text[0]);
}

// Lexeme as the printer emits it.
std::string Lexeme(const Token& token) {
  if (token.type == "IDENTIFIER") return token.text;
  if (token.type == "NUMBER") return token.text;
  if (token.type == "STRING") {
    std::string out = "'";
    for (char c : token.text) {
      out += c;
      if (c == '\'') out += '\'';  // double the quote
    }
    out += "'";
    return out;
  }
  if (IsWordToken(token)) return AsciiStrToUpper(token.text);  // keyword
  return token.text;  // punctuation
}

// Words that a following `(` belongs to as a call, so the printer writes
// `COUNT(*)` and `f(x)` but keeps `WHERE (a = 1)` spaced.
bool IsCallableWord(const Token& token) {
  static const std::set<std::string> kFunctions = {
      "IDENTIFIER", "COUNT",       "SUM",        "AVG",
      "MIN",        "MAX",         "EVERY",      "STDDEV_POP",
      "STDDEV_SAMP","VAR_POP",     "VAR_SAMP",   "UPPER",
      "LOWER",      "TRIM",        "SUBSTRING",  "POSITION",
      "CHAR_LENGTH","EXTRACT",     "CAST",       "NULLIF",
      "COALESCE",   "VARCHAR",     "CHAR",       "CHARACTER",
      "DECIMAL",    "NUMERIC",     "DEC",        "FLOAT",
      "TIMESTAMP",  "TIME"};
  return kFunctions.contains(token.type);
}

bool NoSpaceBefore(const Token& token) {
  return token.type == "COMMA" || token.type == "RPAREN" ||
         token.type == "DOT" || token.type == "SEMI";
}

bool NoSpaceAfter(const Token& token) {
  return token.type == "LPAREN" || token.type == "DOT";
}

}  // namespace

std::string PrintSql(const ParseNode& tree) {
  std::vector<const Token*> leaves;
  CollectLeaves(tree, &leaves);

  std::string out;
  bool suppress_space = true;  // no leading space
  const Token* previous = nullptr;
  for (const Token* token : leaves) {
    if (token->type == "$") continue;
    bool call_paren = token->type == "LPAREN" && previous != nullptr &&
                      IsCallableWord(*previous);
    if (!suppress_space && !NoSpaceBefore(*token) && !call_paren) out += ' ';
    out += Lexeme(*token);
    suppress_space = NoSpaceAfter(*token);
    previous = token;
  }
  return out;
}

}  // namespace sqlpl
