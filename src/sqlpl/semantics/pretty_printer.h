#ifndef SQLPL_SEMANTICS_PRETTY_PRINTER_H_
#define SQLPL_SEMANTICS_PRETTY_PRINTER_H_

#include <string>

#include "sqlpl/parser/parse_tree.h"

namespace sqlpl {

/// Renders the SQL text a CST matched, with canonical spacing: single
/// spaces between tokens, no space before `,` `)` `.` or after `(` `.`,
/// keywords uppercased, string literals re-quoted. Because it works on
/// the CST it prints any dialect of the product line, and satisfies the
/// round-trip property parse(print(parse(q))) == parse(q) used by the
/// property tests.
std::string PrintSql(const ParseNode& tree);

}  // namespace sqlpl

#endif  // SQLPL_SEMANTICS_PRETTY_PRINTER_H_
