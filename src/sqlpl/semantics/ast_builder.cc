#include "sqlpl/semantics/ast_builder.h"

namespace sqlpl {

namespace {

// Dotted text of an identifier_chain / column_reference / table_name node.
std::string ChainText(const ParseNode& node) {
  std::string out;
  for (const ParseNode* leaf : node.FindAll("IDENTIFIER")) {
    if (!out.empty()) out += '.';
    out += leaf->token().text;
  }
  return out;
}

Result<AstExpr> BuildValue(const ParseNode& node);

// Folds a layered binary-operation node whose children alternate
// operand / operator-rule / operand / ... into a left-associative tree.
Result<AstExpr> FoldBinaryLayer(const ParseNode& node) {
  const std::vector<ParseNode>& kids = node.children();
  if (kids.empty()) {
    return Status::Internal("empty expression layer '" + node.symbol() + "'");
  }
  SQLPL_ASSIGN_OR_RETURN(AstExpr acc, BuildValue(kids[0]));
  for (size_t i = 1; i + 1 < kids.size() + 1 && i + 1 <= kids.size();
       i += 2) {
    if (i + 1 == kids.size()) {
      return Status::Internal("dangling operator in '" + node.symbol() +
                              "'");
    }
    // kids[i] is an operator rule node (sign / mul_op / concat_op).
    std::string op = kids[i].TokenText();
    SQLPL_ASSIGN_OR_RETURN(AstExpr rhs, BuildValue(kids[i + 1]));
    acc = AstExpr::Binary(std::move(op), std::move(acc), std::move(rhs));
  }
  return acc;
}

// Generic fallback: a function-call-like AST node named after the rule,
// with every nested value_expression as an argument.
Result<AstExpr> BuildGenericCall(const ParseNode& node) {
  std::vector<AstExpr> args;
  for (const ParseNode& child : node.children()) {
    for (const ParseNode* expr : child.FindAll("value_expression")) {
      SQLPL_ASSIGN_OR_RETURN(AstExpr arg, BuildValue(*expr));
      args.push_back(std::move(arg));
      break;  // only the outermost value_expression per child
    }
  }
  return AstExpr::Call(node.symbol(), std::move(args));
}

Result<AstExpr> BuildValue(const ParseNode& node) {
  const std::string& symbol = node.symbol();

  if (node.is_leaf()) {
    if (symbol == "IDENTIFIER") return AstExpr::Column(node.token().text);
    return AstExpr::Literal(node.token().text);
  }

  if (symbol == "column_reference" || symbol == "identifier_chain" ||
      symbol == "table_name") {
    // RoutineInvocation refines column_reference with a call suffix.
    const ParseNode* suffix = node.FindFirst("routine_call_suffix");
    if (suffix != nullptr) {
      std::vector<AstExpr> args;
      for (const ParseNode* arg : suffix->FindAll("value_expression")) {
        SQLPL_ASSIGN_OR_RETURN(AstExpr built, BuildValue(*arg));
        args.push_back(std::move(built));
      }
      return AstExpr::Call(ChainText(node.children().front()),
                           std::move(args));
    }
    return AstExpr::Column(ChainText(node));
  }

  if (symbol == "unsigned_literal") return AstExpr::Literal(node.TokenText());

  if (symbol == "numeric_value_expression" || symbol == "term") {
    return FoldBinaryLayer(node);
  }

  if (symbol == "factor") {
    // [ sign ] value_primary
    if (node.NumChildren() == 2) {
      SQLPL_ASSIGN_OR_RETURN(AstExpr operand,
                             BuildValue(node.children()[1]));
      return AstExpr::Unary(node.children()[0].TokenText(),
                            std::move(operand));
    }
    return BuildValue(node.children().front());
  }

  if (symbol == "value_primary") {
    // nonparenthesized primary | ( value_expression ) | scalar_subquery
    if (node.NumChildren() == 3 && node.children()[0].is_leaf()) {
      return BuildValue(node.children()[1]);  // parenthesized
    }
    return BuildValue(node.children().front());
  }

  if (symbol == "scalar_subquery" || symbol == "subquery") {
    return AstExpr::Call("SUBQUERY", {});
  }

  if (symbol == "set_function_specification") {
    // COUNT ( * ) | general_set_function
    if (node.NumChildren() >= 1 && !node.children()[0].is_leaf()) {
      return BuildValue(node.children()[0]);
    }
    return AstExpr::Call("COUNT", {AstExpr::Star()});
  }

  if (symbol == "general_set_function") {
    std::string name = node.children().front().TokenText();
    const ParseNode* arg = node.FindFirst("value_expression");
    std::vector<AstExpr> args;
    if (arg != nullptr) {
      SQLPL_ASSIGN_OR_RETURN(AstExpr built, BuildValue(*arg));
      args.push_back(std::move(built));
    }
    return AstExpr::Call(std::move(name), std::move(args));
  }

  if (symbol == "case_expression" || symbol == "case_specification" ||
      symbol == "case_abbreviation" || symbol == "simple_case" ||
      symbol == "searched_case" || symbol == "cast_specification" ||
      symbol == "string_value_function" ||
      symbol == "datetime_value_function") {
    return BuildGenericCall(node);
  }

  // Pass-through layers (value_expression, nonparenthesized..., etc.).
  if (node.NumChildren() == 1) return BuildValue(node.children().front());
  if (node.NumChildren() >= 2) return FoldBinaryLayer(node);
  return AstExpr::Literal(node.TokenText());
}

Result<AstExpr> BuildCondition(const ParseNode& node) {
  const std::string& symbol = node.symbol();

  if (symbol == "search_condition" || symbol == "boolean_term") {
    // operand ( OR/AND operand )*
    const std::vector<ParseNode>& kids = node.children();
    SQLPL_ASSIGN_OR_RETURN(AstExpr acc, BuildCondition(kids[0]));
    for (size_t i = 1; i + 1 < kids.size(); i += 2) {
      std::string op = kids[i].token().text;
      SQLPL_ASSIGN_OR_RETURN(AstExpr rhs, BuildCondition(kids[i + 1]));
      acc = AstExpr::Binary(std::move(op), std::move(acc), std::move(rhs));
    }
    return acc;
  }

  if (symbol == "boolean_factor") {
    if (node.NumChildren() == 2) {
      SQLPL_ASSIGN_OR_RETURN(AstExpr operand,
                             BuildCondition(node.children()[1]));
      return AstExpr::Unary("NOT", std::move(operand));
    }
    return BuildCondition(node.children().front());
  }

  if (symbol == "boolean_primary") {
    if (node.NumChildren() == 3 && node.children()[0].is_leaf()) {
      return BuildCondition(node.children()[1]);  // parenthesized
    }
    return BuildCondition(node.children().front());
  }

  if (symbol == "predicate") {
    return BuildCondition(node.children().front());
  }

  if (symbol == "comparison_predicate") {
    SQLPL_ASSIGN_OR_RETURN(AstExpr lhs, BuildValue(node.children()[0]));
    std::string op = node.children()[1].TokenText();
    SQLPL_ASSIGN_OR_RETURN(AstExpr rhs, BuildValue(node.children()[2]));
    return AstExpr::Binary(std::move(op), std::move(lhs), std::move(rhs));
  }

  // Remaining predicate kinds (BETWEEN / IN / LIKE / IS NULL / EXISTS /
  // quantified): a call named after the predicate rule whose arguments
  // are the operand expressions.
  std::vector<AstExpr> args;
  for (const ParseNode& child : node.children()) {
    if (child.is_leaf()) continue;
    if (child.symbol() == "row_value_predicand" ||
        child.symbol() == "value_expression") {
      SQLPL_ASSIGN_OR_RETURN(AstExpr arg, BuildValue(child));
      args.push_back(std::move(arg));
    } else {
      for (const ParseNode* expr : child.FindAll("value_expression")) {
        SQLPL_ASSIGN_OR_RETURN(AstExpr arg, BuildValue(*expr));
        args.push_back(std::move(arg));
        break;
      }
    }
  }
  return AstExpr::Call(symbol, std::move(args));
}

}  // namespace

Result<AstExpr> BuildValueExpression(const ParseNode& node) {
  return BuildValue(node);
}

Result<AstExpr> BuildSearchCondition(const ParseNode& node) {
  return BuildCondition(node);
}

Result<SelectStatement> BuildSelectStatement(const ParseNode& root) {
  const ParseNode* query = root.FindFirst("query_specification");
  if (query == nullptr) {
    return Status::InvalidArgument(
        "parse tree holds no query_specification node");
  }

  SelectStatement statement;

  const ParseNode* quantifier = query->FindFirst("set_quantifier");
  if (quantifier != nullptr && quantifier->TokenText() == "DISTINCT") {
    statement.distinct = true;
  }

  const ParseNode* select_list = query->FindFirst("select_list");
  if (select_list == nullptr) {
    return Status::InvalidArgument("query has no select_list node");
  }
  bool star_list = false;
  for (const ParseNode& child : select_list->children()) {
    if (child.is_leaf() && child.symbol() == "ASTERISK") star_list = true;
  }
  if (star_list) {
    SelectItem item;
    item.is_star = true;
    statement.items.push_back(std::move(item));
  } else {
    for (const ParseNode* sublist : select_list->FindAll("select_sublist")) {
      const ParseNode* derived = sublist->FindFirst("derived_column");
      if (derived == nullptr) continue;
      SelectItem item;
      SQLPL_ASSIGN_OR_RETURN(item.expr,
                             BuildValue(derived->children().front()));
      const ParseNode* alias = derived->FindFirst("as_clause");
      if (alias != nullptr) {
        const std::vector<const ParseNode*> ids = alias->FindAll("IDENTIFIER");
        if (!ids.empty()) item.alias = ids.back()->token().text;
      }
      statement.items.push_back(std::move(item));
    }
  }

  const ParseNode* from = query->FindFirst("from_clause");
  if (from != nullptr) {
    for (const ParseNode* primary : from->FindAll("table_primary")) {
      TableRef ref;
      const ParseNode* name = primary->FindFirst("table_name");
      if (name != nullptr) ref.name = ChainText(*name);
      const ParseNode* correlation = primary->FindFirst("correlation_clause");
      if (correlation != nullptr) {
        const std::vector<const ParseNode*> ids =
            correlation->FindAll("IDENTIFIER");
        if (!ids.empty()) ref.alias = ids.back()->token().text;
      }
      statement.from.push_back(std::move(ref));
    }
  }

  const ParseNode* where = query->FindFirst("where_clause");
  if (where != nullptr) {
    const ParseNode* condition = where->FindFirst("search_condition");
    if (condition != nullptr) {
      SQLPL_ASSIGN_OR_RETURN(AstExpr expr, BuildCondition(*condition));
      statement.where = std::move(expr);
    }
  }

  const ParseNode* group_by = query->FindFirst("group_by_clause");
  if (group_by != nullptr) {
    for (const ParseNode* element : group_by->FindAll("column_reference")) {
      SQLPL_ASSIGN_OR_RETURN(AstExpr expr, BuildValue(*element));
      statement.group_by.push_back(std::move(expr));
    }
  }

  const ParseNode* having = query->FindFirst("having_clause");
  if (having != nullptr) {
    const ParseNode* condition = having->FindFirst("search_condition");
    if (condition != nullptr) {
      SQLPL_ASSIGN_OR_RETURN(AstExpr expr, BuildCondition(*condition));
      statement.having = std::move(expr);
    }
  }

  // ORDER BY attaches above the query specification.
  const ParseNode* order_by = root.FindFirst("order_by_clause");
  if (order_by != nullptr) {
    for (const ParseNode* sort : order_by->FindAll("sort_specification")) {
      OrderItem item;
      SQLPL_ASSIGN_OR_RETURN(item.expr, BuildValue(sort->children().front()));
      const ParseNode* ordering = sort->FindFirst("ordering_specification");
      if (ordering != nullptr && ordering->TokenText() == "DESC") {
        item.descending = true;
      }
      statement.order_by.push_back(std::move(item));
    }
  }

  return statement;
}

}  // namespace sqlpl
