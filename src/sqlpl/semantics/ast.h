#ifndef SQLPL_SEMANTICS_AST_H_
#define SQLPL_SEMANTICS_AST_H_

#include <optional>
#include <string>
#include <vector>

namespace sqlpl {

/// Kind of a typed expression node built from the CST by `AstBuilder`.
enum class AstExprKind {
  /// Possibly-qualified column reference; `value` is the dotted name.
  kColumnRef,
  /// Literal; `value` is the token text.
  kLiteral,
  /// Binary operation; `value` is the operator lexeme ("=", "AND", "+").
  kBinaryOp,
  /// Unary operation; `value` is the operator ("NOT", "-").
  kUnaryOp,
  /// Function / aggregate call; `value` is the function name.
  kFunctionCall,
  /// `*` inside COUNT(*).
  kStar,
};

/// A typed scalar or boolean expression. Value-tree, copyable.
struct AstExpr {
  AstExprKind kind = AstExprKind::kLiteral;
  std::string value;
  std::vector<AstExpr> children;

  static AstExpr Column(std::string name);
  static AstExpr Literal(std::string text);
  static AstExpr Binary(std::string op, AstExpr lhs, AstExpr rhs);
  static AstExpr Unary(std::string op, AstExpr operand);
  static AstExpr Call(std::string name, std::vector<AstExpr> args);
  static AstExpr Star();

  bool operator==(const AstExpr&) const = default;

  /// Fully parenthesized rendering, e.g. `(a + (b * c))`.
  std::string ToString() const;

  /// All column references in this expression (pre-order).
  std::vector<std::string> ReferencedColumns() const;
};

/// One entry of a select list.
struct SelectItem {
  bool is_star = false;
  AstExpr expr;
  std::string alias;  // empty if none
};

/// One table in the FROM clause.
struct TableRef {
  std::string name;
  std::string alias;  // empty if none
};

/// One ORDER BY sort key.
struct OrderItem {
  AstExpr expr;
  bool descending = false;
};

/// Typed representation of a SELECT statement over the query-core
/// features. Clauses from unselected features are simply absent, which is
/// exactly the product-line semantics: the AST of a dialect only ever
/// contains what the dialect's features can parse.
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::optional<AstExpr> where;
  std::vector<AstExpr> group_by;
  std::optional<AstExpr> having;
  std::vector<OrderItem> order_by;

  /// Canonical SQL rendering.
  std::string ToString() const;
};

}  // namespace sqlpl

#endif  // SQLPL_SEMANTICS_AST_H_
