#ifndef SQLPL_SEMANTICS_AST_BUILDER_H_
#define SQLPL_SEMANTICS_AST_BUILDER_H_

#include "sqlpl/parser/parse_tree.h"
#include "sqlpl/semantics/ast.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// Builds a typed `SelectStatement` from the CST of any dialect whose
/// features include the query core (QuerySpecification + SelectList +
/// From). Clauses contributed by unselected features are absent from the
/// CST and therefore from the AST; clauses from features outside the query
/// core (joins, windows, set operations) are ignored by this builder.
///
/// Fails if the tree holds no `query_specification` node.
Result<SelectStatement> BuildSelectStatement(const ParseNode& root);

/// Builds a typed expression from a `value_expression` (or deeper) CST
/// node. Exposed for tests and semantic-action layers.
Result<AstExpr> BuildValueExpression(const ParseNode& node);

/// Builds a boolean expression from a `search_condition` (or deeper) CST
/// node.
Result<AstExpr> BuildSearchCondition(const ParseNode& node);

}  // namespace sqlpl

#endif  // SQLPL_SEMANTICS_AST_BUILDER_H_
