#ifndef SQLPL_SEMANTICS_CATALOG_H_
#define SQLPL_SEMANTICS_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "sqlpl/util/status.h"

namespace sqlpl {

/// A minimal database catalog (schema dictionary) used by the semantic
/// validator: table names with their column lists. Names compare
/// case-insensitively, as SQL regular identifiers do.
class DbCatalog {
 public:
  /// Registers a table; fails on duplicate table names.
  Status AddTable(const std::string& table,
                  const std::vector<std::string>& columns);

  bool HasTable(const std::string& table) const;
  /// True if `table` exists and has `column`.
  bool HasColumn(const std::string& table, const std::string& column) const;
  /// Tables (any of them) defining `column`.
  std::vector<std::string> TablesWithColumn(const std::string& column) const;

  const std::vector<std::string>* ColumnsOf(const std::string& table) const;
  std::vector<std::string> TableNames() const;
  size_t NumTables() const { return tables_.size(); }

 private:
  // Uppercased table name -> uppercased column names.
  std::map<std::string, std::vector<std::string>> tables_;
  // Uppercased table name -> original spelling (for messages).
  std::map<std::string, std::string> display_;
};

}  // namespace sqlpl

#endif  // SQLPL_SEMANTICS_CATALOG_H_
