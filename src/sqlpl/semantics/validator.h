#ifndef SQLPL_SEMANTICS_VALIDATOR_H_
#define SQLPL_SEMANTICS_VALIDATOR_H_

#include <string>
#include <vector>

#include "sqlpl/parser/parse_tree.h"
#include "sqlpl/semantics/action_registry.h"
#include "sqlpl/semantics/catalog.h"

namespace sqlpl {

/// Builds the catalog-checking semantic layers: table references must
/// name catalog tables ("From" layer), column references must resolve in
/// the tables of the enclosing FROM clause ("ValueExpressions" layer).
/// The returned registry carries one layer per feature, so a dialect's
/// validator is `MakeCatalogValidator(catalog).ForFeatures(selected)` —
/// semantics composed feature-wise, mirroring grammar composition.
///
/// The `catalog` reference must outlive the registry.
ActionRegistry MakeCatalogValidator(const DbCatalog& catalog);

/// Convenience: runs the catalog validator for `features` over `tree`,
/// returning the diagnostics it produced.
Status ValidateAgainstCatalog(const DbCatalog& catalog,
                              const std::vector<std::string>& features,
                              const ParseNode& tree,
                              DiagnosticCollector* diagnostics);

}  // namespace sqlpl

#endif  // SQLPL_SEMANTICS_VALIDATOR_H_
