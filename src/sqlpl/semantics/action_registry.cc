#include "sqlpl/semantics/action_registry.h"

#include <algorithm>
#include <set>

namespace sqlpl {

void ActionRegistry::Register(std::string feature, std::string rule,
                              SemanticAction action) {
  entries_.push_back({std::move(feature), std::move(rule),
                      std::move(action)});
}

ActionRegistry ActionRegistry::ForFeatures(
    const std::vector<std::string>& features) const {
  std::set<std::string> wanted(features.begin(), features.end());
  ActionRegistry out;
  for (const Entry& entry : entries_) {
    if (wanted.contains(entry.feature)) out.entries_.push_back(entry);
  }
  return out;
}

Status ActionRegistry::Run(const ParseNode& tree,
                           SemanticContext* context) const {
  // Pre-order walk; for each rule node run its layered actions in
  // registration order.
  std::vector<const ParseNode*> stack = {&tree};
  while (!stack.empty()) {
    const ParseNode* node = stack.back();
    stack.pop_back();
    if (!node->is_leaf()) {
      for (const Entry& entry : entries_) {
        if (entry.rule == node->symbol()) entry.action(*node, context);
      }
    }
    const std::vector<ParseNode>& children = node->children();
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(&*it);
    }
  }
  if (context->diagnostics.has_errors()) {
    return Status::ConfigurationError("semantic actions reported " +
                                      std::to_string(
                                          context->diagnostics.error_count()) +
                                      " error(s)");
  }
  return Status::OK();
}

size_t ActionRegistry::NumActions() const { return entries_.size(); }

std::vector<std::string> ActionRegistry::Features() const {
  std::vector<std::string> out;
  for (const Entry& entry : entries_) {
    if (std::find(out.begin(), out.end(), entry.feature) == out.end()) {
      out.push_back(entry.feature);
    }
  }
  return out;
}

}  // namespace sqlpl
