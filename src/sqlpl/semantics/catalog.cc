#include "sqlpl/semantics/catalog.h"

#include <algorithm>

#include "sqlpl/util/strings.h"

namespace sqlpl {

Status DbCatalog::AddTable(const std::string& table,
                           const std::vector<std::string>& columns) {
  std::string key = AsciiStrToUpper(table);
  if (tables_.contains(key)) {
    return Status::AlreadyExists("table '" + table + "' already in catalog");
  }
  std::vector<std::string> upper;
  upper.reserve(columns.size());
  for (const std::string& column : columns) {
    upper.push_back(AsciiStrToUpper(column));
  }
  tables_.emplace(key, std::move(upper));
  display_.emplace(std::move(key), table);
  return Status::OK();
}

bool DbCatalog::HasTable(const std::string& table) const {
  return tables_.contains(AsciiStrToUpper(table));
}

bool DbCatalog::HasColumn(const std::string& table,
                          const std::string& column) const {
  auto it = tables_.find(AsciiStrToUpper(table));
  if (it == tables_.end()) return false;
  std::string key = AsciiStrToUpper(column);
  return std::find(it->second.begin(), it->second.end(), key) !=
         it->second.end();
}

std::vector<std::string> DbCatalog::TablesWithColumn(
    const std::string& column) const {
  std::string key = AsciiStrToUpper(column);
  std::vector<std::string> out;
  for (const auto& [table, columns] : tables_) {
    if (std::find(columns.begin(), columns.end(), key) != columns.end()) {
      out.push_back(display_.at(table));
    }
  }
  return out;
}

const std::vector<std::string>* DbCatalog::ColumnsOf(
    const std::string& table) const {
  auto it = tables_.find(AsciiStrToUpper(table));
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<std::string> DbCatalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(display_.size());
  for (const auto& [key, name] : display_) out.push_back(name);
  return out;
}

}  // namespace sqlpl
