#ifndef SQLPL_TESTING_WORKLOAD_GENERATOR_H_
#define SQLPL_TESTING_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace sqlpl {

/// Deterministic random SQL workload generator used by the benchmark
/// harness and the property tests. Generated statements stay inside the
/// CoreQuery dialect's language (select lists with arithmetic and
/// aggregates, multi-table FROM with aliases, WHERE trees, GROUP BY /
/// HAVING / ORDER BY), which is also a subset of FullFoundation and of
/// the monolithic baseline — so one batch can drive every parser.
class WorkloadGenerator {
 public:
  /// Same seed ⇒ same statement sequence.
  explicit WorkloadGenerator(uint32_t seed);

  /// One SELECT statement. `complexity` ≥ 0 scales list lengths, WHERE
  /// tree depth and the probability of optional clauses: 0 is
  /// `SELECT c FROM t`-sized, 3 is analytics-shaped, larger keeps
  /// growing linearly.
  std::string SelectStatement(int complexity);

  /// `n` statements of the given complexity.
  std::vector<std::string> Batch(size_t n, int complexity);

 private:
  std::string Identifier();
  std::string TableName();
  std::string ValueExpr(int depth);
  std::string Aggregate();
  std::string Comparison();
  std::string Condition(int depth);

  int Range(int lo, int hi);  // inclusive
  bool Chance(int percent);

  std::mt19937 rng_;
};

}  // namespace sqlpl

#endif  // SQLPL_TESTING_WORKLOAD_GENERATOR_H_
