#include "sqlpl/testing/golden_corpus.h"

namespace sqlpl {
namespace {

#include "sqlpl/testing/golden_sexpr_corpus.inc"

}  // namespace

std::span<const GoldenCase> GoldenCorpus() { return kGoldenCases; }

std::span<const GoldenCase> GoldenCorpusForDialect(
    std::string_view dialect) {
  // The .inc groups cases by dialect, so the slice is one contiguous run.
  std::span<const GoldenCase> all = GoldenCorpus();
  size_t begin = all.size();
  size_t end = all.size();
  for (size_t i = 0; i < all.size(); ++i) {
    if (dialect == all[i].dialect) {
      if (begin == all.size()) begin = i;
      end = i + 1;
    }
  }
  if (begin == all.size()) return {};
  return all.subspan(begin, end - begin);
}

}  // namespace sqlpl
