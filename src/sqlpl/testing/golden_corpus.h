#ifndef SQLPL_TESTING_GOLDEN_CORPUS_H_
#define SQLPL_TESTING_GOLDEN_CORPUS_H_

#include <span>
#include <string_view>

namespace sqlpl {

/// One frozen statement of the golden corpus: a preset dialect name, a
/// SQL statement it accepts, and the legacy engine's exact ToSExpr()
/// rendering of the resulting tree.
struct GoldenCase {
  const char* dialect;
  const char* sql;
  const char* sexpr;
};

/// The full 5-dialect corpus (golden_sexpr_corpus.inc), frozen from the
/// pre-interning engine. It pins three independent implementations to
/// the same bytes: the interned runtime engine
/// (tests/parser/golden_equivalence_test.cc), generated standalone
/// parsers (tests/integration/codegen_differential_test.cc), and
/// dlopen'ed native parsers — the native tier replays the matching
/// dialect's slice through both engines as its promotion gate
/// (docs/NATIVE_TIER.md), which is why the corpus lives in the library
/// and not under tests/.
std::span<const GoldenCase> GoldenCorpus();

/// The corpus restricted to `dialect` ("CoreQuery", "TinySQL", ...);
/// empty when the dialect has no golden coverage (the native tier
/// refuses to promote such parsers — no gate, no promotion).
std::span<const GoldenCase> GoldenCorpusForDialect(std::string_view dialect);

}  // namespace sqlpl

#endif  // SQLPL_TESTING_GOLDEN_CORPUS_H_
