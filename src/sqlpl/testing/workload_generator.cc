#include "sqlpl/testing/workload_generator.h"

namespace sqlpl {

namespace {

constexpr const char* kColumns[] = {
    "id",    "name",   "salary", "dept",   "hired", "region",
    "amount","price",  "qty",    "status", "score", "grp",
};
constexpr const char* kTables[] = {
    "emp", "dept_tbl", "sales", "orders", "items", "readings",
};
constexpr const char* kOperators[] = {"+", "-", "*", "/"};
constexpr const char* kComparators[] = {"=", "<>", "<", ">", "<=", ">="};
constexpr const char* kAggregates[] = {"COUNT", "SUM", "AVG", "MIN", "MAX"};

}  // namespace

WorkloadGenerator::WorkloadGenerator(uint32_t seed) : rng_(seed) {}

int WorkloadGenerator::Range(int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(rng_);
}

bool WorkloadGenerator::Chance(int percent) {
  return Range(1, 100) <= percent;
}

std::string WorkloadGenerator::Identifier() {
  return kColumns[static_cast<size_t>(
      Range(0, static_cast<int>(std::size(kColumns)) - 1))];
}

std::string WorkloadGenerator::TableName() {
  return kTables[static_cast<size_t>(
      Range(0, static_cast<int>(std::size(kTables)) - 1))];
}

std::string WorkloadGenerator::ValueExpr(int depth) {
  if (depth <= 0 || Chance(40)) {
    switch (Range(0, 3)) {
      case 0:
        return Identifier();
      case 1:
        return std::to_string(Range(0, 9999));
      case 2:
        return "'" + Identifier() + "'";
      default:
        return Identifier();
    }
  }
  if (Chance(20)) {
    return "(" + ValueExpr(depth - 1) + ")";
  }
  return ValueExpr(depth - 1) + " " +
         kOperators[static_cast<size_t>(
             Range(0, static_cast<int>(std::size(kOperators)) - 1))] +
         " " + ValueExpr(depth - 1);
}

std::string WorkloadGenerator::Aggregate() {
  const char* fn = kAggregates[static_cast<size_t>(
      Range(0, static_cast<int>(std::size(kAggregates)) - 1))];
  if (fn == std::string("COUNT") && Chance(50)) return "COUNT(*)";
  return std::string(fn) + "(" + Identifier() + ")";
}

std::string WorkloadGenerator::Comparison() {
  return ValueExpr(1) + " " +
         kComparators[static_cast<size_t>(
             Range(0, static_cast<int>(std::size(kComparators)) - 1))] +
         " " + ValueExpr(1);
}

std::string WorkloadGenerator::Condition(int depth) {
  if (depth <= 0 || Chance(45)) {
    std::string predicate = Comparison();
    if (Chance(10)) return "NOT (" + predicate + ")";
    return predicate;
  }
  std::string lhs = Condition(depth - 1);
  std::string rhs = Condition(depth - 1);
  const char* junction = Chance(60) ? "AND" : "OR";
  if (Chance(25)) return "(" + lhs + " " + junction + " " + rhs + ")";
  return lhs + " " + junction + " " + rhs;
}

std::string WorkloadGenerator::SelectStatement(int complexity) {
  std::string sql = "SELECT ";
  if (Chance(10 + complexity * 5)) sql += "DISTINCT ";

  bool grouped = complexity >= 1 && Chance(25 + complexity * 10);
  std::string group_column = Identifier();

  int items = Range(1, 1 + complexity * 2);
  for (int i = 0; i < items; ++i) {
    if (i > 0) sql += ", ";
    if (grouped) {
      sql += (i == 0) ? group_column : Aggregate();
    } else if (complexity >= 1 && Chance(20)) {
      sql += Aggregate();
      grouped = grouped || true;  // aggregates imply a grouped query shape
      if (i == 0) group_column.clear();
    } else {
      sql += ValueExpr(complexity >= 2 ? 2 : 1);
      if (Chance(15 + complexity * 5)) sql += " AS a" + std::to_string(i);
    }
  }

  int tables = Range(1, complexity >= 2 ? 2 : 1);
  sql += " FROM ";
  for (int i = 0; i < tables; ++i) {
    if (i > 0) sql += ", ";
    sql += TableName();
    if (Chance(20 + complexity * 5)) sql += " t" + std::to_string(i);
  }

  if (Chance(45 + complexity * 10)) {
    sql += " WHERE " + Condition(complexity >= 1 ? complexity : 0);
  }
  if (grouped && !group_column.empty()) {
    sql += " GROUP BY " + group_column;
    if (Chance(25 + complexity * 10)) {
      sql += " HAVING " + Aggregate() + " > " + std::to_string(Range(0, 99));
    }
  }
  if (Chance(20 + complexity * 10)) {
    sql += " ORDER BY " + Identifier();
    if (Chance(40)) sql += Chance(50) ? " DESC" : " ASC";
  }
  return sql;
}

std::vector<std::string> WorkloadGenerator::Batch(size_t n, int complexity) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(SelectStatement(complexity));
  return out;
}

}  // namespace sqlpl
