#ifndef SQLPL_NET_SHARD_EXECUTOR_H_
#define SQLPL_NET_SHARD_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sqlpl/obs/metrics.h"
#include "sqlpl/service/thread_pool.h"
#include "sqlpl/util/status.h"

namespace sqlpl {
namespace net {

/// Tuning of a `ShardExecutor` (the sharded server's worker tier).
struct ShardExecutorOptions {
  size_t num_shards = 1;
  size_t workers_per_shard = 1;
  /// Per-shard queue bound; 0 = unbounded. On a full queue the
  /// `overflow` policy decides: `kReject` fails the submit with
  /// `kResourceExhausted` (the server turns that into a decodable
  /// refusal frame), `kBlock` waits for room.
  size_t queue_depth = 0;
  OverflowPolicy overflow = OverflowPolicy::kReject;
  /// Bounded work stealing: an idle shard's worker takes ONE task from
  /// the back of a sibling's queue (oldest-first victims, one task per
  /// theft) instead of sleeping, so a skewed connection distribution
  /// cannot strand cores while one shard's queue grows.
  bool enable_stealing = true;
  /// How long an idle worker dozes between steal scans.
  std::chrono::microseconds steal_interval{200};
};

/// Sharded task executor: one bounded FIFO queue per shard, each with
/// its own workers, plus bounded work stealing between shards. This
/// replaces the single shared `ThreadPool` of the pre-sharding server —
/// the shared pool's one mutex was every loop's rendezvous point; here
/// the common case (loop i submits to shard i) touches only shard i's
/// lock, and cross-shard traffic exists only when stealing actually
/// happens.
///
/// Thread-safe; `Submit` may be called from any thread. Tasks of one
/// shard start in FIFO order (stealing may complete them out of order
/// relative to the victim's own workers — same guarantee a shared pool
/// gives, which is none).
class ShardExecutor {
 public:
  /// `registry` (optional) receives per-shard instruments:
  /// `sqlpl_net_shard_tasks_total`, `sqlpl_net_shard_steals_total`,
  /// `sqlpl_net_shard_rejects_total`, `sqlpl_net_shard_queue_depth`,
  /// each labelled `{shard="<index>"}`.
  explicit ShardExecutor(ShardExecutorOptions options,
                         obs::MetricsRegistry* registry = nullptr);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  /// Enqueues `task` on `shard` (modulo the shard count). Fails
  /// `kResourceExhausted` under `kReject` overflow on a full queue and
  /// `kUnavailable` after `Shutdown`.
  Status Submit(size_t shard, std::function<void()> task);

  /// Drains every queue (workers finish what is enqueued; no new
  /// submits are accepted) and joins all workers. Idempotent.
  void Shutdown();

  size_t num_shards() const { return shards_.size(); }
  /// Total tasks stolen across shards since construction (tests).
  uint64_t steals() const;
  /// Total tasks executed (run to completion) since construction.
  uint64_t tasks_completed() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    /// Signalled on pops under `kBlock` overflow so blocked submitters
    /// retry.
    std::condition_variable space_cv;
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    obs::Counter* tasks_total = nullptr;
    obs::Counter* steals_total = nullptr;
    obs::Counter* rejects_total = nullptr;
    obs::Gauge* depth = nullptr;
  };

  void WorkerLoop(size_t shard_index);
  /// Takes one task from the back of some other shard's queue;
  /// `thief` gets the steal credited. Returns false when every sibling
  /// is empty.
  bool TrySteal(size_t thief, std::function<void()>* out);

  ShardExecutorOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> completed_{0};
  std::mutex shutdown_mu_;
  bool shut_down_ = false;
};

}  // namespace net
}  // namespace sqlpl

#endif  // SQLPL_NET_SHARD_EXECUTOR_H_
