#ifndef SQLPL_NET_EVENT_BACKEND_H_
#define SQLPL_NET_EVENT_BACKEND_H_

#include <cstdint>
#include <memory>
#include <span>

#include "sqlpl/util/status.h"

namespace sqlpl {
namespace net {

/// Which readiness mechanism backs an event loop. The enum is the
/// public seam of the sharded server (`ServerOptions::backend`): an
/// io_uring implementation can be added here without touching the
/// server's loop code or breaking the API again.
enum class EventBackendKind : uint8_t {
  kEpoll = 0,
  // kIoUring = 1,  // reserved; see docs/NETWORK.md "The EventBackend
  //                // seam" before claiming the value.
};

/// One readiness notification out of `EventBackend::Wait`. `wake` marks
/// the backend's internal cross-thread wakeup (no fd of the caller's);
/// the caller then drains its own pending-work queues.
struct ReadyEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Peer hangup or socket error folded in with readability — reads
  /// observe the condition (EOF / errno) exactly as with raw epoll.
  bool wake = false;
};

/// Readiness-notification interface of one event loop (one instance per
/// loop thread; `Wait` is called only by that thread, `Wake` by any).
///
/// The contract mirrors what the server needs and nothing more:
///   - `Add`/`Modify` arm edge-triggered interest for data sockets and
///     level-triggered interest for listeners (`edge = false`);
///   - `Wait` blocks until readiness or `Wake`, translating the
///     backend's native events into `ReadyEvent`s, wakeup included —
///     the eventfd (or its io_uring equivalent) is an implementation
///     detail the loop never sees;
///   - `Wake` is async-signal-unsafe but thread-safe and cheap.
class EventBackend {
 public:
  virtual ~EventBackend() = default;

  virtual Status Init() = 0;
  virtual Status Add(int fd, bool readable, bool writable, bool edge) = 0;
  virtual Status Modify(int fd, bool readable, bool writable, bool edge) = 0;
  virtual void Remove(int fd) = 0;

  /// Blocks up to `timeout_ms` (-1 = forever) and fills `out` with
  /// ready events. Returns the number filled, 0 on timeout, or -1 on a
  /// non-EINTR failure (the loop exits).
  virtual int Wait(std::span<ReadyEvent> out, int timeout_ms) = 0;

  /// Makes a concurrent or future `Wait` return with a `wake` event.
  virtual void Wake() = 0;
};

/// Factory for `ServerOptions::backend`. Never returns null for a known
/// kind; unknown kinds fail `kUnimplemented`.
Result<std::unique_ptr<EventBackend>> MakeEventBackend(EventBackendKind kind);

}  // namespace net
}  // namespace sqlpl

#endif  // SQLPL_NET_EVENT_BACKEND_H_
