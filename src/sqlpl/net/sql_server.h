#ifndef SQLPL_NET_SQL_SERVER_H_
#define SQLPL_NET_SQL_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sqlpl/fm/variant_catalog.h"
#include "sqlpl/net/http_sideband.h"
#include "sqlpl/net/wire.h"
#include "sqlpl/service/dialect_service.h"
#include "sqlpl/service/thread_pool.h"
#include "sqlpl/util/cancellation.h"

namespace sqlpl {
namespace net {

struct SqlServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with `port()`.
  uint16_t port = 0;
  /// Event-loop (I/O) threads. Loop 0 additionally owns the acceptor.
  size_t num_event_loops = 2;
  /// Worker threads running the actual parses, so a slow build or a
  /// long statement never stalls frame I/O for other connections.
  size_t num_workers = 4;
  /// Protocol limit on one frame's payload; a peer declaring more is
  /// disconnected (see wire.h).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-connection write backpressure: above `write_backpressure_bytes`
  /// of unflushed response bytes the server stops *reading* from that
  /// connection (so a slow reader throttles its own request stream);
  /// above `write_buffer_limit` it is forcibly disconnected instead of
  /// buffering without bound.
  size_t write_backpressure_bytes = 256 * 1024;
  size_t write_buffer_limit = 4 * 1024 * 1024;
  /// Graceful-drain budget of `Stop()`: how long in-flight requests may
  /// run before the server cancels them via its `CancelSource`.
  std::chrono::milliseconds drain_deadline{2000};
  /// HTTP/1.0 sideband serving `GET /metrics`, `GET /healthz`, and the
  /// observability endpoints (`/debug/flight`, `/debug/flight/last`,
  /// `/debug/exemplars`, `/trace?ms=N` — docs/OBSERVABILITY.md).
  /// Disabled by default; when enabled, port 0 binds ephemerally (read
  /// back with `metrics_port()`).
  bool enable_metrics_sideband = false;
  uint16_t metrics_port = 0;
  /// Flight-recorder anomaly dumps: a parse request whose server
  /// turnaround exceeds this many microseconds triggers a dump of the
  /// recorder (retrievable via `LastFlightDump()` / `GET
  /// /debug/flight/last`). 0 disables the slow trigger; failed requests
  /// always trigger. Dumps are rate-limited to one per
  /// `flight_dump_interval`.
  uint64_t flight_dump_slow_micros = 0;
  std::chrono::milliseconds flight_dump_interval{1000};
};

/// The network front-end of a `DialectService` (docs/NETWORK.md): a
/// non-blocking epoll listener speaking the length-prefixed framed
/// protocol of wire.h.
///
/// ## Architecture
///
///   - One acceptor (on event loop 0) distributes connections
///     round-robin over `num_event_loops` epoll loops (edge-triggered).
///   - Event loops only move bytes and split frames; every decoded
///     `ParseRequest` frame is handed to a worker pool that runs the
///     PR 3 request lifecycle (`DialectService::Parse`) and enqueues
///     the encoded response back on the connection.
///   - The client's `deadline_ms` budget becomes an absolute `Deadline`
///     at frame receipt and propagates through admission, cache
///     resolution, and the parse loops; admission sheds come back as
///     `kResourceExhausted` frames, lifecycle expiries as
///     `kDeadlineExceeded`.
///
/// ## Graceful drain
///
/// `Stop()` (or SIGTERM via `InstallSigtermStop`) flips the server into
/// draining: the listener closes, `/healthz` turns 503, new frames are
/// refused with `kUnavailable`, and in-flight requests get
/// `drain_deadline` to finish before the server-wide `CancelSource`
/// cancels them. Event-loop and worker threads are joined before
/// `Stop()` returns.
///
/// All per-connection/per-frame instruments (`sqlpl_net_*`) land in the
/// service's metrics registry, so one `/metrics` exposition covers the
/// wire, the service, the cache, and the pool.
class SqlServer {
 public:
  /// `service` must outlive the server.
  SqlServer(DialectService* service, SqlServerOptions options = {});
  ~SqlServer();

  SqlServer(const SqlServer&) = delete;
  SqlServer& operator=(const SqlServer&) = delete;

  /// Binds, listens, and starts the event-loop and worker threads.
  Status Start();

  /// Graceful drain (see class comment). Idempotent; blocks until all
  /// threads are joined.
  void Stop();

  /// Installs a process-wide SIGTERM handler that `Stop()`s this
  /// server (one server per process; passing nullptr uninstalls).
  /// The handler only sets a flag — the drain itself runs on a
  /// dedicated thread the flag wakes, keeping the signal context
  /// async-signal-safe.
  static void InstallSigtermStop(SqlServer* server);

  /// The bound data port; 0 before `Start`.
  uint16_t port() const { return port_; }
  /// The bound sideband port; 0 when the sideband is disabled.
  uint16_t metrics_port() const;

  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Currently open data connections (the `sqlpl_net_connections`
  /// gauge; exposed directly for tests).
  int64_t open_connections() const;

  /// The variant catalog served by `ListCatalog` frames. Built at
  /// `Start()` from the preset dialects; its entries preload the
  /// fingerprint registry, so clients can parse by a catalog
  /// fingerprint without ever sending a spec.
  const fm::VariantCatalog& catalog() const { return catalog_; }

  const SqlServerOptions& options() const { return options_; }

  /// The most recent anomaly-triggered flight-recorder dump (Chrome
  /// trace JSON), or empty when no request has tripped a trigger yet.
  /// Also served as `GET /debug/flight/last` on the sideband.
  std::string LastFlightDump() const;

 private:
  struct Connection;
  struct EventLoop;

  void RunLoop(EventLoop* loop);
  void AcceptAll(EventLoop* loop);
  void RegisterConnection(EventLoop* loop,
                          const std::shared_ptr<Connection>& conn);
  void HandleReadable(EventLoop* loop, const std::shared_ptr<Connection>& conn);
  void HandleWritable(EventLoop* loop, const std::shared_ptr<Connection>& conn);
  void ProcessInput(EventLoop* loop, const std::shared_ptr<Connection>& conn);
  /// Decodes one frame payload and hands the work to a worker. Returns
  /// false when the payload was malformed (decode error counted and
  /// refused; the caller closes the connection).
  bool DecodeAndDispatch(const std::shared_ptr<Connection>& conn,
                         std::span<const uint8_t> payload);
  /// `received_at_micros`/`decode_micros` are the trace-clock receipt
  /// stamp and measured frame-decode duration — the first two entries
  /// of the response's per-stage timing breakdown.
  void DispatchFrame(const std::shared_ptr<Connection>& conn,
                     WireParseRequest request, uint64_t received_at_micros,
                     uint64_t decode_micros);
  /// Shared worker handoff with in-flight accounting: runs `job` on the
  /// pool, refusing with `refuse_type` when the pool is stopping.
  void DispatchJob(const std::shared_ptr<Connection>& conn,
                   uint64_t request_id, WireType refuse_type,
                   std::function<void()> job);
  void HandleRequest(const std::shared_ptr<Connection>& conn,
                     const WireParseRequest& request, Deadline deadline,
                     uint64_t received_at_micros, uint64_t decode_micros);
  /// Anomaly trigger for the flight recorder: a failed request, or one
  /// slower than `flight_dump_slow_micros`, snapshots the recorder into
  /// `last_flight_dump_` (rate-limited by `flight_dump_interval`).
  void MaybeDumpFlight(StatusCode status, uint64_t turnaround_micros);
  void HandleValidate(const std::shared_ptr<Connection>& conn,
                      const WireValidateRequest& request,
                      std::chrono::steady_clock::time_point received_at);
  void HandleComplete(const std::shared_ptr<Connection>& conn,
                      const WireCompleteRequest& request,
                      std::chrono::steady_clock::time_point received_at);
  void HandleCatalog(const std::shared_ptr<Connection>& conn,
                     const WireCatalogRequest& request,
                     std::chrono::steady_clock::time_point received_at);
  /// Remembers `spec` under its fingerprint and returns that
  /// fingerprint, so follow-up requests can go fingerprint-only.
  uint64_t RegisterSpec(const DialectSpec& spec);
  void QueueResponse(const std::shared_ptr<Connection>& conn,
                     const WireParseResponse& response);
  /// Enqueues one already-encoded frame on the connection (flush,
  /// backpressure, overflow policy).
  void QueueFrame(const std::shared_ptr<Connection>& conn,
                  const std::string& frame);
  void CloseConnection(EventLoop* loop, const std::shared_ptr<Connection>& conn);
  void HandleWakeup(EventLoop* loop);
  void WakeLoop(EventLoop* loop);

  /// Helpers over the connection's `mu`-guarded output side; all three
  /// require `conn->mu` to be held.
  static void UpdateInterestLocked(Connection* conn);
  static size_t PendingOutLocked(const Connection* conn);
  /// Writes as much pending output as the socket takes right now;
  /// returns false when the connection is dead.
  bool FlushLocked(Connection* conn);

  /// Sends `status` as a response frame of `response_type` for
  /// `request_id` (the decode path's error/refusal answer; does not
  /// count as an in-flight request). The response type mirrors the
  /// refused request's type so the client-side decoder still matches.
  void RefuseFrame(const std::shared_ptr<Connection>& conn,
                   uint64_t request_id, const Status& status,
                   WireType response_type = WireType::kParseResponse);

  DialectService* service_;
  SqlServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::unique_ptr<ThreadPool> workers_;
  std::unique_ptr<HttpSideband> sideband_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_loops_{false};
  std::atomic<size_t> next_loop_{0};
  CancelSource drain_cancel_;

  /// In-flight wire requests (dispatched to a worker, response not yet
  /// enqueued) — what `Stop()` waits on.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  size_t inflight_ = 0;

  /// Fingerprint -> spec registry: every inline spec a client sends is
  /// remembered so later requests can carry the 8-byte fingerprint
  /// instead.
  std::mutex specs_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const DialectSpec>> specs_;

  /// Precomputed popular-variant catalog (immutable after `Start()`).
  fm::VariantCatalog catalog_;

  /// Serializes Stop() callers.
  std::mutex stop_mu_;

  // Instruments, resolved once against service_->metrics().
  obs::Gauge* connections_gauge_;
  obs::Counter* connections_total_;
  obs::Counter* bytes_in_;
  obs::Counter* bytes_out_;
  obs::Counter* frames_in_;
  obs::Counter* frames_out_;
  obs::Counter* decode_errors_;
  obs::Counter* draining_refusals_;
  obs::Counter* backpressure_pauses_;
  obs::Counter* overflow_disconnects_;
  obs::Counter* unavailable_total_;
  obs::Histogram* request_latency_;
  /// Anomaly-dump counters, split by trigger (`reason="slow"|"error"`).
  obs::Counter* flight_dumps_slow_;
  obs::Counter* flight_dumps_error_;

  /// Last anomaly dump + its trace-clock timestamp (the rate limiter).
  mutable std::mutex flight_dump_mu_;
  std::string last_flight_dump_;
  std::atomic<uint64_t> last_flight_dump_micros_{0};
};

}  // namespace net
}  // namespace sqlpl

#endif  // SQLPL_NET_SQL_SERVER_H_
