#ifndef SQLPL_NET_SQL_SERVER_H_
#define SQLPL_NET_SQL_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sqlpl/fm/variant_catalog.h"
#include "sqlpl/net/event_backend.h"
#include "sqlpl/net/http_sideband.h"
#include "sqlpl/net/shard_executor.h"
#include "sqlpl/net/wire.h"
#include "sqlpl/service/dialect_service.h"
#include "sqlpl/service/thread_pool.h"
#include "sqlpl/util/cancellation.h"

namespace sqlpl {
namespace net {

/// How incoming connections are spread over the event loops.
enum class AcceptorStrategy : uint8_t {
  /// One `SO_REUSEPORT` listener per loop: the kernel load-balances
  /// connections across acceptors, every accept lands on the loop that
  /// will own the connection, and no cross-thread handoff or shared
  /// acceptor lock exists on the accept path. The default.
  kReusePort = 0,
  /// The pre-sharding topology: a single listener on loop 0 whose
  /// acceptor hands connections round-robin to the other loops. Kept
  /// for kernels/filesystems where `SO_REUSEPORT` is unavailable and
  /// for A/B comparison.
  kRoundRobin = 1,
};

/// Configuration of the sharded wire runtime. (The pre-sharding
/// `SqlServerOptions` struct and its constructor shim were removed one
/// release after the sharded API shipped, as announced; the old
/// topology remains expressible — `AcceptorStrategy::kRoundRobin` plus
/// `num_loops`/`workers_per_shard` — for callers that relied on it.)
struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with `port()`.
  uint16_t port = 0;

  // --- topology ----------------------------------------------------
  /// Event loops == shards. Each loop owns its connections, its
  /// acceptor (under `kReusePort`), and a worker shard.
  size_t num_loops = 2;
  AcceptorStrategy acceptor = AcceptorStrategy::kReusePort;
  /// Readiness mechanism behind every loop (the io_uring seam).
  EventBackendKind backend = EventBackendKind::kEpoll;

  // --- worker shards -----------------------------------------------
  /// Workers attached to each loop's shard.
  size_t workers_per_shard = 2;
  /// Per-shard task-queue bound (0 = unbounded) and full-queue policy;
  /// `kReject` refuses the frame with `kResourceExhausted`.
  size_t shard_queue_depth = 0;
  OverflowPolicy shard_overflow = OverflowPolicy::kReject;
  /// Idle shard workers steal one task at a time from sibling queues.
  bool enable_work_stealing = true;

  // --- framing / batching ------------------------------------------
  /// Parse frames drained from one connection's readable bytes are
  /// decoded and dispatched as ONE shard task of up to this many
  /// requests, and their responses are enqueued in one buffer
  /// operation — the syscall and handoff amortization that makes
  /// pipelined clients cheap. 1 disables batching.
  size_t max_batch_frames = 64;
  /// Protocol limit on one frame's payload; a peer declaring more is
  /// disconnected (see wire.h).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;

  // --- backpressure ------------------------------------------------
  /// Above `write_backpressure_bytes` of unflushed response bytes the
  /// server stops *reading* from that connection (a slow reader
  /// throttles its own request stream); above `write_buffer_limit` it
  /// is disconnected instead of buffered without bound.
  size_t write_backpressure_bytes = 256 * 1024;
  size_t write_buffer_limit = 4 * 1024 * 1024;

  // --- lifecycle / observability -----------------------------------
  /// Graceful-drain budget of `Stop()`: how long in-flight requests may
  /// run before the server cancels them via its `CancelSource`.
  std::chrono::milliseconds drain_deadline{2000};
  /// HTTP/1.0 sideband serving `GET /metrics`, `GET /healthz`, and the
  /// observability endpoints (`/debug/flight`, `/debug/flight/last`,
  /// `/debug/exemplars`, `/trace?ms=N` — docs/OBSERVABILITY.md).
  /// Disabled by default; when enabled, port 0 binds ephemerally (read
  /// back with `metrics_port()`).
  bool enable_metrics_sideband = false;
  uint16_t metrics_port = 0;
  /// Flight-recorder anomaly dumps: a parse request whose server
  /// turnaround exceeds this many microseconds triggers a dump of the
  /// recorder (retrievable via `LastFlightDump()` / `GET
  /// /debug/flight/last`). 0 disables the slow trigger; failed requests
  /// always trigger. Dumps are rate-limited to one per
  /// `flight_dump_interval`.
  uint64_t flight_dump_slow_micros = 0;
  std::chrono::milliseconds flight_dump_interval{1000};
};

/// The network front-end of a `DialectService` (docs/NETWORK.md): a
/// sharded, non-blocking runtime speaking the length-prefixed framed
/// protocol of wire.h.
///
/// ## Architecture (sharded runtime)
///
///   - `num_loops` event loops, each behind an `EventBackend` (epoll
///     today). Under `AcceptorStrategy::kReusePort` every loop owns a
///     `SO_REUSEPORT` listener on the shared port, so accepted
///     connections are kernel-balanced and never cross threads.
///   - Loops drain a readable connection's bytes, split frames, and
///     decode up to `max_batch_frames` parse requests into ONE task for
///     the loop's worker shard (`ShardExecutor`); responses come back
///     as a batch too, enqueued under one lock and flushed with
///     `writev`.
///   - Shard workers run the request lifecycle
///     (`DialectService::Parse`); idle shards steal single tasks from
///     busy siblings, bounding skew without a shared pool lock.
///   - The client's `deadline_ms` budget becomes an absolute `Deadline`
///     at frame receipt and propagates through admission, cache
///     resolution, and the parse loops; admission sheds come back as
///     `kResourceExhausted` frames, lifecycle expiries as
///     `kDeadlineExceeded`.
///
/// ## Graceful drain
///
/// `Stop()` (or SIGTERM via `InstallSigtermStop`) flips the server into
/// draining: the listeners close, `/healthz` turns 503, new frames are
/// refused with `kUnavailable`, and in-flight requests get
/// `drain_deadline` to finish before the server-wide `CancelSource`
/// cancels them. Event-loop and shard-worker threads are joined before
/// `Stop()` returns.
///
/// All per-connection/per-frame instruments (`sqlpl_net_*`, including
/// the per-loop `{loop=N}` and per-shard `{shard=N}` series) land in
/// the service's metrics registry, so one `/metrics` exposition covers
/// the wire, the service, the cache, and the shards.
class SqlServer {
 public:
  /// `service` must outlive the server.
  SqlServer(DialectService* service, ServerOptions options = {});
  ~SqlServer();

  SqlServer(const SqlServer&) = delete;
  SqlServer& operator=(const SqlServer&) = delete;

  /// Binds the listener(s), and starts the event loops and shards.
  Status Start();

  /// Graceful drain (see class comment). Idempotent; blocks until all
  /// threads are joined.
  void Stop();

  /// Installs a process-wide SIGTERM handler that `Stop()`s this
  /// server (one server per process; passing nullptr uninstalls).
  /// The handler only sets a flag — the drain itself runs on a
  /// dedicated thread the flag wakes, keeping the signal context
  /// async-signal-safe.
  static void InstallSigtermStop(SqlServer* server);

  /// The bound data port; 0 before `Start`.
  uint16_t port() const { return port_; }
  /// The bound sideband port; 0 when the sideband is disabled.
  uint16_t metrics_port() const;

  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Currently open data connections (the `sqlpl_net_connections`
  /// gauge; exposed directly for tests).
  int64_t open_connections() const;

  /// Open connections owned by loop `i` (the per-loop gauge; lets
  /// tests assert the acceptor actually distributed load).
  int64_t loop_connections(size_t i) const;

  /// The worker tier (per-shard queue/steal counters; tests).
  const ShardExecutor* shards() const { return shards_.get(); }

  /// The variant catalog served by `ListCatalog` frames. Built at
  /// `Start()` from the preset dialects; its entries preload the
  /// fingerprint registry, so clients can parse by a catalog
  /// fingerprint without ever sending a spec.
  const fm::VariantCatalog& catalog() const { return catalog_; }

  const ServerOptions& options() const { return options_; }

  /// The most recent anomaly-triggered flight-recorder dump (Chrome
  /// trace JSON), or empty when no request has tripped a trigger yet.
  /// Also served as `GET /debug/flight/last` on the sideband.
  std::string LastFlightDump() const;

 private:
  struct Connection;
  struct EventLoop;
  /// One decoded parse frame awaiting its shard, with the stage-clock
  /// stamps taken on the loop thread.
  struct PendingParse {
    WireParseRequest request;
    /// The client's `deadline_ms` budget, made absolute at frame
    /// receipt.
    Deadline deadline = Deadline::Never();
    uint64_t received_at_micros = 0;
    uint64_t decode_micros = 0;
  };
  struct ParseOutcome;

  void RunLoop(EventLoop* loop);
  void AcceptAll(EventLoop* loop);
  void RegisterConnection(EventLoop* loop,
                          const std::shared_ptr<Connection>& conn);
  void HandleReadable(EventLoop* loop, const std::shared_ptr<Connection>& conn);
  void HandleWritable(EventLoop* loop, const std::shared_ptr<Connection>& conn);
  void ProcessInput(EventLoop* loop, const std::shared_ptr<Connection>& conn);
  /// Decodes one non-parse frame payload and hands the work to the
  /// loop's shard; parse frames are appended to `batch` instead (the
  /// caller dispatches them in groups). Returns false when the payload
  /// was malformed (decode error counted and refused; the caller closes
  /// the connection).
  bool DecodeFrame(const std::shared_ptr<Connection>& conn,
                   std::span<const uint8_t> payload,
                   std::vector<PendingParse>* batch);
  /// Submits one shard task that builds every response of `batch` and
  /// enqueues them as a unit.
  void DispatchParseBatch(const std::shared_ptr<Connection>& conn,
                          std::vector<PendingParse> batch);
  /// Shared shard handoff with in-flight accounting: runs `job` on the
  /// connection's shard, refusing with `refuse_type` when the shard
  /// refuses (stopping or full queue).
  void DispatchJob(const std::shared_ptr<Connection>& conn,
                   uint64_t request_id, WireType refuse_type,
                   std::function<void()> job);
  /// Shard-side body of a parse batch: builds every response, enqueues
  /// the frames as a unit, and flight-records the write stage.
  void RunParseBatch(const std::shared_ptr<Connection>& conn,
                     std::vector<PendingParse>& batch);
  /// Builds (and flight-records) one parse response frame.
  ParseOutcome BuildParseResponse(const std::shared_ptr<Connection>& conn,
                                  const PendingParse& item);
  /// Emits the per-stage flight-recorder events of one parse request.
  void RecordParseStages(uint64_t trace_id, uint64_t request_id,
                         uint16_t loop_id, StatusCode status,
                         uint64_t received_at_micros, uint64_t decode_micros,
                         uint64_t queue_micros, uint64_t handled_at,
                         uint64_t admission_micros, uint64_t parse_micros,
                         uint64_t service_done, uint64_t render_micros,
                         uint64_t render_done, uint64_t encode_micros);
  /// Anomaly trigger for the flight recorder: a failed request, or one
  /// slower than `flight_dump_slow_micros`, snapshots the recorder into
  /// `last_flight_dump_` (rate-limited by `flight_dump_interval`).
  void MaybeDumpFlight(StatusCode status, uint64_t turnaround_micros);
  void HandleValidate(const std::shared_ptr<Connection>& conn,
                      const WireValidateRequest& request,
                      std::chrono::steady_clock::time_point received_at);
  void HandleComplete(const std::shared_ptr<Connection>& conn,
                      const WireCompleteRequest& request,
                      std::chrono::steady_clock::time_point received_at);
  void HandleCatalog(const std::shared_ptr<Connection>& conn,
                     const WireCatalogRequest& request,
                     std::chrono::steady_clock::time_point received_at);
  /// Runs one execute request end to end on a worker shard: dialect
  /// resolution, service `ExecuteQuery` (admission, lowering, the
  /// vectorized run), response encode, flight-recorder request event.
  void HandleExecute(const std::shared_ptr<Connection>& conn,
                     const WireExecuteRequest& request,
                     std::chrono::steady_clock::time_point received_at);
  /// Remembers `spec` under its fingerprint and returns that
  /// fingerprint, so follow-up requests can go fingerprint-only.
  uint64_t RegisterSpec(const DialectSpec& spec);
  /// Enqueues already-encoded frames on the connection under one lock
  /// acquisition (flush, backpressure, overflow policy). `frames` is a
  /// span so a batch of responses pays the lock/flush path once.
  void QueueFrames(const std::shared_ptr<Connection>& conn,
                   std::span<std::string> frames);
  void QueueFrame(const std::shared_ptr<Connection>& conn, std::string frame);
  void CloseConnection(EventLoop* loop, const std::shared_ptr<Connection>& conn);
  void HandleWakeup(EventLoop* loop);
  void WakeLoop(EventLoop* loop);

  /// Helpers over the connection's `mu`-guarded output side; all three
  /// require `conn->mu` to be held.
  static void UpdateInterestLocked(Connection* conn);
  static size_t PendingOutLocked(const Connection* conn);
  /// Writes as much pending output as the socket takes right now
  /// (`writev` over the queued frames); returns false when the
  /// connection is dead.
  bool FlushLocked(Connection* conn);

  /// Sends `status` as a response frame of `response_type` for
  /// `request_id` (the decode path's error/refusal answer; does not
  /// count as an in-flight request). The response type mirrors the
  /// refused request's type so the client-side decoder still matches.
  void RefuseFrame(const std::shared_ptr<Connection>& conn,
                   uint64_t request_id, const Status& status,
                   WireType response_type = WireType::kParseResponse);

  DialectService* service_;
  ServerOptions options_;

  uint16_t port_ = 0;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::unique_ptr<ShardExecutor> shards_;
  std::unique_ptr<HttpSideband> sideband_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_loops_{false};
  /// Round-robin cursor (AcceptorStrategy::kRoundRobin only).
  std::atomic<size_t> next_loop_{0};
  CancelSource drain_cancel_;

  /// In-flight shard tasks (dispatched, responses not yet enqueued) —
  /// what `Stop()` waits on. A batch counts once.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  size_t inflight_ = 0;

  /// Fingerprint -> spec registry: every inline spec a client sends is
  /// remembered so later requests can carry the 8-byte fingerprint
  /// instead.
  std::mutex specs_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const DialectSpec>> specs_;

  /// Precomputed popular-variant catalog (immutable after `Start()`).
  fm::VariantCatalog catalog_;

  /// Serializes Stop() callers.
  std::mutex stop_mu_;

  // Instruments, resolved once against service_->metrics().
  obs::Gauge* connections_gauge_;
  obs::Counter* connections_total_;
  obs::Counter* bytes_in_;
  obs::Counter* bytes_out_;
  obs::Counter* frames_in_;
  obs::Counter* frames_out_;
  obs::Counter* decode_errors_;
  obs::Counter* draining_refusals_;
  obs::Counter* backpressure_pauses_;
  obs::Counter* overflow_disconnects_;
  obs::Counter* unavailable_total_;
  obs::Histogram* request_latency_;
  /// Anomaly-dump counters, split by trigger (`reason="slow"|"error"`).
  obs::Counter* flight_dumps_slow_;
  obs::Counter* flight_dumps_error_;

  /// Last anomaly dump + its trace-clock timestamp (the rate limiter).
  mutable std::mutex flight_dump_mu_;
  std::string last_flight_dump_;
  std::atomic<uint64_t> last_flight_dump_micros_{0};
};

}  // namespace net
}  // namespace sqlpl

#endif  // SQLPL_NET_SQL_SERVER_H_
