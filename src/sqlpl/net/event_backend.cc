#include "sqlpl/net/event_backend.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <string>

#include "sqlpl/net/socket_util.h"

namespace sqlpl {
namespace net {

namespace {

/// The production backend: epoll + an eventfd for `Wake`. Wakeup drain
/// happens inside `Wait`, so callers only ever see the translated
/// `ReadyEvent::wake` marker.
class EpollBackend : public EventBackend {
 public:
  ~EpollBackend() override {
    CloseFd(wake_fd_);
    CloseFd(epoll_fd_);
  }

  Status Init() override {
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (epoll_fd_ < 0 || wake_fd_ < 0) {
      return Status::Internal(std::string("epoll/eventfd creation failed: ") +
                              strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
    return Status::OK();
  }

  Status Add(int fd, bool readable, bool writable, bool edge) override {
    return Control(EPOLL_CTL_ADD, fd, readable, writable, edge);
  }

  Status Modify(int fd, bool readable, bool writable, bool edge) override {
    return Control(EPOLL_CTL_MOD, fd, readable, writable, edge);
  }

  void Remove(int fd) override {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  int Wait(std::span<ReadyEvent> out, int timeout_ms) override {
    if (out.empty()) return 0;
    constexpr int kMaxBatch = 64;
    epoll_event events[kMaxBatch];
    int want = static_cast<int>(std::min(out.size(), size_t{kMaxBatch}));
    int n = epoll_wait(epoll_fd_, events, want, timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    int filled = 0;
    for (int i = 0; i < n; ++i) {
      ReadyEvent& ready = out[static_cast<size_t>(filled)];
      ready = ReadyEvent{};
      if (events[i].data.fd == wake_fd_) {
        uint64_t drained;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        ready.wake = true;
        ++filled;
        continue;
      }
      ready.fd = events[i].data.fd;
      ready.writable = (events[i].events & EPOLLOUT) != 0;
      // Hangups and errors surface as readability: the subsequent read
      // observes the EOF or the errno, exactly as the pre-seam loop did.
      ready.readable =
          (events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) !=
          0;
      ++filled;
    }
    return filled;
  }

  void Wake() override {
    uint64_t one = 1;
    ssize_t ignored = write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }

 private:
  Status Control(int op, int fd, bool readable, bool writable, bool edge) {
    epoll_event ev{};
    if (edge) ev.events |= EPOLLET | EPOLLRDHUP;
    if (readable) ev.events |= EPOLLIN;
    if (writable) ev.events |= EPOLLOUT;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, op, fd, &ev) != 0) {
      return Status::Internal(std::string("epoll_ctl: ") + strerror(errno));
    }
    return Status::OK();
  }

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
};

}  // namespace

Result<std::unique_ptr<EventBackend>> MakeEventBackend(EventBackendKind kind) {
  switch (kind) {
    case EventBackendKind::kEpoll:
      return std::unique_ptr<EventBackend>(new EpollBackend());
  }
  return Status::Unimplemented("unknown EventBackendKind");
}

}  // namespace net
}  // namespace sqlpl
