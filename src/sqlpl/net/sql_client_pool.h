#ifndef SQLPL_NET_SQL_CLIENT_POOL_H_
#define SQLPL_NET_SQL_CLIENT_POOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sqlpl/net/wire.h"
#include "sqlpl/util/cancellation.h"

namespace sqlpl {
namespace net {

/// Tuning of a `SqlClientPool`.
struct SqlClientPoolOptions {
  /// TCP connections the pool opens. Under a `kReusePort` server each
  /// connection lands (kernel-balanced) on some event loop, so a pool
  /// with several connections exercises several shards at once.
  size_t num_connections = 4;
  /// Submit refuses (`kResourceExhausted`) once this many requests are
  /// outstanding across the pool (0 = unbounded).
  size_t max_inflight = 0;
};

/// Multi-connection asynchronous client for the `SqlServer` wire
/// protocol: the completion-oriented counterpart of `SqlClient`'s
/// one-call-at-a-time API.
///
///   - `Submit` frames a parse request, corks it into the send buffer
///     of the least-loaded connection, and returns its request id as a
///     completion ticket — no syscall, no waiting.
///   - `Poll` flushes every corked buffer and collects response frames
///     from all connections until at least one completion is available
///     (or `wait` expires), so a caller keeps N requests in flight with
///     a plain submit/poll loop.
///
/// Completions arrive in server order per connection and interleaved
/// across connections — match `request_id` against your tickets.
///
/// Not thread-safe: one pool per thread, like `SqlClient` (the
/// multi-threaded benchmark drives one pool per client thread).
class SqlClientPool {
 public:
  explicit SqlClientPool(SqlClientPoolOptions options = {});
  ~SqlClientPool();

  SqlClientPool(const SqlClientPool&) = delete;
  SqlClientPool& operator=(const SqlClientPool&) = delete;

  /// Opens all `num_connections` connections. Fails atomically: on any
  /// connect error the already-open connections are closed again.
  Status Connect(const std::string& address, uint16_t port);
  void Close();
  bool connected() const { return !conns_.empty(); }

  /// Queues `request` on the connection with the fewest outstanding
  /// requests and returns the assigned request id. Zero `request_id` /
  /// `trace.trace_id` fields are auto-stamped exactly like
  /// `SqlClient::Send`. The frame is only buffered — `Poll` (or
  /// `Flush`) moves it to the wire.
  Result<uint64_t> Submit(WireParseRequest request);

  /// Writes every corked send buffer to its socket. `Poll` calls this
  /// first; explicit use is only needed to push requests out without
  /// waiting for completions.
  Status Flush();

  /// Flushes, then waits (bounded by `wait`) until at least one
  /// response is available, appending ALL currently-decodable responses
  /// to `*out`. Returns `kDeadlineExceeded` when `wait` expires with
  /// nothing decoded, and `kFailedPrecondition` when nothing is
  /// outstanding.
  Status Poll(std::vector<WireParseResponse>* out,
              Deadline wait = Deadline::Never());

  /// Requests submitted but not yet returned by `Poll`.
  size_t outstanding() const { return outstanding_; }

 private:
  struct Conn {
    int fd = -1;
    /// Corked, already-framed requests awaiting `Flush`.
    std::string out;
    /// Receive buffer + consumed-prefix offset.
    std::vector<uint8_t> in;
    size_t in_off = 0;
    size_t outstanding = 0;
  };

  /// Decodes every complete frame buffered on `conn` into `*out`.
  Status DrainDecoded(Conn* conn, std::vector<WireParseResponse>* out);

  SqlClientPoolOptions options_;
  std::vector<Conn> conns_;
  uint64_t next_request_id_ = 1;
  uint64_t trace_seed_ = 0;
  size_t outstanding_ = 0;
};

}  // namespace net
}  // namespace sqlpl

#endif  // SQLPL_NET_SQL_CLIENT_POOL_H_
