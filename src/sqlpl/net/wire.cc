#include "sqlpl/net/wire.h"

#include <algorithm>
#include <cstring>

namespace sqlpl {
namespace net {

namespace {

// --- little-endian primitive writers -------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

// Identifier-sized string: uint16 length prefix.
void PutStr16(std::string* out, std::string_view s) {
  PutU16(out, static_cast<uint16_t>(s.size()));
  out->append(s.data(), s.size());
}

// Text-sized string: uint32 length prefix.
void PutStr32(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

// --- bounds-checked reader -----------------------------------------

/// Cursor over a payload. Every getter fails sticky (`ok()` false) on
/// underrun instead of reading past the end, so decode functions check
/// once at the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return data_[pos_++];
  }
  uint16_t U16() {
    if (!Need(2)) return 0;
    uint16_t v = static_cast<uint16_t>(data_[pos_]) |
                 static_cast<uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  std::string Str16() { return Str(U16()); }
  std::string Str32() { return Str(U32()); }

  /// Advances past `n` bytes without materializing them (unknown
  /// extension payloads). Sticky-fails on underrun like the getters.
  void Skip(size_t n) {
    if (Need(n)) pos_ += n;
  }

  /// Bytes not yet consumed.
  size_t Remaining() const { return ok_ ? data_.size() - pos_ : 0; }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  std::string Str(size_t n) {
    if (!Need(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

constexpr uint8_t kFlagWantTree = 1 << 0;
constexpr uint8_t kFlagHasSpec = 1 << 1;

// Bound sanity limits on repeated-field counts; a spec with thousands
// of features is a protocol violation, not a dialect.
constexpr size_t kMaxSpecEntries = 4096;
// A minimal conflict can never exceed the catalog size; anything bigger
// is malformed.
constexpr size_t kMaxConflictItems = 4096;
constexpr size_t kMaxCatalogEntries = 1024;

void PutSpec(std::string* out, const DialectSpec& spec) {
  PutStr16(out, spec.name);
  PutU16(out, static_cast<uint16_t>(spec.features.size()));
  for (const std::string& feature : spec.features) PutStr16(out, feature);
  PutU16(out, static_cast<uint16_t>(spec.counts.size()));
  for (const auto& [feature, count] : spec.counts) {
    PutStr16(out, feature);
    PutU32(out, static_cast<uint32_t>(count));
  }
  PutStr16(out, spec.start_symbol);
}

bool ReadSpec(ByteReader* reader, DialectSpec* spec) {
  spec->name = reader->Str16();
  size_t n_features = reader->U16();
  if (n_features > kMaxSpecEntries) return false;
  spec->features.clear();
  spec->features.reserve(n_features);
  for (size_t i = 0; i < n_features && reader->ok(); ++i) {
    spec->features.push_back(reader->Str16());
  }
  size_t n_counts = reader->U16();
  if (n_counts > kMaxSpecEntries) return false;
  spec->counts.clear();
  for (size_t i = 0; i < n_counts && reader->ok(); ++i) {
    std::string feature = reader->Str16();
    int count = static_cast<int>(reader->U32());
    spec->counts[std::move(feature)] = count;
  }
  spec->start_symbol = reader->Str16();
  return reader->ok();
}

void PutConflict(std::string* out, const WireConflict& conflict) {
  PutU16(out, static_cast<uint16_t>(conflict.items.size()));
  for (const WireConflictItem& item : conflict.items) {
    PutStr16(out, item.feature);
    PutU8(out, item.selected ? 1 : 0);
  }
  PutStr32(out, conflict.reason);
}

bool ReadConflict(ByteReader* reader, WireConflict* conflict) {
  size_t n_items = reader->U16();
  if (n_items > kMaxConflictItems) return false;
  conflict->items.clear();
  conflict->items.reserve(n_items);
  for (size_t i = 0; i < n_items && reader->ok(); ++i) {
    WireConflictItem item;
    item.feature = reader->Str16();
    item.selected = reader->U8() != 0;
    conflict->items.push_back(std::move(item));
  }
  conflict->reason = reader->Str32();
  return reader->ok();
}

// --- parse-frame extension block (wire.h top comment) ---------------

// Extension tags, per direction. Append-only.
constexpr uint8_t kExtTraceContext = 1;  // request: trace_id, span_id
constexpr uint8_t kExtTraceEcho = 1;     // response: trace_id
constexpr uint8_t kExtStageTable = 2;    // response: stage timings

// Appends one `tag | u16 len | body` extension.
void PutExtension(std::string* out, uint8_t tag, const std::string& body) {
  PutU8(out, tag);
  PutU16(out, static_cast<uint16_t>(body.size()));
  out->append(body);
}

// Decodes the optional trailing extension block of a ParseRequest.
// An exhausted reader is the pre-extension format (fine). Known tags
// tolerate extra appended bytes (a newer peer may have extended them);
// unknown tags are skipped whole. Returns false on structural
// malformation; truncation sticky-fails the reader for the caller's
// shared check.
bool ReadRequestExtensions(ByteReader* reader, WireParseRequest* out) {
  if (reader->AtEnd()) return true;
  size_t n = reader->U8();
  for (size_t i = 0; i < n && reader->ok(); ++i) {
    uint8_t tag = reader->U8();
    size_t len = reader->U16();
    switch (tag) {
      case kExtTraceContext:
        if (len < 16) return false;
        out->trace.trace_id = reader->U64();
        out->trace.span_id = reader->U64();
        reader->Skip(len - 16);
        break;
      default:
        reader->Skip(len);
    }
  }
  return reader->ok();
}

// ParseResponse counterpart of `ReadRequestExtensions`.
bool ReadResponseExtensions(ByteReader* reader, WireParseResponse* out) {
  if (reader->AtEnd()) return true;
  size_t n = reader->U8();
  for (size_t i = 0; i < n && reader->ok(); ++i) {
    uint8_t tag = reader->U8();
    size_t len = reader->U16();
    switch (tag) {
      case kExtTraceEcho:
        if (len < 8) return false;
        out->trace_id = reader->U64();
        reader->Skip(len - 8);
        break;
      case kExtStageTable: {
        if (len < 1) return false;
        size_t count = reader->U8();
        if (len < 1 + count * 5) return false;
        out->stages.clear();
        out->stages.reserve(count);
        for (size_t j = 0; j < count && reader->ok(); ++j) {
          WireStageTiming timing;
          timing.stage = reader->U8();
          timing.micros = reader->U32();
          out->stages.push_back(timing);
        }
        reader->Skip(len - 1 - count * 5);
        break;
      }
      default:
        reader->Skip(len);
    }
  }
  return reader->ok();
}

/// Checks the leading type byte of a payload against `want`.
Status ExpectType(ByteReader* reader, WireType want, const char* what) {
  uint8_t type = reader->U8();
  if (type != static_cast<uint8_t>(want)) {
    return Status::InvalidArgument("unexpected message type " +
                                   std::to_string(type) + " (want " + what +
                                   ")");
  }
  return Status::OK();
}

/// Shared trailer: sticky-fail and trailing-garbage checks.
Status FinishDecode(const ByteReader& reader, const char* what) {
  if (!reader.ok()) {
    return Status::InvalidArgument(std::string("truncated ") + what +
                                   " payload");
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(std::string("trailing bytes after ") +
                                   what);
  }
  return Status::OK();
}

}  // namespace

const char* WireStageName(uint8_t stage) {
  switch (static_cast<WireStage>(stage)) {
    case WireStage::kDecode: return "decode";
    case WireStage::kQueue: return "queue";
    case WireStage::kAdmission: return "admission";
    case WireStage::kParse: return "parse";
    case WireStage::kRender: return "render";
    case WireStage::kEncode: return "encode";
    case WireStage::kWrite: return "write";
    case WireStage::kExec: return "exec";
  }
  return "unknown";
}

uint8_t StatusCodeToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 1;
    case StatusCode::kNotFound: return 2;
    case StatusCode::kAlreadyExists: return 3;
    case StatusCode::kFailedPrecondition: return 4;
    case StatusCode::kOutOfRange: return 5;
    case StatusCode::kUnimplemented: return 6;
    case StatusCode::kInternal: return 7;
    case StatusCode::kParseError: return 8;
    case StatusCode::kCompositionError: return 9;
    case StatusCode::kConfigurationError: return 10;
    case StatusCode::kDeadlineExceeded: return 11;
    case StatusCode::kCancelled: return 12;
    case StatusCode::kResourceExhausted: return 13;
    case StatusCode::kUnavailable: return 14;
    case StatusCode::kInvalidConfig: return 15;
    case StatusCode::kFeatureUnsupported: return 16;
  }
  return 7;  // kInternal
}

StatusCode StatusCodeFromWire(uint8_t wire) {
  switch (wire) {
    case 0: return StatusCode::kOk;
    case 1: return StatusCode::kInvalidArgument;
    case 2: return StatusCode::kNotFound;
    case 3: return StatusCode::kAlreadyExists;
    case 4: return StatusCode::kFailedPrecondition;
    case 5: return StatusCode::kOutOfRange;
    case 6: return StatusCode::kUnimplemented;
    case 7: return StatusCode::kInternal;
    case 8: return StatusCode::kParseError;
    case 9: return StatusCode::kCompositionError;
    case 10: return StatusCode::kConfigurationError;
    case 11: return StatusCode::kDeadlineExceeded;
    case 12: return StatusCode::kCancelled;
    case 13: return StatusCode::kResourceExhausted;
    case 14: return StatusCode::kUnavailable;
    case 15: return StatusCode::kInvalidConfig;
    case 16: return StatusCode::kFeatureUnsupported;
    default: return StatusCode::kInternal;
  }
}

void EncodeRequestFrame(const WireParseRequest& request, std::string* out) {
  std::string payload;
  payload.reserve(64 + request.sql.size());
  PutU8(&payload, static_cast<uint8_t>(WireType::kParseRequest));
  PutU64(&payload, request.request_id);
  uint8_t flags = 0;
  if (request.want_tree) flags |= kFlagWantTree;
  if (request.has_spec) flags |= kFlagHasSpec;
  PutU8(&payload, flags);
  PutU32(&payload, request.deadline_ms);
  PutU64(&payload, request.fingerprint);
  if (request.has_spec) PutSpec(&payload, request.spec);
  PutStr32(&payload, request.sql);
  // Untraced requests carry no extension block at all, keeping them
  // byte-identical to the pre-extension encoding (golden-tested).
  if (request.trace.traced()) {
    PutU8(&payload, 1);  // ext_count
    std::string ext;
    PutU64(&ext, request.trace.trace_id);
    PutU64(&ext, request.trace.span_id);
    PutExtension(&payload, kExtTraceContext, ext);
  }

  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

void EncodeResponseFrame(const WireParseResponse& response, std::string* out) {
  std::string payload;
  payload.reserve(40 + response.body.size());
  PutU8(&payload, static_cast<uint8_t>(WireType::kParseResponse));
  PutU64(&payload, response.request_id);
  PutU8(&payload, StatusCodeToWire(response.status));
  PutU8(&payload, static_cast<uint8_t>(response.cache_disposition));
  PutU32(&payload, response.parse_micros);
  PutU32(&payload, response.total_micros);
  PutU32(&payload, response.server_micros);
  PutU64(&payload, response.fingerprint);
  PutStr32(&payload, response.body);
  size_t n_stages = std::min(response.stages.size(), size_t{255});
  uint8_t ext_count = (response.trace_id != 0 ? 1 : 0) + (n_stages > 0 ? 1 : 0);
  if (ext_count > 0) {
    PutU8(&payload, ext_count);
    if (response.trace_id != 0) {
      std::string ext;
      PutU64(&ext, response.trace_id);
      PutExtension(&payload, kExtTraceEcho, ext);
    }
    if (n_stages > 0) {
      std::string ext;
      PutU8(&ext, static_cast<uint8_t>(n_stages));
      for (size_t i = 0; i < n_stages; ++i) {
        PutU8(&ext, response.stages[i].stage);
        PutU32(&ext, response.stages[i].micros);
      }
      PutExtension(&payload, kExtStageTable, ext);
    }
  }

  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

void PatchServerMicros(std::string* frame, size_t frame_off,
                       uint32_t server_micros) {
  size_t at = frame_off + kServerMicrosFrameOffset;
  if (at + 4 > frame->size()) return;
  for (int i = 0; i < 4; ++i) {
    (*frame)[at + static_cast<size_t>(i)] =
        static_cast<char>(server_micros >> (8 * i));
  }
}

Result<size_t> CompleteFrameSize(std::span<const uint8_t> buffer,
                                 size_t max_frame_bytes) {
  if (buffer.size() < kFrameHeaderBytes) return size_t{0};
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(buffer[i]) << (8 * i);
  }
  if (payload_len > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload_len) +
        " bytes exceeds the " + std::to_string(max_frame_bytes) +
        "-byte frame limit");
  }
  size_t total = kFrameHeaderBytes + payload_len;
  if (buffer.size() < total) return size_t{0};
  return total;
}

uint8_t PayloadType(std::span<const uint8_t> payload) {
  return payload.empty() ? 0 : payload[0];
}

Status DecodeRequestPayload(std::span<const uint8_t> payload,
                            WireParseRequest* out) {
  ByteReader reader(payload);
  uint8_t type = reader.U8();
  if (type != static_cast<uint8_t>(WireType::kParseRequest)) {
    return Status::InvalidArgument("unexpected message type " +
                                   std::to_string(type) +
                                   " (want ParseRequest)");
  }
  out->request_id = reader.U64();
  uint8_t flags = reader.U8();
  out->want_tree = (flags & kFlagWantTree) != 0;
  out->has_spec = (flags & kFlagHasSpec) != 0;
  out->deadline_ms = reader.U32();
  out->fingerprint = reader.U64();
  if (out->has_spec) {
    if (!ReadSpec(&reader, &out->spec)) {
      return Status::InvalidArgument("malformed dialect spec in request");
    }
  } else {
    out->spec = DialectSpec{};
  }
  out->sql = reader.Str32();
  out->trace = TraceContext{};
  if (!ReadRequestExtensions(&reader, out)) {
    return Status::InvalidArgument(
        "malformed extension block in ParseRequest");
  }
  if (!reader.ok()) {
    return Status::InvalidArgument("truncated ParseRequest payload");
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after ParseRequest");
  }
  return Status::OK();
}

Status DecodeResponsePayload(std::span<const uint8_t> payload,
                             WireParseResponse* out) {
  ByteReader reader(payload);
  uint8_t type = reader.U8();
  if (type != static_cast<uint8_t>(WireType::kParseResponse)) {
    return Status::InvalidArgument("unexpected message type " +
                                   std::to_string(type) +
                                   " (want ParseResponse)");
  }
  out->request_id = reader.U64();
  out->status = StatusCodeFromWire(reader.U8());
  uint8_t disposition = reader.U8();
  out->cache_disposition =
      disposition <= static_cast<uint8_t>(CacheDisposition::kNative)
          ? static_cast<CacheDisposition>(disposition)
          : CacheDisposition::kUnresolved;
  out->parse_micros = reader.U32();
  out->total_micros = reader.U32();
  out->server_micros = reader.U32();
  out->fingerprint = reader.U64();
  out->body = reader.Str32();
  out->trace_id = 0;
  out->stages.clear();
  if (!ReadResponseExtensions(&reader, out)) {
    return Status::InvalidArgument(
        "malformed extension block in ParseResponse");
  }
  if (!reader.ok()) {
    return Status::InvalidArgument("truncated ParseResponse payload");
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after ParseResponse");
  }
  return Status::OK();
}

// --- configurator negotiation frames -------------------------------

void EncodeValidateRequestFrame(const WireValidateRequest& request,
                                std::string* out) {
  std::string payload;
  payload.reserve(64);
  PutU8(&payload, static_cast<uint8_t>(WireType::kValidateSpecRequest));
  PutU64(&payload, request.request_id);
  PutSpec(&payload, request.spec);

  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

Status DecodeValidateRequestPayload(std::span<const uint8_t> payload,
                                    WireValidateRequest* out) {
  ByteReader reader(payload);
  SQLPL_RETURN_IF_ERROR(ExpectType(&reader, WireType::kValidateSpecRequest,
                                   "ValidateSpecRequest"));
  out->request_id = reader.U64();
  if (!ReadSpec(&reader, &out->spec)) {
    return Status::InvalidArgument("malformed dialect spec in request");
  }
  return FinishDecode(reader, "ValidateSpecRequest");
}

void EncodeValidateResponseFrame(const WireValidateResponse& response,
                                 std::string* out) {
  std::string payload;
  payload.reserve(64 + response.message.size());
  PutU8(&payload, static_cast<uint8_t>(WireType::kValidateSpecResponse));
  PutU64(&payload, response.request_id);
  PutU8(&payload, StatusCodeToWire(response.status));
  PutU64(&payload, response.fingerprint);
  PutConflict(&payload, response.conflict);
  PutStr32(&payload, response.message);

  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

Status DecodeValidateResponsePayload(std::span<const uint8_t> payload,
                                     WireValidateResponse* out) {
  ByteReader reader(payload);
  SQLPL_RETURN_IF_ERROR(ExpectType(&reader, WireType::kValidateSpecResponse,
                                   "ValidateSpecResponse"));
  out->request_id = reader.U64();
  out->status = StatusCodeFromWire(reader.U8());
  out->fingerprint = reader.U64();
  if (!ReadConflict(&reader, &out->conflict)) {
    return Status::InvalidArgument("malformed conflict in response");
  }
  out->message = reader.Str32();
  return FinishDecode(reader, "ValidateSpecResponse");
}

void EncodeCompleteRequestFrame(const WireCompleteRequest& request,
                                std::string* out) {
  std::string payload;
  payload.reserve(64);
  PutU8(&payload, static_cast<uint8_t>(WireType::kCompleteSpecRequest));
  PutU64(&payload, request.request_id);
  PutSpec(&payload, request.spec);

  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

Status DecodeCompleteRequestPayload(std::span<const uint8_t> payload,
                                    WireCompleteRequest* out) {
  ByteReader reader(payload);
  SQLPL_RETURN_IF_ERROR(ExpectType(&reader, WireType::kCompleteSpecRequest,
                                   "CompleteSpecRequest"));
  out->request_id = reader.U64();
  if (!ReadSpec(&reader, &out->spec)) {
    return Status::InvalidArgument("malformed dialect spec in request");
  }
  return FinishDecode(reader, "CompleteSpecRequest");
}

void EncodeCompleteResponseFrame(const WireCompleteResponse& response,
                                 std::string* out) {
  std::string payload;
  payload.reserve(96 + response.message.size());
  PutU8(&payload, static_cast<uint8_t>(WireType::kCompleteSpecResponse));
  PutU64(&payload, response.request_id);
  PutU8(&payload, StatusCodeToWire(response.status));
  PutU8(&payload, response.has_spec ? 1 : 0);
  if (response.has_spec) PutSpec(&payload, response.spec);
  PutU64(&payload, response.fingerprint);
  PutConflict(&payload, response.conflict);
  PutStr32(&payload, response.message);

  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

Status DecodeCompleteResponsePayload(std::span<const uint8_t> payload,
                                     WireCompleteResponse* out) {
  ByteReader reader(payload);
  SQLPL_RETURN_IF_ERROR(ExpectType(&reader, WireType::kCompleteSpecResponse,
                                   "CompleteSpecResponse"));
  out->request_id = reader.U64();
  out->status = StatusCodeFromWire(reader.U8());
  out->has_spec = reader.U8() != 0;
  if (out->has_spec) {
    if (!ReadSpec(&reader, &out->spec)) {
      return Status::InvalidArgument("malformed dialect spec in response");
    }
  } else {
    out->spec = DialectSpec{};
  }
  out->fingerprint = reader.U64();
  if (!ReadConflict(&reader, &out->conflict)) {
    return Status::InvalidArgument("malformed conflict in response");
  }
  out->message = reader.Str32();
  return FinishDecode(reader, "CompleteSpecResponse");
}

void EncodeCatalogRequestFrame(const WireCatalogRequest& request,
                               std::string* out) {
  std::string payload;
  payload.reserve(16);
  PutU8(&payload, static_cast<uint8_t>(WireType::kListCatalogRequest));
  PutU64(&payload, request.request_id);

  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

Status DecodeCatalogRequestPayload(std::span<const uint8_t> payload,
                                   WireCatalogRequest* out) {
  ByteReader reader(payload);
  SQLPL_RETURN_IF_ERROR(ExpectType(&reader, WireType::kListCatalogRequest,
                                   "ListCatalogRequest"));
  out->request_id = reader.U64();
  return FinishDecode(reader, "ListCatalogRequest");
}

void EncodeCatalogResponseFrame(const WireCatalogResponse& response,
                                std::string* out) {
  std::string payload;
  payload.reserve(64 + response.entries.size() * 64);
  PutU8(&payload, static_cast<uint8_t>(WireType::kListCatalogResponse));
  PutU64(&payload, response.request_id);
  PutU8(&payload, StatusCodeToWire(response.status));
  PutU16(&payload, static_cast<uint16_t>(response.entries.size()));
  for (const WireCatalogEntry& entry : response.entries) {
    PutU64(&payload, entry.fingerprint);
    PutStr16(&payload, entry.name);
    PutU16(&payload, static_cast<uint16_t>(entry.features.size()));
    for (const std::string& feature : entry.features) {
      PutStr16(&payload, feature);
    }
  }
  PutStr32(&payload, response.message);

  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

Status DecodeCatalogResponsePayload(std::span<const uint8_t> payload,
                                    WireCatalogResponse* out) {
  ByteReader reader(payload);
  SQLPL_RETURN_IF_ERROR(ExpectType(&reader, WireType::kListCatalogResponse,
                                   "ListCatalogResponse"));
  out->request_id = reader.U64();
  out->status = StatusCodeFromWire(reader.U8());
  size_t n_entries = reader.U16();
  if (n_entries > kMaxCatalogEntries) {
    return Status::InvalidArgument("catalog entry count exceeds limit");
  }
  out->entries.clear();
  out->entries.reserve(n_entries);
  for (size_t i = 0; i < n_entries && reader.ok(); ++i) {
    WireCatalogEntry entry;
    entry.fingerprint = reader.U64();
    entry.name = reader.Str16();
    size_t n_features = reader.U16();
    if (n_features > kMaxSpecEntries) {
      return Status::InvalidArgument("catalog entry feature count exceeds limit");
    }
    entry.features.reserve(n_features);
    for (size_t j = 0; j < n_features && reader.ok(); ++j) {
      entry.features.push_back(reader.Str16());
    }
    out->entries.push_back(std::move(entry));
  }
  out->message = reader.Str32();
  return FinishDecode(reader, "ListCatalogResponse");
}

// --- execute frames (types 9 and 10, docs/EXECUTION.md) --------------

namespace {

// Result schemas are select lists, not spec tables; anything past this
// is malformed.
constexpr size_t kMaxResultColumns = 256;

bool ReadExecuteRequestExtensions(ByteReader* reader,
                                  WireExecuteRequest* out) {
  if (reader->AtEnd()) return true;
  size_t n = reader->U8();
  for (size_t i = 0; i < n && reader->ok(); ++i) {
    uint8_t tag = reader->U8();
    size_t len = reader->U16();
    switch (tag) {
      case kExtTraceContext:
        if (len < 16) return false;
        out->trace.trace_id = reader->U64();
        out->trace.span_id = reader->U64();
        reader->Skip(len - 16);
        break;
      default:
        reader->Skip(len);
    }
  }
  return reader->ok();
}

bool ReadExecuteResponseExtensions(ByteReader* reader,
                                   WireExecuteResponse* out) {
  if (reader->AtEnd()) return true;
  size_t n = reader->U8();
  for (size_t i = 0; i < n && reader->ok(); ++i) {
    uint8_t tag = reader->U8();
    size_t len = reader->U16();
    switch (tag) {
      case kExtTraceEcho:
        if (len < 8) return false;
        out->trace_id = reader->U64();
        reader->Skip(len - 8);
        break;
      case kExtStageTable: {
        if (len < 1) return false;
        size_t count = reader->U8();
        if (len < 1 + count * 5) return false;
        out->stages.clear();
        out->stages.reserve(count);
        for (size_t j = 0; j < count && reader->ok(); ++j) {
          WireStageTiming timing;
          timing.stage = reader->U8();
          timing.micros = reader->U32();
          out->stages.push_back(timing);
        }
        reader->Skip(len - 1 - count * 5);
        break;
      }
      default:
        reader->Skip(len);
    }
  }
  return reader->ok();
}

void PutRowBatch(std::string* out, const exec::RowBatch& batch) {
  PutU32(out, static_cast<uint32_t>(batch.num_rows));
  for (const exec::Column& column : batch.columns) {
    switch (column.type) {
      case exec::ColumnType::kInt64:
        for (size_t i = 0; i < batch.num_rows; ++i) {
          PutU64(out, static_cast<uint64_t>(column.i64[i]));
        }
        break;
      case exec::ColumnType::kDouble:
        for (size_t i = 0; i < batch.num_rows; ++i) {
          uint64_t bits = 0;
          std::memcpy(&bits, &column.f64[i], sizeof(bits));
          PutU64(out, bits);
        }
        break;
      case exec::ColumnType::kString:
        for (size_t i = 0; i < batch.num_rows; ++i) {
          PutStr16(out, column.str[i]);
        }
        break;
    }
  }
}

bool ReadRowBatch(ByteReader* reader,
                  const std::vector<exec::ColumnType>& types,
                  exec::RowBatch* batch) {
  size_t rows = reader->U32();
  // Coarse bound: every row costs at least two bytes per column, so a
  // row count beyond the remaining payload is malformed, not a reason
  // to preallocate gigabytes.
  if (rows > reader->Remaining()) return false;
  batch->num_rows = rows;
  batch->columns.resize(types.size());
  for (size_t c = 0; c < types.size(); ++c) {
    exec::Column& column = batch->columns[c];
    column.type = types[c];
    switch (types[c]) {
      case exec::ColumnType::kInt64:
        column.i64.resize(rows);
        for (size_t i = 0; i < rows && reader->ok(); ++i) {
          column.i64[i] = static_cast<int64_t>(reader->U64());
        }
        break;
      case exec::ColumnType::kDouble:
        column.f64.resize(rows);
        for (size_t i = 0; i < rows && reader->ok(); ++i) {
          uint64_t bits = reader->U64();
          std::memcpy(&column.f64[i], &bits, sizeof(bits));
        }
        break;
      case exec::ColumnType::kString:
        column.str.resize(rows);
        for (size_t i = 0; i < rows && reader->ok(); ++i) {
          column.str[i] = reader->Str16();
        }
        break;
    }
  }
  return reader->ok();
}

}  // namespace

void EncodeExecuteRequestFrame(const WireExecuteRequest& request,
                               std::string* out) {
  std::string payload;
  payload.reserve(64 + request.sql.size());
  PutU8(&payload, static_cast<uint8_t>(WireType::kExecuteRequest));
  PutU64(&payload, request.request_id);
  uint8_t flags = 0;
  if (request.has_spec) flags |= kFlagHasSpec;
  PutU8(&payload, flags);
  PutU32(&payload, request.deadline_ms);
  PutU64(&payload, request.fingerprint);
  if (request.has_spec) PutSpec(&payload, request.spec);
  PutStr32(&payload, request.sql);
  PutU64(&payload, request.max_rows);
  if (request.trace.traced()) {
    PutU8(&payload, 1);  // ext_count
    std::string ext;
    PutU64(&ext, request.trace.trace_id);
    PutU64(&ext, request.trace.span_id);
    PutExtension(&payload, kExtTraceContext, ext);
  }

  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

Status DecodeExecuteRequestPayload(std::span<const uint8_t> payload,
                                   WireExecuteRequest* out) {
  ByteReader reader(payload);
  SQLPL_RETURN_IF_ERROR(
      ExpectType(&reader, WireType::kExecuteRequest, "ExecuteRequest"));
  out->request_id = reader.U64();
  uint8_t flags = reader.U8();
  out->has_spec = (flags & kFlagHasSpec) != 0;
  out->deadline_ms = reader.U32();
  out->fingerprint = reader.U64();
  if (out->has_spec) {
    if (!ReadSpec(&reader, &out->spec)) {
      return Status::InvalidArgument("malformed dialect spec in request");
    }
  } else {
    out->spec = DialectSpec{};
  }
  out->sql = reader.Str32();
  out->max_rows = reader.U64();
  out->trace = TraceContext{};
  if (!ReadExecuteRequestExtensions(&reader, out)) {
    return Status::InvalidArgument(
        "malformed extension block in ExecuteRequest");
  }
  return FinishDecode(reader, "ExecuteRequest");
}

void EncodeExecuteResponseFrame(const WireExecuteResponse& response,
                                std::string* out) {
  std::string payload;
  payload.reserve(96 + response.message.size() +
                  static_cast<size_t>(response.num_rows) * 8);
  PutU8(&payload, static_cast<uint8_t>(WireType::kExecuteResponse));
  PutU64(&payload, response.request_id);
  PutU8(&payload, StatusCodeToWire(response.status));
  PutU8(&payload, static_cast<uint8_t>(response.cache_disposition));
  PutU32(&payload, response.lower_micros);
  PutU32(&payload, response.exec_micros);
  PutU32(&payload, response.total_micros);
  PutU32(&payload, response.server_micros);
  PutU64(&payload, response.fingerprint);
  PutU64(&payload, response.num_rows);
  PutU8(&payload, response.truncated ? 1 : 0);
  PutStr32(&payload, response.message);
  PutU16(&payload, static_cast<uint16_t>(response.column_names.size()));
  for (size_t i = 0; i < response.column_names.size(); ++i) {
    PutStr16(&payload, response.column_names[i]);
    PutU8(&payload, static_cast<uint8_t>(response.column_types[i]));
  }
  PutU32(&payload, static_cast<uint32_t>(response.batches.size()));
  for (const exec::RowBatch& batch : response.batches) {
    PutRowBatch(&payload, batch);
  }
  size_t n_stages = std::min(response.stages.size(), size_t{255});
  uint8_t ext_count = (response.trace_id != 0 ? 1 : 0) + (n_stages > 0 ? 1 : 0);
  if (ext_count > 0) {
    PutU8(&payload, ext_count);
    if (response.trace_id != 0) {
      std::string ext;
      PutU64(&ext, response.trace_id);
      PutExtension(&payload, kExtTraceEcho, ext);
    }
    if (n_stages > 0) {
      std::string ext;
      PutU8(&ext, static_cast<uint8_t>(n_stages));
      for (size_t i = 0; i < n_stages; ++i) {
        PutU8(&ext, response.stages[i].stage);
        PutU32(&ext, response.stages[i].micros);
      }
      PutExtension(&payload, kExtStageTable, ext);
    }
  }

  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

Status DecodeExecuteResponsePayload(std::span<const uint8_t> payload,
                                    WireExecuteResponse* out) {
  ByteReader reader(payload);
  SQLPL_RETURN_IF_ERROR(
      ExpectType(&reader, WireType::kExecuteResponse, "ExecuteResponse"));
  out->request_id = reader.U64();
  out->status = StatusCodeFromWire(reader.U8());
  out->cache_disposition = static_cast<CacheDisposition>(reader.U8());
  out->lower_micros = reader.U32();
  out->exec_micros = reader.U32();
  out->total_micros = reader.U32();
  out->server_micros = reader.U32();
  out->fingerprint = reader.U64();
  out->num_rows = reader.U64();
  out->truncated = reader.U8() != 0;
  out->message = reader.Str32();
  size_t n_cols = reader.U16();
  if (n_cols > kMaxResultColumns) {
    return Status::InvalidArgument("result column count exceeds limit");
  }
  out->column_names.clear();
  out->column_types.clear();
  for (size_t i = 0; i < n_cols && reader.ok(); ++i) {
    out->column_names.push_back(reader.Str16());
    out->column_types.push_back(static_cast<exec::ColumnType>(reader.U8()));
  }
  size_t n_batches = reader.U32();
  if (n_batches > reader.Remaining()) {
    return Status::InvalidArgument("malformed batch table in ExecuteResponse");
  }
  out->batches.clear();
  out->batches.reserve(n_batches);
  for (size_t i = 0; i < n_batches && reader.ok(); ++i) {
    exec::RowBatch batch;
    if (!ReadRowBatch(&reader, out->column_types, &batch)) {
      return Status::InvalidArgument("malformed row batch in ExecuteResponse");
    }
    out->batches.push_back(std::move(batch));
  }
  out->trace_id = 0;
  out->stages.clear();
  if (!ReadExecuteResponseExtensions(&reader, out)) {
    return Status::InvalidArgument(
        "malformed extension block in ExecuteResponse");
  }
  return FinishDecode(reader, "ExecuteResponse");
}

}  // namespace net
}  // namespace sqlpl
