#include "sqlpl/net/sql_client_pool.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>

#include <chrono>
#include <utility>

#include "sqlpl/net/socket_util.h"
#include "sqlpl/net/sql_client.h"

namespace sqlpl {
namespace net {

SqlClientPool::SqlClientPool(SqlClientPoolOptions options)
    : options_(options) {
  if (options_.num_connections == 0) options_.num_connections = 1;
}

SqlClientPool::~SqlClientPool() { Close(); }

Status SqlClientPool::Connect(const std::string& address, uint16_t port) {
  if (!conns_.empty()) return Status::FailedPrecondition("already connected");
  conns_.reserve(options_.num_connections);
  for (size_t i = 0; i < options_.num_connections; ++i) {
    Result<int> fd = ConnectTcp(address, port);
    if (!fd.ok()) {
      Close();
      return fd.status();
    }
    Conn conn;
    conn.fd = *fd;
    conns_.push_back(std::move(conn));
  }
  return Status::OK();
}

void SqlClientPool::Close() {
  for (Conn& conn : conns_) CloseFd(conn.fd);
  conns_.clear();
  outstanding_ = 0;
}

Result<uint64_t> SqlClientPool::Submit(WireParseRequest request) {
  if (conns_.empty()) return Status::Unavailable("not connected");
  if (options_.max_inflight > 0 && outstanding_ >= options_.max_inflight) {
    return Status::ResourceExhausted("client pool at max_inflight");
  }
  if (request.request_id == 0) request.request_id = next_request_id_++;
  if (request.trace.trace_id == 0) {
    if (trace_seed_ == 0) trace_seed_ = NextClientTraceSeed();
    request.trace.trace_id =
        (trace_seed_ << 32) | (request.request_id & 0xffffffffu);
  }
  // Least-outstanding connection keeps the load even when completions
  // come back unevenly (e.g. one shard runs hot).
  Conn* target = &conns_[0];
  for (Conn& conn : conns_) {
    if (conn.outstanding < target->outstanding) target = &conn;
  }
  EncodeRequestFrame(request, &target->out);
  ++target->outstanding;
  ++outstanding_;
  return request.request_id;
}

Status SqlClientPool::Flush() {
  if (conns_.empty()) return Status::Unavailable("not connected");
  for (Conn& conn : conns_) {
    if (conn.out.empty()) continue;
    SQLPL_RETURN_IF_ERROR(SendAll(conn.fd, conn.out.data(), conn.out.size()));
    conn.out.clear();
  }
  return Status::OK();
}

Status SqlClientPool::DrainDecoded(Conn* conn,
                                   std::vector<WireParseResponse>* out) {
  for (;;) {
    std::span<const uint8_t> unread(conn->in.data() + conn->in_off,
                                    conn->in.size() - conn->in_off);
    Result<size_t> frame_size =
        CompleteFrameSize(unread, kDefaultMaxFrameBytes);
    if (!frame_size.ok()) return frame_size.status();
    if (*frame_size == 0) break;
    std::span<const uint8_t> payload =
        unread.subspan(kFrameHeaderBytes, *frame_size - kFrameHeaderBytes);
    conn->in_off += *frame_size;
    WireParseResponse response;
    SQLPL_RETURN_IF_ERROR(DecodeResponsePayload(payload, &response));
    out->push_back(std::move(response));
    if (conn->outstanding > 0) --conn->outstanding;
    if (outstanding_ > 0) --outstanding_;
  }
  if (conn->in_off == conn->in.size()) {
    conn->in.clear();
    conn->in_off = 0;
  }
  return Status::OK();
}

Status SqlClientPool::Poll(std::vector<WireParseResponse>* out,
                           Deadline wait) {
  if (conns_.empty()) return Status::Unavailable("not connected");
  if (outstanding_ == 0) {
    return Status::FailedPrecondition("nothing outstanding to poll for");
  }
  SQLPL_RETURN_IF_ERROR(Flush());

  const size_t before = out->size();
  // Leftovers from the previous read may already complete a frame.
  for (Conn& conn : conns_) {
    SQLPL_RETURN_IF_ERROR(DrainDecoded(&conn, out));
  }
  while (out->size() == before) {
    int timeout_ms = -1;
    if (!wait.is_never()) {
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          wait.remaining());
      if (remaining <= std::chrono::milliseconds::zero()) {
        return Status::DeadlineExceeded("poll deadline passed");
      }
      timeout_ms = static_cast<int>(remaining.count()) + 1;
    }
    std::vector<pollfd> pfds;
    pfds.reserve(conns_.size());
    for (const Conn& conn : conns_) {
      pfds.push_back(pollfd{conn.fd, POLLIN, 0});
    }
    int ready = poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("poll failed");
    }
    if (ready == 0) return Status::DeadlineExceeded("poll deadline passed");
    for (size_t i = 0; i < conns_.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Conn& conn = conns_[i];
      char buf[64 * 1024];
      ssize_t n = recv(conn.fd, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        return Status::Unavailable("recv failed");
      }
      if (n == 0) return Status::Unavailable("server closed the connection");
      conn.in.insert(conn.in.end(), buf, buf + n);
      SQLPL_RETURN_IF_ERROR(DrainDecoded(&conn, out));
    }
  }
  return Status::OK();
}

}  // namespace net
}  // namespace sqlpl
