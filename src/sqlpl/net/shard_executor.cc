#include "sqlpl/net/shard_executor.h"

#include <string>
#include <utility>

namespace sqlpl {
namespace net {

ShardExecutor::ShardExecutor(ShardExecutorOptions options,
                             obs::MetricsRegistry* registry)
    : options_(options) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.workers_per_shard == 0) options_.workers_per_shard = 1;
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    if (registry != nullptr) {
      const std::string label = std::to_string(i);
      shard->tasks_total = registry->GetCounter(
          "sqlpl_net_shard_tasks_total", {{"shard", label}},
          "Tasks executed by this shard's workers (stolen tasks count for "
          "the thief)");
      shard->steals_total = registry->GetCounter(
          "sqlpl_net_shard_steals_total", {{"shard", label}},
          "Tasks this shard's workers stole from sibling queues");
      shard->rejects_total = registry->GetCounter(
          "sqlpl_net_shard_rejects_total", {{"shard", label}},
          "Submits refused because the shard queue was full");
      shard->depth = registry->GetGauge(
          "sqlpl_net_shard_queue_depth", {{"shard", label}},
          "Tasks currently queued on this shard");
    }
    shards_.push_back(std::move(shard));
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    for (size_t w = 0; w < options_.workers_per_shard; ++w) {
      shards_[i]->workers.emplace_back([this, i] { WorkerLoop(i); });
    }
  }
}

ShardExecutor::~ShardExecutor() { Shutdown(); }

Status ShardExecutor::Submit(size_t shard_index, std::function<void()> task) {
  Shard& shard = *shards_[shard_index % shards_.size()];
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    if (options_.queue_depth > 0) {
      if (options_.overflow == OverflowPolicy::kBlock) {
        shard.space_cv.wait(lock, [this, &shard] {
          return stopping_.load(std::memory_order_relaxed) ||
                 shard.queue.size() < options_.queue_depth;
        });
      } else if (shard.queue.size() >= options_.queue_depth) {
        if (shard.rejects_total != nullptr) shard.rejects_total->Increment();
        return Status::ResourceExhausted(
            "shard queue full (" + std::to_string(options_.queue_depth) +
            " tasks)");
      }
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      return Status::Unavailable("shard executor is shutting down");
    }
    shard.queue.push_back(std::move(task));
    if (shard.depth != nullptr) {
      shard.depth->Set(static_cast<int64_t>(shard.queue.size()));
    }
  }
  shard.cv.notify_one();
  return Status::OK();
}

void ShardExecutor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  stopping_.store(true, std::memory_order_relaxed);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->cv.notify_all();
    shard->space_cv.notify_all();
  }
  for (auto& shard : shards_) {
    for (std::thread& worker : shard->workers) {
      if (worker.joinable()) worker.join();
    }
  }
}

uint64_t ShardExecutor::steals() const {
  return steals_.load(std::memory_order_relaxed);
}

uint64_t ShardExecutor::tasks_completed() const {
  return completed_.load(std::memory_order_relaxed);
}

bool ShardExecutor::TrySteal(size_t thief, std::function<void()>* out) {
  for (size_t offset = 1; offset < shards_.size(); ++offset) {
    Shard& victim = *shards_[(thief + offset) % shards_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.queue.empty()) continue;
    // Steal from the back: the victim's own workers keep FIFO order at
    // the front, and the thief takes the work least likely to be
    // imminent there.
    *out = std::move(victim.queue.back());
    victim.queue.pop_back();
    if (victim.depth != nullptr) {
      victim.depth->Set(static_cast<int64_t>(victim.queue.size()));
    }
    victim.space_cv.notify_one();
    steals_.fetch_add(1, std::memory_order_relaxed);
    Shard& mine = *shards_[thief];
    if (mine.steals_total != nullptr) mine.steals_total->Increment();
    return true;
  }
  return false;
}

void ShardExecutor::WorkerLoop(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      if (shard.queue.empty()) {
        if (stopping_.load(std::memory_order_relaxed)) return;
        if (options_.enable_stealing && shards_.size() > 1) {
          // Doze briefly, then scan siblings; repeat. The doze bounds
          // the steal latency without a cross-shard notification
          // channel (which would reintroduce the shared hot lock this
          // executor exists to remove).
          shard.cv.wait_for(lock, options_.steal_interval);
        } else {
          shard.cv.wait(lock, [this, &shard] {
            return stopping_.load(std::memory_order_relaxed) ||
                   !shard.queue.empty();
          });
        }
        if (shard.queue.empty()) {
          if (stopping_.load(std::memory_order_relaxed)) return;
          if (options_.enable_stealing && shards_.size() > 1) {
            lock.unlock();
            if (TrySteal(shard_index, &task)) {
              task();
              completed_.fetch_add(1, std::memory_order_relaxed);
              if (shard.tasks_total != nullptr) shard.tasks_total->Increment();
            }
          }
          continue;
        }
      }
      task = std::move(shard.queue.front());
      shard.queue.pop_front();
      if (shard.depth != nullptr) {
        shard.depth->Set(static_cast<int64_t>(shard.queue.size()));
      }
      if (options_.queue_depth > 0 &&
          options_.overflow == OverflowPolicy::kBlock) {
        shard.space_cv.notify_one();
      }
    }
    task();
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (shard.tasks_total != nullptr) shard.tasks_total->Increment();
  }
}

}  // namespace net
}  // namespace sqlpl
