#include "sqlpl/net/sql_server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <deque>
#include <mutex>
#include <string>
#include <system_error>
#include <thread>
#include <utility>

#include "sqlpl/net/socket_util.h"
#include "sqlpl/obs/flight_recorder.h"
#include "sqlpl/obs/trace.h"
#include "sqlpl/service/spec_fingerprint.h"

namespace sqlpl {
namespace net {

namespace {

constexpr size_t kReadChunk = 64 * 1024;
/// Compact the input buffer once this much consumed prefix accumulates.
constexpr size_t kCompactThreshold = 256 * 1024;
/// Frames gathered into one writev call.
constexpr size_t kMaxIov = 64;

/// Result row cap applied when an execute request leaves `max_rows` at
/// 0: the response must stay under the client's frame limit, so the
/// server never streams unbounded row data into a single frame.
constexpr uint64_t kDefaultExecuteRowCap = 16384;

uint64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

WireConflict ToWireConflict(const fm::ConfigConflict& conflict) {
  WireConflict wire;
  wire.items.reserve(conflict.items.size());
  for (const fm::ConflictItem& item : conflict.items) {
    wire.items.push_back(WireConflictItem{item.feature, item.selected});
  }
  wire.reason = conflict.reason;
  return wire;
}

}  // namespace

/// Per-connection state. The input side (`in`, `in_off`) belongs to the
/// connection's event-loop thread exclusively. The output side and the
/// readiness-interest flags are shared with shard workers and guarded
/// by `mu`; `fd` is closed only by the loop thread, with writers
/// checking `closed` under `mu` before touching it.
///
/// Output is a deque of encoded frames (plus the flushed-prefix offset
/// of the front frame), not one flat string: a batch of responses lands
/// as N deque pushes and leaves as one `writev` — no re-copying frames
/// into a contiguous buffer just to hand them to the kernel.
struct SqlServer::Connection {
  int fd = -1;
  EventLoop* loop = nullptr;

  std::vector<uint8_t> in;
  size_t in_off = 0;

  std::mutex mu;
  std::deque<std::string> out;
  /// Bytes of `out.front()` already written.
  size_t out_front_off = 0;
  /// Total unflushed bytes across `out` (cached; kept in sync by
  /// QueueFrames/FlushLocked).
  size_t out_bytes = 0;
  /// Writability interest currently armed.
  bool want_out = false;
  /// Read interest withdrawn: the peer reads too slowly and pending
  /// response bytes crossed the backpressure threshold.
  bool paused = false;
  /// A worker asked the loop thread to disconnect (write-buffer
  /// overflow or a dead socket discovered mid-flush).
  bool close_requested = false;
  bool closed = false;
};

/// One event loop (= one shard's I/O side). `conns` is owned by the
/// loop thread; `pending` carries cross-thread connection handoffs from
/// the round-robin acceptor (unused under `kReusePort`, where every
/// loop accepts for itself on its own listener).
struct SqlServer::EventLoop {
  size_t index = 0;
  std::unique_ptr<EventBackend> backend;
  /// This loop's listener: every loop has one under `kReusePort`; only
  /// loop 0 under `kRoundRobin`; -1 otherwise (and after drain).
  int listen_fd = -1;
  std::thread thread;
  std::unordered_map<int, std::shared_ptr<Connection>> conns;
  std::mutex mu;
  std::vector<std::shared_ptr<Connection>> pending;

  /// Per-loop introspection instruments (`{loop="<index>"}` series),
  /// resolved at Start() before the loop thread spawns.
  obs::Counter* busy_micros = nullptr;
  obs::Counter* idle_micros = nullptr;
  obs::Counter* wakeups = nullptr;
  obs::Histogram* epoll_batch = nullptr;
  obs::Gauge* inflight = nullptr;
  obs::Gauge* connections = nullptr;
};

/// Everything `RunParseBatch` needs after a response frame is built:
/// the frame itself plus the identity/timing facts for the write-stage
/// flight events and the anomaly trigger.
struct SqlServer::ParseOutcome {
  std::string frame;
  uint64_t request_id = 0;
  uint64_t trace_id = 0;
  uint64_t received_at_micros = 0;
  uint64_t turnaround_micros = 0;
  StatusCode status = StatusCode::kOk;
};

/// Re-arms the fd's readiness interest from the connection's flags.
/// `Modify` re-checks readiness even in edge-triggered mode, so
/// re-adding read interest after a pause immediately redelivers any
/// kernel-buffered input.
void SqlServer::UpdateInterestLocked(Connection* conn) {
  if (conn->closed || conn->fd < 0) return;
  (void)conn->loop->backend->Modify(conn->fd, !conn->paused, conn->want_out,
                                    /*edge=*/true);
}

bool SqlServer::FlushLocked(Connection* conn) {
  while (!conn->out.empty()) {
    iovec iov[kMaxIov];
    size_t iov_count = 0;
    for (const std::string& frame : conn->out) {
      if (iov_count == kMaxIov) break;
      size_t off = iov_count == 0 ? conn->out_front_off : 0;
      iov[iov_count].iov_base = const_cast<char*>(frame.data() + off);
      iov[iov_count].iov_len = frame.size() - off;
      ++iov_count;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iov_count;
    ssize_t n = sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      bytes_out_->Increment(static_cast<uint64_t>(n));
      conn->out_bytes -= static_cast<size_t>(n);
      size_t remaining = static_cast<size_t>(n);
      while (remaining > 0) {
        std::string& front = conn->out.front();
        size_t avail = front.size() - conn->out_front_off;
        if (remaining >= avail) {
          remaining -= avail;
          conn->out.pop_front();
          conn->out_front_off = 0;
        } else {
          conn->out_front_off += remaining;
          remaining = 0;
        }
      }
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  return true;
}

size_t SqlServer::PendingOutLocked(const Connection* conn) {
  return conn->out_bytes;
}

SqlServer::SqlServer(DialectService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.num_loops == 0) options_.num_loops = 1;
  if (options_.workers_per_shard == 0) options_.workers_per_shard = 1;
  if (options_.max_batch_frames == 0) options_.max_batch_frames = 1;
  obs::MetricsRegistry& reg = service_->metrics();
  connections_gauge_ =
      reg.GetGauge("sqlpl_net_connections", {}, "Open wire connections");
  connections_total_ = reg.GetCounter("sqlpl_net_connections_total", {},
                                      "Wire connections accepted");
  bytes_in_ = reg.GetCounter("sqlpl_net_bytes_total", {{"direction", "in"}},
                             "Wire bytes moved, by direction");
  bytes_out_ = reg.GetCounter("sqlpl_net_bytes_total", {{"direction", "out"}},
                              "Wire bytes moved, by direction");
  frames_in_ = reg.GetCounter("sqlpl_net_frames_total", {{"direction", "in"}},
                              "Wire frames moved, by direction");
  frames_out_ = reg.GetCounter("sqlpl_net_frames_total",
                               {{"direction", "out"}},
                               "Wire frames moved, by direction");
  decode_errors_ = reg.GetCounter("sqlpl_net_frame_decode_errors_total", {},
                                  "Frames rejected by the wire decoder");
  draining_refusals_ = reg.GetCounter(
      "sqlpl_net_draining_refusals_total", {},
      "Frames refused with unavailable while the server drained");
  backpressure_pauses_ = reg.GetCounter(
      "sqlpl_net_backpressure_pauses_total", {},
      "Times a slow-reading connection had its input paused");
  overflow_disconnects_ = reg.GetCounter(
      "sqlpl_net_overflow_disconnects_total", {},
      "Connections dropped for exceeding the write-buffer limit");
  // Shared with ServiceStats (same family in the same registry), so
  // wire-level refusals land in the service snapshot and its Markdown
  // report.
  unavailable_total_ = reg.GetCounter(
      "sqlpl_requests_unavailable_total", {},
      "Requests refused with unavailable (draining server or "
      "connection-level failure)");
  request_latency_ = reg.GetHistogram(
      "sqlpl_net_request_micros", {},
      "Wire request turnaround: frame decoded -> response enqueued (µs)");
  flight_dumps_slow_ = reg.GetCounter(
      "sqlpl_net_flight_dumps_total", {{"reason", "slow"}},
      "Flight-recorder anomaly dumps, by trigger");
  flight_dumps_error_ = reg.GetCounter(
      "sqlpl_net_flight_dumps_total", {{"reason", "error"}},
      "Flight-recorder anomaly dumps, by trigger");
}

SqlServer::~SqlServer() { Stop(); }

uint16_t SqlServer::metrics_port() const {
  return sideband_ ? sideband_->port() : 0;
}

int64_t SqlServer::open_connections() const {
  return connections_gauge_->Value();
}

int64_t SqlServer::loop_connections(size_t i) const {
  if (i >= loops_.size() || loops_[i]->connections == nullptr) return 0;
  return loops_[i]->connections->Value();
}

Status SqlServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition(
        "SqlServer is single-use: already started");
  }
  // Precompute the variant catalog and seed the fingerprint registry
  // with its known-good specs, so a fresh client can ListCatalog and
  // parse by fingerprint without ever shipping a feature selection.
  catalog_ = fm::VariantCatalog::BuildDefault(service_->configurator());
  {
    std::lock_guard<std::mutex> lock(specs_mu_);
    for (const fm::VariantEntry& entry : catalog_.entries()) {
      std::shared_ptr<const DialectSpec>& slot = specs_[entry.fingerprint];
      if (!slot) slot = std::make_shared<const DialectSpec>(entry.spec);
    }
  }

  obs::MetricsRegistry& reg = service_->metrics();
  ShardExecutorOptions shard_options;
  shard_options.num_shards = options_.num_loops;
  shard_options.workers_per_shard = options_.workers_per_shard;
  shard_options.queue_depth = options_.shard_queue_depth;
  shard_options.overflow = options_.shard_overflow;
  shard_options.enable_stealing = options_.enable_work_stealing;
  shards_ = std::make_unique<ShardExecutor>(shard_options, &reg);

  loops_.clear();
  for (size_t i = 0; i < options_.num_loops; ++i) {
    auto loop = std::make_unique<EventLoop>();
    loop->index = i;
    const std::string label = std::to_string(i);
    loop->busy_micros = reg.GetCounter(
        "sqlpl_net_loop_busy_micros_total", {{"loop", label}},
        "Event-loop time spent processing ready events (µs)");
    loop->idle_micros = reg.GetCounter(
        "sqlpl_net_loop_idle_micros_total", {{"loop", label}},
        "Event-loop time spent blocked waiting for readiness (µs)");
    loop->wakeups = reg.GetCounter(
        "sqlpl_net_loop_wakeups_total", {{"loop", label}},
        "Cross-thread wakeups delivered to the loop");
    loop->epoll_batch = reg.GetHistogram(
        "sqlpl_net_loop_epoll_batch", {{"loop", label}},
        "Ready events returned per backend wait call");
    loop->inflight = reg.GetGauge(
        "sqlpl_net_loop_inflight", {{"loop", label}},
        "Shard tasks dispatched by this loop awaiting completion");
    loop->connections = reg.GetGauge(
        "sqlpl_net_loop_connections", {{"loop", label}},
        "Open connections owned by this loop");
    Result<std::unique_ptr<EventBackend>> backend =
        MakeEventBackend(options_.backend);
    if (!backend.ok()) return backend.status();
    loop->backend = std::move(*backend);
    SQLPL_RETURN_IF_ERROR(loop->backend->Init());
    loops_.push_back(std::move(loop));
  }

  // Listeners. Under kReusePort every loop binds its own SO_REUSEPORT
  // listener to the shared port (the first bind resolves an ephemeral
  // request); the kernel then distributes connections across acceptors.
  // Under kRoundRobin loop 0 owns the single listener and hands
  // connections over, as the pre-sharding server did. Listener
  // interest is level-triggered: AcceptAll drains the backlog anyway,
  // and a missed edge would strand connections.
  const bool reuse_port = options_.acceptor == AcceptorStrategy::kReusePort;
  size_t num_listeners = reuse_port ? loops_.size() : 1;
  for (size_t i = 0; i < num_listeners; ++i) {
    Result<int> listen = ListenTcp(options_.bind_address,
                                   i == 0 ? options_.port : port_,
                                   /*backlog=*/128, reuse_port);
    if (!listen.ok()) return listen.status();
    loops_[i]->listen_fd = *listen;
    if (i == 0) {
      Result<uint16_t> bound = LocalPort(*listen);
      if (!bound.ok()) return bound.status();
      port_ = *bound;
    }
    SQLPL_RETURN_IF_ERROR(SetNonBlocking(*listen));
    SQLPL_RETURN_IF_ERROR(loops_[i]->backend->Add(*listen, /*readable=*/true,
                                                  /*writable=*/false,
                                                  /*edge=*/false));
  }

  for (auto& loop : loops_) {
    EventLoop* raw = loop.get();
    loop->thread = std::thread([this, raw] { RunLoop(raw); });
  }

  if (options_.enable_metrics_sideband) {
    sideband_ = std::make_unique<HttpSideband>([this](std::string_view path) {
      HttpReply reply;
      if (path == "/healthz") {
        if (draining()) {
          reply.status = 503;
          reply.body = "draining\n";
        } else {
          reply.body = "ok\n";
        }
      } else if (path == "/metrics") {
        reply.content_type = "text/plain; version=0.0.4; charset=utf-8";
        reply.body = service_->MetricsPrometheus();
      } else if (path == "/debug/flight") {
        // Live snapshot of the always-on flight recorder.
        reply.content_type = "application/json";
        reply.body = obs::FlightRecorder::Global().ExportChromeJson();
      } else if (path == "/debug/flight/last") {
        std::string dump = LastFlightDump();
        if (dump.empty()) {
          reply.status = 404;
          reply.body = "no anomaly dump yet\n";
        } else {
          reply.content_type = "application/json";
          reply.body = std::move(dump);
        }
      } else if (path == "/debug/exemplars") {
        reply.content_type = "application/json";
        reply.body = service_->metrics().ExportExemplarsJson();
      } else if (path == "/trace" || path.rfind("/trace?", 0) == 0) {
        // Window capture: enable span tracing, hold the window open,
        // export what arrived. Runs on the single-threaded sideband, so
        // a capture blocks other sideband requests — never the data
        // plane.
        uint64_t ms = 100;
        size_t q = path.find("ms=");
        if (q != std::string_view::npos) {
          std::string_view digits = path.substr(q + 3);
          uint64_t parsed = 0;
          auto [ptr, ec] = std::from_chars(
              digits.data(), digits.data() + digits.size(), parsed);
          (void)ptr;
          if (ec == std::errc()) ms = parsed;
        }
        ms = std::min<uint64_t>(std::max<uint64_t>(ms, 1), 5000);
        const uint64_t window_start = obs::TraceNowMicros();
        const bool was_enabled = obs::Tracing::enabled();
        obs::Tracing::Enable(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        obs::Tracing::Enable(was_enabled);
        reply.content_type = "application/json";
        reply.body = obs::Tracer::Global().ExportChromeJsonSince(window_start);
      } else {
        reply.status = 404;
        reply.body = "not found\n";
      }
      return reply;
    });
    SQLPL_RETURN_IF_ERROR(
        sideband_->Start(options_.bind_address, options_.metrics_port));
  }
  return Status::OK();
}

void SqlServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (!started_.load(std::memory_order_relaxed) ||
      stop_loops_.load(std::memory_order_relaxed)) {
    return;
  }

  // Phase 1: stop taking work. Every loop closes its listener (on
  // wakeup), /healthz flips to 503, and every frame decoded from here
  // on is refused with kUnavailable.
  draining_.store(true, std::memory_order_relaxed);
  for (auto& loop : loops_) WakeLoop(loop.get());

  // Phase 2: let already-admitted requests finish under the drain
  // deadline, then cancel the stragglers through the server-wide
  // CancelSource (the parse loops hit cooperative checkpoints).
  {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait_for(lock, options_.drain_deadline,
                          [this] { return inflight_ == 0; });
    if (inflight_ != 0) {
      drain_cancel_.RequestCancel();
      inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
    }
  }
  if (shards_) shards_->Shutdown();

  // Phase 3: tear down I/O. Loops flush what they can on the way out,
  // close their connections, and exit.
  stop_loops_.store(true, std::memory_order_relaxed);
  for (auto& loop : loops_) WakeLoop(loop.get());
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Loops normally close their listeners when they see draining_; cover
  // the case where one never woke (loops are joined, so no race).
  for (auto& loop : loops_) {
    if (loop->listen_fd >= 0) {
      CloseFd(loop->listen_fd);
      loop->listen_fd = -1;
    }
  }
  if (sideband_) sideband_->Stop();
}

void SqlServer::WakeLoop(EventLoop* loop) { loop->backend->Wake(); }

void SqlServer::RunLoop(EventLoop* loop) {
  ReadyEvent events[64];
  while (!stop_loops_.load(std::memory_order_relaxed)) {
    // Idle = blocked in the backend wait; busy = everything after it
    // until the next wait. Together they account for the loop thread's
    // wall time, so `busy / (busy + idle)` is the loop's utilization.
    const uint64_t idle_start = obs::TraceNowMicros();
    int n = loop->backend->Wait(events, /*timeout_ms=*/-1);
    const uint64_t busy_start = obs::TraceNowMicros();
    loop->idle_micros->Increment(busy_start - idle_start);
    if (n < 0) break;
    loop->epoll_batch->Record(static_cast<uint64_t>(n));
    bool woke = false;
    for (int i = 0; i < n; ++i) {
      const ReadyEvent& event = events[i];
      if (event.wake) {
        woke = true;
        loop->wakeups->Increment();
        continue;
      }
      if (loop->listen_fd >= 0 && event.fd == loop->listen_fd) {
        AcceptAll(loop);
        continue;
      }
      auto it = loop->conns.find(event.fd);
      if (it == loop->conns.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if (event.writable) HandleWritable(loop, conn);
      if (event.readable) HandleReadable(loop, conn);
    }
    if (woke) HandleWakeup(loop);
    loop->busy_micros->Increment(obs::TraceNowMicros() - busy_start);
  }

  // Exit path: best-effort flush of completed responses, then close
  // everything this loop owns.
  std::vector<std::shared_ptr<Connection>> remaining;
  remaining.reserve(loop->conns.size());
  for (auto& [fd, conn] : loop->conns) remaining.push_back(conn);
  for (auto& conn : remaining) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->closed) (void)FlushLocked(conn.get());
    }
    CloseConnection(loop, conn);
  }
}

void SqlServer::AcceptAll(EventLoop* loop) {
  for (;;) {
    int fd = accept4(loop->listen_fd, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or the listener is gone
    }
    if (draining_.load(std::memory_order_relaxed)) {
      CloseFd(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    connections_total_->Increment();
    connections_gauge_->Add(1);
    if (options_.acceptor == AcceptorStrategy::kReusePort) {
      // The kernel already picked this loop: the connection is local by
      // construction, no handoff.
      conn->loop = loop;
      RegisterConnection(loop, conn);
      continue;
    }
    size_t target =
        next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    EventLoop* owner = loops_[target].get();
    conn->loop = owner;
    if (owner == loop) {
      RegisterConnection(owner, conn);
    } else {
      {
        std::lock_guard<std::mutex> lock(owner->mu);
        owner->pending.push_back(conn);
      }
      WakeLoop(owner);
    }
  }
}

void SqlServer::RegisterConnection(EventLoop* loop,
                                   const std::shared_ptr<Connection>& conn) {
  loop->conns[conn->fd] = conn;
  loop->connections->Add(1);
  (void)loop->backend->Add(conn->fd, /*readable=*/true, /*writable=*/false,
                           /*edge=*/true);
}

void SqlServer::HandleWakeup(EventLoop* loop) {
  // Adopt connections handed over by the round-robin acceptor.
  std::vector<std::shared_ptr<Connection>> adds;
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    adds.swap(loop->pending);
  }
  for (auto& conn : adds) RegisterConnection(loop, conn);

  // Draining: every loop retires its own listener.
  if (draining_.load(std::memory_order_relaxed) && loop->listen_fd >= 0) {
    loop->backend->Remove(loop->listen_fd);
    CloseFd(loop->listen_fd);
    loop->listen_fd = -1;
  }

  // Worker-requested closes and backpressure resumes.
  std::vector<std::shared_ptr<Connection>> to_close;
  std::vector<std::shared_ptr<Connection>> to_resume;
  for (auto& [fd, conn] : loop->conns) {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) continue;
    if (conn->close_requested) {
      to_close.push_back(conn);
    } else if (conn->paused &&
               PendingOutLocked(conn.get()) <=
                   options_.write_backpressure_bytes / 2) {
      conn->paused = false;
      UpdateInterestLocked(conn.get());
      to_resume.push_back(conn);
    }
  }
  for (auto& conn : to_close) CloseConnection(loop, conn);
  // Frames already buffered in user space saw the pause; re-run the
  // decoder now that the connection may make progress again.
  for (auto& conn : to_resume) ProcessInput(loop, conn);
}

void SqlServer::HandleReadable(EventLoop* loop,
                               const std::shared_ptr<Connection>& conn) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->closed || conn->close_requested || conn->paused) break;
    }
    size_t old_size = conn->in.size();
    conn->in.resize(old_size + kReadChunk);
    ssize_t n = recv(conn->fd, conn->in.data() + old_size, kReadChunk, 0);
    if (n > 0) {
      conn->in.resize(old_size + static_cast<size_t>(n));
      bytes_in_->Increment(static_cast<uint64_t>(n));
      continue;
    }
    conn->in.resize(old_size);
    if (n == 0) {
      CloseConnection(loop, conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(loop, conn);
    return;
  }
  ProcessInput(loop, conn);
}

void SqlServer::HandleWritable(EventLoop* loop,
                               const std::shared_ptr<Connection>& conn) {
  bool resumed = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    if (!FlushLocked(conn.get())) {
      conn->close_requested = true;
    } else {
      size_t pending = PendingOutLocked(conn.get());
      bool new_want = pending > 0;
      bool changed = new_want != conn->want_out;
      conn->want_out = new_want;
      if (conn->paused && pending <= options_.write_backpressure_bytes / 2) {
        conn->paused = false;
        resumed = true;
        changed = true;
      }
      if (changed) UpdateInterestLocked(conn.get());
    }
  }
  bool close_now;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    close_now = conn->close_requested && !conn->closed;
  }
  if (close_now) {
    CloseConnection(loop, conn);
    return;
  }
  if (resumed) ProcessInput(loop, conn);
}

void SqlServer::ProcessInput(EventLoop* loop,
                             const std::shared_ptr<Connection>& conn) {
  // Batched decode: every complete parse frame in the buffer joins the
  // current batch; the batch ships to the shard as ONE task whenever it
  // reaches max_batch_frames or the buffer runs dry. A pipelining
  // client thus pays one handoff per batch, not per request.
  std::vector<PendingParse> batch;
  bool close_after = false;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->closed || conn->close_requested || conn->paused) break;
    }
    std::span<const uint8_t> unread(conn->in.data() + conn->in_off,
                                    conn->in.size() - conn->in_off);
    Result<size_t> frame_size =
        CompleteFrameSize(unread, options_.max_frame_bytes);
    if (!frame_size.ok()) {
      // Oversized declaration: the stream cannot be resynchronized.
      decode_errors_->Increment();
      close_after = true;
      break;
    }
    if (*frame_size == 0) break;  // incomplete: wait for more bytes

    std::span<const uint8_t> payload =
        unread.subspan(kFrameHeaderBytes, *frame_size - kFrameHeaderBytes);
    conn->in_off += *frame_size;
    frames_in_->Increment();

    if (!DecodeFrame(conn, payload, &batch)) {
      close_after = true;
      break;
    }
    if (batch.size() >= options_.max_batch_frames) {
      DispatchParseBatch(conn, std::move(batch));
      batch.clear();
    }
  }
  // Ship what was decoded before any error: earlier pipelined frames
  // were valid requests and still get answers (pre-batching behavior).
  if (!batch.empty()) DispatchParseBatch(conn, std::move(batch));
  if (close_after) {
    CloseConnection(loop, conn);
    return;
  }

  if (conn->in_off == conn->in.size()) {
    conn->in.clear();
    conn->in_off = 0;
  } else if (conn->in_off > kCompactThreshold) {
    conn->in.erase(conn->in.begin(),
                   conn->in.begin() + static_cast<ptrdiff_t>(conn->in_off));
    conn->in_off = 0;
  }
}

bool SqlServer::DecodeFrame(const std::shared_ptr<Connection>& conn,
                            std::span<const uint8_t> payload,
                            std::vector<PendingParse>* batch) {
  // Refuse frames of any type with the matching response type while
  // draining, so clients mid-negotiation see a decodable kUnavailable.
  auto refuse_if_draining = [this, &conn](uint64_t request_id,
                                          WireType response_type) {
    if (!draining_.load(std::memory_order_relaxed)) return false;
    draining_refusals_->Increment();
    unavailable_total_->Increment();
    RefuseFrame(conn, request_id, Status::Unavailable("server is draining"),
                response_type);
    return true;
  };
  auto received_at = std::chrono::steady_clock::now();

  switch (static_cast<WireType>(PayloadType(payload))) {
    case WireType::kValidateSpecRequest: {
      WireValidateRequest request;
      Status decoded = DecodeValidateRequestPayload(payload, &request);
      if (!decoded.ok()) {
        decode_errors_->Increment();
        RefuseFrame(conn, request.request_id, decoded,
                    WireType::kValidateSpecResponse);
        return false;
      }
      if (refuse_if_draining(request.request_id,
                             WireType::kValidateSpecResponse)) {
        return true;
      }
      DispatchJob(conn, request.request_id, WireType::kValidateSpecResponse,
                  [this, conn, request = std::move(request), received_at] {
                    HandleValidate(conn, request, received_at);
                  });
      return true;
    }
    case WireType::kCompleteSpecRequest: {
      WireCompleteRequest request;
      Status decoded = DecodeCompleteRequestPayload(payload, &request);
      if (!decoded.ok()) {
        decode_errors_->Increment();
        RefuseFrame(conn, request.request_id, decoded,
                    WireType::kCompleteSpecResponse);
        return false;
      }
      if (refuse_if_draining(request.request_id,
                             WireType::kCompleteSpecResponse)) {
        return true;
      }
      DispatchJob(conn, request.request_id, WireType::kCompleteSpecResponse,
                  [this, conn, request = std::move(request), received_at] {
                    HandleComplete(conn, request, received_at);
                  });
      return true;
    }
    case WireType::kExecuteRequest: {
      WireExecuteRequest request;
      Status decoded = DecodeExecuteRequestPayload(payload, &request);
      if (!decoded.ok()) {
        decode_errors_->Increment();
        RefuseFrame(conn, request.request_id, decoded,
                    WireType::kExecuteResponse);
        return false;
      }
      if (refuse_if_draining(request.request_id,
                             WireType::kExecuteResponse)) {
        return true;
      }
      DispatchJob(conn, request.request_id, WireType::kExecuteResponse,
                  [this, conn, request = std::move(request), received_at] {
                    HandleExecute(conn, request, received_at);
                  });
      return true;
    }
    case WireType::kListCatalogRequest: {
      WireCatalogRequest request;
      Status decoded = DecodeCatalogRequestPayload(payload, &request);
      if (!decoded.ok()) {
        decode_errors_->Increment();
        RefuseFrame(conn, request.request_id, decoded,
                    WireType::kListCatalogResponse);
        return false;
      }
      if (refuse_if_draining(request.request_id,
                             WireType::kListCatalogResponse)) {
        return true;
      }
      DispatchJob(conn, request.request_id, WireType::kListCatalogResponse,
                  [this, conn, request, received_at] {
                    HandleCatalog(conn, request, received_at);
                  });
      return true;
    }
    default: {
      // Parse requests and anything unknown go through the parse
      // decoder — its unexpected-type diagnostic is the protocol's
      // canonical rejection.
      const uint64_t received_at_micros = obs::TraceNowMicros();
      PendingParse item;
      Status decoded = DecodeRequestPayload(payload, &item.request);
      item.received_at_micros = received_at_micros;
      item.decode_micros = obs::TraceNowMicros() - received_at_micros;
      if (!decoded.ok()) {
        // The frame boundary held, so we can still answer before
        // disconnecting the (broken) client.
        decode_errors_->Increment();
        RefuseFrame(conn, item.request.request_id, decoded);
        return false;
      }
      if (refuse_if_draining(item.request.request_id,
                             WireType::kParseResponse)) {
        return true;
      }
      // The client's millisecond budget becomes absolute *here*, at
      // frame receipt, so queueing and cache resolution spend the same
      // budget the client metered out — not a fresh one per stage.
      item.deadline =
          item.request.deadline_ms > 0
              ? Deadline::After(
                    std::chrono::milliseconds(item.request.deadline_ms))
              : Deadline::Never();
      batch->push_back(std::move(item));
      return true;
    }
  }
}

void SqlServer::DispatchParseBatch(const std::shared_ptr<Connection>& conn,
                                   std::vector<PendingParse> batch) {
  if (batch.empty()) return;
  obs::Gauge* loop_inflight = conn->loop->inflight;
  loop_inflight->Add(1);
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_;
  }
  // Request ids survive outside the task so a refused submit can still
  // answer every request in the batch.
  std::vector<uint64_t> request_ids;
  request_ids.reserve(batch.size());
  for (const PendingParse& item : batch) {
    request_ids.push_back(item.request.request_id);
  }
  Status submitted = shards_->Submit(
      conn->loop->index,
      [this, conn, loop_inflight, batch = std::move(batch)]() mutable {
        RunParseBatch(conn, batch);
        loop_inflight->Add(-1);
        std::lock_guard<std::mutex> lock(inflight_mu_);
        if (--inflight_ == 0) inflight_cv_.notify_all();
      });
  if (!submitted.ok()) {
    loop_inflight->Add(-1);
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      if (--inflight_ == 0) inflight_cv_.notify_all();
    }
    // Shard-full sheds keep their kResourceExhausted identity; a
    // stopping executor reads as unavailable, like the old pool.
    Status refusal =
        submitted.code() == StatusCode::kResourceExhausted
            ? submitted
            : Status::Unavailable("server worker shard is stopping");
    for (uint64_t request_id : request_ids) {
      unavailable_total_->Increment();
      RefuseFrame(conn, request_id, refusal);
    }
  }
}

void SqlServer::DispatchJob(const std::shared_ptr<Connection>& conn,
                            uint64_t request_id, WireType refuse_type,
                            std::function<void()> job) {
  obs::Gauge* loop_inflight = conn->loop->inflight;
  loop_inflight->Add(1);
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_;
  }
  Status submitted = shards_->Submit(
      conn->loop->index, [this, loop_inflight, job = std::move(job)] {
        job();
        loop_inflight->Add(-1);
        std::lock_guard<std::mutex> lock(inflight_mu_);
        if (--inflight_ == 0) inflight_cv_.notify_all();
      });
  if (!submitted.ok()) {
    loop_inflight->Add(-1);
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      if (--inflight_ == 0) inflight_cv_.notify_all();
    }
    unavailable_total_->Increment();
    RefuseFrame(conn, request_id,
                submitted.code() == StatusCode::kResourceExhausted
                    ? submitted
                    : Status::Unavailable("server worker shard is stopping"),
                refuse_type);
  }
}

void SqlServer::RunParseBatch(const std::shared_ptr<Connection>& conn,
                              std::vector<PendingParse>& batch) {
  std::vector<ParseOutcome> outcomes;
  outcomes.reserve(batch.size());
  std::vector<std::string> frames;
  frames.reserve(batch.size());
  for (const PendingParse& item : batch) {
    outcomes.push_back(BuildParseResponse(conn, item));
    frames.push_back(std::move(outcomes.back().frame));
  }

  // One lock acquisition, one flush attempt for the whole batch.
  const uint64_t write_start = obs::TraceNowMicros();
  QueueFrames(conn, frames);
  const uint64_t write_done = obs::TraceNowMicros();

  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  const uint16_t loop_id = static_cast<uint16_t>(conn->loop->index);
  for (const ParseOutcome& outcome : outcomes) {
    obs::FlightEvent event;
    event.trace_id = outcome.trace_id;
    event.request_id = outcome.request_id;
    event.loop_id = loop_id;
    event.status = static_cast<uint8_t>(outcome.status);
    event.ts_micros = write_start;
    event.dur_micros = static_cast<uint32_t>(
        std::min<uint64_t>(write_done - write_start, UINT32_MAX));
    event.stage = static_cast<uint8_t>(obs::FlightStage::kWrite);
    recorder.Record(event);
    event.ts_micros = outcome.received_at_micros;
    event.dur_micros = static_cast<uint32_t>(
        std::min<uint64_t>(outcome.turnaround_micros, UINT32_MAX));
    event.stage = static_cast<uint8_t>(obs::FlightStage::kRequest);
    recorder.Record(event);
    MaybeDumpFlight(outcome.status, outcome.turnaround_micros);
  }
}

SqlServer::ParseOutcome SqlServer::BuildParseResponse(
    const std::shared_ptr<Connection>& conn, const PendingParse& item) {
  const WireParseRequest& request = item.request;
  // Stage clock: every boundary below is a TraceNowMicros() stamp, so
  // the durations telescope — decode + queue + admission + parse +
  // render + encode lands on server_micros by construction (modulo the
  // underflow guards), which is what lets a client trust the breakdown
  // against the total.
  const uint64_t handled_at = obs::TraceNowMicros();
  const uint64_t after_decode = item.received_at_micros + item.decode_micros;
  const uint64_t queue_micros =
      handled_at > after_decode ? handled_at - after_decode : 0;
  const uint16_t loop_id = static_cast<uint16_t>(conn->loop->index);
  const uint64_t trace_id = request.trace.trace_id;

  // Resolve the dialect: inline specs are fingerprinted and remembered;
  // fingerprint-only requests must match a spec some client sent
  // earlier.
  std::shared_ptr<const DialectSpec> spec;
  uint64_t fingerprint;
  if (request.has_spec) {
    fingerprint = RegisterSpec(request.spec);
    std::lock_guard<std::mutex> lock(specs_mu_);
    spec = specs_[fingerprint];
  } else {
    fingerprint = request.fingerprint;
    std::lock_guard<std::mutex> lock(specs_mu_);
    auto it = specs_.find(fingerprint);
    if (it != specs_.end()) spec = it->second;
  }

  WireParseResponse wire;
  wire.request_id = request.request_id;
  wire.fingerprint = fingerprint;
  uint64_t parse_micros = 0;
  uint64_t service_done = handled_at;
  if (!spec) {
    wire.status = StatusCode::kNotFound;
    wire.body = "unknown dialect fingerprint " +
                SpecFingerprint{fingerprint}.ToString() +
                " (send the spec inline once first)";
    service_done = obs::TraceNowMicros();
  } else {
    ParseRequest service_request;
    service_request.spec = spec.get();
    service_request.sql = request.sql;
    service_request.deadline = item.deadline;
    service_request.cancel = drain_cancel_.token();
    service_request.want_tree = request.want_tree;
    // The wire's only use of the tree is its S-expression: take the
    // service's direct-render path, which serializes straight from the
    // parser's arena tree and never materializes a ParseNode.
    service_request.render_sexpr = request.want_tree;
    service_request.trace = request.trace;
    ParseResponse response = service_->Parse(service_request);
    service_done = obs::TraceNowMicros();
    parse_micros = response.parse_micros;

    wire.status = response.status().code();
    wire.cache_disposition = response.cache_disposition;
    wire.parse_micros = static_cast<uint32_t>(response.parse_micros);
    wire.total_micros = static_cast<uint32_t>(response.total_micros);
    if (response.ok()) {
      if (request.want_tree) wire.body = std::move(response.rendered);
    } else {
      wire.body = response.status().message();
    }
  }
  const uint64_t render_done = obs::TraceNowMicros();

  // "Admission" covers everything between worker pickup and the parse
  // proper: spec-registry lookup, service admission, cache resolution,
  // and (for coalesced requests) the wait on the single-flight build.
  const uint64_t service_wall =
      service_done > handled_at ? service_done - handled_at : 0;
  const uint64_t admission_micros =
      service_wall > parse_micros ? service_wall - parse_micros : 0;
  const uint64_t render_micros =
      render_done > service_done ? render_done - service_done : 0;

  auto clamp32 = [](uint64_t micros) {
    return static_cast<uint32_t>(std::min<uint64_t>(micros, UINT32_MAX));
  };

  // Encode. Untraced requests (the steady state) encode ONCE and stamp
  // the measured turnaround into the sealed frame in place —
  // server_micros sits at a fixed offset behind fixed-width fields
  // (kServerMicrosFrameOffset), so the patch cannot shift a byte and
  // the frame stays byte-identical to the historical two-pass output.
  // Traced requests keep the two-pass encode: their stage table has to
  // contain the encode duration itself.
  ParseOutcome outcome;
  uint64_t turnaround;
  if (!request.trace.traced()) {
    EncodeResponseFrame(wire, &outcome.frame);
    const uint64_t encode_done = obs::TraceNowMicros();
    turnaround = encode_done > item.received_at_micros
                     ? encode_done - item.received_at_micros
                     : 0;
    PatchServerMicros(&outcome.frame, 0, clamp32(turnaround));
    const uint64_t encode_micros =
        encode_done > render_done ? encode_done - render_done : 0;
    RecordParseStages(trace_id, request.request_id, loop_id, wire.status,
                      item.received_at_micros, item.decode_micros,
                      queue_micros, handled_at, admission_micros, parse_micros,
                      service_done, render_micros, render_done, encode_micros);
  } else {
    std::string throwaway;
    EncodeResponseFrame(wire, &throwaway);
    const uint64_t encode_done = obs::TraceNowMicros();
    const uint64_t encode_micros =
        encode_done > render_done ? encode_done - render_done : 0;
    turnaround = encode_done > item.received_at_micros
                     ? encode_done - item.received_at_micros
                     : 0;
    wire.server_micros = clamp32(turnaround);
    wire.trace_id = trace_id;
    // kWrite is always 0 in-frame: the flush happens after the frame is
    // sealed. The flight recorder carries the real write event.
    wire.stages = {
        {static_cast<uint8_t>(WireStage::kDecode), clamp32(item.decode_micros)},
        {static_cast<uint8_t>(WireStage::kQueue), clamp32(queue_micros)},
        {static_cast<uint8_t>(WireStage::kAdmission),
         clamp32(admission_micros)},
        {static_cast<uint8_t>(WireStage::kParse), clamp32(parse_micros)},
        {static_cast<uint8_t>(WireStage::kRender), clamp32(render_micros)},
        {static_cast<uint8_t>(WireStage::kEncode), clamp32(encode_micros)},
        {static_cast<uint8_t>(WireStage::kWrite), 0},
    };
    EncodeResponseFrame(wire, &outcome.frame);
    RecordParseStages(trace_id, request.request_id, loop_id, wire.status,
                      item.received_at_micros, item.decode_micros,
                      queue_micros, handled_at, admission_micros, parse_micros,
                      service_done, render_micros, render_done, encode_micros);
  }
  request_latency_->RecordWithExemplar(turnaround, trace_id);

  outcome.request_id = request.request_id;
  outcome.trace_id = trace_id;
  outcome.received_at_micros = item.received_at_micros;
  outcome.turnaround_micros = turnaround;
  outcome.status = wire.status;
  return outcome;
}

void SqlServer::RecordParseStages(uint64_t trace_id, uint64_t request_id,
                                  uint16_t loop_id, StatusCode status,
                                  uint64_t received_at_micros,
                                  uint64_t decode_micros, uint64_t queue_micros,
                                  uint64_t handled_at,
                                  uint64_t admission_micros,
                                  uint64_t parse_micros, uint64_t service_done,
                                  uint64_t render_micros, uint64_t render_done,
                                  uint64_t encode_micros) {
  // Flight-record every stage (always on, traced or not); loop_id ties
  // the events back to the per-loop metric series. The pre-flush stages
  // are recorded *before* the response frame is enqueued, so a client
  // that scrapes /debug/flight right after its reply finds its own
  // trace; only the write/request events trail the flush they measure
  // (RunParseBatch).
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  const uint8_t status_byte = static_cast<uint8_t>(status);
  auto clamp32 = [](uint64_t micros) {
    return static_cast<uint32_t>(std::min<uint64_t>(micros, UINT32_MAX));
  };
  auto record = [&](obs::FlightStage stage, uint64_t start, uint64_t dur) {
    obs::FlightEvent event;
    event.trace_id = trace_id;
    event.request_id = request_id;
    event.ts_micros = start;
    event.dur_micros = clamp32(dur);
    event.loop_id = loop_id;
    event.stage = static_cast<uint8_t>(stage);
    event.status = status_byte;
    recorder.Record(event);
  };
  record(obs::FlightStage::kDecode, received_at_micros, decode_micros);
  record(obs::FlightStage::kQueue, received_at_micros + decode_micros,
         queue_micros);
  record(obs::FlightStage::kAdmission, handled_at, admission_micros);
  record(obs::FlightStage::kParse, handled_at + admission_micros,
         parse_micros);
  record(obs::FlightStage::kRender, service_done, render_micros);
  record(obs::FlightStage::kEncode, render_done, encode_micros);
}

void SqlServer::HandleValidate(const std::shared_ptr<Connection>& conn,
                               const WireValidateRequest& request,
                               std::chrono::steady_clock::time_point
                                   received_at) {
  WireValidateResponse wire;
  wire.request_id = request.request_id;
  fm::ValidationResult validation = service_->ValidateSpec(request.spec);
  if (validation.valid) {
    // A spec that passed validation is worth remembering: the client's
    // next step is usually a fingerprint-only parse.
    wire.fingerprint = RegisterSpec(request.spec);
  } else {
    wire.status = StatusCode::kInvalidConfig;
    wire.conflict = ToWireConflict(validation.conflict);
    wire.message = validation.conflict.ToString();
  }
  std::string frame;
  EncodeValidateResponseFrame(wire, &frame);
  QueueFrame(conn, std::move(frame));
  request_latency_->Record(MicrosSince(received_at));
}

void SqlServer::HandleComplete(const std::shared_ptr<Connection>& conn,
                               const WireCompleteRequest& request,
                               std::chrono::steady_clock::time_point
                                   received_at) {
  WireCompleteResponse wire;
  wire.request_id = request.request_id;
  Result<DialectSpec> completed = service_->CompleteSpec(request.spec);
  if (completed.ok()) {
    wire.has_spec = true;
    wire.spec = *completed;
    wire.fingerprint = RegisterSpec(wire.spec);
  } else {
    wire.status = completed.status().code();
    wire.message = completed.status().message();
  }
  std::string frame;
  EncodeCompleteResponseFrame(wire, &frame);
  QueueFrame(conn, std::move(frame));
  request_latency_->Record(MicrosSince(received_at));
}

void SqlServer::HandleCatalog(const std::shared_ptr<Connection>& conn,
                              const WireCatalogRequest& request,
                              std::chrono::steady_clock::time_point
                                  received_at) {
  WireCatalogResponse wire;
  wire.request_id = request.request_id;
  wire.entries.reserve(catalog_.size());
  for (const fm::VariantEntry& entry : catalog_.entries()) {
    WireCatalogEntry out;
    out.fingerprint = entry.fingerprint;
    out.name = entry.name;
    out.features = entry.spec.features;
    wire.entries.push_back(std::move(out));
  }
  std::string frame;
  EncodeCatalogResponseFrame(wire, &frame);
  QueueFrame(conn, std::move(frame));
  request_latency_->Record(MicrosSince(received_at));
}

void SqlServer::HandleExecute(const std::shared_ptr<Connection>& conn,
                              const WireExecuteRequest& request,
                              std::chrono::steady_clock::time_point
                                  received_at) {
  const uint64_t handled_at = obs::TraceNowMicros();
  // Decode + dispatch + queue wait, folded into one pre-handler stage:
  // execute frames ride the generic job path, which doesn't stamp a
  // separate decode boundary the way the parse batch path does.
  const uint64_t queue_micros = MicrosSince(received_at);
  auto clamp32 = [](uint64_t micros) {
    return static_cast<uint32_t>(std::min<uint64_t>(micros, UINT32_MAX));
  };

  WireExecuteResponse wire;
  wire.request_id = request.request_id;

  // Resolve the dialect exactly like the parse path: inline specs are
  // fingerprinted and remembered, fingerprint-only requests must match
  // a spec some client sent earlier.
  std::shared_ptr<const DialectSpec> spec;
  uint64_t fingerprint;
  if (request.has_spec) {
    fingerprint = RegisterSpec(request.spec);
    std::lock_guard<std::mutex> lock(specs_mu_);
    spec = specs_[fingerprint];
  } else {
    fingerprint = request.fingerprint;
    std::lock_guard<std::mutex> lock(specs_mu_);
    auto it = specs_.find(fingerprint);
    if (it != specs_.end()) spec = it->second;
  }
  wire.fingerprint = fingerprint;

  uint64_t service_total = 0;
  if (!spec) {
    wire.status = StatusCode::kNotFound;
    wire.message = "unknown dialect fingerprint " +
                   SpecFingerprint{fingerprint}.ToString() +
                   " (send the spec inline once first)";
  } else {
    ExecuteRequest service_request;
    service_request.spec = spec.get();
    service_request.sql = request.sql;
    // The client's millisecond budget became absolute at frame receipt,
    // so queue time already spent counts against it.
    service_request.deadline =
        request.deadline_ms > 0
            ? Deadline::At(received_at +
                           std::chrono::milliseconds(request.deadline_ms))
            : Deadline::Never();
    service_request.cancel = drain_cancel_.token();
    service_request.max_rows =
        request.max_rows > 0 ? request.max_rows : kDefaultExecuteRowCap;
    service_request.trace = request.trace;
    ExecuteResponse response = service_->ExecuteQuery(service_request);
    service_total = response.total_micros;
    wire.status = response.status.code();
    wire.cache_disposition = response.cache_disposition;
    wire.lower_micros = clamp32(response.lower_micros);
    wire.exec_micros = clamp32(response.exec_micros);
    wire.total_micros = clamp32(response.total_micros);
    if (response.ok()) {
      wire.num_rows = response.result.num_rows;
      wire.truncated = response.result.truncated;
      wire.column_names = std::move(response.result.column_names);
      wire.column_types = std::move(response.result.column_types);
      wire.batches = std::move(response.result.batches);
    } else {
      wire.message = std::string(response.status.message());
    }
  }

  const uint64_t service_done = obs::TraceNowMicros();
  const uint64_t handler_micros =
      service_done > handled_at ? service_done - handled_at : 0;
  const uint64_t lowered_plus_run = wire.lower_micros + wire.exec_micros;
  // Everything the handler spent outside lowering + running: spec
  // registry, service admission, parser-cache resolution.
  const uint64_t admission_micros =
      service_total > lowered_plus_run ? service_total - lowered_plus_run : 0;

  std::string frame;
  if (request.trace.traced()) {
    // Two-pass encode, as in the traced parse path: the stage table
    // must contain the encode duration itself.
    wire.trace_id = request.trace.trace_id;
    std::string throwaway;
    EncodeExecuteResponseFrame(wire, &throwaway);
    const uint64_t encode_micros = obs::TraceNowMicros() - service_done;
    wire.server_micros =
        clamp32(queue_micros + handler_micros + encode_micros);
    wire.stages = {
        {static_cast<uint8_t>(WireStage::kDecode), 0},
        {static_cast<uint8_t>(WireStage::kQueue), clamp32(queue_micros)},
        {static_cast<uint8_t>(WireStage::kAdmission),
         clamp32(admission_micros)},
        {static_cast<uint8_t>(WireStage::kExec), clamp32(lowered_plus_run)},
        {static_cast<uint8_t>(WireStage::kEncode), clamp32(encode_micros)},
        {static_cast<uint8_t>(WireStage::kWrite), 0},
    };
    EncodeExecuteResponseFrame(wire, &frame);
  } else {
    wire.server_micros = clamp32(queue_micros + handler_micros);
    EncodeExecuteResponseFrame(wire, &frame);
  }
  QueueFrame(conn, std::move(frame));

  const uint64_t turnaround = MicrosSince(received_at);
  request_latency_->RecordWithExemplar(turnaround, request.trace.trace_id);
  {
    // The whole-request flight event, backdated to frame receipt; the
    // service already recorded the inner kExec event.
    obs::FlightEvent event;
    event.trace_id = request.trace.trace_id;
    event.request_id = request.request_id;
    event.ts_micros = obs::TraceNowMicros() - turnaround;
    event.dur_micros = clamp32(turnaround);
    event.loop_id = static_cast<uint16_t>(conn->loop->index);
    event.stage = static_cast<uint8_t>(obs::FlightStage::kRequest);
    event.status = static_cast<uint8_t>(wire.status);
    obs::FlightRecorder::Global().Record(event);
  }
  MaybeDumpFlight(wire.status, turnaround);
}

uint64_t SqlServer::RegisterSpec(const DialectSpec& spec) {
  uint64_t fingerprint = FingerprintSpec(spec).value;
  std::lock_guard<std::mutex> lock(specs_mu_);
  std::shared_ptr<const DialectSpec>& slot = specs_[fingerprint];
  if (!slot) slot = std::make_shared<const DialectSpec>(spec);
  return fingerprint;
}

void SqlServer::RefuseFrame(const std::shared_ptr<Connection>& conn,
                            uint64_t request_id, const Status& status,
                            WireType response_type) {
  std::string frame;
  switch (response_type) {
    case WireType::kValidateSpecResponse: {
      WireValidateResponse wire;
      wire.request_id = request_id;
      wire.status = status.code();
      wire.message = status.message();
      EncodeValidateResponseFrame(wire, &frame);
      break;
    }
    case WireType::kCompleteSpecResponse: {
      WireCompleteResponse wire;
      wire.request_id = request_id;
      wire.status = status.code();
      wire.message = status.message();
      EncodeCompleteResponseFrame(wire, &frame);
      break;
    }
    case WireType::kExecuteResponse: {
      WireExecuteResponse wire;
      wire.request_id = request_id;
      wire.status = status.code();
      wire.message = status.message();
      EncodeExecuteResponseFrame(wire, &frame);
      break;
    }
    case WireType::kListCatalogResponse: {
      WireCatalogResponse wire;
      wire.request_id = request_id;
      wire.status = status.code();
      wire.message = status.message();
      EncodeCatalogResponseFrame(wire, &frame);
      break;
    }
    default: {
      WireParseResponse wire;
      wire.request_id = request_id;
      wire.status = status.code();
      wire.body = status.message();
      EncodeResponseFrame(wire, &frame);
      break;
    }
  }
  QueueFrame(conn, std::move(frame));
}

void SqlServer::QueueFrame(const std::shared_ptr<Connection>& conn,
                           std::string frame) {
  QueueFrames(conn, std::span<std::string>(&frame, 1));
}

void SqlServer::QueueFrames(const std::shared_ptr<Connection>& conn,
                            std::span<std::string> frames) {
  if (frames.empty()) return;
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed || conn->close_requested) return;
    for (std::string& frame : frames) {
      conn->out_bytes += frame.size();
      conn->out.push_back(std::move(frame));
    }
    // Counted at enqueue, before any byte reaches the wire: a client
    // that has read the whole reply must already see it in the counter.
    frames_out_->Increment(frames.size());
    if (PendingOutLocked(conn.get()) > options_.write_buffer_limit) {
      // The peer stopped reading entirely; buffering further responses
      // would trade one slow client for server memory.
      overflow_disconnects_->Increment();
      conn->close_requested = true;
      wake = true;
    } else if (!FlushLocked(conn.get())) {
      conn->close_requested = true;
      wake = true;
    } else {
      size_t pending = PendingOutLocked(conn.get());
      bool changed = false;
      if (pending > 0 && !conn->want_out) {
        conn->want_out = true;
        changed = true;
      }
      if (!conn->paused && pending > options_.write_backpressure_bytes) {
        conn->paused = true;
        backpressure_pauses_->Increment();
        changed = true;
      }
      if (changed) UpdateInterestLocked(conn.get());
      // Fully drained while paused: only the loop thread may resume
      // (it must also re-run the decoder over buffered input).
      if (conn->paused && pending == 0) wake = true;
    }
  }
  if (wake) WakeLoop(conn->loop);
}

void SqlServer::CloseConnection(EventLoop* loop,
                                const std::shared_ptr<Connection>& conn) {
  int fd;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    fd = conn->fd;
    conn->fd = -1;
  }
  if (fd >= 0) {
    loop->backend->Remove(fd);
    CloseFd(fd);
    loop->conns.erase(fd);
  }
  connections_gauge_->Add(-1);
  loop->connections->Add(-1);
}

void SqlServer::MaybeDumpFlight(StatusCode status,
                                uint64_t turnaround_micros) {
  // "Failure" here means a lifecycle/server failure — a plain parse
  // error is the client's SQL being wrong, a normal outcome that must
  // not spam dumps.
  obs::Counter* trigger = nullptr;
  if (status != StatusCode::kOk && status != StatusCode::kParseError) {
    trigger = flight_dumps_error_;
  } else if (options_.flight_dump_slow_micros > 0 &&
             turnaround_micros >= options_.flight_dump_slow_micros) {
    trigger = flight_dumps_slow_;
  }
  if (trigger == nullptr) return;
  const uint64_t now = obs::TraceNowMicros();
  const uint64_t interval = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          options_.flight_dump_interval)
          .count());
  uint64_t last = last_flight_dump_micros_.load(std::memory_order_relaxed);
  if (last != 0 && now - last < interval) return;
  // One concurrent anomaly wins the dump; losers return (their events
  // are in the winner's snapshot anyway).
  if (!last_flight_dump_micros_.compare_exchange_strong(
          last, now, std::memory_order_relaxed)) {
    return;
  }
  std::string dump = obs::FlightRecorder::Global().ExportChromeJson();
  {
    std::lock_guard<std::mutex> lock(flight_dump_mu_);
    last_flight_dump_ = std::move(dump);
  }
  trigger->Increment();
}

std::string SqlServer::LastFlightDump() const {
  std::lock_guard<std::mutex> lock(flight_dump_mu_);
  return last_flight_dump_;
}

// --- SIGTERM -> Stop() ---------------------------------------------

namespace {

std::atomic<SqlServer*> g_sigterm_target{nullptr};
int g_sigterm_pipe[2] = {-1, -1};
std::once_flag g_sigterm_once;

// Async-signal-safe: one write to a pre-opened pipe.
void SigtermSignalHandler(int) {
  char byte = 1;
  ssize_t ignored = write(g_sigterm_pipe[1], &byte, 1);
  (void)ignored;
}

}  // namespace

void SqlServer::InstallSigtermStop(SqlServer* server) {
  g_sigterm_target.store(server, std::memory_order_relaxed);
  if (server == nullptr) {
    signal(SIGTERM, SIG_DFL);
    return;
  }
  std::call_once(g_sigterm_once, [] {
    if (pipe2(g_sigterm_pipe, O_CLOEXEC) != 0) return;
    // The drain runs on this watcher thread, never in signal context.
    // It lives for the rest of the process — SIGTERM ends it anyway.
    std::thread([] {
      char byte;
      for (;;) {
        ssize_t n = read(g_sigterm_pipe[0], &byte, 1);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return;
        if (SqlServer* target =
                g_sigterm_target.load(std::memory_order_relaxed)) {
          target->Stop();
        }
      }
    }).detach();
  });
  struct sigaction action {};
  action.sa_handler = SigtermSignalHandler;
  sigaction(SIGTERM, &action, nullptr);
}

}  // namespace net
}  // namespace sqlpl
