#include "sqlpl/net/socket_util.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

namespace sqlpl {
namespace net {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + strerror(errno);
}

Status FillAddr(const std::string& address, uint16_t port,
                sockaddr_in* addr) {
  memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (inet_pton(AF_INET, address.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + address);
  }
  return Status::OK();
}

}  // namespace

Result<int> ListenTcp(const std::string& address, uint16_t port,
                      int backlog, bool reuse_port) {
  sockaddr_in addr;
  SQLPL_RETURN_IF_ERROR(FillAddr(address, port, &addr));
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port) {
    // Must be set on every sibling before its bind — including the
    // first, or later listeners are refused with EADDRINUSE.
    if (setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      Status status = Status::Internal(Errno("setsockopt(SO_REUSEPORT)"));
      CloseFd(fd);
      return status;
    }
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Unavailable(Errno("bind"));
    CloseFd(fd);
    return status;
  }
  if (listen(fd, backlog) != 0) {
    Status status = Status::Unavailable(Errno("listen"));
    CloseFd(fd);
    return status;
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::Internal(Errno("getsockname"));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<int> ConnectTcp(const std::string& address, uint16_t port) {
  sockaddr_in addr;
  SQLPL_RETURN_IF_ERROR(FillAddr(address, port, &addr));
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    Status status = Status::Unavailable(Errno("connect"));
    CloseFd(fd);
    return status;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::Internal(Errno("fcntl(O_NONBLOCK)"));
  }
  return Status::OK();
}

void CloseFd(int fd) {
  if (fd < 0) return;
  // POSIX leaves the fd state unspecified after EINTR from close;
  // retrying risks closing a recycled descriptor. Close once.
  close(fd);
}

Status SendAll(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    ssize_t n = send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(Errno("send"));
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> RecvSome(int fd, void* buf, size_t size, Deadline deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (!deadline.is_never()) {
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline.remaining());
      if (remaining <= std::chrono::milliseconds::zero()) {
        return Status::DeadlineExceeded("recv deadline passed");
      }
      // Round up so a sub-millisecond remainder still waits.
      timeout_ms = static_cast<int>(remaining.count()) + 1;
    }
    pollfd pfd{fd, POLLIN, 0};
    int ready = poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(Errno("poll"));
    }
    if (ready == 0) {
      return Status::DeadlineExceeded("recv deadline passed");
    }
    ssize_t n = recv(fd, buf, size, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable(Errno("recv"));
    }
    return static_cast<size_t>(n);
  }
}

}  // namespace net
}  // namespace sqlpl
