#ifndef SQLPL_NET_WIRE_H_
#define SQLPL_NET_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sqlpl/exec/executor.h"
#include "sqlpl/service/parser_cache.h"
#include "sqlpl/sql/product_line.h"
#include "sqlpl/util/status.h"
#include "sqlpl/util/trace_context.h"

namespace sqlpl {
namespace net {

/// The framed wire protocol of the network serving layer
/// (docs/NETWORK.md). Every message is one *frame*:
///
///   uint32 LE payload length | payload
///
/// and every payload starts with a one-byte message type. All integers
/// are little-endian; strings are length-prefixed byte sequences
/// (uint16 for identifiers, uint32 for SQL text and response bodies),
/// never NUL-terminated. The encoding is version-free by construction:
/// unknown message types and out-of-range lengths are decode errors,
/// and the status-code table below is append-only.

/// Upper bound a server or client accepts for one frame's payload.
/// Anything larger is a protocol violation (the connection is closed),
/// not an allocation request.
inline constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

/// Bytes of the frame header (the uint32 payload length).
inline constexpr size_t kFrameHeaderBytes = 4;

enum class WireType : uint8_t {
  kParseRequest = 1,
  kParseResponse = 2,
  // Configurator negotiation frames (append-only, like the status
  // table): spec validation, partial-spec completion, and the variant
  // catalog listing.
  kValidateSpecRequest = 3,
  kValidateSpecResponse = 4,
  kCompleteSpecRequest = 5,
  kCompleteSpecResponse = 6,
  kListCatalogRequest = 7,
  kListCatalogResponse = 8,
  // Execution-tier frames (docs/EXECUTION.md): run a statement against
  // the server's registered tables and stream back row batches.
  kExecuteRequest = 9,
  kExecuteResponse = 10,
};

/// Parse frames (types 1 and 2) may carry an optional *extension block*
/// after their legacy fields:
///
///   uint8 ext_count | ext_count × (uint8 tag | uint16 len | len bytes)
///
/// The block is append-only and self-skipping: a decoder that does not
/// know a tag skips `len` bytes, and an absent block (payload ending at
/// the legacy fields) is the pre-extension format, so old frames decode
/// unchanged and old decoders were already rejecting what they cannot
/// carry. Known tags, per direction:
///
///   request  tag 1: trace context — trace_id u64, span_id u64
///   response tag 1: trace echo    — trace_id u64
///   response tag 2: stage table   — count u8, count × (stage u8,
///                                   micros u32)
///
/// Negotiation frames (types 3–8) have no extension block.

/// Stage ids of the response's per-stage timing breakdown, in pipeline
/// order. The table is append-only (mirrored by `obs::FlightStage`);
/// decoders keep unknown stage ids rather than reject them.
enum class WireStage : uint8_t {
  kDecode = 0,     // frame bytes -> request struct, on the loop thread
  kQueue = 1,      // dispatch -> worker pickup (pool queue wait)
  kAdmission = 2,  // admission gate + cache/parser resolution
  kParse = 3,      // the parse proper
  kRender = 4,     // parse tree -> S-expression body
  kEncode = 5,     // response struct -> frame bytes
  kWrite = 6,      // socket flush; always 0 in-frame (the flush happens
                   // after the frame is sealed — see docs/NETWORK.md)
  kExec = 7,       // execution tier: lowering + vectorized run
};

/// Stable lowercase stage name; "unknown" for unrecognized ids.
const char* WireStageName(uint8_t stage);

/// One row of the response stage table. `stage` is the raw wire id so
/// rows from newer servers survive a round-trip through old clients.
struct WireStageTiming {
  uint8_t stage = 0;
  uint32_t micros = 0;

  bool operator==(const WireStageTiming&) const = default;
};

/// A client's parse call, decoded. The dialect travels either inline
/// (`has_spec`, first request for that dialect) or as the 64-bit spec
/// fingerprint of an earlier inline spec — the server remembers every
/// spec it has seen, so steady-state requests carry 8 bytes of dialect
/// identity instead of the whole feature selection.
struct WireParseRequest {
  /// Client-chosen, echoed verbatim in the response; lets a client
  /// pipeline several requests on one connection and match replies.
  uint64_t request_id = 0;
  bool want_tree = true;
  bool has_spec = false;
  /// Deadline budget in milliseconds, measured from frame receipt at
  /// the server; 0 = no deadline.
  uint32_t deadline_ms = 0;
  /// Dialect identity when `!has_spec` (see `FingerprintSpec`).
  uint64_t fingerprint = 0;
  /// Dialect identity when `has_spec`.
  DialectSpec spec;
  std::string sql;
  /// Client-stamped trace identity (extension tag 1). Zero = untraced;
  /// the frame then carries no extension block and is byte-identical to
  /// the pre-extension encoding.
  TraceContext trace;
};

struct WireParseResponse {
  uint64_t request_id = 0;
  StatusCode status = StatusCode::kOk;
  CacheDisposition cache_disposition = CacheDisposition::kUnresolved;
  /// Server timing: parse proper, full in-service time, and the
  /// server-side frame turnaround (decode -> response enqueued).
  uint32_t parse_micros = 0;
  uint32_t total_micros = 0;
  uint32_t server_micros = 0;
  /// Fingerprint of the request's dialect — returned for spec-carrying
  /// requests so the client can switch to fingerprint-only identity.
  uint64_t fingerprint = 0;
  /// S-expression of the parse tree on success (empty when the request
  /// set `want_tree = false`); the error message otherwise.
  std::string body;
  /// Echo of the request's trace_id (extension tag 1); zero when the
  /// request was untraced.
  uint64_t trace_id = 0;
  /// Per-stage timing breakdown (extension tag 2), in pipeline order.
  /// Empty for untraced requests and from pre-extension servers.
  std::vector<WireStageTiming> stages;

  bool ok() const { return status == StatusCode::kOk; }
};

/// A client's execute call (type 9): parse + lower + run `sql` against
/// the server's registered tables under the named dialect. Dialect
/// identity travels exactly like in `WireParseRequest`: inline spec on
/// first use, 64-bit fingerprint afterwards.
struct WireExecuteRequest {
  uint64_t request_id = 0;
  bool has_spec = false;
  /// Deadline budget in milliseconds from frame receipt; 0 = none.
  uint32_t deadline_ms = 0;
  uint64_t fingerprint = 0;
  DialectSpec spec;
  std::string sql;
  /// Result row cap; 0 = server default (the server always caps so the
  /// response stays under the frame limit).
  uint64_t max_rows = 0;
  /// Trace identity (extension tag 1), as in `WireParseRequest`.
  TraceContext trace;
};

/// The execute reply (type 10). Row data is columnar per batch,
/// mirroring the executor's output exactly (`exec::RowBatch`), so an
/// in-process `ExecuteQuery` result and a decoded wire result compare
/// byte-for-byte:
///
///   u16 ncols × (str16 name, u8 type)          — schema table
///   u32 nbatches × (u32 nrows, per column:     — row batches
///       int64/double cells as u64 LE (doubles bit-cast),
///       string cells as str16)
///
/// On error the schema and batch tables are empty and `message` carries
/// the diagnostic (for `kFeatureUnsupported`, the feature-attributed
/// text, byte-golden across dialects — docs/EXECUTION.md).
struct WireExecuteResponse {
  uint64_t request_id = 0;
  StatusCode status = StatusCode::kOk;
  CacheDisposition cache_disposition = CacheDisposition::kUnresolved;
  /// Server timing: semantic lowering, executor run, full in-service
  /// time, and the server-side frame turnaround.
  uint32_t lower_micros = 0;
  uint32_t exec_micros = 0;
  uint32_t total_micros = 0;
  uint32_t server_micros = 0;
  uint64_t fingerprint = 0;
  uint64_t num_rows = 0;
  /// Set when the row cap cut rows the query would have produced.
  bool truncated = false;
  /// Error text; empty on success.
  std::string message;
  std::vector<std::string> column_names;
  std::vector<exec::ColumnType> column_types;
  std::vector<exec::RowBatch> batches;
  /// Trace echo + stage table (extension tags 1 and 2), as in
  /// `WireParseResponse`; the stage table gains a `kExec` row.
  uint64_t trace_id = 0;
  std::vector<WireStageTiming> stages;

  bool ok() const { return status == StatusCode::kOk; }
};

/// One culprit of a conflict explanation: `selected` distinguishes "you
/// selected this" (+) from "this is deselected/missing" (−). The wire
/// mirror of `fm::ConflictItem`.
struct WireConflictItem {
  std::string feature;
  bool selected = true;

  bool operator==(const WireConflictItem&) const = default;
};

/// A minimal conflict as carried by `kInvalidConfig` responses: the
/// smallest set of mutually incompatible selections plus the violated
/// constraint's human-readable provenance.
struct WireConflict {
  std::vector<WireConflictItem> items;
  std::string reason;

  bool operator==(const WireConflict&) const = default;
};

/// Asks the server's configurator whether `spec` is a valid
/// configuration of the feature model, without parsing anything.
struct WireValidateRequest {
  uint64_t request_id = 0;
  DialectSpec spec;
};

/// `status` is `kOk` (spec valid; `fingerprint` identifies it for
/// follow-up `ParseByFingerprint` calls) or `kInvalidConfig`
/// (`conflict` names the minimal incompatible selection set).
struct WireValidateResponse {
  uint64_t request_id = 0;
  StatusCode status = StatusCode::kOk;
  uint64_t fingerprint = 0;
  WireConflict conflict;
  /// Human-readable rendering of the outcome (empty on success).
  std::string message;

  bool ok() const { return status == StatusCode::kOk; }
};

/// Asks the configurator to auto-complete the partial `spec`.
struct WireCompleteRequest {
  uint64_t request_id = 0;
  DialectSpec spec;
};

/// On `kOk`, `has_spec` is set and `spec` is the completed canonical
/// selection, registered server-side under `fingerprint`. On
/// `kInvalidConfig` the partial selection was already contradictory and
/// `conflict`/`message` explain why.
struct WireCompleteResponse {
  uint64_t request_id = 0;
  StatusCode status = StatusCode::kOk;
  bool has_spec = false;
  DialectSpec spec;
  uint64_t fingerprint = 0;
  WireConflict conflict;
  std::string message;

  bool ok() const { return status == StatusCode::kOk; }
};

/// Asks for the server's precomputed variant catalog.
struct WireCatalogRequest {
  uint64_t request_id = 0;
};

/// One catalog entry: a named, known-valid variant a client can adopt
/// by fingerprint without ever shipping a spec.
struct WireCatalogEntry {
  uint64_t fingerprint = 0;
  std::string name;
  std::vector<std::string> features;

  bool operator==(const WireCatalogEntry&) const = default;
};

struct WireCatalogResponse {
  uint64_t request_id = 0;
  StatusCode status = StatusCode::kOk;
  std::vector<WireCatalogEntry> entries;
  std::string message;

  bool ok() const { return status == StatusCode::kOk; }
};

/// Stable one-byte wire encoding of `StatusCode`. The table is
/// append-only — codes never renumber — so old clients read new
/// servers' frames (unknown values decode as `kInternal`).
uint8_t StatusCodeToWire(StatusCode code);
StatusCode StatusCodeFromWire(uint8_t wire);

/// Appends one complete frame (header + payload) to `*out`.
void EncodeRequestFrame(const WireParseRequest& request, std::string* out);
void EncodeResponseFrame(const WireParseResponse& response, std::string* out);

/// Byte offset of `server_micros` within an encoded parse-response
/// *frame* (header 4 + type 1 + request_id 8 + status 1 + disposition 1
/// + parse_micros 4 + total_micros 4). Every field before it is
/// fixed-width, so the offset is a protocol constant; it lets the
/// server encode a response once and stamp the measured turnaround in
/// place afterwards, instead of the historical measure-then-re-encode
/// double pass.
inline constexpr size_t kServerMicrosFrameOffset = 23;

/// Overwrites `server_micros` in an already-encoded parse-response
/// frame starting at `frame[frame_off]` (little-endian, in place).
void PatchServerMicros(std::string* frame, size_t frame_off,
                       uint32_t server_micros);
void EncodeValidateRequestFrame(const WireValidateRequest& request,
                                std::string* out);
void EncodeValidateResponseFrame(const WireValidateResponse& response,
                                 std::string* out);
void EncodeCompleteRequestFrame(const WireCompleteRequest& request,
                                std::string* out);
void EncodeCompleteResponseFrame(const WireCompleteResponse& response,
                                 std::string* out);
void EncodeCatalogRequestFrame(const WireCatalogRequest& request,
                               std::string* out);
void EncodeCatalogResponseFrame(const WireCatalogResponse& response,
                                std::string* out);
void EncodeExecuteRequestFrame(const WireExecuteRequest& request,
                               std::string* out);
void EncodeExecuteResponseFrame(const WireExecuteResponse& response,
                                std::string* out);

/// Inspects the front of a receive buffer. Returns the total size
/// (header + payload) of the first frame when one is complete, 0 when
/// more bytes are needed, or `kInvalidArgument` when the declared
/// payload length exceeds `max_frame_bytes` — the stream is then
/// unrecoverable and the connection must be closed.
Result<size_t> CompleteFrameSize(std::span<const uint8_t> buffer,
                                 size_t max_frame_bytes);

/// Decodes one frame *payload* (header already stripped). Rejects
/// unknown message types, truncated or oversized fields, and trailing
/// garbage with `kInvalidArgument`.
Status DecodeRequestPayload(std::span<const uint8_t> payload,
                            WireParseRequest* out);
Status DecodeResponsePayload(std::span<const uint8_t> payload,
                             WireParseResponse* out);
Status DecodeValidateRequestPayload(std::span<const uint8_t> payload,
                                    WireValidateRequest* out);
Status DecodeValidateResponsePayload(std::span<const uint8_t> payload,
                                     WireValidateResponse* out);
Status DecodeCompleteRequestPayload(std::span<const uint8_t> payload,
                                    WireCompleteRequest* out);
Status DecodeCompleteResponsePayload(std::span<const uint8_t> payload,
                                     WireCompleteResponse* out);
Status DecodeCatalogRequestPayload(std::span<const uint8_t> payload,
                                   WireCatalogRequest* out);
Status DecodeCatalogResponsePayload(std::span<const uint8_t> payload,
                                    WireCatalogResponse* out);
Status DecodeExecuteRequestPayload(std::span<const uint8_t> payload,
                                   WireExecuteRequest* out);
Status DecodeExecuteResponsePayload(std::span<const uint8_t> payload,
                                    WireExecuteResponse* out);

/// The message type of a complete frame's payload, or 0 when empty.
uint8_t PayloadType(std::span<const uint8_t> payload);

}  // namespace net
}  // namespace sqlpl

#endif  // SQLPL_NET_WIRE_H_
