#ifndef SQLPL_NET_HTTP_SIDEBAND_H_
#define SQLPL_NET_HTTP_SIDEBAND_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

#include "sqlpl/util/status.h"

namespace sqlpl {
namespace net {

/// What a sideband handler returns for one GET.
struct HttpReply {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// A deliberately tiny HTTP/1.0 server for the operational sideband of
/// `SqlServer`: `GET /metrics` (Prometheus scrape) and `GET /healthz`
/// (load-balancer probe). One accept thread, one request per
/// connection, `Connection: close` — scrapes are rare and small, so
/// the simplest correct server wins over an event-driven one here.
/// Anything that is not a well-formed GET gets a 4xx/405 and the
/// connection is closed either way.
class HttpSideband {
 public:
  using Handler = std::function<HttpReply(std::string_view path)>;

  explicit HttpSideband(Handler handler);
  ~HttpSideband();

  HttpSideband(const HttpSideband&) = delete;
  HttpSideband& operator=(const HttpSideband&) = delete;

  /// Binds `address:port` (0 = ephemeral) and starts the accept thread.
  Status Start(const std::string& address, uint16_t port);

  /// The bound port; 0 before `Start`.
  uint16_t port() const { return port_; }

  /// Stops accepting and joins the thread. Idempotent.
  void Stop();

 private:
  void AcceptLoop();
  void ServeOne(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace net
}  // namespace sqlpl

#endif  // SQLPL_NET_HTTP_SIDEBAND_H_
