#ifndef SQLPL_NET_SQL_CLIENT_H_
#define SQLPL_NET_SQL_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sqlpl/net/wire.h"
#include "sqlpl/util/cancellation.h"

namespace sqlpl {
namespace net {

/// Draws a process-unique seed for the high 32 bits of auto-stamped
/// trace ids. Shared by `SqlClient` and `SqlClientPool`, so no two
/// clients in one process ever stamp colliding ids.
uint32_t NextClientTraceSeed();

/// Blocking client for the `SqlServer` wire protocol. One TCP
/// connection, synchronous by default (`Parse` = send one frame, wait
/// for its response), with explicit `Send`/`Receive` halves for callers
/// that pipeline several requests before reading replies.
///
/// Dialect identity follows the protocol's two forms: `Parse` ships the
/// spec inline (teaching it to the server), `ParseByFingerprint` sends
/// the 8-byte fingerprint of a spec the server has already seen. Every
/// response echoes the dialect fingerprint, so a client can switch
/// forms after its first call.
///
/// Negotiation (docs/CONFIGURATOR.md): `ValidateSpec` runs the server's
/// feature-model configurator without parsing anything, `CompleteSpec`
/// auto-completes a partial spec into a canonical registered one, and
/// `ListCatalog` fetches the precomputed popular-variant catalog. All
/// three register the resulting spec server-side, so the follow-up
/// parse can go fingerprint-only.
///
/// Not thread-safe: one `SqlClient` per thread (connections are cheap;
/// the server multiplexes).
class SqlClient {
 public:
  SqlClient() = default;
  ~SqlClient();

  SqlClient(const SqlClient&) = delete;
  SqlClient& operator=(const SqlClient&) = delete;

  /// Movable: a helper can build a connected client and hand it over.
  SqlClient(SqlClient&& other) noexcept { *this = std::move(other); }
  SqlClient& operator=(SqlClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
      next_request_id_ = other.next_request_id_;
      trace_seed_ = other.trace_seed_;
      in_ = std::move(other.in_);
      in_off_ = other.in_off_;
      other.in_.clear();
      other.in_off_ = 0;
    }
    return *this;
  }

  Status Connect(const std::string& address, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One synchronous parse with the spec inline. `deadline_ms` is the
  /// server-side budget carried in the frame (0 = none); the client
  /// itself waits under `wait` (default: forever) for the reply.
  Result<WireParseResponse> Parse(const DialectSpec& spec,
                                  std::string_view sql,
                                  uint32_t deadline_ms = 0,
                                  bool want_tree = true,
                                  Deadline wait = Deadline::Never());

  /// Same, with fingerprint-only dialect identity.
  Result<WireParseResponse> ParseByFingerprint(uint64_t fingerprint,
                                               std::string_view sql,
                                               uint32_t deadline_ms = 0,
                                               bool want_tree = true,
                                               Deadline wait =
                                                   Deadline::Never());

  /// Pipelining half 1: frame and send `request`. A zero `request_id`
  /// is replaced with an auto-incrementing one, and a zero
  /// `trace.trace_id` is auto-stamped with a process-unique id
  /// (client-seed high bits | sequence low bits) — every request this
  /// client sends is traceable end-to-end unless the caller stamped its
  /// own context. Both land back in the mutable `request`.
  Status Send(WireParseRequest& request);

  /// Pipelining half 2: the next response frame off the wire, in server
  /// completion order — match `request_id` yourself when pipelining.
  Result<WireParseResponse> Receive(Deadline wait = Deadline::Never());

  /// Synchronous configurator check of `spec`. A `kInvalidConfig`
  /// response (still `ok()` at the transport level — inspect
  /// `response.status`) carries the structured minimal conflict.
  Result<WireValidateResponse> ValidateSpec(const DialectSpec& spec,
                                            Deadline wait =
                                                Deadline::Never());

  /// Synchronous auto-completion of a partial `spec`. On success the
  /// response holds the canonical completed spec plus its fingerprint,
  /// already registered server-side for `ParseByFingerprint`.
  Result<WireCompleteResponse> CompleteSpec(const DialectSpec& spec,
                                            Deadline wait =
                                                Deadline::Never());

  /// Fetches the server's precomputed variant catalog (name,
  /// fingerprint, and feature list per popular variant).
  Result<WireCatalogResponse> ListCatalog(Deadline wait =
                                              Deadline::Never());

  /// One synchronous query execution with the spec inline: the server
  /// parses `sql` under the dialect, lowers it to a logical plan
  /// (feature-gated — clauses outside the variant come back as
  /// `kFeatureUnsupported` with the missing feature named), runs it on
  /// the vectorized executor, and streams the result back as columnar
  /// row batches. `max_rows` of 0 accepts the server's default cap.
  Result<WireExecuteResponse> Execute(const DialectSpec& spec,
                                      std::string_view sql,
                                      uint32_t deadline_ms = 0,
                                      uint64_t max_rows = 0,
                                      Deadline wait = Deadline::Never());

  /// Same, with fingerprint-only dialect identity.
  Result<WireExecuteResponse> ExecuteByFingerprint(uint64_t fingerprint,
                                                   std::string_view sql,
                                                   uint32_t deadline_ms = 0,
                                                   uint64_t max_rows = 0,
                                                   Deadline wait =
                                                       Deadline::Never());

 private:
  Result<WireExecuteResponse> CallExecute(WireExecuteRequest request,
                                          Deadline wait);
  Result<WireParseResponse> Call(WireParseRequest request, Deadline wait);

  /// Sends one already-encoded frame (assigning `*request_id` from the
  /// auto-increment counter first when zero).
  Status SendFrame(const std::string& frame);

  /// Reads one complete frame payload off the wire into `*payload`
  /// (valid until the next Receive*/Parse call consumes the buffer).
  Status ReceivePayload(std::span<const uint8_t>* payload, Deadline wait);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  /// High 32 bits of auto-stamped trace ids; drawn lazily from a
  /// process-global counter so concurrent clients never collide.
  uint64_t trace_seed_ = 0;
  std::vector<uint8_t> in_;
  size_t in_off_ = 0;
};

}  // namespace net
}  // namespace sqlpl

#endif  // SQLPL_NET_SQL_CLIENT_H_
