#include "sqlpl/net/http_sideband.h"

#include <sys/socket.h>

#include <cstdio>
#include <utility>

#include "sqlpl/net/socket_util.h"

namespace sqlpl {
namespace net {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

void WriteReply(int fd, const HttpReply& reply) {
  char header[256];
  int n = std::snprintf(header, sizeof(header),
                        "HTTP/1.0 %d %s\r\n"
                        "Content-Type: %s\r\n"
                        "Content-Length: %zu\r\n"
                        "Connection: close\r\n"
                        "\r\n",
                        reply.status, ReasonPhrase(reply.status),
                        reply.content_type.c_str(), reply.body.size());
  if (n <= 0) return;
  if (!SendAll(fd, header, static_cast<size_t>(n)).ok()) return;
  (void)SendAll(fd, reply.body.data(), reply.body.size());
}

}  // namespace

HttpSideband::HttpSideband(Handler handler) : handler_(std::move(handler)) {}

HttpSideband::~HttpSideband() { Stop(); }

Status HttpSideband::Start(const std::string& address, uint16_t port) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("sideband already started");
  }
  Result<int> fd = ListenTcp(address, port, /*backlog=*/16);
  if (!fd.ok()) return fd.status();
  Result<uint16_t> bound = LocalPort(*fd);
  if (!bound.ok()) {
    CloseFd(*fd);
    return bound.status();
  }
  listen_fd_ = *fd;
  port_ = *bound;
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpSideband::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Unblocks the accept() in the sideband thread; the fd itself is
  // closed after the join so it cannot be recycled under the thread.
  shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  CloseFd(listen_fd_);
  listen_fd_ = -1;
}

void HttpSideband::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      continue;  // EINTR / transient accept failure
    }
    ServeOne(fd);
    CloseFd(fd);
  }
}

void HttpSideband::ServeOne(int fd) {
  // Read until the end of the request headers, bounded in size and
  // time; the request line is all we use.
  std::string request;
  char buf[1024];
  Deadline read_deadline = Deadline::After(std::chrono::seconds(5));
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 8192) {
    Result<size_t> n = RecvSome(fd, buf, sizeof(buf), read_deadline);
    if (!n.ok() || *n == 0) return;
    request.append(buf, *n);
  }

  size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) {
    WriteReply(fd, {400, "text/plain; charset=utf-8", "bad request\n"});
    return;
  }
  std::string_view line(request.data(), line_end);
  if (line.substr(0, 4) != "GET ") {
    WriteReply(fd, {405, "text/plain; charset=utf-8", "GET only\n"});
    return;
  }
  std::string_view rest = line.substr(4);
  size_t space = rest.find(' ');
  std::string_view path = space == std::string_view::npos
                              ? rest
                              : rest.substr(0, space);
  WriteReply(fd, handler_(path));
}

}  // namespace net
}  // namespace sqlpl
