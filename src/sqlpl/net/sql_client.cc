#include "sqlpl/net/sql_client.h"

#include <atomic>
#include <utility>

#include "sqlpl/net/socket_util.h"

namespace sqlpl {
namespace net {

namespace {

// Source of per-client trace seeds. Starts at 1 so a stamped trace_id
// is never zero (zero = untraced on the wire).
std::atomic<uint32_t> next_trace_seed{1};

}  // namespace

uint32_t NextClientTraceSeed() {
  return next_trace_seed.fetch_add(1, std::memory_order_relaxed);
}

SqlClient::~SqlClient() { Close(); }

Status SqlClient::Connect(const std::string& address, uint16_t port) {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  Result<int> fd = ConnectTcp(address, port);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  in_.clear();
  in_off_ = 0;
  return Status::OK();
}

void SqlClient::Close() {
  CloseFd(fd_);
  fd_ = -1;
  in_.clear();
  in_off_ = 0;
}

Result<WireParseResponse> SqlClient::Parse(const DialectSpec& spec,
                                           std::string_view sql,
                                           uint32_t deadline_ms,
                                           bool want_tree, Deadline wait) {
  WireParseRequest request;
  request.has_spec = true;
  request.spec = spec;
  request.sql = std::string(sql);
  request.deadline_ms = deadline_ms;
  request.want_tree = want_tree;
  return Call(std::move(request), wait);
}

Result<WireParseResponse> SqlClient::ParseByFingerprint(
    uint64_t fingerprint, std::string_view sql, uint32_t deadline_ms,
    bool want_tree, Deadline wait) {
  WireParseRequest request;
  request.has_spec = false;
  request.fingerprint = fingerprint;
  request.sql = std::string(sql);
  request.deadline_ms = deadline_ms;
  request.want_tree = want_tree;
  return Call(std::move(request), wait);
}

Status SqlClient::Send(WireParseRequest& request) {
  if (request.request_id == 0) request.request_id = next_request_id_++;
  if (request.trace.trace_id == 0) {
    if (trace_seed_ == 0) trace_seed_ = NextClientTraceSeed();
    // Seed in the high bits, the request's sequence number in the low:
    // unique across clients, monotone within one.
    request.trace.trace_id = (trace_seed_ << 32) | request.request_id;
  }
  std::string frame;
  EncodeRequestFrame(request, &frame);
  return SendFrame(frame);
}

Status SqlClient::SendFrame(const std::string& frame) {
  if (fd_ < 0) return Status::Unavailable("not connected");
  return SendAll(fd_, frame.data(), frame.size());
}

Status SqlClient::ReceivePayload(std::span<const uint8_t>* payload,
                                 Deadline wait) {
  if (fd_ < 0) return Status::Unavailable("not connected");
  for (;;) {
    std::span<const uint8_t> unread(in_.data() + in_off_,
                                    in_.size() - in_off_);
    Result<size_t> frame_size =
        CompleteFrameSize(unread, kDefaultMaxFrameBytes);
    if (!frame_size.ok()) return frame_size.status();
    if (*frame_size > 0) {
      *payload = unread.subspan(kFrameHeaderBytes,
                                *frame_size - kFrameHeaderBytes);
      // The payload view stays valid: consuming the frame only moves
      // the offset, the bytes are reclaimed on the *next* receive.
      in_off_ += *frame_size;
      return Status::OK();
    }
    if (in_off_ > 0 && in_off_ == in_.size()) {
      in_.clear();
      in_off_ = 0;
    }
    char buf[16 * 1024];
    Result<size_t> n = RecvSome(fd_, buf, sizeof(buf), wait);
    if (!n.ok()) return n.status();
    if (*n == 0) {
      return Status::Unavailable("server closed the connection");
    }
    in_.insert(in_.end(), buf, buf + *n);
  }
}

Result<WireParseResponse> SqlClient::Receive(Deadline wait) {
  std::span<const uint8_t> payload;
  SQLPL_RETURN_IF_ERROR(ReceivePayload(&payload, wait));
  WireParseResponse response;
  SQLPL_RETURN_IF_ERROR(DecodeResponsePayload(payload, &response));
  return response;
}

Result<WireValidateResponse> SqlClient::ValidateSpec(const DialectSpec& spec,
                                                     Deadline wait) {
  WireValidateRequest request;
  request.request_id = next_request_id_++;
  request.spec = spec;
  std::string frame;
  EncodeValidateRequestFrame(request, &frame);
  SQLPL_RETURN_IF_ERROR(SendFrame(frame));
  std::span<const uint8_t> payload;
  SQLPL_RETURN_IF_ERROR(ReceivePayload(&payload, wait));
  WireValidateResponse response;
  SQLPL_RETURN_IF_ERROR(DecodeValidateResponsePayload(payload, &response));
  if (response.request_id != request.request_id) {
    return Status::Internal("response for a different request id");
  }
  return response;
}

Result<WireCompleteResponse> SqlClient::CompleteSpec(const DialectSpec& spec,
                                                     Deadline wait) {
  WireCompleteRequest request;
  request.request_id = next_request_id_++;
  request.spec = spec;
  std::string frame;
  EncodeCompleteRequestFrame(request, &frame);
  SQLPL_RETURN_IF_ERROR(SendFrame(frame));
  std::span<const uint8_t> payload;
  SQLPL_RETURN_IF_ERROR(ReceivePayload(&payload, wait));
  WireCompleteResponse response;
  SQLPL_RETURN_IF_ERROR(DecodeCompleteResponsePayload(payload, &response));
  if (response.request_id != request.request_id) {
    return Status::Internal("response for a different request id");
  }
  return response;
}

Result<WireCatalogResponse> SqlClient::ListCatalog(Deadline wait) {
  WireCatalogRequest request;
  request.request_id = next_request_id_++;
  std::string frame;
  EncodeCatalogRequestFrame(request, &frame);
  SQLPL_RETURN_IF_ERROR(SendFrame(frame));
  std::span<const uint8_t> payload;
  SQLPL_RETURN_IF_ERROR(ReceivePayload(&payload, wait));
  WireCatalogResponse response;
  SQLPL_RETURN_IF_ERROR(DecodeCatalogResponsePayload(payload, &response));
  if (response.request_id != request.request_id) {
    return Status::Internal("response for a different request id");
  }
  return response;
}

Result<WireExecuteResponse> SqlClient::Execute(const DialectSpec& spec,
                                               std::string_view sql,
                                               uint32_t deadline_ms,
                                               uint64_t max_rows,
                                               Deadline wait) {
  WireExecuteRequest request;
  request.has_spec = true;
  request.spec = spec;
  request.sql = std::string(sql);
  request.deadline_ms = deadline_ms;
  request.max_rows = max_rows;
  return CallExecute(std::move(request), wait);
}

Result<WireExecuteResponse> SqlClient::ExecuteByFingerprint(
    uint64_t fingerprint, std::string_view sql, uint32_t deadline_ms,
    uint64_t max_rows, Deadline wait) {
  WireExecuteRequest request;
  request.has_spec = false;
  request.fingerprint = fingerprint;
  request.sql = std::string(sql);
  request.deadline_ms = deadline_ms;
  request.max_rows = max_rows;
  return CallExecute(std::move(request), wait);
}

Result<WireExecuteResponse> SqlClient::CallExecute(WireExecuteRequest request,
                                                   Deadline wait) {
  if (request.request_id == 0) request.request_id = next_request_id_++;
  if (request.trace.trace_id == 0) {
    if (trace_seed_ == 0) trace_seed_ = NextClientTraceSeed();
    request.trace.trace_id = (trace_seed_ << 32) | request.request_id;
  }
  std::string frame;
  EncodeExecuteRequestFrame(request, &frame);
  SQLPL_RETURN_IF_ERROR(SendFrame(frame));
  std::span<const uint8_t> payload;
  SQLPL_RETURN_IF_ERROR(ReceivePayload(&payload, wait));
  WireExecuteResponse response;
  SQLPL_RETURN_IF_ERROR(DecodeExecuteResponsePayload(payload, &response));
  if (response.request_id != request.request_id) {
    return Status::Internal("response for a different request id");
  }
  return response;
}

Result<WireParseResponse> SqlClient::Call(WireParseRequest request,
                                          Deadline wait) {
  SQLPL_RETURN_IF_ERROR(Send(request));
  Result<WireParseResponse> response = Receive(wait);
  if (response.ok() && response->request_id != request.request_id) {
    return Status::Internal("response for a different request id (pipelined "
                            "reads must use Send/Receive)");
  }
  return response;
}

}  // namespace net
}  // namespace sqlpl
