#ifndef SQLPL_NET_SOCKET_UTIL_H_
#define SQLPL_NET_SOCKET_UTIL_H_

#include <cstdint>
#include <string>

#include "sqlpl/util/cancellation.h"
#include "sqlpl/util/status.h"

namespace sqlpl {
namespace net {

/// Thin POSIX socket helpers shared by the server, the client, and the
/// HTTP sideband. All functions return `Status`/`Result` instead of
/// errno; fds are plain ints owned by the caller (the server and client
/// classes wrap them with RAII at their level).

/// Creates a listening TCP socket bound to `address:port` with
/// SO_REUSEADDR. `port` 0 binds an ephemeral port — read it back with
/// `LocalPort`. With `reuse_port` set the socket is additionally bound
/// with SO_REUSEPORT, so several listeners can share one port and the
/// kernel load-balances incoming connections across them — the sharded
/// server's multi-acceptor mode (one listener per event loop).
Result<int> ListenTcp(const std::string& address, uint16_t port,
                      int backlog = 128, bool reuse_port = false);

/// The port a bound socket ended up on (resolves ephemeral binds).
Result<uint16_t> LocalPort(int fd);

/// Blocking TCP connect to `address:port`.
Result<int> ConnectTcp(const std::string& address, uint16_t port);

Status SetNonBlocking(int fd);

/// EINTR-safe close; tolerates fd < 0.
void CloseFd(int fd);

/// Blocking-socket send of the whole buffer (EINTR/partial-write safe,
/// SIGPIPE suppressed). Fails `kUnavailable` when the peer is gone.
Status SendAll(int fd, const void* data, size_t size);

/// Blocking-socket receive of at least one byte, waiting at most until
/// `deadline` (poll + recv). Returns 0 on orderly peer shutdown;
/// `kDeadlineExceeded` when the deadline passes first; `kUnavailable`
/// on connection errors.
Result<size_t> RecvSome(int fd, void* buf, size_t size, Deadline deadline);

}  // namespace net
}  // namespace sqlpl

#endif  // SQLPL_NET_SOCKET_UTIL_H_
