#include "sqlpl/exec/executor.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "sqlpl/service/fault_injector.h"

namespace sqlpl {
namespace exec {
namespace {

// ---------------------------------------------------------------------------
// Column views and vectorized expression evaluation
// ---------------------------------------------------------------------------

/// Borrowed pointer view of one column's rows — lets the evaluator run
/// directly over the base table's vectors (scan) and over materialized
/// batches (everything above) with one code path.
struct ColRef {
  ColumnType type = ColumnType::kInt64;
  const int64_t* i64 = nullptr;
  const double* f64 = nullptr;
  const std::string* str = nullptr;
};

struct BatchRef {
  size_t rows = 0;
  std::vector<ColRef> cols;
};

BatchRef RefOfTable(const Table& table, size_t begin, size_t rows) {
  BatchRef ref;
  ref.rows = rows;
  ref.cols.resize(table.num_columns());
  for (size_t i = 0; i < table.num_columns(); ++i) {
    const Column& column = table.column(i);
    ref.cols[i].type = column.type;
    switch (column.type) {
      case ColumnType::kInt64: ref.cols[i].i64 = column.i64.data() + begin; break;
      case ColumnType::kDouble: ref.cols[i].f64 = column.f64.data() + begin; break;
      case ColumnType::kString: ref.cols[i].str = column.str.data() + begin; break;
    }
  }
  return ref;
}

BatchRef RefOfBatch(const RowBatch& batch) {
  BatchRef ref;
  ref.rows = batch.num_rows;
  ref.cols.resize(batch.columns.size());
  for (size_t i = 0; i < batch.columns.size(); ++i) {
    const Column& column = batch.columns[i];
    ref.cols[i].type = column.type;
    // Columns the scan pruned are left empty; expressions above never
    // reference them, so null data pointers are fine.
    if (column.size() != batch.num_rows) continue;
    switch (column.type) {
      case ColumnType::kInt64: ref.cols[i].i64 = column.i64.data(); break;
      case ColumnType::kDouble: ref.cols[i].f64 = column.f64.data(); break;
      case ColumnType::kString: ref.cols[i].str = column.str.data(); break;
    }
  }
  return ref;
}

/// An evaluated vector: one value per input row. Strings are borrowed
/// (pointers into the table, a batch, or the plan's literal storage) —
/// only result materialization deep-copies them.
struct Vec {
  ColumnType type = ColumnType::kInt64;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<const std::string*> str;
};

inline double NumericAt(const Vec& vec, size_t i) {
  return vec.type == ColumnType::kDouble ? vec.f64[i]
                                         : static_cast<double>(vec.i64[i]);
}

Status EvalExpr(const PlanExpr& expr, const BatchRef& in, Vec* out) {
  const size_t n = in.rows;
  out->type = expr.type;
  switch (expr.op) {
    case ExprOp::kColumn: {
      const ColRef& col = in.cols[expr.column];
      out->type = col.type;
      switch (col.type) {
        case ColumnType::kInt64: out->i64.assign(col.i64, col.i64 + n); break;
        case ColumnType::kDouble: out->f64.assign(col.f64, col.f64 + n); break;
        case ColumnType::kString: {
          out->str.resize(n);
          for (size_t i = 0; i < n; ++i) out->str[i] = &col.str[i];
          break;
        }
      }
      return Status::OK();
    }
    case ExprOp::kLiteralInt:
      out->i64.assign(n, expr.i64);
      return Status::OK();
    case ExprOp::kLiteralDouble:
      out->f64.assign(n, expr.f64);
      return Status::OK();
    case ExprOp::kLiteralString:
      // The plan outlives the query; pointing at its literal is safe.
      out->str.assign(n, &expr.str);
      return Status::OK();
    case ExprOp::kNot: {
      Vec child;
      SQLPL_RETURN_IF_ERROR(EvalExpr(expr.children[0], in, &child));
      out->i64.resize(n);
      for (size_t i = 0; i < n; ++i) out->i64[i] = child.i64[i] == 0 ? 1 : 0;
      return Status::OK();
    }
    case ExprOp::kNeg: {
      Vec child;
      SQLPL_RETURN_IF_ERROR(EvalExpr(expr.children[0], in, &child));
      if (expr.type == ColumnType::kDouble) {
        out->f64.resize(n);
        for (size_t i = 0; i < n; ++i) out->f64[i] = -NumericAt(child, i);
      } else {
        out->i64.resize(n);
        for (size_t i = 0; i < n; ++i) out->i64[i] = -child.i64[i];
      }
      return Status::OK();
    }
    case ExprOp::kAnd:
    case ExprOp::kOr: {
      // No short-circuit: both sides evaluate vectorized over the whole
      // batch (docs/EXECUTION.md documents the division caveat).
      Vec lhs;
      Vec rhs;
      SQLPL_RETURN_IF_ERROR(EvalExpr(expr.children[0], in, &lhs));
      SQLPL_RETURN_IF_ERROR(EvalExpr(expr.children[1], in, &rhs));
      out->i64.resize(n);
      if (expr.op == ExprOp::kAnd) {
        for (size_t i = 0; i < n; ++i) {
          out->i64[i] = (lhs.i64[i] != 0 && rhs.i64[i] != 0) ? 1 : 0;
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          out->i64[i] = (lhs.i64[i] != 0 || rhs.i64[i] != 0) ? 1 : 0;
        }
      }
      return Status::OK();
    }
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe: {
      Vec lhs;
      Vec rhs;
      SQLPL_RETURN_IF_ERROR(EvalExpr(expr.children[0], in, &lhs));
      SQLPL_RETURN_IF_ERROR(EvalExpr(expr.children[1], in, &rhs));
      out->i64.resize(n);
      auto emit = [&](auto cmp) {
        for (size_t i = 0; i < n; ++i) out->i64[i] = cmp(i) ? 1 : 0;
      };
      auto dispatch = [&](auto value) {
        switch (expr.op) {
          case ExprOp::kEq: emit([&](size_t i) { return value(i) == 0; }); break;
          case ExprOp::kNe: emit([&](size_t i) { return value(i) != 0; }); break;
          case ExprOp::kLt: emit([&](size_t i) { return value(i) < 0; }); break;
          case ExprOp::kLe: emit([&](size_t i) { return value(i) <= 0; }); break;
          case ExprOp::kGt: emit([&](size_t i) { return value(i) > 0; }); break;
          default: emit([&](size_t i) { return value(i) >= 0; }); break;
        }
      };
      if (lhs.type == ColumnType::kString) {
        dispatch([&](size_t i) { return lhs.str[i]->compare(*rhs.str[i]); });
      } else if (lhs.type == ColumnType::kInt64 &&
                 rhs.type == ColumnType::kInt64) {
        dispatch([&](size_t i) {
          return lhs.i64[i] < rhs.i64[i] ? -1 : (lhs.i64[i] > rhs.i64[i] ? 1 : 0);
        });
      } else {
        dispatch([&](size_t i) {
          double a = NumericAt(lhs, i);
          double b = NumericAt(rhs, i);
          return a < b ? -1 : (a > b ? 1 : 0);
        });
      }
      return Status::OK();
    }
    case ExprOp::kAdd:
    case ExprOp::kSub:
    case ExprOp::kMul:
    case ExprOp::kDiv: {
      Vec lhs;
      Vec rhs;
      SQLPL_RETURN_IF_ERROR(EvalExpr(expr.children[0], in, &lhs));
      SQLPL_RETURN_IF_ERROR(EvalExpr(expr.children[1], in, &rhs));
      if (expr.type == ColumnType::kInt64) {
        out->i64.resize(n);
        switch (expr.op) {
          case ExprOp::kAdd:
            for (size_t i = 0; i < n; ++i) out->i64[i] = lhs.i64[i] + rhs.i64[i];
            break;
          case ExprOp::kSub:
            for (size_t i = 0; i < n; ++i) out->i64[i] = lhs.i64[i] - rhs.i64[i];
            break;
          case ExprOp::kMul:
            for (size_t i = 0; i < n; ++i) out->i64[i] = lhs.i64[i] * rhs.i64[i];
            break;
          default:
            for (size_t i = 0; i < n; ++i) {
              if (rhs.i64[i] == 0) {
                return Status::InvalidArgument("division by zero");
              }
              out->i64[i] = lhs.i64[i] / rhs.i64[i];
            }
            break;
        }
      } else {
        out->f64.resize(n);
        switch (expr.op) {
          case ExprOp::kAdd:
            for (size_t i = 0; i < n; ++i)
              out->f64[i] = NumericAt(lhs, i) + NumericAt(rhs, i);
            break;
          case ExprOp::kSub:
            for (size_t i = 0; i < n; ++i)
              out->f64[i] = NumericAt(lhs, i) - NumericAt(rhs, i);
            break;
          case ExprOp::kMul:
            for (size_t i = 0; i < n; ++i)
              out->f64[i] = NumericAt(lhs, i) * NumericAt(rhs, i);
            break;
          default:
            // IEEE semantics for double division (inf/nan), matching
            // what any columnar engine does on the fast path.
            for (size_t i = 0; i < n; ++i)
              out->f64[i] = NumericAt(lhs, i) / NumericAt(rhs, i);
            break;
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled plan expression op");
}

/// Indices of rows whose predicate value is non-zero.
std::vector<uint32_t> SelectionOf(const Vec& predicate, size_t rows) {
  std::vector<uint32_t> selection;
  selection.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    if (predicate.i64[i] != 0) selection.push_back(static_cast<uint32_t>(i));
  }
  return selection;
}

Column GatherColumn(const ColRef& col, const std::vector<uint32_t>& selection) {
  Column out;
  out.type = col.type;
  switch (col.type) {
    case ColumnType::kInt64:
      out.i64.resize(selection.size());
      for (size_t i = 0; i < selection.size(); ++i)
        out.i64[i] = col.i64[selection[i]];
      break;
    case ColumnType::kDouble:
      out.f64.resize(selection.size());
      for (size_t i = 0; i < selection.size(); ++i)
        out.f64[i] = col.f64[selection[i]];
      break;
    case ColumnType::kString:
      out.str.resize(selection.size());
      for (size_t i = 0; i < selection.size(); ++i)
        out.str[i] = col.str[selection[i]];
      break;
  }
  return out;
}

Column CopyColumn(const ColRef& col, size_t rows) {
  Column out;
  out.type = col.type;
  switch (col.type) {
    case ColumnType::kInt64: out.i64.assign(col.i64, col.i64 + rows); break;
    case ColumnType::kDouble: out.f64.assign(col.f64, col.f64 + rows); break;
    case ColumnType::kString: out.str.assign(col.str, col.str + rows); break;
  }
  return out;
}

Column MaterializeVec(Vec&& vec, size_t rows) {
  Column out;
  out.type = vec.type;
  switch (vec.type) {
    case ColumnType::kInt64: out.i64 = std::move(vec.i64); break;
    case ColumnType::kDouble: out.f64 = std::move(vec.f64); break;
    case ColumnType::kString:
      out.str.reserve(rows);
      for (size_t i = 0; i < rows; ++i) out.str.push_back(*vec.str[i]);
      break;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

struct ExecContext {
  ExecOptions options;
  ExecStats* stats = nullptr;
  bool truncated = false;
};

class Operator {
 public:
  virtual ~Operator() = default;
  /// Produces the next batch; sets `*done` (and leaves `out` empty) at
  /// end of stream. A returned batch may have zero rows.
  virtual Status Next(RowBatch* out, bool* done) = 0;
};

/// Scan with the WHERE filter fused in: the predicate is evaluated over
/// the base table's column vectors (zero copies), then only the columns
/// the rest of the plan references are gathered for the selected rows.
/// One lifecycle checkpoint and one fault-injection hook per batch.
class ScanOp : public Operator {
 public:
  ScanOp(std::shared_ptr<const Table> table, const PlanExpr* predicate,
         std::vector<bool> needed, ExecContext* ctx)
      : table_(std::move(table)),
        predicate_(predicate),
        needed_(std::move(needed)),
        ctx_(ctx) {}

  Status Next(RowBatch* out, bool* done) override {
    if (pos_ >= table_->num_rows()) {
      *done = true;
      return Status::OK();
    }
    SQLPL_RETURN_IF_ERROR(ctx_->options.control.Check("executing scan"));
    FaultInjector::Global().OnExecBatch();
    const size_t rows = std::min(ctx_->options.batch_rows,
                                 table_->num_rows() - pos_);
    BatchRef ref = RefOfTable(*table_, pos_, rows);
    pos_ += rows;
    if (ctx_->stats != nullptr) {
      ctx_->stats->rows_scanned += rows;
      ctx_->stats->batches += 1;
    }
    out->columns.resize(ref.cols.size());
    if (predicate_ != nullptr) {
      Vec mask;
      SQLPL_RETURN_IF_ERROR(EvalExpr(*predicate_, ref, &mask));
      std::vector<uint32_t> selection = SelectionOf(mask, rows);
      out->num_rows = selection.size();
      for (size_t i = 0; i < ref.cols.size(); ++i) {
        out->columns[i].type = ref.cols[i].type;
        if (needed_[i]) out->columns[i] = GatherColumn(ref.cols[i], selection);
      }
    } else {
      out->num_rows = rows;
      for (size_t i = 0; i < ref.cols.size(); ++i) {
        out->columns[i].type = ref.cols[i].type;
        if (needed_[i]) out->columns[i] = CopyColumn(ref.cols[i], rows);
      }
    }
    *done = false;
    return Status::OK();
  }

 private:
  std::shared_ptr<const Table> table_;
  const PlanExpr* predicate_;
  std::vector<bool> needed_;
  ExecContext* ctx_;
  size_t pos_ = 0;
};

/// Standalone filter — after lowering this only occurs above an
/// Aggregate node (HAVING), so every input column is populated.
class FilterOp : public Operator {
 public:
  FilterOp(std::unique_ptr<Operator> input, const PlanExpr* predicate,
           ExecContext* ctx)
      : input_(std::move(input)), predicate_(predicate), ctx_(ctx) {}

  Status Next(RowBatch* out, bool* done) override {
    RowBatch in;
    SQLPL_RETURN_IF_ERROR(input_->Next(&in, done));
    if (*done) return Status::OK();
    SQLPL_RETURN_IF_ERROR(ctx_->options.control.Check("executing filter"));
    BatchRef ref = RefOfBatch(in);
    Vec mask;
    SQLPL_RETURN_IF_ERROR(EvalExpr(*predicate_, ref, &mask));
    std::vector<uint32_t> selection = SelectionOf(mask, in.num_rows);
    out->num_rows = selection.size();
    out->columns.resize(ref.cols.size());
    for (size_t i = 0; i < ref.cols.size(); ++i) {
      out->columns[i] = GatherColumn(ref.cols[i], selection);
    }
    return Status::OK();
  }

 private:
  std::unique_ptr<Operator> input_;
  const PlanExpr* predicate_;
  ExecContext* ctx_;
};

class ProjectOp : public Operator {
 public:
  ProjectOp(std::unique_ptr<Operator> input, const std::vector<PlanExpr>* exprs,
            ExecContext* ctx)
      : input_(std::move(input)), exprs_(exprs), ctx_(ctx) {}

  Status Next(RowBatch* out, bool* done) override {
    RowBatch in;
    SQLPL_RETURN_IF_ERROR(input_->Next(&in, done));
    if (*done) return Status::OK();
    SQLPL_RETURN_IF_ERROR(ctx_->options.control.Check("executing projection"));
    BatchRef ref = RefOfBatch(in);
    out->num_rows = in.num_rows;
    out->columns.reserve(exprs_->size());
    for (const PlanExpr& expr : *exprs_) {
      Vec vec;
      SQLPL_RETURN_IF_ERROR(EvalExpr(expr, ref, &vec));
      out->columns.push_back(MaterializeVec(std::move(vec), in.num_rows));
    }
    return Status::OK();
  }

 private:
  std::unique_ptr<Operator> input_;
  const std::vector<PlanExpr>* exprs_;
  ExecContext* ctx_;
};

/// Hash aggregation — a pipeline breaker: consumes the whole input on
/// the first `Next`, then emits one row per group in discovery order.
/// A single int64 group key takes the fast map; composite and string
/// keys are encoded into a byte string. With no group columns it is the
/// global aggregate and emits exactly one row (even over zero input
/// rows); with no aggregates it deduplicates (SELECT DISTINCT).
class AggregateOp : public Operator {
 public:
  AggregateOp(std::unique_ptr<Operator> input, const PlanNode* node,
              ExecContext* ctx)
      : input_(std::move(input)), node_(node), ctx_(ctx) {}

  Status Next(RowBatch* out, bool* done) override {
    if (!consumed_) {
      SQLPL_RETURN_IF_ERROR(Consume());
      consumed_ = true;
    }
    if (emit_pos_ >= num_groups_) {
      *done = true;
      return Status::OK();
    }
    const size_t rows =
        std::min(ctx_->options.batch_rows, num_groups_ - emit_pos_);
    std::vector<uint32_t> selection(rows);
    for (size_t i = 0; i < rows; ++i) {
      selection[i] = static_cast<uint32_t>(emit_pos_ + i);
    }
    out->num_rows = rows;
    for (const Column& key_col : key_columns_) {
      ColRef ref;
      ref.type = key_col.type;
      switch (key_col.type) {
        case ColumnType::kInt64: ref.i64 = key_col.i64.data(); break;
        case ColumnType::kDouble: ref.f64 = key_col.f64.data(); break;
        case ColumnType::kString: ref.str = key_col.str.data(); break;
      }
      out->columns.push_back(GatherColumn(ref, selection));
    }
    for (size_t j = 0; j < node_->aggs.size(); ++j) {
      const AggSpec& agg = node_->aggs[j];
      Column col;
      col.type = agg.type;
      for (size_t i = 0; i < rows; ++i) {
        const AggState& state = states_[(emit_pos_ + i) * node_->aggs.size() + j];
        switch (agg.func) {
          case AggFunc::kCount:
            col.i64.push_back(state.count);
            break;
          case AggFunc::kSum:
            if (agg.type == ColumnType::kDouble) col.f64.push_back(state.f64);
            else col.i64.push_back(state.i64);
            break;
          case AggFunc::kAvg:
            col.f64.push_back(state.count > 0
                                  ? state.f64 / static_cast<double>(state.count)
                                  : 0.0);
            break;
          case AggFunc::kMin:
          case AggFunc::kMax:
            switch (agg.type) {
              case ColumnType::kInt64: col.i64.push_back(state.i64); break;
              case ColumnType::kDouble: col.f64.push_back(state.f64); break;
              case ColumnType::kString: col.str.push_back(state.str); break;
            }
            break;
        }
      }
      out->columns.push_back(std::move(col));
    }
    emit_pos_ += rows;
    *done = false;
    return Status::OK();
  }

 private:
  struct AggState {
    int64_t count = 0;
    int64_t i64 = 0;
    double f64 = 0;
    std::string str;
    bool has = false;
  };

  size_t AddGroup(const std::vector<Vec>& keys, size_t row) {
    for (size_t k = 0; k < keys.size(); ++k) {
      Column& col = key_columns_[k];
      switch (keys[k].type) {
        case ColumnType::kInt64: col.i64.push_back(keys[k].i64[row]); break;
        case ColumnType::kDouble: col.f64.push_back(keys[k].f64[row]); break;
        case ColumnType::kString: col.str.push_back(*keys[k].str[row]); break;
      }
    }
    states_.resize(states_.size() + node_->aggs.size());
    return num_groups_++;
  }

  void UpdateGroup(size_t group, const std::vector<Vec>& args, size_t row) {
    for (size_t j = 0; j < node_->aggs.size(); ++j) {
      const AggSpec& agg = node_->aggs[j];
      AggState& state = states_[group * node_->aggs.size() + j];
      switch (agg.func) {
        case AggFunc::kCount:
          state.count += 1;
          break;
        case AggFunc::kSum:
          if (agg.type == ColumnType::kDouble) {
            state.f64 += NumericAt(args[j], row);
          } else {
            state.i64 += args[j].i64[row];
          }
          break;
        case AggFunc::kAvg:
          state.f64 += NumericAt(args[j], row);
          state.count += 1;
          break;
        case AggFunc::kMin:
        case AggFunc::kMax: {
          const bool want_min = agg.func == AggFunc::kMin;
          switch (agg.type) {
            case ColumnType::kInt64: {
              int64_t value = args[j].i64[row];
              if (!state.has || (want_min ? value < state.i64
                                          : value > state.i64)) {
                state.i64 = value;
              }
              break;
            }
            case ColumnType::kDouble: {
              double value = args[j].f64[row];
              if (!state.has || (want_min ? value < state.f64
                                          : value > state.f64)) {
                state.f64 = value;
              }
              break;
            }
            case ColumnType::kString: {
              const std::string& value = *args[j].str[row];
              if (!state.has || (want_min ? value < state.str
                                          : value > state.str)) {
                state.str = value;
              }
              break;
            }
          }
          state.has = true;
          break;
        }
      }
    }
  }

  Status Consume() {
    key_columns_.resize(node_->group_by.size());
    for (size_t k = 0; k < node_->group_by.size(); ++k) {
      key_columns_[k].type = node_->group_by[k].type;
    }
    const bool int64_fast_path =
        node_->group_by.size() == 1 &&
        node_->group_by[0].type == ColumnType::kInt64;
    RowBatch in;
    bool done = false;
    while (true) {
      in = RowBatch();
      SQLPL_RETURN_IF_ERROR(input_->Next(&in, &done));
      if (done) break;
      if (in.num_rows == 0) continue;
      SQLPL_RETURN_IF_ERROR(
          ctx_->options.control.Check("executing aggregation"));
      BatchRef ref = RefOfBatch(in);
      std::vector<Vec> keys(node_->group_by.size());
      for (size_t k = 0; k < node_->group_by.size(); ++k) {
        SQLPL_RETURN_IF_ERROR(EvalExpr(node_->group_by[k], ref, &keys[k]));
      }
      std::vector<Vec> args(node_->aggs.size());
      for (size_t j = 0; j < node_->aggs.size(); ++j) {
        if (!node_->aggs[j].star) {
          SQLPL_RETURN_IF_ERROR(EvalExpr(node_->aggs[j].arg, ref, &args[j]));
        }
      }
      for (size_t row = 0; row < in.num_rows; ++row) {
        size_t group;
        if (node_->group_by.empty()) {
          if (num_groups_ == 0) (void)AddGroup(keys, row);
          group = 0;
        } else if (int64_fast_path) {
          auto [it, inserted] = int_groups_.try_emplace(keys[0].i64[row], 0);
          if (inserted) it->second = AddGroup(keys, row);
          group = it->second;
        } else {
          std::string encoded = EncodeKey(keys, row);
          auto [it, inserted] = byte_groups_.try_emplace(std::move(encoded), 0);
          if (inserted) it->second = AddGroup(keys, row);
          group = it->second;
        }
        UpdateGroup(group, args, row);
      }
    }
    // Global aggregate over an empty input still produces one row of
    // zero-valued aggregates (COUNT(*) = 0).
    if (node_->group_by.empty() && !node_->aggs.empty() && num_groups_ == 0) {
      states_.resize(node_->aggs.size());
      num_groups_ = 1;
    }
    return Status::OK();
  }

  static std::string EncodeKey(const std::vector<Vec>& keys, size_t row) {
    std::string out;
    for (const Vec& key : keys) {
      switch (key.type) {
        case ColumnType::kInt64: {
          int64_t value = key.i64[row];
          out.append(reinterpret_cast<const char*>(&value), sizeof(value));
          break;
        }
        case ColumnType::kDouble: {
          double value = key.f64[row];
          out.append(reinterpret_cast<const char*>(&value), sizeof(value));
          break;
        }
        case ColumnType::kString:
          out += *key.str[row];
          out.push_back('\0');
          break;
      }
    }
    return out;
  }

  std::unique_ptr<Operator> input_;
  const PlanNode* node_;
  ExecContext* ctx_;
  bool consumed_ = false;
  size_t num_groups_ = 0;
  size_t emit_pos_ = 0;
  std::unordered_map<int64_t, size_t> int_groups_;
  std::unordered_map<std::string, size_t> byte_groups_;
  std::vector<Column> key_columns_;  // one value per discovered group
  std::vector<AggState> states_;     // num_groups × num_aggs, row-major
};

/// Sort — a pipeline breaker: materializes every input batch, stable-
/// sorts an index permutation over the key columns, and emits gathered
/// batches.
class SortOp : public Operator {
 public:
  SortOp(std::unique_ptr<Operator> input, const PlanNode* node,
         ExecContext* ctx)
      : input_(std::move(input)), node_(node), ctx_(ctx) {}

  Status Next(RowBatch* out, bool* done) override {
    if (!sorted_) {
      SQLPL_RETURN_IF_ERROR(Consume());
      sorted_ = true;
    }
    if (emit_pos_ >= order_.size()) {
      *done = true;
      return Status::OK();
    }
    const size_t rows =
        std::min(ctx_->options.batch_rows, order_.size() - emit_pos_);
    std::vector<uint32_t> selection(order_.begin() + emit_pos_,
                                    order_.begin() + emit_pos_ + rows);
    out->num_rows = rows;
    BatchRef ref = RefOfBatch(all_);
    out->columns.reserve(ref.cols.size());
    for (const ColRef& col : ref.cols) {
      out->columns.push_back(GatherColumn(col, selection));
    }
    emit_pos_ += rows;
    *done = false;
    return Status::OK();
  }

 private:
  Status Consume() {
    RowBatch in;
    bool done = false;
    while (true) {
      in = RowBatch();
      SQLPL_RETURN_IF_ERROR(input_->Next(&in, &done));
      if (done) break;
      if (in.num_rows == 0) continue;
      SQLPL_RETURN_IF_ERROR(ctx_->options.control.Check("executing sort"));
      if (all_.columns.empty()) {
        all_ = std::move(in);
        continue;
      }
      for (size_t i = 0; i < all_.columns.size(); ++i) {
        Column& dst = all_.columns[i];
        Column& src = in.columns[i];
        dst.i64.insert(dst.i64.end(), src.i64.begin(), src.i64.end());
        dst.f64.insert(dst.f64.end(), src.f64.begin(), src.f64.end());
        dst.str.insert(dst.str.end(),
                       std::make_move_iterator(src.str.begin()),
                       std::make_move_iterator(src.str.end()));
      }
      all_.num_rows += in.num_rows;
    }
    order_.resize(all_.num_rows);
    for (size_t i = 0; i < order_.size(); ++i) {
      order_[i] = static_cast<uint32_t>(i);
    }
    std::stable_sort(order_.begin(), order_.end(),
                     [this](uint32_t a, uint32_t b) { return Less(a, b); });
    return Status::OK();
  }

  bool Less(uint32_t a, uint32_t b) const {
    for (const PlanNode::SortKey& key : node_->keys) {
      const Column& col = all_.columns[key.output_index];
      int cmp = 0;
      switch (col.type) {
        case ColumnType::kInt64:
          cmp = col.i64[a] < col.i64[b] ? -1 : (col.i64[a] > col.i64[b] ? 1 : 0);
          break;
        case ColumnType::kDouble:
          cmp = col.f64[a] < col.f64[b] ? -1 : (col.f64[a] > col.f64[b] ? 1 : 0);
          break;
        case ColumnType::kString:
          cmp = col.str[a].compare(col.str[b]);
          cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
          break;
      }
      if (cmp == 0) continue;
      return key.descending ? cmp > 0 : cmp < 0;
    }
    return false;
  }

  std::unique_ptr<Operator> input_;
  const PlanNode* node_;
  ExecContext* ctx_;
  bool sorted_ = false;
  RowBatch all_;
  std::vector<uint32_t> order_;
  size_t emit_pos_ = 0;
};

/// Limit with early exit: stops pulling once the cap is reached, then
/// probes for at most one more non-empty batch to decide `truncated`.
class LimitOp : public Operator {
 public:
  LimitOp(std::unique_ptr<Operator> input, uint64_t limit, ExecContext* ctx)
      : input_(std::move(input)), remaining_(limit), ctx_(ctx) {}

  Status Next(RowBatch* out, bool* done) override {
    if (remaining_ == 0) {
      if (!probed_) {
        probed_ = true;
        RowBatch probe;
        bool input_done = false;
        while (!input_done) {
          probe = RowBatch();
          SQLPL_RETURN_IF_ERROR(input_->Next(&probe, &input_done));
          if (!input_done && probe.num_rows > 0) {
            ctx_->truncated = true;
            break;
          }
        }
      }
      *done = true;
      return Status::OK();
    }
    SQLPL_RETURN_IF_ERROR(input_->Next(out, done));
    if (*done) {
      remaining_ = 0;
      probed_ = true;
      return Status::OK();
    }
    if (out->num_rows > remaining_) {
      ctx_->truncated = true;
      const size_t keep = static_cast<size_t>(remaining_);
      for (Column& col : out->columns) {
        if (col.i64.size() > keep) col.i64.resize(keep);
        if (col.f64.size() > keep) col.f64.resize(keep);
        if (col.str.size() > keep) col.str.resize(keep);
      }
      out->num_rows = keep;
      remaining_ = 0;
    } else {
      remaining_ -= out->num_rows;
    }
    return Status::OK();
  }

 private:
  std::unique_ptr<Operator> input_;
  uint64_t remaining_;
  ExecContext* ctx_;
  bool probed_ = false;
};

// ---------------------------------------------------------------------------
// Plan → operator tree
// ---------------------------------------------------------------------------

void CollectColumns(const PlanExpr& expr, std::unordered_set<uint32_t>* used) {
  if (expr.op == ExprOp::kColumn) used->insert(expr.column);
  for (const PlanExpr& child : expr.children) CollectColumns(child, used);
}

/// Scan-schema columns referenced by the nodes between the scan and the
/// first schema change (Project or Aggregate) — everything the scan must
/// actually gather; the rest stays pruned.
std::vector<bool> NeededScanColumns(const PlanNode& scan_parent_chain_root,
                                    size_t table_columns) {
  std::unordered_set<uint32_t> used;
  const PlanNode* node = &scan_parent_chain_root;
  // Walk down to the scan, noting the last Project/Aggregate seen — its
  // expressions, plus any Filter predicates below it, address the scan
  // schema.
  const PlanNode* schema_change = nullptr;
  std::vector<const PlanNode*> chain;
  for (const PlanNode* cur = node; cur != nullptr; cur = cur->input.get()) {
    chain.push_back(cur);
  }
  // chain.back() is the scan; find the deepest Project/Aggregate.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if ((*it)->kind == PlanKind::kProject ||
        (*it)->kind == PlanKind::kAggregate) {
      schema_change = *it;
      break;
    }
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const PlanNode* cur = *it;
    if (cur->kind == PlanKind::kFilter) {
      CollectColumns(cur->predicate, &used);
    }
    if (cur == schema_change) {
      for (const PlanExpr& expr : cur->exprs) CollectColumns(expr, &used);
      for (const PlanExpr& expr : cur->group_by) CollectColumns(expr, &used);
      for (const AggSpec& agg : cur->aggs) {
        if (!agg.star) CollectColumns(agg.arg, &used);
      }
      break;
    }
  }
  std::vector<bool> needed(table_columns, false);
  for (uint32_t index : used) {
    if (index < table_columns) needed[index] = true;
  }
  return needed;
}

std::unique_ptr<Operator> BuildOp(const PlanNode& node, const PlanNode& root,
                                  ExecContext* ctx) {
  switch (node.kind) {
    case PlanKind::kScan:
      return std::make_unique<ScanOp>(
          node.table, nullptr,
          NeededScanColumns(root, node.table->num_columns()), ctx);
    case PlanKind::kFilter:
      // WHERE directly above the scan fuses into it; any other filter
      // (HAVING) runs standalone.
      if (node.input->kind == PlanKind::kScan) {
        const PlanNode& scan = *node.input;
        return std::make_unique<ScanOp>(
            scan.table, &node.predicate,
            NeededScanColumns(root, scan.table->num_columns()), ctx);
      }
      return std::make_unique<FilterOp>(BuildOp(*node.input, root, ctx),
                                        &node.predicate, ctx);
    case PlanKind::kProject:
      return std::make_unique<ProjectOp>(BuildOp(*node.input, root, ctx),
                                         &node.exprs, ctx);
    case PlanKind::kAggregate:
      return std::make_unique<AggregateOp>(BuildOp(*node.input, root, ctx),
                                           &node, ctx);
    case PlanKind::kSort:
      return std::make_unique<SortOp>(BuildOp(*node.input, root, ctx), &node,
                                      ctx);
    case PlanKind::kLimit:
      return std::make_unique<LimitOp>(BuildOp(*node.input, root, ctx),
                                       node.limit, ctx);
  }
  return nullptr;
}

}  // namespace

std::vector<int64_t> QueryResult::Int64Column(size_t i) const {
  std::vector<int64_t> out;
  for (const RowBatch& batch : batches) {
    out.insert(out.end(), batch.columns[i].i64.begin(),
               batch.columns[i].i64.end());
  }
  return out;
}

std::vector<double> QueryResult::DoubleColumn(size_t i) const {
  std::vector<double> out;
  for (const RowBatch& batch : batches) {
    out.insert(out.end(), batch.columns[i].f64.begin(),
               batch.columns[i].f64.end());
  }
  return out;
}

std::vector<std::string> QueryResult::StringColumn(size_t i) const {
  std::vector<std::string> out;
  for (const RowBatch& batch : batches) {
    out.insert(out.end(), batch.columns[i].str.begin(),
               batch.columns[i].str.end());
  }
  return out;
}

Result<QueryResult> ExecutePlan(const LogicalPlan& plan,
                                const ExecOptions& options, ExecStats* stats) {
  if (plan.root == nullptr) {
    return Status::InvalidArgument("cannot execute an empty plan");
  }
  if (options.batch_rows == 0) {
    return Status::InvalidArgument("batch_rows must be positive");
  }
  ExecContext ctx;
  ctx.options = options;
  ctx.stats = stats;
  std::unique_ptr<Operator> op = BuildOp(*plan.root, *plan.root, &ctx);
  QueryResult result;
  result.column_names = plan.column_names;
  result.column_types = plan.column_types;
  while (true) {
    RowBatch batch;
    bool done = false;
    SQLPL_RETURN_IF_ERROR(op->Next(&batch, &done));
    if (done) break;
    if (batch.num_rows == 0) continue;
    result.num_rows += batch.num_rows;
    result.batches.push_back(std::move(batch));
  }
  result.truncated = ctx.truncated;
  if (stats != nullptr) stats->rows_out = result.num_rows;
  return result;
}

}  // namespace exec
}  // namespace sqlpl
