#include "sqlpl/exec/plan.h"

#include <cstdio>

namespace sqlpl {
namespace exec {

const char* ExprOpName(ExprOp op) {
  switch (op) {
    case ExprOp::kColumn: return "column";
    case ExprOp::kLiteralInt: return "int";
    case ExprOp::kLiteralDouble: return "double";
    case ExprOp::kLiteralString: return "string";
    case ExprOp::kEq: return "=";
    case ExprOp::kNe: return "<>";
    case ExprOp::kLt: return "<";
    case ExprOp::kLe: return "<=";
    case ExprOp::kGt: return ">";
    case ExprOp::kGe: return ">=";
    case ExprOp::kAnd: return "AND";
    case ExprOp::kOr: return "OR";
    case ExprOp::kNot: return "NOT";
    case ExprOp::kAdd: return "+";
    case ExprOp::kSub: return "-";
    case ExprOp::kMul: return "*";
    case ExprOp::kDiv: return "/";
    case ExprOp::kNeg: return "-";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
  }
  return "?";
}

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan: return "Scan";
    case PlanKind::kFilter: return "Filter";
    case PlanKind::kProject: return "Project";
    case PlanKind::kAggregate: return "Aggregate";
    case PlanKind::kSort: return "Sort";
    case PlanKind::kLimit: return "Limit";
  }
  return "?";
}

PlanExpr PlanExpr::Column(uint32_t index, ColumnType type, std::string name) {
  PlanExpr expr;
  expr.op = ExprOp::kColumn;
  expr.type = type;
  expr.column = index;
  expr.str = std::move(name);
  return expr;
}

PlanExpr PlanExpr::Int(int64_t value) {
  PlanExpr expr;
  expr.op = ExprOp::kLiteralInt;
  expr.type = ColumnType::kInt64;
  expr.i64 = value;
  return expr;
}

PlanExpr PlanExpr::Double(double value) {
  PlanExpr expr;
  expr.op = ExprOp::kLiteralDouble;
  expr.type = ColumnType::kDouble;
  expr.f64 = value;
  return expr;
}

PlanExpr PlanExpr::String(std::string value) {
  PlanExpr expr;
  expr.op = ExprOp::kLiteralString;
  expr.type = ColumnType::kString;
  expr.str = std::move(value);
  return expr;
}

std::string PlanExpr::ToString() const {
  switch (op) {
    case ExprOp::kColumn:
      return str + "#" + std::to_string(column);
    case ExprOp::kLiteralInt:
      return std::to_string(i64);
    case ExprOp::kLiteralDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", f64);
      return buf;
    }
    case ExprOp::kLiteralString:
      return "'" + str + "'";
    case ExprOp::kNot:
      return "(NOT " + children[0].ToString() + ")";
    case ExprOp::kNeg:
      return "(-" + children[0].ToString() + ")";
    default:
      return "(" + children[0].ToString() + " " + ExprOpName(op) + " " +
             children[1].ToString() + ")";
  }
}

namespace {

std::string AggToString(const AggSpec& agg) {
  std::string out = AggFuncName(agg.func);
  out += "(";
  out += agg.star ? "*" : agg.arg.ToString();
  out += ")";
  return out;
}

void AppendNode(const PlanNode& node, std::string* out) {
  *out += PlanKindName(node.kind);
  *out += "(";
  switch (node.kind) {
    case PlanKind::kScan:
      *out += node.table != nullptr ? node.table->name() : "?";
      break;
    case PlanKind::kFilter:
      *out += node.predicate.ToString();
      break;
    case PlanKind::kProject:
      for (size_t i = 0; i < node.exprs.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += node.exprs[i].ToString();
      }
      break;
    case PlanKind::kAggregate: {
      *out += "groups=[";
      for (size_t i = 0; i < node.group_by.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += node.group_by[i].ToString();
      }
      *out += "] aggs=[";
      for (size_t i = 0; i < node.aggs.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += AggToString(node.aggs[i]);
      }
      *out += "]";
      break;
    }
    case PlanKind::kSort:
      for (size_t i = 0; i < node.keys.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += "#" + std::to_string(node.keys[i].output_index) +
                (node.keys[i].descending ? " desc" : " asc");
      }
      break;
    case PlanKind::kLimit:
      *out += std::to_string(node.limit);
      break;
  }
  *out += ")\n";
  if (node.input != nullptr) AppendNode(*node.input, out);
}

}  // namespace

std::string LogicalPlan::ToString() const {
  std::string out;
  if (root != nullptr) AppendNode(*root, &out);
  return out;
}

}  // namespace exec
}  // namespace sqlpl
