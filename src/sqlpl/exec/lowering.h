#ifndef SQLPL_EXEC_LOWERING_H_
#define SQLPL_EXEC_LOWERING_H_

#include <cstdint>

#include "sqlpl/exec/plan.h"
#include "sqlpl/exec/table.h"
#include "sqlpl/semantics/ast.h"
#include "sqlpl/sql/product_line.h"

namespace sqlpl {
namespace exec {

struct LoweringOptions {
  /// When > 0, a `Limit` node caps the plan's output (the wire path's
  /// `max_rows`); the grammar has no LIMIT clause, so this is the only
  /// source of Limit nodes today.
  uint64_t max_rows = 0;
};

/// The feature-keyed semantic lowering pass (the paper's FOP semantic
/// actions, docs/EXECUTION.md): turns a typed `SelectStatement` into an
/// executable `LogicalPlan` over `registry`'s columnar tables.
///
/// Every clause is gated on `spec`'s feature selection — a plan node is
/// only lowerable when the dialect's feature set includes the
/// corresponding clause feature. A statement using a clause outside the
/// variant fails with `kFeatureUnsupported` and a *feature-attributed*
/// diagnostic of the exact form
///
///   <CLAUSE> requires feature "<Feature>", absent from dialect "<name>"
///
/// (golden-tested byte-for-byte in tests/exec/lowering_test.cc). Name
/// resolution runs against the registry's tables (`kNotFound` for
/// unknown tables/columns); type checking is structural (`kInvalidArgument`
/// on e.g. SUM over a string column).
///
/// Plan shape: Scan → [Filter] → (Project | Aggregate → [Filter(HAVING)]
/// → Project) → [Sort] → [Limit]. Expression column indices are always
/// relative to the node's *input* schema, so the executor never resolves
/// a name.
Result<LogicalPlan> LowerSelect(const SelectStatement& statement,
                                const DialectSpec& spec,
                                const TableRegistry& registry,
                                const LoweringOptions& options = {});

}  // namespace exec
}  // namespace sqlpl

#endif  // SQLPL_EXEC_LOWERING_H_
