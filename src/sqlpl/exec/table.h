#ifndef SQLPL_EXEC_TABLE_H_
#define SQLPL_EXEC_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "sqlpl/semantics/catalog.h"
#include "sqlpl/util/status.h"

namespace sqlpl {
namespace exec {

/// Storage type of one column of an in-memory test table. The wire
/// encoding of types 9/10 carries this byte verbatim (append-only, like
/// every wire table — docs/EXECUTION.md).
enum class ColumnType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

/// Stable lowercase type name ("int64", "double", "string").
const char* ColumnTypeName(ColumnType type);

/// One typed column vector. Exactly one of the three value vectors is
/// populated, matching `type`; the executor reads them as spans and
/// never copies row data out of the table.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<std::string> str;

  size_t size() const {
    switch (type) {
      case ColumnType::kInt64: return i64.size();
      case ColumnType::kDouble: return f64.size();
      case ColumnType::kString: return str.size();
    }
    return 0;
  }
};

/// A columnar in-memory table — the execution tier's "registered
/// collection" (the RocketJoe pattern): immutable once registered, so
/// any number of concurrent queries scan it without locks.
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  /// Appends a column; every column must have the same row count as the
  /// first (`kInvalidArgument` otherwise), and names must be unique
  /// within the table (`kAlreadyExists`).
  Status AddInt64Column(std::string name, std::vector<int64_t> values);
  Status AddDoubleColumn(std::string name, std::vector<double> values);
  Status AddStringColumn(std::string name, std::vector<std::string> values);

  const std::string& name() const { return name_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Case-insensitive column lookup (SQL regular identifiers); -1 when
  /// absent.
  int FindColumn(const std::string& name) const;

 private:
  Status AddColumn(Column column);

  std::string name_;
  size_t num_rows_ = 0;
  std::vector<Column> columns_;
};

/// Thread-safe name → table registry. Tables register once (fixtures,
/// test setup, benchmark generators) and are served as shared immutable
/// snapshots; `Find` during a query pins the table against concurrent
/// re-registration for the query's lifetime.
class TableRegistry {
 public:
  /// Registers (or replaces) `table` under its own name.
  Status Register(std::shared_ptr<const Table> table);

  /// The registered table, or nullptr. Case-insensitive.
  std::shared_ptr<const Table> Find(const std::string& name) const;

  std::vector<std::string> TableNames() const;
  size_t size() const;

  /// The registry as a semantic-layer `DbCatalog` (table + column
  /// names), for name resolution through the existing semantics/
  /// machinery.
  DbCatalog Catalog() const;

 private:
  mutable std::mutex mu_;
  // Uppercased name -> table (original spelling lives in the table).
  std::map<std::string, std::shared_ptr<const Table>> tables_;
};

/// The demo fixture set every `DialectService` registers at
/// construction, so wire clients can execute immediately:
///
///   readings(room STRING, sensor_id INT64, temp DOUBLE, epoch INT64)
///       — 32 rows of sensor data (the TinySQL motivating workload)
///   parts(part STRING, warehouse STRING, qty INT64, price DOUBLE)
///       — 24 rows (the classic suppliers-and-parts shape)
std::shared_ptr<const Table> MakeReadingsTable();
std::shared_ptr<const Table> MakePartsTable();
void RegisterDemoTables(TableRegistry* registry);

/// Deterministic benchmark/test table of `rows` rows:
///
///   bench(id INT64, v INT64, grp INT64, price DOUBLE)
///
/// `id` is 0..rows-1, `v` an xorshift64 pseudo-random value in
/// [0, 1'000'000), `grp` = v % 16, `price` = v / 100.0. Same `rows` and
/// `seed` → identical table, so committed benchmark baselines and
/// golden tests agree across machines.
std::shared_ptr<const Table> MakeBenchTable(const std::string& name,
                                            size_t rows, uint64_t seed = 42);

}  // namespace exec
}  // namespace sqlpl

#endif  // SQLPL_EXEC_TABLE_H_
