#ifndef SQLPL_EXEC_PLAN_H_
#define SQLPL_EXEC_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sqlpl/exec/table.h"

namespace sqlpl {
namespace exec {

/// Operation of one typed plan-expression node. Column references are
/// resolved to column *indices* during lowering — the executor never
/// looks names up again.
enum class ExprOp : uint8_t {
  kColumn,      // column #`column` of the scanned table
  kLiteralInt,  // i64
  kLiteralDouble,
  kLiteralString,
  // Comparisons (result kInt64 as 0/1):
  kEq, kNe, kLt, kLe, kGt, kGe,
  // Boolean connectives over 0/1 operands:
  kAnd, kOr, kNot,
  // Arithmetic:
  kAdd, kSub, kMul, kDiv,
  kNeg,
};

const char* ExprOpName(ExprOp op);

/// A typed scalar/boolean expression over the scanned table's columns.
/// `type` is the expression's result type (comparisons and connectives
/// are kInt64 0/1). Value tree, copyable.
struct PlanExpr {
  ExprOp op = ExprOp::kLiteralInt;
  ColumnType type = ColumnType::kInt64;
  uint32_t column = 0;     // kColumn: index into the scan table
  int64_t i64 = 0;         // kLiteralInt
  double f64 = 0;          // kLiteralDouble
  std::string str;         // kLiteralString; kColumn: display name
  std::vector<PlanExpr> children;

  static PlanExpr Column(uint32_t index, ColumnType type, std::string name);
  static PlanExpr Int(int64_t value);
  static PlanExpr Double(double value);
  static PlanExpr String(std::string value);

  /// Parenthesized rendering with resolved column indices, e.g.
  /// `(v#1 < 100)` — the lowering golden-test format.
  std::string ToString() const;
};

enum class AggFunc : uint8_t { kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc func);

/// One aggregate output of an Aggregate node.
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  /// COUNT(*): no argument expression.
  bool star = false;
  PlanExpr arg;
  /// Result type (kInt64 for COUNT; AVG is always kDouble).
  ColumnType type = ColumnType::kInt64;
};

enum class PlanKind : uint8_t {
  kScan,
  kFilter,
  kProject,
  kAggregate,
  kSort,
  kLimit,
};

const char* PlanKindName(PlanKind kind);

/// One node of the logical plan. A plan is a single-input chain (no
/// joins yet): Scan at the bottom, then optional Filter, then exactly
/// one of Project/Aggregate, then optional Sort and Limit — the shape
/// `LowerSelect` produces and `ExecutePlan` interprets.
struct PlanNode {
  PlanKind kind = PlanKind::kScan;
  std::unique_ptr<PlanNode> input;  // null for kScan

  // kScan
  std::shared_ptr<const Table> table;

  // kFilter
  PlanExpr predicate;

  // kProject
  std::vector<PlanExpr> exprs;

  // kAggregate
  std::vector<PlanExpr> group_by;
  std::vector<AggSpec> aggs;

  // kSort: keys are indices into the plan's *output* columns.
  struct SortKey {
    uint32_t output_index = 0;
    bool descending = false;
  };
  std::vector<SortKey> keys;

  // kLimit
  uint64_t limit = 0;
};

/// A lowered, executable query plan: the node chain plus the output
/// schema (name and type per produced column, in SELECT-list order).
struct LogicalPlan {
  std::unique_ptr<PlanNode> root;
  std::vector<std::string> column_names;
  std::vector<ColumnType> column_types;

  /// One line per node, innermost (Scan) last, e.g.
  ///
  ///   Limit(10)
  ///   Sort(#0 asc)
  ///   Aggregate(groups=[grp#2] aggs=[COUNT(*), SUM(v#1)])
  ///   Filter((v#1 < 100))
  ///   Scan(bench)
  std::string ToString() const;
};

}  // namespace exec
}  // namespace sqlpl

#endif  // SQLPL_EXEC_PLAN_H_
