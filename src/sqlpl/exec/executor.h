#ifndef SQLPL_EXEC_EXECUTOR_H_
#define SQLPL_EXEC_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sqlpl/exec/plan.h"
#include "sqlpl/exec/table.h"
#include "sqlpl/util/cancellation.h"

namespace sqlpl {
namespace exec {

/// One batch of result rows, columnar: `columns[i]` matches the plan's
/// output schema position i (column names live on the `QueryResult`).
struct RowBatch {
  size_t num_rows = 0;
  std::vector<Column> columns;
};

/// The materialized result of `ExecutePlan`: the output schema plus the
/// row batches exactly as the operators emitted them. Batch boundaries
/// are an execution artifact (batch size, operator breaks); consumers
/// that care only about rows use the flattening accessors.
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<ColumnType> column_types;
  std::vector<RowBatch> batches;
  uint64_t num_rows = 0;
  /// True when a Limit node cut rows that the plan would otherwise have
  /// produced (the wire response's `truncated` byte).
  bool truncated = false;

  /// Flattened copy of output column `i` across all batches. Type must
  /// match (asserted in debug builds); test convenience.
  std::vector<int64_t> Int64Column(size_t i) const;
  std::vector<double> DoubleColumn(size_t i) const;
  std::vector<std::string> StringColumn(size_t i) const;
};

/// Execution counters, for metrics and tests.
struct ExecStats {
  uint64_t rows_scanned = 0;   // rows read out of the base table
  uint64_t batches = 0;        // scan batches processed
  uint64_t rows_out = 0;       // rows in the result
};

struct ExecOptions {
  /// Rows per scan batch — the vectorization granularity and the
  /// deadline/cancel checkpoint interval.
  size_t batch_rows = 4096;
  /// Lifecycle controls; `Check` runs once per batch inside every
  /// operator loop, so cancellation and deadline expiry interrupt a
  /// running scan within one batch.
  RequestControl control;
};

/// Runs a lowered plan to completion — the vectorized batch-at-a-time
/// interpreter (docs/EXECUTION.md): the scan walks the table in
/// `batch_rows` chunks, the WHERE filter is fused into the scan
/// (predicate evaluated over the table's column vectors, then only the
/// referenced, selected rows are gathered), and Aggregate/Sort are the
/// pipeline breakers. Fails with the lifecycle status (`kDeadlineExceeded`
/// / `kCancelled`) when `options.control` trips mid-query.
Result<QueryResult> ExecutePlan(const LogicalPlan& plan,
                                const ExecOptions& options = {},
                                ExecStats* stats = nullptr);

}  // namespace exec
}  // namespace sqlpl

#endif  // SQLPL_EXEC_EXECUTOR_H_
