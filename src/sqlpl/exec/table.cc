#include "sqlpl/exec/table.h"

#include <utility>

#include "sqlpl/util/strings.h"

namespace sqlpl {
namespace exec {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64: return "int64";
    case ColumnType::kDouble: return "double";
    case ColumnType::kString: return "string";
  }
  return "unknown";
}

Status Table::AddColumn(Column column) {
  if (FindColumn(column.name) >= 0) {
    return Status::AlreadyExists("table \"" + name_ +
                                 "\" already has a column \"" + column.name +
                                 "\"");
  }
  if (!columns_.empty() && column.size() != num_rows_) {
    return Status::InvalidArgument(
        "column \"" + column.name + "\" has " +
        std::to_string(column.size()) + " rows; table \"" + name_ +
        "\" has " + std::to_string(num_rows_));
  }
  num_rows_ = column.size();
  columns_.push_back(std::move(column));
  return Status::OK();
}

Status Table::AddInt64Column(std::string name, std::vector<int64_t> values) {
  Column column;
  column.name = std::move(name);
  column.type = ColumnType::kInt64;
  column.i64 = std::move(values);
  return AddColumn(std::move(column));
}

Status Table::AddDoubleColumn(std::string name, std::vector<double> values) {
  Column column;
  column.name = std::move(name);
  column.type = ColumnType::kDouble;
  column.f64 = std::move(values);
  return AddColumn(std::move(column));
}

Status Table::AddStringColumn(std::string name,
                              std::vector<std::string> values) {
  Column column;
  column.name = std::move(name);
  column.type = ColumnType::kString;
  column.str = std::move(values);
  return AddColumn(std::move(column));
}

int Table::FindColumn(const std::string& name) const {
  std::string key = AsciiStrToUpper(name);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (AsciiStrToUpper(columns_[i].name) == key) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Status TableRegistry::Register(std::shared_ptr<const Table> table) {
  if (table == nullptr || table->name().empty()) {
    return Status::InvalidArgument("cannot register an unnamed table");
  }
  std::lock_guard<std::mutex> lock(mu_);
  tables_[AsciiStrToUpper(table->name())] = std::move(table);
  return Status::OK();
}

std::shared_ptr<const Table> TableRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(AsciiStrToUpper(name));
  return it == tables_.end() ? nullptr : it->second;
}

std::vector<std::string> TableRegistry::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

size_t TableRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.size();
}

DbCatalog TableRegistry::Catalog() const {
  std::lock_guard<std::mutex> lock(mu_);
  DbCatalog catalog;
  for (const auto& [key, table] : tables_) {
    std::vector<std::string> columns;
    columns.reserve(table->num_columns());
    for (size_t i = 0; i < table->num_columns(); ++i) {
      columns.push_back(table->column(i).name);
    }
    // Registration is the only writer and names are unique per map key,
    // so AddTable cannot fail here.
    (void)catalog.AddTable(table->name(), columns);
  }
  return catalog;
}

std::shared_ptr<const Table> MakeReadingsTable() {
  auto table = std::make_shared<Table>("readings");
  const char* rooms[] = {"lab", "hall", "roof", "cellar"};
  std::vector<std::string> room;
  std::vector<int64_t> sensor_id;
  std::vector<double> temp;
  std::vector<int64_t> epoch;
  for (int i = 0; i < 32; ++i) {
    room.push_back(rooms[i % 4]);
    sensor_id.push_back(i % 8);
    temp.push_back(15.0 + (i * 7 % 20) + (i % 3) * 0.25);
    epoch.push_back(1000 + i * 10);
  }
  (void)table->AddStringColumn("room", std::move(room));
  (void)table->AddInt64Column("sensor_id", std::move(sensor_id));
  (void)table->AddDoubleColumn("temp", std::move(temp));
  (void)table->AddInt64Column("epoch", std::move(epoch));
  return table;
}

std::shared_ptr<const Table> MakePartsTable() {
  auto table = std::make_shared<Table>("parts");
  const char* parts[] = {"bolt", "nut", "screw", "cam", "cog", "gear"};
  const char* warehouses[] = {"north", "south"};
  std::vector<std::string> part;
  std::vector<std::string> warehouse;
  std::vector<int64_t> qty;
  std::vector<double> price;
  for (int i = 0; i < 24; ++i) {
    part.push_back(parts[i % 6]);
    warehouse.push_back(warehouses[i % 2]);
    qty.push_back((i * 13) % 50 + 1);
    price.push_back(0.5 + (i % 7) * 1.25);
  }
  (void)table->AddStringColumn("part", std::move(part));
  (void)table->AddStringColumn("warehouse", std::move(warehouse));
  (void)table->AddInt64Column("qty", std::move(qty));
  (void)table->AddDoubleColumn("price", std::move(price));
  return table;
}

void RegisterDemoTables(TableRegistry* registry) {
  (void)registry->Register(MakeReadingsTable());
  (void)registry->Register(MakePartsTable());
}

std::shared_ptr<const Table> MakeBenchTable(const std::string& name,
                                            size_t rows, uint64_t seed) {
  auto table = std::make_shared<Table>(name);
  std::vector<int64_t> id(rows);
  std::vector<int64_t> v(rows);
  std::vector<int64_t> grp(rows);
  std::vector<double> price(rows);
  uint64_t state = seed != 0 ? seed : 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < rows; ++i) {
    // xorshift64: deterministic, fast, and good enough to spread group
    // keys and filter selectivity.
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    int64_t value = static_cast<int64_t>(state % 1000000);
    id[i] = static_cast<int64_t>(i);
    v[i] = value;
    grp[i] = value % 16;
    price[i] = static_cast<double>(value) / 100.0;
  }
  (void)table->AddInt64Column("id", std::move(id));
  (void)table->AddInt64Column("v", std::move(v));
  (void)table->AddInt64Column("grp", std::move(grp));
  (void)table->AddDoubleColumn("price", std::move(price));
  return table;
}

}  // namespace exec
}  // namespace sqlpl
