#include "sqlpl/exec/lowering.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <utility>

#include "sqlpl/util/strings.h"

namespace sqlpl {
namespace exec {
namespace {

// ---------------------------------------------------------------------------
// Feature gating
// ---------------------------------------------------------------------------

bool HasFeature(const DialectSpec& spec, const std::string& feature) {
  return std::find(spec.features.begin(), spec.features.end(), feature) !=
         spec.features.end();
}

Status FeatureError(const std::string& clause, const std::string& feature,
                    const DialectSpec& spec) {
  return Status::FeatureUnsupported(clause + " requires feature \"" + feature +
                                    "\", absent from dialect \"" + spec.name +
                                    "\"");
}

Status Gate(const DialectSpec& spec, const std::string& clause,
            const std::string& feature) {
  if (!HasFeature(spec, feature)) return FeatureError(clause, feature, spec);
  return Status::OK();
}

bool IsAggName(const std::string& upper) {
  return upper == "COUNT" || upper == "SUM" || upper == "AVG" ||
         upper == "MIN" || upper == "MAX";
}

bool IsArithmeticOp(const std::string& op) {
  return op == "+" || op == "-" || op == "*" || op == "/";
}

/// Walks one expression gating sub-expression features: set functions
/// (SetFunctions) and arithmetic (NumericExpressions). Clause-level
/// features are gated by the caller before descending.
Status GateExpr(const AstExpr& expr, const DialectSpec& spec) {
  switch (expr.kind) {
    case AstExprKind::kFunctionCall: {
      std::string upper = AsciiStrToUpper(expr.value);
      if (IsAggName(upper)) {
        SQLPL_RETURN_IF_ERROR(Gate(spec, "set function " + upper,
                                   "SetFunctions"));
      }
      break;
    }
    case AstExprKind::kBinaryOp:
      if (IsArithmeticOp(expr.value)) {
        SQLPL_RETURN_IF_ERROR(
            Gate(spec, "numeric expression", "NumericExpressions"));
      }
      break;
    case AstExprKind::kUnaryOp:
      if (expr.value == "-") {
        SQLPL_RETURN_IF_ERROR(
            Gate(spec, "numeric expression", "NumericExpressions"));
      }
      break;
    default:
      break;
  }
  for (const AstExpr& child : expr.children) {
    SQLPL_RETURN_IF_ERROR(GateExpr(child, spec));
  }
  return Status::OK();
}

/// The clause → feature pre-pass: every gate runs before any name
/// resolution, so a feature-excluded statement is attributed to its
/// feature even when it also references unknown tables or columns.
/// Gate order follows statement order (deterministic golden bytes).
Status GateStatement(const SelectStatement& stmt, const DialectSpec& spec) {
  if (stmt.distinct) {
    SQLPL_RETURN_IF_ERROR(Gate(spec, "DISTINCT quantifier", "SetQuantifier"));
  }
  for (const SelectItem& item : stmt.items) {
    if (item.is_star) {
      SQLPL_RETURN_IF_ERROR(Gate(spec, "select-list asterisk", "Asterisk"));
      continue;
    }
    if (!item.alias.empty()) {
      SQLPL_RETURN_IF_ERROR(Gate(spec, "column alias", "AsClause"));
    }
    SQLPL_RETURN_IF_ERROR(GateExpr(item.expr, spec));
  }
  for (const TableRef& ref : stmt.from) {
    if (!ref.alias.empty()) {
      SQLPL_RETURN_IF_ERROR(Gate(spec, "table alias", "CorrelationName"));
    }
  }
  if (stmt.where.has_value()) {
    SQLPL_RETURN_IF_ERROR(Gate(spec, "WHERE clause", "Where"));
    SQLPL_RETURN_IF_ERROR(GateExpr(*stmt.where, spec));
  }
  if (!stmt.group_by.empty()) {
    SQLPL_RETURN_IF_ERROR(Gate(spec, "GROUP BY clause", "GroupBy"));
    for (const AstExpr& expr : stmt.group_by) {
      SQLPL_RETURN_IF_ERROR(GateExpr(expr, spec));
    }
  }
  if (stmt.having.has_value()) {
    SQLPL_RETURN_IF_ERROR(Gate(spec, "HAVING clause", "Having"));
    SQLPL_RETURN_IF_ERROR(GateExpr(*stmt.having, spec));
  }
  if (!stmt.order_by.empty()) {
    SQLPL_RETURN_IF_ERROR(Gate(spec, "ORDER BY clause", "OrderBy"));
    for (const OrderItem& item : stmt.order_by) {
      SQLPL_RETURN_IF_ERROR(GateExpr(item.expr, spec));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Expression lowering against the scanned table
// ---------------------------------------------------------------------------

bool IsNumeric(ColumnType type) {
  return type == ColumnType::kInt64 || type == ColumnType::kDouble;
}

struct TableScope {
  const Table* table = nullptr;
  std::string alias;  // correlation name, empty if none
};

Result<PlanExpr> LowerColumnRef(const AstExpr& expr, const TableScope& scope) {
  std::string name = expr.value;
  size_t dot = name.rfind('.');
  if (dot != std::string::npos) {
    std::string qualifier = AsciiStrToUpper(name.substr(0, dot));
    if (qualifier != AsciiStrToUpper(scope.table->name()) &&
        qualifier != AsciiStrToUpper(scope.alias)) {
      return Status::NotFound("column \"" + name +
                              "\" does not resolve in table \"" +
                              scope.table->name() + "\"");
    }
    name = name.substr(dot + 1);
  }
  int index = scope.table->FindColumn(name);
  if (index < 0) {
    return Status::NotFound("column \"" + name + "\" is not a column of "
                            "table \"" + scope.table->name() + "\"");
  }
  const Column& column = scope.table->column(static_cast<size_t>(index));
  return PlanExpr::Column(static_cast<uint32_t>(index), column.type,
                          column.name);
}

/// Types a literal by lexical shape: the AST carries token text with
/// quotes already stripped, so `42` → int64, `4.25` / `1e6` → double,
/// anything else → string.
PlanExpr LowerLiteral(const std::string& text) {
  if (!text.empty() &&
      text.find_first_not_of("0123456789") == std::string::npos) {
    return PlanExpr::Int(std::strtoll(text.c_str(), nullptr, 10));
  }
  if (!text.empty() && (std::isdigit(static_cast<unsigned char>(text[0])) ||
                        text[0] == '.')) {
    char* end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    if (end != nullptr && *end == '\0') return PlanExpr::Double(value);
  }
  return PlanExpr::String(text);
}

bool IsComparisonOp(const std::string& op) {
  return op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
         op == ">=";
}

ExprOp ComparisonOpFor(const std::string& op) {
  if (op == "=") return ExprOp::kEq;
  if (op == "<>") return ExprOp::kNe;
  if (op == "<") return ExprOp::kLt;
  if (op == "<=") return ExprOp::kLe;
  if (op == ">") return ExprOp::kGt;
  return ExprOp::kGe;
}

ExprOp ArithmeticOpFor(const std::string& op) {
  if (op == "+") return ExprOp::kAdd;
  if (op == "-") return ExprOp::kSub;
  if (op == "*") return ExprOp::kMul;
  return ExprOp::kDiv;
}

/// Lowers a scalar expression whose column references resolve directly
/// against the scanned table. Aggregate calls are rejected here — they
/// are only legal through the grouped-context lowering below.
Result<PlanExpr> LowerScalar(const AstExpr& expr, const TableScope& scope) {
  switch (expr.kind) {
    case AstExprKind::kColumnRef:
      return LowerColumnRef(expr, scope);
    case AstExprKind::kLiteral:
      return LowerLiteral(expr.value);
    case AstExprKind::kStar:
      return Status::InvalidArgument(
          "* is only valid as a whole select item or inside COUNT(*)");
    case AstExprKind::kFunctionCall: {
      std::string upper = AsciiStrToUpper(expr.value);
      if (IsAggName(upper)) {
        return Status::InvalidArgument(
            "set function " + upper +
            " is only allowed in the select list or HAVING clause");
      }
      return Status::InvalidArgument("function \"" + expr.value +
                                     "\" is not executable");
    }
    case AstExprKind::kUnaryOp: {
      PlanExpr operand;
      SQLPL_ASSIGN_OR_RETURN(operand, LowerScalar(expr.children[0], scope));
      PlanExpr out;
      if (expr.value == "NOT") {
        if (operand.type != ColumnType::kInt64) {
          return Status::InvalidArgument("NOT requires a boolean operand; got " +
                                         std::string(ColumnTypeName(operand.type)));
        }
        out.op = ExprOp::kNot;
        out.type = ColumnType::kInt64;
      } else if (expr.value == "-") {
        if (!IsNumeric(operand.type)) {
          return Status::InvalidArgument(
              "unary - requires a numeric operand; got " +
              std::string(ColumnTypeName(operand.type)));
        }
        out.op = ExprOp::kNeg;
        out.type = operand.type;
      } else {
        return Status::InvalidArgument("unary operator \"" + expr.value +
                                       "\" is not executable");
      }
      out.children.push_back(std::move(operand));
      return out;
    }
    case AstExprKind::kBinaryOp: {
      PlanExpr lhs;
      PlanExpr rhs;
      SQLPL_ASSIGN_OR_RETURN(lhs, LowerScalar(expr.children[0], scope));
      SQLPL_ASSIGN_OR_RETURN(rhs, LowerScalar(expr.children[1], scope));
      PlanExpr out;
      const std::string& op = expr.value;
      std::string upper = AsciiStrToUpper(op);
      if (IsComparisonOp(op)) {
        bool comparable =
            (IsNumeric(lhs.type) && IsNumeric(rhs.type)) ||
            (lhs.type == ColumnType::kString && rhs.type == ColumnType::kString);
        if (!comparable) {
          return Status::InvalidArgument(
              "cannot compare " + std::string(ColumnTypeName(lhs.type)) +
              " with " + std::string(ColumnTypeName(rhs.type)) + " in " +
              expr.ToString());
        }
        out.op = ComparisonOpFor(op);
        out.type = ColumnType::kInt64;
      } else if (upper == "AND" || upper == "OR") {
        if (lhs.type != ColumnType::kInt64 || rhs.type != ColumnType::kInt64) {
          return Status::InvalidArgument(upper +
                                         " requires boolean operands in " +
                                         expr.ToString());
        }
        out.op = upper == "AND" ? ExprOp::kAnd : ExprOp::kOr;
        out.type = ColumnType::kInt64;
      } else if (IsArithmeticOp(op)) {
        if (!IsNumeric(lhs.type) || !IsNumeric(rhs.type)) {
          return Status::InvalidArgument(
              "arithmetic requires numeric operands in " + expr.ToString());
        }
        out.op = ArithmeticOpFor(op);
        out.type = (lhs.type == ColumnType::kDouble ||
                    rhs.type == ColumnType::kDouble)
                       ? ColumnType::kDouble
                       : ColumnType::kInt64;
      } else {
        return Status::InvalidArgument("operator \"" + op +
                                       "\" is not executable");
      }
      out.children.push_back(std::move(lhs));
      out.children.push_back(std::move(rhs));
      return out;
    }
  }
  return Status::Internal("unhandled expression kind");
}

// ---------------------------------------------------------------------------
// Aggregates and the grouped (post-aggregate) scope
// ---------------------------------------------------------------------------

bool IsAggCall(const AstExpr& expr) {
  return expr.kind == AstExprKind::kFunctionCall &&
         IsAggName(AsciiStrToUpper(expr.value));
}

bool ContainsAggCall(const AstExpr& expr) {
  if (IsAggCall(expr)) return true;
  for (const AstExpr& child : expr.children) {
    if (ContainsAggCall(child)) return true;
  }
  return false;
}

AggFunc AggFuncFor(const std::string& upper) {
  if (upper == "COUNT") return AggFunc::kCount;
  if (upper == "SUM") return AggFunc::kSum;
  if (upper == "AVG") return AggFunc::kAvg;
  if (upper == "MIN") return AggFunc::kMin;
  return AggFunc::kMax;
}

/// Display name of an aggregate, e.g. `COUNT(*)` or `SUM(qty)`.
std::string AggDisplayName(const AstExpr& call) {
  std::string out = AsciiStrToUpper(call.value);
  out += "(";
  if (!call.children.empty()) {
    out += call.children[0].kind == AstExprKind::kStar
               ? "*"
               : call.children[0].ToString();
  }
  out += ")";
  return out;
}

/// Lowers one aggregate call into an `AggSpec` (argument lowered against
/// the scanned table). Nested aggregates and non-numeric SUM/AVG reject.
Result<AggSpec> LowerAggCall(const AstExpr& call, const TableScope& scope) {
  std::string upper = AsciiStrToUpper(call.value);
  AggSpec spec;
  spec.func = AggFuncFor(upper);
  if (call.children.empty() ||
      call.children[0].kind == AstExprKind::kStar) {
    if (spec.func != AggFunc::kCount) {
      return Status::InvalidArgument(upper + "(*) is not defined; only "
                                     "COUNT takes *");
    }
    spec.star = true;
    spec.type = ColumnType::kInt64;
    return spec;
  }
  const AstExpr& arg = call.children[0];
  if (ContainsAggCall(arg)) {
    return Status::InvalidArgument("set functions cannot be nested in " +
                                   AggDisplayName(call));
  }
  SQLPL_ASSIGN_OR_RETURN(spec.arg, LowerScalar(arg, scope));
  switch (spec.func) {
    case AggFunc::kCount:
      spec.type = ColumnType::kInt64;
      break;
    case AggFunc::kSum:
      if (!IsNumeric(spec.arg.type)) {
        return Status::InvalidArgument("SUM requires a numeric argument; " +
                                       AggDisplayName(call) + " is " +
                                       ColumnTypeName(spec.arg.type));
      }
      spec.type = spec.arg.type;
      break;
    case AggFunc::kAvg:
      if (!IsNumeric(spec.arg.type)) {
        return Status::InvalidArgument("AVG requires a numeric argument; " +
                                       AggDisplayName(call) + " is " +
                                       ColumnTypeName(spec.arg.type));
      }
      spec.type = ColumnType::kDouble;
      break;
    case AggFunc::kMin:
    case AggFunc::kMax:
      spec.type = spec.arg.type;
      break;
  }
  return spec;
}

/// The grouped lowering context: group expressions lowered against the
/// table (position i → post-aggregate column i) and the collected
/// aggregates (position j → post-aggregate column group_count + j).
struct GroupScope {
  const TableScope* table = nullptr;
  std::vector<PlanExpr> group_exprs;        // against the table schema
  std::vector<std::string> group_renders;   // ToString of each, for matching
  std::vector<std::string> group_names;     // output display names
  std::vector<AstExpr> agg_asts;            // one per collected aggregate
  std::vector<AggSpec> aggs;

  /// Registers `call` if structurally new; returns its agg index.
  Result<size_t> Collect(const AstExpr& call) {
    for (size_t i = 0; i < agg_asts.size(); ++i) {
      if (agg_asts[i] == call) return i;
    }
    AggSpec spec;
    SQLPL_ASSIGN_OR_RETURN(spec, LowerAggCall(call, *table));
    agg_asts.push_back(call);
    aggs.push_back(std::move(spec));
    return agg_asts.size() - 1;
  }
};

/// Lowers an expression in grouped context: column references are only
/// legal when they (or the whole sub-expression) match a GROUP BY
/// expression, and aggregate calls become post-aggregate columns. The
/// produced indices address the Aggregate node's output schema
/// (group columns first, then aggregates).
Result<PlanExpr> LowerGrouped(const AstExpr& expr, GroupScope* scope) {
  if (IsAggCall(expr)) {
    size_t index;
    SQLPL_ASSIGN_OR_RETURN(index, scope->Collect(expr));
    const AggSpec& agg = scope->aggs[index];
    return PlanExpr::Column(
        static_cast<uint32_t>(scope->group_exprs.size() + index), agg.type,
        AggDisplayName(expr));
  }
  if (!ContainsAggCall(expr)) {
    // Aggregate-free: it must be a GROUP BY expression (compared by its
    // lowered, index-resolved rendering, so `t.grp` matches `grp`) or a
    // constant.
    PlanExpr lowered;
    SQLPL_ASSIGN_OR_RETURN(lowered, LowerScalar(expr, *scope->table));
    std::string render = lowered.ToString();
    for (size_t i = 0; i < scope->group_renders.size(); ++i) {
      if (scope->group_renders[i] == render) {
        return PlanExpr::Column(static_cast<uint32_t>(i), lowered.type,
                                scope->group_names[i]);
      }
    }
    if (lowered.op == ExprOp::kLiteralInt ||
        lowered.op == ExprOp::kLiteralDouble ||
        lowered.op == ExprOp::kLiteralString) {
      return lowered;
    }
    return Status::InvalidArgument("expression " + expr.ToString() +
                                   " must appear in the GROUP BY clause or "
                                   "inside a set function");
  }
  // Composite over aggregates, e.g. SUM(v) / COUNT(*): recurse and
  // re-type exactly like the scalar path.
  if (expr.kind == AstExprKind::kUnaryOp) {
    PlanExpr operand;
    SQLPL_ASSIGN_OR_RETURN(operand, LowerGrouped(expr.children[0], scope));
    PlanExpr out;
    if (expr.value == "NOT") {
      out.op = ExprOp::kNot;
      out.type = ColumnType::kInt64;
    } else if (expr.value == "-") {
      out.op = ExprOp::kNeg;
      out.type = operand.type;
    } else {
      return Status::InvalidArgument("unary operator \"" + expr.value +
                                     "\" is not executable");
    }
    out.children.push_back(std::move(operand));
    return out;
  }
  if (expr.kind == AstExprKind::kBinaryOp) {
    PlanExpr lhs;
    PlanExpr rhs;
    SQLPL_ASSIGN_OR_RETURN(lhs, LowerGrouped(expr.children[0], scope));
    SQLPL_ASSIGN_OR_RETURN(rhs, LowerGrouped(expr.children[1], scope));
    PlanExpr out;
    const std::string& op = expr.value;
    std::string upper = AsciiStrToUpper(op);
    if (IsComparisonOp(op)) {
      bool comparable =
          (IsNumeric(lhs.type) && IsNumeric(rhs.type)) ||
          (lhs.type == ColumnType::kString && rhs.type == ColumnType::kString);
      if (!comparable) {
        return Status::InvalidArgument(
            "cannot compare " + std::string(ColumnTypeName(lhs.type)) +
            " with " + std::string(ColumnTypeName(rhs.type)) + " in " +
            expr.ToString());
      }
      out.op = ComparisonOpFor(op);
      out.type = ColumnType::kInt64;
    } else if (upper == "AND" || upper == "OR") {
      out.op = upper == "AND" ? ExprOp::kAnd : ExprOp::kOr;
      out.type = ColumnType::kInt64;
    } else if (IsArithmeticOp(op)) {
      if (!IsNumeric(lhs.type) || !IsNumeric(rhs.type)) {
        return Status::InvalidArgument(
            "arithmetic requires numeric operands in " + expr.ToString());
      }
      out.op = ArithmeticOpFor(op);
      out.type =
          (lhs.type == ColumnType::kDouble || rhs.type == ColumnType::kDouble)
              ? ColumnType::kDouble
              : ColumnType::kInt64;
    } else {
      return Status::InvalidArgument("operator \"" + op +
                                     "\" is not executable");
    }
    out.children.push_back(std::move(lhs));
    out.children.push_back(std::move(rhs));
    return out;
  }
  return Status::InvalidArgument("expression " + expr.ToString() +
                                 " is not executable in grouped context");
}

/// Output display name of a select item without an alias.
std::string DerivedName(const AstExpr& expr, const PlanExpr& lowered) {
  if (expr.kind == AstExprKind::kColumnRef) return lowered.str;
  if (IsAggCall(expr)) return AggDisplayName(expr);
  return expr.ToString();
}

}  // namespace

Result<LogicalPlan> LowerSelect(const SelectStatement& statement,
                                const DialectSpec& spec,
                                const TableRegistry& registry,
                                const LoweringOptions& options) {
  SQLPL_RETURN_IF_ERROR(GateStatement(statement, spec));

  if (statement.from.empty()) {
    return Status::InvalidArgument("execution requires a FROM clause");
  }
  if (statement.from.size() > 1) {
    return Status::InvalidArgument(
        "execution supports exactly one table in FROM; got " +
        std::to_string(statement.from.size()));
  }
  if (statement.items.empty()) {
    return Status::InvalidArgument("empty select list");
  }
  const TableRef& from = statement.from[0];
  std::shared_ptr<const Table> table = registry.Find(from.name);
  if (table == nullptr) {
    return Status::NotFound("table \"" + from.name +
                            "\" is not registered for execution");
  }
  TableScope scope{table.get(), from.alias};

  auto plan = std::make_unique<PlanNode>();
  plan->kind = PlanKind::kScan;
  plan->table = table;

  if (statement.where.has_value()) {
    PlanExpr predicate;
    SQLPL_ASSIGN_OR_RETURN(predicate, LowerScalar(*statement.where, scope));
    if (predicate.type != ColumnType::kInt64) {
      return Status::InvalidArgument("WHERE predicate must be boolean; got " +
                                     std::string(ColumnTypeName(predicate.type)));
    }
    auto filter = std::make_unique<PlanNode>();
    filter->kind = PlanKind::kFilter;
    filter->predicate = std::move(predicate);
    filter->input = std::move(plan);
    plan = std::move(filter);
  }

  bool has_aggregates = false;
  for (const SelectItem& item : statement.items) {
    if (!item.is_star && ContainsAggCall(item.expr)) has_aggregates = true;
  }
  if (statement.having.has_value() && ContainsAggCall(*statement.having)) {
    has_aggregates = true;
  }
  bool grouped = !statement.group_by.empty() || has_aggregates;

  LogicalPlan result;
  std::vector<PlanExpr> project_exprs;

  if (grouped) {
    if (statement.having.has_value() && statement.group_by.empty()) {
      return Status::InvalidArgument(
          "HAVING without GROUP BY is not executable");
    }
    GroupScope group_scope;
    group_scope.table = &scope;
    for (const AstExpr& expr : statement.group_by) {
      PlanExpr lowered;
      SQLPL_ASSIGN_OR_RETURN(lowered, LowerScalar(expr, scope));
      group_scope.group_renders.push_back(lowered.ToString());
      group_scope.group_names.push_back(DerivedName(expr, lowered));
      group_scope.group_exprs.push_back(std::move(lowered));
    }
    // Lower select items and HAVING against the post-aggregate schema;
    // `Collect` accumulates every distinct aggregate along the way so
    // the Aggregate node computes them all, including HAVING-only ones.
    std::vector<std::string> names;
    for (const SelectItem& item : statement.items) {
      if (item.is_star) {
        return Status::InvalidArgument(
            "SELECT * cannot be combined with GROUP BY or set functions");
      }
      PlanExpr lowered;
      SQLPL_ASSIGN_OR_RETURN(lowered, LowerGrouped(item.expr, &group_scope));
      names.push_back(item.alias.empty() ? DerivedName(item.expr, lowered)
                                         : item.alias);
      project_exprs.push_back(std::move(lowered));
    }
    PlanExpr having;
    bool has_having = statement.having.has_value();
    if (has_having) {
      SQLPL_ASSIGN_OR_RETURN(having,
                             LowerGrouped(*statement.having, &group_scope));
      if (having.type != ColumnType::kInt64) {
        return Status::InvalidArgument("HAVING predicate must be boolean");
      }
    }

    auto agg = std::make_unique<PlanNode>();
    agg->kind = PlanKind::kAggregate;
    agg->group_by = std::move(group_scope.group_exprs);
    agg->aggs = std::move(group_scope.aggs);
    agg->input = std::move(plan);
    plan = std::move(agg);

    if (has_having) {
      auto filter = std::make_unique<PlanNode>();
      filter->kind = PlanKind::kFilter;
      filter->predicate = std::move(having);
      filter->input = std::move(plan);
      plan = std::move(filter);
    }
    result.column_names = std::move(names);
  } else {
    for (const SelectItem& item : statement.items) {
      if (item.is_star) {
        for (size_t i = 0; i < table->num_columns(); ++i) {
          const Column& column = table->column(i);
          project_exprs.push_back(PlanExpr::Column(static_cast<uint32_t>(i),
                                                   column.type, column.name));
          result.column_names.push_back(column.name);
        }
        continue;
      }
      PlanExpr lowered;
      SQLPL_ASSIGN_OR_RETURN(lowered, LowerScalar(item.expr, scope));
      result.column_names.push_back(
          item.alias.empty() ? DerivedName(item.expr, lowered) : item.alias);
      project_exprs.push_back(std::move(lowered));
    }
  }

  for (const PlanExpr& expr : project_exprs) {
    result.column_types.push_back(expr.type);
  }
  auto project = std::make_unique<PlanNode>();
  project->kind = PlanKind::kProject;
  project->exprs = std::move(project_exprs);
  project->input = std::move(plan);
  plan = std::move(project);

  if (statement.distinct) {
    // DISTINCT = re-group the projected rows on every output column; the
    // Aggregate node's group-key output is exactly the deduplicated row
    // set, and the output schema is unchanged.
    auto dedup = std::make_unique<PlanNode>();
    dedup->kind = PlanKind::kAggregate;
    for (size_t i = 0; i < result.column_names.size(); ++i) {
      dedup->group_by.push_back(PlanExpr::Column(static_cast<uint32_t>(i),
                                                 result.column_types[i],
                                                 result.column_names[i]));
    }
    dedup->input = std::move(plan);
    plan = std::move(dedup);
  }

  if (!statement.order_by.empty()) {
    auto sort = std::make_unique<PlanNode>();
    sort->kind = PlanKind::kSort;
    for (const OrderItem& item : statement.order_by) {
      int output_index = -1;
      // A sort key resolves positionally against the select list: either
      // it is structurally one of the select items, or it is a bare name
      // matching an output column name or alias.
      for (size_t i = 0; i < statement.items.size(); ++i) {
        if (!statement.items[i].is_star && statement.items[i].expr == item.expr) {
          output_index = static_cast<int>(i);
          break;
        }
      }
      if (output_index < 0 && item.expr.kind == AstExprKind::kColumnRef) {
        std::string key = AsciiStrToUpper(item.expr.value);
        for (size_t i = 0; i < result.column_names.size(); ++i) {
          if (AsciiStrToUpper(result.column_names[i]) == key) {
            output_index = static_cast<int>(i);
            break;
          }
        }
      }
      if (output_index < 0) {
        return Status::InvalidArgument("ORDER BY expression " +
                                       item.expr.ToString() +
                                       " does not match any select item");
      }
      sort->keys.push_back(PlanNode::SortKey{
          static_cast<uint32_t>(output_index), item.descending});
    }
    sort->input = std::move(plan);
    plan = std::move(sort);
  }

  if (options.max_rows > 0) {
    auto limit = std::make_unique<PlanNode>();
    limit->kind = PlanKind::kLimit;
    limit->limit = options.max_rows;
    limit->input = std::move(plan);
    plan = std::move(limit);
  }

  result.root = std::move(plan);
  return result;
}

}  // namespace exec
}  // namespace sqlpl
