#ifndef SQLPL_LEXER_TOKEN_H_
#define SQLPL_LEXER_TOKEN_H_

#include <string>
#include <vector>

#include "sqlpl/util/source_location.h"

namespace sqlpl {

/// One lexed SQL token. `type` is the token name from the dialect's
/// composed `TokenSet` (e.g. `SELECT`, `COMMA`, `IDENTIFIER`), or the
/// end-of-input marker `$`.
struct Token {
  std::string type;
  std::string text;
  SourceLocation location;

  bool operator==(const Token&) const = default;

  /// `SELECT('select')@1:1` style rendering for diagnostics.
  std::string ToString() const;
};

/// Renders a token stream one token per line.
std::string TokensToString(const std::vector<Token>& tokens);

}  // namespace sqlpl

#endif  // SQLPL_LEXER_TOKEN_H_
