#include "sqlpl/lexer/lexer.h"

#include <algorithm>

#include "sqlpl/util/strings.h"

namespace sqlpl {

namespace {

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

bool IsSqlIdentStart(char c) { return IsIdentStart(c); }

bool IsSqlIdentCont(char c) { return IsIdentCont(c) || c == '$'; }

}  // namespace

Lexer::Lexer(const TokenSet& tokens) {
  for (const TokenDef& def : tokens.ToVector()) {
    switch (def.kind) {
      case TokenPatternKind::kKeyword:
        keywords_[def.text] = def.name;
        break;
      case TokenPatternKind::kPunctuation:
        puncts_.emplace_back(def.text, def.name);
        break;
      case TokenPatternKind::kIdentifierClass:
        identifier_type_ = def.name;
        break;
      case TokenPatternKind::kNumberClass:
        number_type_ = def.name;
        break;
      case TokenPatternKind::kStringClass:
        string_type_ = def.name;
        break;
    }
  }
  std::sort(puncts_.begin(), puncts_.end(),
            [](const auto& a, const auto& b) {
              if (a.first.size() != b.first.size()) {
                return a.first.size() > b.first.size();
              }
              return a.first < b.first;
            });
}

bool Lexer::IsKeyword(std::string_view word) const {
  return keywords_.contains(AsciiStrToUpper(word));
}

Result<std::vector<Token>> Lexer::Tokenize(std::string_view sql) const {
  std::vector<Token> out;
  size_t pos = 0;
  size_t line = 1;
  size_t column = 1;

  auto here = [&]() -> SourceLocation { return {line, column, pos}; };
  auto advance = [&]() {
    if (sql[pos] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    ++pos;
  };
  auto error_at = [&](const SourceLocation& loc, const std::string& message) {
    return Status::ParseError("lex error at " + loc.ToString() + ": " +
                              message);
  };

  while (pos < sql.size()) {
    char c = sql[pos];

    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      advance();
      continue;
    }
    // Line comment `-- ...`.
    if (c == '-' && pos + 1 < sql.size() && sql[pos + 1] == '-') {
      while (pos < sql.size() && sql[pos] != '\n') advance();
      continue;
    }
    // Block comment `/* ... */`.
    if (c == '/' && pos + 1 < sql.size() && sql[pos + 1] == '*') {
      SourceLocation start = here();
      advance();
      advance();
      while (pos + 1 < sql.size() &&
             !(sql[pos] == '*' && sql[pos + 1] == '/')) {
        advance();
      }
      if (pos + 1 >= sql.size()) {
        return error_at(start, "unterminated block comment");
      }
      advance();
      advance();
      continue;
    }

    SourceLocation loc = here();

    // Word: keyword or regular identifier.
    if (IsSqlIdentStart(c)) {
      size_t start = pos;
      while (pos < sql.size() && IsSqlIdentCont(sql[pos])) advance();
      std::string word(sql.substr(start, pos - start));
      std::string upper = AsciiStrToUpper(word);
      auto it = keywords_.find(upper);
      if (it != keywords_.end()) {
        out.push_back({it->second, std::move(word), loc});
      } else if (!identifier_type_.empty()) {
        out.push_back({identifier_type_, std::move(word), loc});
      } else {
        return error_at(loc, "word '" + word +
                                 "' is neither a keyword of this dialect "
                                 "nor an identifier (dialect has no "
                                 "identifier token)");
      }
      continue;
    }

    // Delimited identifier `"..."` with `""` escape.
    if (c == '"') {
      if (identifier_type_.empty()) {
        return error_at(loc, "delimited identifiers not allowed: dialect "
                             "has no identifier token");
      }
      advance();
      std::string text;
      while (true) {
        if (pos >= sql.size()) {
          return error_at(loc, "unterminated delimited identifier");
        }
        if (sql[pos] == '"') {
          if (pos + 1 < sql.size() && sql[pos + 1] == '"') {
            text += '"';
            advance();
            advance();
            continue;
          }
          advance();
          break;
        }
        text += sql[pos];
        advance();
      }
      out.push_back({identifier_type_, std::move(text), loc});
      continue;
    }

    // String literal `'...'` with `''` escape.
    if (c == '\'') {
      if (string_type_.empty()) {
        return error_at(loc, "string literals not allowed: dialect has no "
                             "string token");
      }
      advance();
      std::string text;
      while (true) {
        if (pos >= sql.size()) {
          return error_at(loc, "unterminated string literal");
        }
        if (sql[pos] == '\'') {
          if (pos + 1 < sql.size() && sql[pos + 1] == '\'') {
            text += '\'';
            advance();
            advance();
            continue;
          }
          advance();
          break;
        }
        text += sql[pos];
        advance();
      }
      out.push_back({string_type_, std::move(text), loc});
      continue;
    }

    // Numeric literal: 123, 12.5, .5, 1e-3.
    if (IsDigit(c) || (c == '.' && pos + 1 < sql.size() &&
                       IsDigit(sql[pos + 1]))) {
      if (number_type_.empty()) {
        return error_at(loc, "numeric literals not allowed: dialect has no "
                             "number token");
      }
      size_t start = pos;
      while (pos < sql.size() && IsDigit(sql[pos])) advance();
      if (pos < sql.size() && sql[pos] == '.' &&
          pos + 1 < sql.size() && IsDigit(sql[pos + 1])) {
        advance();
        while (pos < sql.size() && IsDigit(sql[pos])) advance();
      } else if (pos < sql.size() && sql[pos] == '.' &&
                 !(pos + 1 < sql.size() && sql[pos + 1] == '.')) {
        // Trailing dot (`12.`) unless part of a `..` range token.
        advance();
      }
      if (pos < sql.size() && (sql[pos] == 'e' || sql[pos] == 'E')) {
        size_t mark = pos;
        advance();
        if (pos < sql.size() && (sql[pos] == '+' || sql[pos] == '-')) {
          advance();
        }
        if (pos < sql.size() && IsDigit(sql[pos])) {
          while (pos < sql.size() && IsDigit(sql[pos])) advance();
        } else {
          // Not an exponent after all (e.g. `1event`): rewind to `e`.
          column -= pos - mark;
          pos = mark;
        }
      }
      out.push_back({number_type_, std::string(sql.substr(start, pos - start)),
                     loc});
      continue;
    }

    // Punctuation, longest match first.
    bool matched = false;
    for (const auto& [text, type] : puncts_) {
      if (sql.size() - pos >= text.size() &&
          sql.substr(pos, text.size()) == text) {
        out.push_back({type, text, loc});
        for (size_t i = 0; i < text.size(); ++i) advance();
        matched = true;
        break;
      }
    }
    if (matched) continue;

    return error_at(loc, "character '" + std::string(1, c) +
                             "' starts no token of this dialect");
  }

  out.push_back({"$", "", here()});
  return out;
}

}  // namespace sqlpl
