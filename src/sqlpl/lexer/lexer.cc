#include "sqlpl/lexer/lexer.h"

#include <algorithm>

#include "sqlpl/util/strings.h"

namespace sqlpl {

namespace {

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

bool IsSqlIdentStart(char c) { return IsIdentStart(c); }

bool IsSqlIdentCont(char c) { return IsIdentCont(c) || c == '$'; }

// FNV-1a over the case-folded word. Keyword texts are stored uppercase
// (SQL convention), so hashing the stored text raw and the probed word
// folded lands both in the same slot; a non-uppercase stored text simply
// never matches, which is exactly the legacy map's behavior.
uint64_t KeywordHashFolded(std::string_view word) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : word) {
    h ^= static_cast<unsigned char>(AsciiToUpper(c));
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t KeywordHashRaw(std::string_view text) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// stored == upper(word), byte for byte — the legacy comparison
// (`keywords_.contains(AsciiStrToUpper(word))`) without the temporary.
bool KeywordEqualsFolded(std::string_view stored, std::string_view word) {
  if (stored.size() != word.size()) return false;
  for (size_t i = 0; i < stored.size(); ++i) {
    if (stored[i] != AsciiToUpper(word[i])) return false;
  }
  return true;
}

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Lexer::Lexer(const TokenSet& tokens)
    : Lexer(tokens, std::make_shared<SymbolInterner>()) {}

Lexer::Lexer(const TokenSet& tokens, std::shared_ptr<SymbolInterner> interner)
    : interner_(std::move(interner)) {
  std::vector<std::pair<std::string, SymbolId>> keywords;
  for (const TokenDef& def : tokens.ToVector()) {
    SymbolId id = interner_->Intern(def.name);
    switch (def.kind) {
      case TokenPatternKind::kKeyword:
        keywords.emplace_back(def.text, id);
        break;
      case TokenPatternKind::kPunctuation:
        puncts_.push_back({def.text, id});
        break;
      case TokenPatternKind::kIdentifierClass:
        identifier_id_ = id;
        break;
      case TokenPatternKind::kNumberClass:
        number_id_ = id;
        break;
      case TokenPatternKind::kStringClass:
        string_id_ = id;
        break;
    }
  }

  // Keyword probe table, at most half full.
  keyword_slots_.assign(
      std::max<size_t>(16, NextPowerOfTwo(keywords.size() * 2 + 1)),
      kEmptySlot);
  keyword_mask_ = keyword_slots_.size() - 1;
  keyword_texts_.reserve(keywords.size());
  keyword_ids_.reserve(keywords.size());
  for (auto& [text, id] : keywords) InsertKeyword(text, id);

  // Punctuation: one sorted run per first byte, longest first within the
  // run (the legacy longest-match-first scan, minus the cross-byte
  // candidates that could never match).
  std::sort(puncts_.begin(), puncts_.end(),
            [](const PunctEntry& a, const PunctEntry& b) {
              unsigned char fa = a.text.empty() ? 0 : a.text[0];
              unsigned char fb = b.text.empty() ? 0 : b.text[0];
              if (fa != fb) return fa < fb;
              if (a.text.size() != b.text.size()) {
                return a.text.size() > b.text.size();
              }
              return a.text < b.text;
            });
  punct_begin_.fill(0);
  punct_end_.fill(0);
  for (size_t i = 0; i < puncts_.size();) {
    unsigned char first = puncts_[i].text.empty()
                              ? 0
                              : static_cast<unsigned char>(puncts_[i].text[0]);
    size_t j = i;
    while (j < puncts_.size() &&
           (puncts_[j].text.empty()
                ? 0
                : static_cast<unsigned char>(puncts_[j].text[0])) == first) {
      ++j;
    }
    punct_begin_[first] = static_cast<uint32_t>(i);
    punct_end_[first] = static_cast<uint32_t>(j);
    i = j;
  }
}

void Lexer::InsertKeyword(const std::string& text, SymbolId type) {
  size_t slot = KeywordHashRaw(text) & keyword_mask_;
  while (keyword_slots_[slot] != kEmptySlot) {
    if (keyword_texts_[keyword_slots_[slot]] == text) {
      // Duplicate keyword text: the later definition wins, matching the
      // legacy `std::map` insert-assign.
      keyword_ids_[keyword_slots_[slot]] = type;
      return;
    }
    slot = (slot + 1) & keyword_mask_;
  }
  keyword_slots_[slot] = static_cast<uint32_t>(keyword_texts_.size());
  keyword_texts_.push_back(text);
  keyword_ids_.push_back(type);
}

SymbolId Lexer::FindKeyword(std::string_view word) const {
  size_t slot = KeywordHashFolded(word) & keyword_mask_;
  while (keyword_slots_[slot] != kEmptySlot) {
    uint32_t index = keyword_slots_[slot];
    if (KeywordEqualsFolded(keyword_texts_[index], word)) {
      return keyword_ids_[index];
    }
    slot = (slot + 1) & keyword_mask_;
  }
  return kInvalidSymbolId;
}

Status Lexer::TokenizeInto(std::string_view sql, TokenStream* out) const {
  std::vector<LexedToken>& tokens = out->tokens();
  size_t pos = 0;
  size_t line = 1;
  size_t column = 1;

  auto here = [&]() -> SourceLocation { return {line, column, pos}; };
  auto advance = [&]() {
    if (sql[pos] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    ++pos;
  };
  auto error_at = [&](const SourceLocation& loc, const std::string& message) {
    return Status::ParseError("lex error at " + loc.ToString() + ": " +
                              message);
  };

  while (pos < sql.size()) {
    char c = sql[pos];

    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      advance();
      continue;
    }
    // Line comment `-- ...`.
    if (c == '-' && pos + 1 < sql.size() && sql[pos + 1] == '-') {
      while (pos < sql.size() && sql[pos] != '\n') advance();
      continue;
    }
    // Block comment `/* ... */`.
    if (c == '/' && pos + 1 < sql.size() && sql[pos + 1] == '*') {
      SourceLocation start = here();
      advance();
      advance();
      while (pos + 1 < sql.size() &&
             !(sql[pos] == '*' && sql[pos + 1] == '/')) {
        advance();
      }
      if (pos + 1 >= sql.size()) {
        return error_at(start, "unterminated block comment");
      }
      advance();
      advance();
      continue;
    }

    SourceLocation loc = here();

    // Word: keyword or regular identifier.
    if (IsSqlIdentStart(c)) {
      size_t start = pos;
      while (pos < sql.size() && IsSqlIdentCont(sql[pos])) advance();
      std::string_view word = sql.substr(start, pos - start);
      SymbolId keyword = FindKeyword(word);
      if (keyword != kInvalidSymbolId) {
        tokens.push_back({keyword, word, loc});
      } else if (identifier_id_ != kInvalidSymbolId) {
        tokens.push_back({identifier_id_, word, loc});
      } else {
        return error_at(loc, "word '" + std::string(word) +
                                 "' is neither a keyword of this dialect "
                                 "nor an identifier (dialect has no "
                                 "identifier token)");
      }
      continue;
    }

    // Delimited identifier `"..."` with `""` escape.
    if (c == '"') {
      if (identifier_id_ == kInvalidSymbolId) {
        return error_at(loc, "delimited identifiers not allowed: dialect "
                             "has no identifier token");
      }
      advance();
      size_t body_start = pos;
      bool has_escape = false;
      // First pass: find the closing quote, noting `""` escapes.
      while (true) {
        if (pos >= sql.size()) {
          return error_at(loc, "unterminated delimited identifier");
        }
        if (sql[pos] == '"') {
          if (pos + 1 < sql.size() && sql[pos + 1] == '"') {
            has_escape = true;
            advance();
            advance();
            continue;
          }
          break;
        }
        advance();
      }
      std::string_view body = sql.substr(body_start, pos - body_start);
      advance();  // closing quote
      if (!has_escape) {
        tokens.push_back({identifier_id_, body, loc});
      } else {
        char* dst = out->text_arena().AllocateArray<char>(body.size());
        size_t n = 0;
        for (size_t i = 0; i < body.size(); ++i) {
          dst[n++] = body[i];
          if (body[i] == '"') ++i;  // collapse ""
        }
        tokens.push_back({identifier_id_, std::string_view(dst, n), loc});
      }
      continue;
    }

    // String literal `'...'` with `''` escape.
    if (c == '\'') {
      if (string_id_ == kInvalidSymbolId) {
        return error_at(loc, "string literals not allowed: dialect has no "
                             "string token");
      }
      advance();
      size_t body_start = pos;
      bool has_escape = false;
      while (true) {
        if (pos >= sql.size()) {
          return error_at(loc, "unterminated string literal");
        }
        if (sql[pos] == '\'') {
          if (pos + 1 < sql.size() && sql[pos + 1] == '\'') {
            has_escape = true;
            advance();
            advance();
            continue;
          }
          break;
        }
        advance();
      }
      std::string_view body = sql.substr(body_start, pos - body_start);
      advance();  // closing quote
      if (!has_escape) {
        tokens.push_back({string_id_, body, loc});
      } else {
        char* dst = out->text_arena().AllocateArray<char>(body.size());
        size_t n = 0;
        for (size_t i = 0; i < body.size(); ++i) {
          dst[n++] = body[i];
          if (body[i] == '\'') ++i;  // collapse ''
        }
        tokens.push_back({string_id_, std::string_view(dst, n), loc});
      }
      continue;
    }

    // Numeric literal: 123, 12.5, .5, 1e-3.
    if (IsDigit(c) || (c == '.' && pos + 1 < sql.size() &&
                       IsDigit(sql[pos + 1]))) {
      if (number_id_ == kInvalidSymbolId) {
        return error_at(loc, "numeric literals not allowed: dialect has no "
                             "number token");
      }
      size_t start = pos;
      while (pos < sql.size() && IsDigit(sql[pos])) advance();
      if (pos < sql.size() && sql[pos] == '.' &&
          pos + 1 < sql.size() && IsDigit(sql[pos + 1])) {
        advance();
        while (pos < sql.size() && IsDigit(sql[pos])) advance();
      } else if (pos < sql.size() && sql[pos] == '.' &&
                 !(pos + 1 < sql.size() && sql[pos + 1] == '.')) {
        // Trailing dot (`12.`) unless part of a `..` range token.
        advance();
      }
      if (pos < sql.size() && (sql[pos] == 'e' || sql[pos] == 'E')) {
        size_t mark = pos;
        advance();
        if (pos < sql.size() && (sql[pos] == '+' || sql[pos] == '-')) {
          advance();
        }
        if (pos < sql.size() && IsDigit(sql[pos])) {
          while (pos < sql.size() && IsDigit(sql[pos])) advance();
        } else {
          // Not an exponent after all (e.g. `1event`): rewind to `e`.
          column -= pos - mark;
          pos = mark;
        }
      }
      tokens.push_back({number_id_, sql.substr(start, pos - start), loc});
      continue;
    }

    // Punctuation: probe only the entries starting with this byte,
    // longest first.
    unsigned char first = static_cast<unsigned char>(c);
    uint32_t begin = punct_begin_[first];
    uint32_t end = punct_end_[first];
    bool matched = false;
    for (uint32_t i = begin; i < end; ++i) {
      const PunctEntry& entry = puncts_[i];
      if (sql.size() - pos >= entry.text.size() &&
          sql.compare(pos, entry.text.size(), entry.text) == 0) {
        tokens.push_back(
            {entry.type, sql.substr(pos, entry.text.size()), loc});
        for (size_t k = 0; k < entry.text.size(); ++k) advance();
        matched = true;
        break;
      }
    }
    if (matched) continue;

    return error_at(loc, "character '" + std::string(1, c) +
                             "' starts no token of this dialect");
  }

  tokens.push_back({kEndOfInputId, {}, here()});
  return Status::OK();
}

Result<std::vector<Token>> Lexer::Tokenize(std::string_view sql) const {
  TokenStream stream;
  SQLPL_RETURN_IF_ERROR(TokenizeInto(sql, &stream));
  std::vector<Token> out;
  out.reserve(stream.size());
  for (const LexedToken& token : stream.tokens()) {
    out.push_back({std::string(interner_->NameOf(token.type)),
                   std::string(token.text), token.location});
  }
  return out;
}

}  // namespace sqlpl
