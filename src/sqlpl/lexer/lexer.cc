#include "sqlpl/lexer/lexer.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "sqlpl/util/strings.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace sqlpl {

namespace {

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

bool IsSqlIdentStart(char c) { return IsIdentStart(c); }

bool IsSqlIdentCont(char c) { return IsIdentCont(c) || c == '$'; }

bool IsWsChar(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}

// --- vectorized run scanning ----------------------------------------
//
// The lexer's hot loops are runs: identifier/keyword words, digit
// strings, and whitespace gaps. Each run is classified 16 bytes at a
// time with SSE2 when the CPU has it (checked once at runtime), 8 bytes
// at a time with SWAR bit tricks otherwise, with a scalar tail. The
// scanners only *find the end of the run* — token assembly, location
// bookkeeping, and every error path stay in the scalar code, which is
// what keeps the token stream byte-identical to the scalar lexer
// (pinned by LexerTest.ScalarAndVectorScannersAgree and the bench
// differential).
//
// Ident and digit runs can never contain '\n', so the caller advances
// `column` by the run length in one add; whitespace runs count their
// newlines after the end is known.

std::atomic<bool> g_force_scalar_scan{false};

constexpr uint64_t kOnes = 0x0101010101010101ull;
constexpr uint64_t kHighBits = 0x8080808080808080ull;

// SWAR primitives, valid for bytes < 0x80 (callers bail to scalar when
// a word has any high bit set — SQL hot paths are ASCII).
// In-range test: byte b sets its 0x80 flag iff lo <= b <= hi.
//   b >= lo  <=>  b + (0x80 - lo) >= 0x80   (no cross-byte carry: sum <= 0xFF)
//   b <= hi  <=>  (hi + 0x80) - b >= 0x80   (no cross-byte borrow)
uint64_t SwarInRange(uint64_t x, uint8_t lo, uint8_t hi) {
  uint64_t ge = (x + (0x80u - lo) * kOnes) & kHighBits;
  uint64_t le = ((hi + 0x80u) * kOnes - x) & kHighBits;
  return ge & le;
}

uint64_t SwarIdentContMask(uint64_t x) {
  // Fold letters to lowercase; '_' (0x5F) folds to 0x7F and '$' to
  // 0x24, neither lands in 'a'..'z', so the fold can't false-positive.
  uint64_t letters = SwarInRange(x | (0x20 * kOnes), 'a', 'z');
  uint64_t digits = SwarInRange(x, '0', '9');
  uint64_t underscore = SwarInRange(x, '_', '_');
  uint64_t dollar = SwarInRange(x, '$', '$');
  return letters | digits | underscore | dollar;
}

uint64_t SwarWhitespaceMask(uint64_t x) {
  return SwarInRange(x, '\t', '\r') | SwarInRange(x, ' ', ' ');
}

#if defined(__SSE2__)
bool CpuHasSse2() {
  static const bool has = __builtin_cpu_supports("sse2");
  return has;
}

// 16-bit mask with bit i set iff byte i continues an identifier.
// Signed compares make high-bit bytes negative, so non-ASCII naturally
// falls out of every class — no pre-guard needed.
int Sse2IdentContMask(__m128i v) {
  __m128i lower = _mm_or_si128(v, _mm_set1_epi8(0x20));
  __m128i letters = _mm_and_si128(
      _mm_cmpgt_epi8(lower, _mm_set1_epi8('a' - 1)),
      _mm_cmplt_epi8(lower, _mm_set1_epi8('z' + 1)));
  __m128i digits = _mm_and_si128(
      _mm_cmpgt_epi8(v, _mm_set1_epi8('0' - 1)),
      _mm_cmplt_epi8(v, _mm_set1_epi8('9' + 1)));
  __m128i special = _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8('_')),
                                 _mm_cmpeq_epi8(v, _mm_set1_epi8('$')));
  return _mm_movemask_epi8(
      _mm_or_si128(_mm_or_si128(letters, digits), special));
}

int Sse2DigitMask(__m128i v) {
  return _mm_movemask_epi8(
      _mm_and_si128(_mm_cmpgt_epi8(v, _mm_set1_epi8('0' - 1)),
                    _mm_cmplt_epi8(v, _mm_set1_epi8('9' + 1))));
}

int Sse2WhitespaceMask(__m128i v) {
  __m128i ctrl = _mm_and_si128(
      _mm_cmpgt_epi8(v, _mm_set1_epi8('\t' - 1)),
      _mm_cmplt_epi8(v, _mm_set1_epi8('\r' + 1)));
  return _mm_movemask_epi8(
      _mm_or_si128(ctrl, _mm_cmpeq_epi8(v, _mm_set1_epi8(' '))));
}
#endif  // __SSE2__

// Shared run-scanner skeleton: `pos` must point at (or past) the run's
// first byte; returns the index of the first byte NOT in the class.
template <typename ScalarPred, typename SwarMask, typename SseMask>
size_t ScanRun(std::string_view sql, size_t pos, ScalarPred scalar_pred,
               SwarMask swar_mask, SseMask sse_mask) {
  if (!g_force_scalar_scan.load(std::memory_order_relaxed)) {
#if defined(__SSE2__)
    if (CpuHasSse2()) {
      while (pos + 16 <= sql.size()) {
        __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(sql.data() + pos));
        int mask = sse_mask(v);
        if (mask != 0xFFFF) {
          return pos + static_cast<size_t>(__builtin_ctz(~mask & 0xFFFF));
        }
        pos += 16;
      }
    }
#else
    (void)sse_mask;
#endif
    while (pos + 8 <= sql.size()) {
      uint64_t word;
      std::memcpy(&word, sql.data() + pos, 8);
      if ((word & kHighBits) != 0) break;  // non-ASCII: scalar tail owns it
      uint64_t mask = swar_mask(word);
      if (mask != kHighBits) {
        // Little-endian: the first byte out of class is the lowest
        // clear 0x80 flag.
        return pos + (static_cast<size_t>(
                          __builtin_ctzll(~mask & kHighBits)) >>
                      3);
      }
      pos += 8;
    }
  }
  while (pos < sql.size() && scalar_pred(sql[pos])) ++pos;
  return pos;
}

size_t ScanIdentRun(std::string_view sql, size_t pos) {
  return ScanRun(sql, pos, IsSqlIdentCont, SwarIdentContMask,
#if defined(__SSE2__)
                 Sse2IdentContMask
#else
                 0
#endif
  );
}

size_t ScanDigitRun(std::string_view sql, size_t pos) {
  return ScanRun(sql, pos, IsDigit, [](uint64_t x) {
    return SwarInRange(x, '0', '9');
  },
#if defined(__SSE2__)
                 Sse2DigitMask
#else
                 0
#endif
  );
}

size_t ScanWhitespaceRun(std::string_view sql, size_t pos) {
  return ScanRun(sql, pos, IsWsChar, SwarWhitespaceMask,
#if defined(__SSE2__)
                 Sse2WhitespaceMask
#else
                 0
#endif
  );
}

// FNV-1a over the case-folded word. Keyword texts are stored uppercase
// (SQL convention), so hashing the stored text raw and the probed word
// folded lands both in the same slot; a non-uppercase stored text simply
// never matches, which is exactly the legacy map's behavior.
// Case-folds one 8-byte chunk to upper, byte-exact with AsciiToUpper:
// the SWAR fold handles the all-ASCII common case in a handful of ops;
// chunks with high bits (where SwarInRange's carries could misclassify
// neighbors) take the scalar fold so non-ASCII keyword texts keep the
// legacy byte-for-byte semantics.
uint64_t FoldUpperChunk(uint64_t x) {
  if ((x & kHighBits) == 0) {
    uint64_t letters = SwarInRange(x | (0x20 * kOnes), 'a', 'z');
    return x & ~(letters >> 2);  // clear bit 5 exactly on a-z bytes
  }
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    uint64_t b = (x >> (i * 8)) & 0xFF;
    out |= static_cast<uint64_t>(static_cast<unsigned char>(
               AsciiToUpper(static_cast<char>(b))))
           << (i * 8);
  }
  return out;
}

uint64_t HashChunk(uint64_t h, uint64_t x) {
  h ^= x;
  h *= 0x9E3779B97F4A7C15ull;
  h ^= h >> 29;
  return h;
}

// Loads the sub-8-byte tail of `s` starting at `i`, zero-padded, with
// two overlapping fixed-size loads (which the compiler inlines; a
// variable-length memcpy becomes a libc call that dwarfs the work).
// The overlapped bytes are read twice with the same value, so the OR
// reconstructs exactly the zero-padded little-endian tail.
uint64_t LoadTail(std::string_view s, size_t i) {
  size_t n = s.size() - i;
  if (n >= 4) {
    uint32_t a;
    uint32_t b;
    std::memcpy(&a, s.data() + i, 4);
    std::memcpy(&b, s.data() + s.size() - 4, 4);
    return a | (static_cast<uint64_t>(b) << ((n - 4) * 8));
  }
  if (n >= 2) {
    uint16_t a;
    uint16_t b;
    std::memcpy(&a, s.data() + i, 2);
    std::memcpy(&b, s.data() + s.size() - 2, 2);
    return a | (static_cast<uint64_t>(b) << ((n - 2) * 8));
  }
  if (n == 1) return static_cast<unsigned char>(s[i]);
  return 0;
}

// Hash of upper(word), folded 8 bytes at a time. Equals KeywordHashRaw
// of a stored text exactly when that text is upper(word) — the pair of
// functions the probe table is built on.
uint64_t KeywordHashFolded(std::string_view word) {
  uint64_t h = 0xcbf29ce484222325ull;
  size_t i = 0;
  for (; i + 8 <= word.size(); i += 8) {
    uint64_t x;
    std::memcpy(&x, word.data() + i, 8);
    h = HashChunk(h, FoldUpperChunk(x));
  }
  // Tail and length share one finalize round: a second full HashChunk
  // would cost another multiply per word on the hot probe path, and
  // probe-table quality only needs equal-strings-equal-hash plus decent
  // dispersion, which the single multiply already provides.
  h ^= FoldUpperChunk(LoadTail(word, i));
  h ^= static_cast<uint64_t>(word.size()) << 56;
  h *= 0x9E3779B97F4A7C15ull;
  h ^= h >> 29;
  return h;
}

uint64_t KeywordHashRaw(std::string_view text) {
  uint64_t h = 0xcbf29ce484222325ull;
  size_t i = 0;
  for (; i + 8 <= text.size(); i += 8) {
    uint64_t x;
    std::memcpy(&x, text.data() + i, 8);
    h = HashChunk(h, x);
  }
  h ^= LoadTail(text, i);
  h ^= static_cast<uint64_t>(text.size()) << 56;
  h *= 0x9E3779B97F4A7C15ull;
  h ^= h >> 29;
  return h;
}

// stored == upper(word), byte for byte — the legacy comparison
// (`keywords_.contains(AsciiStrToUpper(word))`) without the temporary,
// folded a chunk at a time.
bool KeywordEqualsFolded(std::string_view stored, std::string_view word) {
  if (stored.size() != word.size()) return false;
  size_t i = 0;
  for (; i + 8 <= word.size(); i += 8) {
    uint64_t w;
    uint64_t s;
    std::memcpy(&w, word.data() + i, 8);
    std::memcpy(&s, stored.data() + i, 8);
    if (FoldUpperChunk(w) != s) return false;
  }
  if (i < word.size() &&
      FoldUpperChunk(LoadTail(word, i)) != LoadTail(stored, i)) {
    return false;
  }
  return true;
}

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void Lexer::SetScalarScanForTesting(bool scalar) {
  g_force_scalar_scan.store(scalar, std::memory_order_relaxed);
}

bool Lexer::scalar_scan_for_testing() {
  return g_force_scalar_scan.load(std::memory_order_relaxed);
}

Lexer::Lexer(const TokenSet& tokens)
    : Lexer(tokens, std::make_shared<SymbolInterner>()) {}

Lexer::Lexer(const TokenSet& tokens, std::shared_ptr<SymbolInterner> interner)
    : interner_(std::move(interner)) {
  std::vector<std::pair<std::string, SymbolId>> keywords;
  for (const TokenDef& def : tokens.ToVector()) {
    SymbolId id = interner_->Intern(def.name);
    switch (def.kind) {
      case TokenPatternKind::kKeyword:
        keywords.emplace_back(def.text, id);
        break;
      case TokenPatternKind::kPunctuation:
        puncts_.push_back({def.text, id});
        break;
      case TokenPatternKind::kIdentifierClass:
        identifier_id_ = id;
        break;
      case TokenPatternKind::kNumberClass:
        number_id_ = id;
        break;
      case TokenPatternKind::kStringClass:
        string_id_ = id;
        break;
    }
  }

  // Keyword probe table, at most half full.
  keyword_slots_.assign(
      std::max<size_t>(16, NextPowerOfTwo(keywords.size() * 2 + 1)),
      kEmptySlot);
  keyword_mask_ = keyword_slots_.size() - 1;
  keyword_texts_.reserve(keywords.size());
  keyword_ids_.reserve(keywords.size());
  kw_filter_.fill(0);
  for (auto& [text, id] : keywords) InsertKeyword(text, id);

  // Punctuation: one sorted run per first byte, longest first within the
  // run (the legacy longest-match-first scan, minus the cross-byte
  // candidates that could never match).
  std::sort(puncts_.begin(), puncts_.end(),
            [](const PunctEntry& a, const PunctEntry& b) {
              unsigned char fa = a.text.empty() ? 0 : a.text[0];
              unsigned char fb = b.text.empty() ? 0 : b.text[0];
              if (fa != fb) return fa < fb;
              if (a.text.size() != b.text.size()) {
                return a.text.size() > b.text.size();
              }
              return a.text < b.text;
            });
  punct_begin_.fill(0);
  punct_end_.fill(0);
  for (size_t i = 0; i < puncts_.size();) {
    unsigned char first = puncts_[i].text.empty()
                              ? 0
                              : static_cast<unsigned char>(puncts_[i].text[0]);
    size_t j = i;
    while (j < puncts_.size() &&
           (puncts_[j].text.empty()
                ? 0
                : static_cast<unsigned char>(puncts_[j].text[0])) == first) {
      ++j;
    }
    punct_begin_[first] = static_cast<uint32_t>(i);
    punct_end_[first] = static_cast<uint32_t>(j);
    i = j;
  }
}

void Lexer::InsertKeyword(const std::string& text, SymbolId type) {
  if (!text.empty()) {
    uint32_t bit = 1u << (text.size() < 31 ? text.size() : 31);
    unsigned char first = static_cast<unsigned char>(text[0]);
    kw_filter_[first] |= bit;
    // A probe word matches only if it case-folds to the stored text, so
    // its first byte is `first` or, for letters, the other case.
    if (first >= 'A' && first <= 'Z') kw_filter_[first + 0x20] |= bit;
    if (first >= 'a' && first <= 'z') kw_filter_[first - 0x20] |= bit;
  }
  size_t slot = KeywordHashRaw(text) & keyword_mask_;
  while (keyword_slots_[slot] != kEmptySlot) {
    if (keyword_texts_[keyword_slots_[slot]] == text) {
      // Duplicate keyword text: the later definition wins, matching the
      // legacy `std::map` insert-assign.
      keyword_ids_[keyword_slots_[slot]] = type;
      return;
    }
    slot = (slot + 1) & keyword_mask_;
  }
  keyword_slots_[slot] = static_cast<uint32_t>(keyword_texts_.size());
  keyword_texts_.push_back(text);
  keyword_ids_.push_back(type);
}

SymbolId Lexer::FindKeyword(std::string_view word) const {
  if (word.empty() ||
      !(kw_filter_[static_cast<unsigned char>(word[0])] &
        (1u << (word.size() < 31 ? word.size() : 31)))) {
    return kInvalidSymbolId;
  }
  size_t slot = KeywordHashFolded(word) & keyword_mask_;
  while (keyword_slots_[slot] != kEmptySlot) {
    uint32_t index = keyword_slots_[slot];
    if (KeywordEqualsFolded(keyword_texts_[index], word)) {
      return keyword_ids_[index];
    }
    slot = (slot + 1) & keyword_mask_;
  }
  return kInvalidSymbolId;
}

Status Lexer::TokenizeInto(std::string_view sql, TokenStream* out) const {
  std::vector<LexedToken>& tokens = out->tokens();
  size_t pos = 0;
  size_t line = 1;
  size_t column = 1;

  auto here = [&]() -> SourceLocation { return {line, column, pos}; };
  auto advance = [&]() {
    if (sql[pos] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    ++pos;
  };
  // Settles line/column over sql[pos, end) in one step — the batched
  // equivalent of calling advance() once per byte.
  auto advance_over = [&](size_t end) {
    size_t last_newline = sql.substr(pos, end - pos).rfind('\n');
    if (last_newline == std::string_view::npos) {
      column += end - pos;
    } else {
      line += static_cast<size_t>(
          std::count(sql.begin() + static_cast<ptrdiff_t>(pos),
                     sql.begin() + static_cast<ptrdiff_t>(pos + last_newline),
                     '\n')) +
              1;
      column = end - (pos + last_newline);
    }
    pos = end;
  };
  auto error_at = [&](const SourceLocation& loc, const std::string& message) {
    return Status::ParseError("lex error at " + loc.ToString() + ": " +
                              message);
  };

  while (pos < sql.size()) {
    char c = sql[pos];

    // The single space between two tokens (and the lone newline ending
    // a statement line) are by far the most common gaps; skip them
    // without the run-scanner setup.
    if (c == ' ' && (pos + 1 >= sql.size() || !IsWsChar(sql[pos + 1]))) {
      ++column;
      ++pos;
      continue;
    }
    if (c == '\n' && (pos + 1 >= sql.size() || !IsWsChar(sql[pos + 1]))) {
      ++line;
      column = 1;
      ++pos;
      continue;
    }
    // Whitespace: scan the whole gap vectorized, then settle the
    // line/column accounting once over the known run.
    if (IsWsChar(c)) {
      advance_over(ScanWhitespaceRun(sql, pos));
      continue;
    }
    // Line comment `-- ...`: runs to (not through) the newline, which
    // the whitespace branch then accounts for.
    if (c == '-' && pos + 1 < sql.size() && sql[pos + 1] == '-') {
      const void* nl = std::memchr(sql.data() + pos, '\n', sql.size() - pos);
      size_t end = nl == nullptr
                       ? sql.size()
                       : static_cast<size_t>(static_cast<const char*>(nl) -
                                             sql.data());
      column += end - pos;  // comment bytes never include a newline
      pos = end;
      continue;
    }
    // Block comment `/* ... */`.
    if (c == '/' && pos + 1 < sql.size() && sql[pos + 1] == '*') {
      SourceLocation start = here();
      size_t scan = pos + 2;
      while (true) {
        const void* star =
            std::memchr(sql.data() + scan, '*', sql.size() - scan);
        if (star == nullptr ||
            static_cast<size_t>(static_cast<const char*>(star) -
                                sql.data()) +
                    1 >=
                sql.size()) {
          return error_at(start, "unterminated block comment");
        }
        scan = static_cast<size_t>(static_cast<const char*>(star) -
                                   sql.data());
        if (sql[scan + 1] == '/') break;
        ++scan;
      }
      advance_over(scan + 2);
      continue;
    }

    SourceLocation loc = here();

    // Word: keyword or regular identifier. Ident bytes never contain a
    // newline, so the run advances `column` in one add.
    if (IsSqlIdentStart(c)) {
      size_t start = pos;
      size_t end = ScanIdentRun(sql, pos + 1);
      column += end - pos;
      pos = end;
      std::string_view word = sql.substr(start, pos - start);
      SymbolId keyword = FindKeyword(word);
      if (keyword != kInvalidSymbolId) {
        tokens.push_back({keyword, word, loc});
      } else if (identifier_id_ != kInvalidSymbolId) {
        tokens.push_back({identifier_id_, word, loc});
      } else {
        return error_at(loc, "word '" + std::string(word) +
                                 "' is neither a keyword of this dialect "
                                 "nor an identifier (dialect has no "
                                 "identifier token)");
      }
      continue;
    }

    // Delimited identifier `"..."` with `""` escape.
    if (c == '"') {
      if (identifier_id_ == kInvalidSymbolId) {
        return error_at(loc, "delimited identifiers not allowed: dialect "
                             "has no identifier token");
      }
      advance();
      size_t body_start = pos;
      bool has_escape = false;
      // First pass: find the closing quote, noting `""` escapes. memchr
      // jumps quote to quote; advance_over settles line/column for the
      // skipped body (which may span newlines).
      while (true) {
        const void* q = std::memchr(sql.data() + pos, '"', sql.size() - pos);
        if (q == nullptr) {
          return error_at(loc, "unterminated delimited identifier");
        }
        advance_over(
            static_cast<size_t>(static_cast<const char*>(q) - sql.data()));
        if (pos + 1 < sql.size() && sql[pos + 1] == '"') {
          has_escape = true;
          advance();
          advance();
          continue;
        }
        break;
      }
      std::string_view body = sql.substr(body_start, pos - body_start);
      advance();  // closing quote
      if (!has_escape) {
        tokens.push_back({identifier_id_, body, loc});
      } else {
        char* dst = out->text_arena().AllocateArray<char>(body.size());
        size_t n = 0;
        for (size_t i = 0; i < body.size(); ++i) {
          dst[n++] = body[i];
          if (body[i] == '"') ++i;  // collapse ""
        }
        tokens.push_back({identifier_id_, std::string_view(dst, n), loc});
      }
      continue;
    }

    // String literal `'...'` with `''` escape.
    if (c == '\'') {
      if (string_id_ == kInvalidSymbolId) {
        return error_at(loc, "string literals not allowed: dialect has no "
                             "string token");
      }
      advance();
      size_t body_start = pos;
      bool has_escape = false;
      while (true) {
        const void* q = std::memchr(sql.data() + pos, '\'', sql.size() - pos);
        if (q == nullptr) {
          return error_at(loc, "unterminated string literal");
        }
        advance_over(
            static_cast<size_t>(static_cast<const char*>(q) - sql.data()));
        if (pos + 1 < sql.size() && sql[pos + 1] == '\'') {
          has_escape = true;
          advance();
          advance();
          continue;
        }
        break;
      }
      std::string_view body = sql.substr(body_start, pos - body_start);
      advance();  // closing quote
      if (!has_escape) {
        tokens.push_back({string_id_, body, loc});
      } else {
        char* dst = out->text_arena().AllocateArray<char>(body.size());
        size_t n = 0;
        for (size_t i = 0; i < body.size(); ++i) {
          dst[n++] = body[i];
          if (body[i] == '\'') ++i;  // collapse ''
        }
        tokens.push_back({string_id_, std::string_view(dst, n), loc});
      }
      continue;
    }

    // Numeric literal: 123, 12.5, .5, 1e-3.
    if (IsDigit(c) || (c == '.' && pos + 1 < sql.size() &&
                       IsDigit(sql[pos + 1]))) {
      if (number_id_ == kInvalidSymbolId) {
        return error_at(loc, "numeric literals not allowed: dialect has no "
                             "number token");
      }
      size_t start = pos;
      size_t digits_end = ScanDigitRun(sql, pos);
      column += digits_end - pos;
      pos = digits_end;
      if (pos < sql.size() && sql[pos] == '.' &&
          pos + 1 < sql.size() && IsDigit(sql[pos + 1])) {
        advance();
        digits_end = ScanDigitRun(sql, pos);
        column += digits_end - pos;
        pos = digits_end;
      } else if (pos < sql.size() && sql[pos] == '.' &&
                 !(pos + 1 < sql.size() && sql[pos + 1] == '.')) {
        // Trailing dot (`12.`) unless part of a `..` range token.
        advance();
      }
      if (pos < sql.size() && (sql[pos] == 'e' || sql[pos] == 'E')) {
        size_t mark = pos;
        advance();
        if (pos < sql.size() && (sql[pos] == '+' || sql[pos] == '-')) {
          advance();
        }
        if (pos < sql.size() && IsDigit(sql[pos])) {
          digits_end = ScanDigitRun(sql, pos);
          column += digits_end - pos;
          pos = digits_end;
        } else {
          // Not an exponent after all (e.g. `1event`): rewind to `e`.
          column -= pos - mark;
          pos = mark;
        }
      }
      tokens.push_back({number_id_, sql.substr(start, pos - start), loc});
      continue;
    }

    // Punctuation: probe only the entries starting with this byte,
    // longest first.
    unsigned char first = static_cast<unsigned char>(c);
    uint32_t begin = punct_begin_[first];
    uint32_t end = punct_end_[first];
    bool matched = false;
    for (uint32_t i = begin; i < end; ++i) {
      const PunctEntry& entry = puncts_[i];
      // The bucket guarantees the first byte matches, so a one-byte
      // entry (the common punctuation) matches outright.
      if (sql.size() - pos >= entry.text.size() &&
          (entry.text.size() == 1 ||
           std::memcmp(sql.data() + pos + 1, entry.text.data() + 1,
                       entry.text.size() - 1) == 0)) {
        tokens.push_back(
            {entry.type, sql.substr(pos, entry.text.size()), loc});
        for (size_t k = 0; k < entry.text.size(); ++k) advance();
        matched = true;
        break;
      }
    }
    if (matched) continue;

    return error_at(loc, "character '" + std::string(1, c) +
                             "' starts no token of this dialect");
  }

  tokens.push_back({kEndOfInputId, {}, here()});
  return Status::OK();
}

Result<std::vector<Token>> Lexer::Tokenize(std::string_view sql) const {
  TokenStream stream;
  SQLPL_RETURN_IF_ERROR(TokenizeInto(sql, &stream));
  std::vector<Token> out;
  out.reserve(stream.size());
  for (const LexedToken& token : stream.tokens()) {
    out.push_back({std::string(interner_->NameOf(token.type)),
                   std::string(token.text), token.location});
  }
  return out;
}

}  // namespace sqlpl
