#include "sqlpl/lexer/token.h"

namespace sqlpl {

std::string Token::ToString() const {
  return type + "('" + text + "')@" + location.ToString();
}

std::string TokensToString(const std::vector<Token>& tokens) {
  std::string out;
  for (const Token& token : tokens) {
    out += token.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace sqlpl
