#include "sqlpl/lexer/token.h"

namespace sqlpl {

std::string Token::ToString() const {
  std::string location_str = location.ToString();
  std::string out;
  // type + "('" + text + "')@" + location
  out.reserve(type.size() + text.size() + location_str.size() + 5);
  out += type;
  out += "('";
  out += text;
  out += "')@";
  out += location_str;
  return out;
}

std::string TokensToString(const std::vector<Token>& tokens) {
  std::string out;
  size_t total = 0;
  for (const Token& token : tokens) {
    // Worst-case location rendering is short; 16 covers "@line:col" for
    // any realistic input and avoids a second ToString pass.
    total += token.type.size() + token.text.size() + 5 + 16 + 1;
  }
  out.reserve(total);
  for (const Token& token : tokens) {
    out += token.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace sqlpl
