#ifndef SQLPL_LEXER_LEXER_H_
#define SQLPL_LEXER_LEXER_H_

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sqlpl/grammar/symbol_interner.h"
#include "sqlpl/grammar/token_set.h"
#include "sqlpl/lexer/token.h"
#include "sqlpl/lexer/token_stream.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// A SQL lexer driven entirely by a composed `TokenSet` — the scanner
/// half of a generated parser. Because the token set is composed from the
/// selected features' token files, a tailored dialect only reserves the
/// keywords its features brought along: `EPOCH` is a keyword in a TinySQL
/// parser but an ordinary identifier in a Core SQL parser.
///
/// Lexical conventions follow SQL: keywords are case-insensitive; regular
/// identifiers are `[A-Za-z_][A-Za-z0-9_$]*`; delimited identifiers are
/// `"..."` (with `""` escaping); strings are `'...'` (with `''`
/// escaping); numbers are integer or decimal literals with an optional
/// exponent; `--` starts a line comment and `/* */` a block comment;
/// punctuation matches longest-first.
///
/// ## Hot path
///
/// `TokenizeInto` is the zero-copy fast path: it emits `LexedToken`s
/// whose `type` is an interned `SymbolId` and whose `text` views the
/// caller's SQL buffer (escaped literals are unescaped into the stream's
/// arena). Keyword recognition is a flat case-insensitive hash probe
/// (no per-word uppercase temporary) and punctuation matching is a
/// first-byte-indexed table — no allocation per token. The legacy
/// `Tokenize` (owning `Token`s) is a thin conversion kept for tests,
/// tooling, and the codegen differential harness.
class Lexer {
 public:
  /// Builds the keyword and punctuation tables from `tokens`, interning
  /// the token-type names into a private interner.
  explicit Lexer(const TokenSet& tokens);

  /// Same, but interns into (and shares) `interner` — the form used by
  /// `ParserBuilder` so lexer and parser agree on one symbol namespace.
  Lexer(const TokenSet& tokens, std::shared_ptr<SymbolInterner> interner);

  /// Fast path: tokenizes `sql` into `out` (appended after `Clear`),
  /// ending with the `$` token (`type == kEndOfInputId`). Token texts
  /// view `sql` — the buffer must outlive the stream's use. Reusing one
  /// `TokenStream` across calls makes this allocation-free in steady
  /// state.
  Status TokenizeInto(std::string_view sql, TokenStream* out) const;

  /// Legacy owning form: tokenizes `sql`, appending an end-of-input
  /// token (`type == "$"`). Characters and words that no token of the
  /// dialect accepts are lexing errors that name the offending lexeme
  /// and position.
  Result<std::vector<Token>> Tokenize(std::string_view sql) const;

  /// True if `word` (case-insensitive) is a reserved keyword here.
  /// Performs no allocation.
  bool IsKeyword(std::string_view word) const {
    return FindKeyword(word) != kInvalidSymbolId;
  }

  size_t NumKeywords() const { return keyword_texts_.size(); }
  size_t NumPunctuation() const { return puncts_.size(); }

  /// Testing/benchmark hook: when true, `TokenizeInto` scans runs one
  /// byte at a time instead of with the SWAR/SSE2 fast path. The two
  /// scanners must produce byte-identical token streams (pinned by the
  /// lexer differential test); the hook exists to prove it and to
  /// measure the speedup. Process-global; not for production use.
  static void SetScalarScanForTesting(bool scalar);
  static bool scalar_scan_for_testing();

  /// The symbol namespace this lexer emits `SymbolId`s from.
  const SymbolInterner& interner() const { return *interner_; }
  std::shared_ptr<const SymbolInterner> shared_interner() const {
    return interner_;
  }

 private:
  struct PunctEntry {
    std::string text;
    SymbolId type = kInvalidSymbolId;
  };

  // Token-type id of `word` if it is a keyword, else kInvalidSymbolId.
  // Case-insensitive flat hash probe; no allocation.
  SymbolId FindKeyword(std::string_view word) const;

  void InsertKeyword(const std::string& text, SymbolId type);

  std::shared_ptr<SymbolInterner> interner_;

  // Keyword texts as defined (uppercase by convention) + their type ids,
  // probed through an open-addressing slot table (index into the
  // vectors; kEmptySlot marks free). The probe folds the input to upper
  // case byte-by-byte, so lookup never builds a temporary string.
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;
  std::vector<std::string> keyword_texts_;
  std::vector<SymbolId> keyword_ids_;
  std::vector<uint32_t> keyword_slots_;
  size_t keyword_mask_ = 0;

  // Pre-probe reject filter: kw_filter_[first byte] has bit min(len, 31)
  // set iff some keyword of that length starts with that byte (both
  // letter cases are registered at insert). Most identifiers fail this
  // single load+test, skipping the fold/hash/probe entirely.
  std::array<uint32_t, 256> kw_filter_{};

  // Punctuation entries sorted by (first byte, length desc, text);
  // punct_begin_/punct_end_ bracket each first byte's run, so matching
  // probes only candidates that can start here, longest first.
  std::vector<PunctEntry> puncts_;
  std::array<uint32_t, 256> punct_begin_{};
  std::array<uint32_t, 256> punct_end_{};

  SymbolId identifier_id_ = kInvalidSymbolId;
  SymbolId number_id_ = kInvalidSymbolId;
  SymbolId string_id_ = kInvalidSymbolId;
};

}  // namespace sqlpl

#endif  // SQLPL_LEXER_LEXER_H_
