#ifndef SQLPL_LEXER_LEXER_H_
#define SQLPL_LEXER_LEXER_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sqlpl/grammar/token_set.h"
#include "sqlpl/lexer/token.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// A SQL lexer driven entirely by a composed `TokenSet` — the scanner
/// half of a generated parser. Because the token set is composed from the
/// selected features' token files, a tailored dialect only reserves the
/// keywords its features brought along: `EPOCH` is a keyword in a TinySQL
/// parser but an ordinary identifier in a Core SQL parser.
///
/// Lexical conventions follow SQL: keywords are case-insensitive; regular
/// identifiers are `[A-Za-z_][A-Za-z0-9_$]*`; delimited identifiers are
/// `"..."` (with `""` escaping); strings are `'...'` (with `''`
/// escaping); numbers are integer or decimal literals with an optional
/// exponent; `--` starts a line comment and `/* */` a block comment;
/// punctuation matches longest-first.
class Lexer {
 public:
  /// Builds the keyword and punctuation tables from `tokens`.
  explicit Lexer(const TokenSet& tokens);

  /// Tokenizes `sql`, appending an end-of-input token (`type == "$"`).
  /// Characters and words that no token of the dialect accepts are
  /// lexing errors that name the offending lexeme and position.
  Result<std::vector<Token>> Tokenize(std::string_view sql) const;

  /// True if `word` (case-insensitive) is a reserved keyword here.
  bool IsKeyword(std::string_view word) const;

  size_t NumKeywords() const { return keywords_.size(); }
  size_t NumPunctuation() const { return puncts_.size(); }

 private:
  // Uppercased keyword text -> token type name.
  std::map<std::string, std::string> keywords_;
  // Punctuation text -> token type name, iterated longest-first.
  std::vector<std::pair<std::string, std::string>> puncts_;
  std::string identifier_type_;  // empty if the dialect has none
  std::string number_type_;
  std::string string_type_;
};

}  // namespace sqlpl

#endif  // SQLPL_LEXER_LEXER_H_
