#ifndef SQLPL_LEXER_TOKEN_STREAM_H_
#define SQLPL_LEXER_TOKEN_STREAM_H_

#include <string_view>
#include <vector>

#include "sqlpl/grammar/symbol_interner.h"
#include "sqlpl/util/arena.h"
#include "sqlpl/util/source_location.h"

namespace sqlpl {

/// One zero-copy lexed token: the interned token-type id plus a
/// `string_view` of the lexeme. For plain tokens (keywords, identifiers,
/// numbers, punctuation) the view points into the caller's SQL buffer;
/// only literals that needed unescaping (`''` / `""`) point into the
/// owning `TokenStream`'s text arena. Either way, producing one performs
/// no heap allocation.
struct LexedToken {
  SymbolId type = kInvalidSymbolId;
  std::string_view text;
  SourceLocation location;
};

/// A reusable buffer of `LexedToken`s plus the arena backing any
/// unescaped literal texts. Lifetime rules:
///
///  - token `text` views are valid while BOTH the SQL buffer passed to
///    `Lexer::TokenizeInto` and this stream are alive and un-`Clear`ed;
///  - `Clear()` keeps the token vector's capacity and the arena's first
///    chunk, so reusing one stream across statements makes the tokenize
///    fast path allocation-free in steady state.
class TokenStream {
 public:
  std::vector<LexedToken>& tokens() { return tokens_; }
  const std::vector<LexedToken>& tokens() const { return tokens_; }
  Arena& text_arena() { return text_arena_; }

  size_t size() const { return tokens_.size(); }
  const LexedToken& operator[](size_t i) const { return tokens_[i]; }

  void Clear() {
    tokens_.clear();
    text_arena_.Reset();
  }

 private:
  std::vector<LexedToken> tokens_;
  Arena text_arena_;
};

}  // namespace sqlpl

#endif  // SQLPL_LEXER_TOKEN_STREAM_H_
