#ifndef SQLPL_BASELINE_MONOLITHIC_PARSER_H_
#define SQLPL_BASELINE_MONOLITHIC_PARSER_H_

#include <string_view>

#include "sqlpl/lexer/lexer.h"
#include "sqlpl/parser/parse_tree.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// A conventional hand-written recursive-descent parser covering the same
/// SQL Foundation subset as the FullFoundation dialect — the "one big
/// general parser" the paper argues embedded systems should not have to
/// carry. It is written against a fixed, hard-coded token set and grammar
/// (no composition, no feature selection) and serves as the baseline for
/// the footprint and throughput benchmarks.
class MonolithicSqlParser {
 public:
  MonolithicSqlParser();

  /// Parses one SQL statement, producing a CST comparable to the
  /// composed parsers' output.
  Result<ParseNode> Parse(std::string_view sql) const;

  bool Accepts(std::string_view sql) const;

  const Lexer& lexer() const { return lexer_; }
  /// Number of reserved keywords in the fixed token set.
  size_t NumKeywords() const { return lexer_.NumKeywords(); }

 private:
  Lexer lexer_;
};

/// The fixed token set of the monolithic parser (exposed for benchmarks
/// comparing token-set sizes across dialects).
const TokenSet& MonolithicTokenSet();

}  // namespace sqlpl

#endif  // SQLPL_BASELINE_MONOLITHIC_PARSER_H_
