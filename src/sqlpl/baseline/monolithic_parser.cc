#include "sqlpl/baseline/monolithic_parser.h"

namespace sqlpl {

namespace {

TokenSet BuildMonolithicTokenSet() {
  TokenSet tokens;
  static constexpr const char* kKeywords[] = {
      "SELECT",   "DISTINCT",  "ALL",        "AS",        "FROM",
      "WHERE",    "GROUP",     "BY",         "HAVING",    "WINDOW",
      "ORDER",    "ASC",       "DESC",       "NULLS",     "FIRST",
      "LAST",     "AND",       "OR",         "NOT",       "BETWEEN",
      "IN",       "LIKE",      "ESCAPE",     "IS",        "NULL",
      "EXISTS",   "SOME",      "ANY",        "UNION",     "EXCEPT",
      "INTERSECT","JOIN",      "INNER",      "LEFT",      "RIGHT",
      "FULL",     "OUTER",     "CROSS",      "NATURAL",   "ON",
      "USING",    "INSERT",    "INTO",       "VALUES",    "DEFAULT",
      "UPDATE",   "SET",       "DELETE",     "MERGE",     "MATCHED",
      "WHEN",     "THEN",      "ELSE",       "END",       "CASE",
      "NULLIF",   "COALESCE",  "CAST",       "CREATE",    "TABLE",
      "VIEW",     "SCHEMA",    "DOMAIN",     "SEQUENCE",  "TRIGGER",
      "DROP",     "ALTER",     "ADD",        "COLUMN",    "CONSTRAINT",
      "PRIMARY",  "KEY",       "FOREIGN",    "UNIQUE",    "CHECK",
      "REFERENCES","CASCADE",  "RESTRICT",   "GLOBAL",    "LOCAL",
      "TEMPORARY","RECURSIVE", "WITH",       "OPTION",    "AUTHORIZATION",
      "GRANT",    "REVOKE",    "TO",         "PRIVILEGES","PUBLIC",
      "USAGE",    "EXECUTE",   "COMMIT",     "ROLLBACK",  "WORK",
      "SAVEPOINT","START",     "TRANSACTION","ISOLATION", "LEVEL",
      "READ",     "UNCOMMITTED","COMMITTED", "REPEATABLE","SERIALIZABLE",
      "ONLY",     "WRITE",     "DECLARE",    "CURSOR",    "OPEN",
      "CLOSE",    "FETCH",     "NEXT",       "PRIOR",     "ABSOLUTE",
      "RELATIVE", "SCROLL",    "SENSITIVE",  "INSENSITIVE","ASENSITIVE",
      "COUNT",    "SUM",       "AVG",        "MIN",       "MAX",
      "EVERY",    "INTEGER",   "INT",        "SMALLINT",  "BIGINT",
      "NUMERIC",  "DECIMAL",   "DEC",        "FLOAT",     "REAL",
      "DOUBLE",   "PRECISION", "CHARACTER",  "CHAR",      "VARCHAR",
      "VARYING",  "DATE",      "TIME",       "TIMESTAMP", "BOOLEAN",
      "CLOB",     "BLOB",      "SUBSTRING",  "UPPER",     "LOWER",
      "TRIM",     "POSITION",  "CHAR_LENGTH","EXTRACT",   "YEAR",
      "MONTH",    "DAY",       "HOUR",       "MINUTE",    "SECOND",
      "CURRENT_DATE", "CURRENT_TIME", "CURRENT_TIMESTAMP",
      "FOR",      "EACH",      "ROW",        "STATEMENT", "BEFORE",
      "AFTER",    "OF",        "ROWS",       "RANGE",     "PARTITION",
      "UNBOUNDED","PRECEDING", "FOLLOWING",  "CURRENT",   "TRUE",
      "FALSE",    "UNKNOWN",   "INCREMENT",  "MAXVALUE",  "MINVALUE",
      "CYCLE",    "NO",        "ACTION",     "ROLE",      "ZONE",
  };
  for (const char* keyword : kKeywords) {
    tokens.AddOrDie(TokenDef::Keyword(keyword));
  }
  static constexpr const char* kPuncts[] = {
      ",", "(", ")", ".", "*", "=", "<>", "<=", ">=", "<", ">",
      "+", "-", "/", "||",
  };
  for (const char* punct : kPuncts) {
    const char* name = "";
    switch (punct[0]) {
      case ',': name = "COMMA"; break;
      case '(': name = "LPAREN"; break;
      case ')': name = "RPAREN"; break;
      case '.': name = "DOT"; break;
      case '*': name = "ASTERISK"; break;
      case '=': name = "EQ"; break;
      case '<':
        name = (punct[1] == '>') ? "NEQ" : (punct[1] == '=') ? "LE" : "LT";
        break;
      case '>': name = (punct[1] == '=') ? "GE" : "GT"; break;
      case '+': name = "PLUS"; break;
      case '-': name = "MINUS"; break;
      case '/': name = "SLASH"; break;
      case '|': name = "CONCAT"; break;
    }
    tokens.AddOrDie(TokenDef::Punct(name, punct));
  }
  tokens.AddOrDie(TokenDef::Identifier());
  tokens.AddOrDie(TokenDef::Number());
  tokens.AddOrDie(TokenDef::String());
  return tokens;
}

// Recursive-descent machinery over a token stream. Matches the dialect
// language by hand; every Parse* method either consumes and returns a
// node or fails having restored the cursor.
class Cursor {
 public:
  explicit Cursor(const std::vector<Token>& tokens) : tokens_(tokens) {}

  const std::string& PeekType() const { return tokens_[pos_].type; }
  const Token& Peek() const { return tokens_[pos_]; }
  bool At(std::string_view type) const { return tokens_[pos_].type == type; }

  bool Eat(std::string_view type, ParseNode* parent) {
    if (!At(type)) return false;
    parent->AddChild(ParseNode::Leaf(tokens_[pos_]));
    ++pos_;
    return true;
  }

  size_t Save() const { return pos_; }
  void Restore(size_t pos) { pos_ = pos; }
  bool AtEnd() const { return tokens_[pos_].type == "$"; }
  const Token& Current() const { return tokens_[pos_]; }

 private:
  const std::vector<Token>& tokens_;
  size_t pos_ = 0;
};

class Rd {
 public:
  explicit Rd(Cursor* cursor) : c_(*cursor) {}

  bool ParseStatement(ParseNode* out) {
    ParseNode node = ParseNode::Rule("sql_statement");
    if (ParseQueryStatement(&node) || ParseInsert(&node) ||
        ParseUpdate(&node) || ParseDelete(&node) || ParseCreate(&node) ||
        ParseDrop(&node) || ParseAlter(&node) || ParseGrantRevoke(&node) ||
        ParseTransaction(&node) || ParseCursorStatement(&node)) {
      *out = std::move(node);
      return true;
    }
    return false;
  }

 private:
  // ---- queries ----
  bool ParseQueryStatement(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("query_statement");
    if (!ParseQueryExpression(&node)) return Fail(save);
    if (c_.At("ORDER")) {
      ParseNode order = ParseNode::Rule("order_by_clause");
      c_.Eat("ORDER", &order);
      if (!c_.Eat("BY", &order)) return Fail(save);
      if (!ParseSortList(&order)) return Fail(save);
      node.AddChild(std::move(order));
    }
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParseSortList(ParseNode* parent) {
    do {
      ParseNode sort = ParseNode::Rule("sort_specification");
      if (!ParseValueExpr(&sort)) return false;
      if (c_.At("ASC") || c_.At("DESC")) {
        c_.Eat(c_.PeekType(), &sort);
      }
      if (c_.At("NULLS")) {
        c_.Eat("NULLS", &sort);
        if (!c_.Eat("FIRST", &sort) && !c_.Eat("LAST", &sort)) return false;
      }
      parent->AddChild(std::move(sort));
    } while (c_.Eat("COMMA", parent));
    return true;
  }

  bool ParseQueryExpression(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("query_expression");
    if (!ParseQueryPrimary(&node)) return Fail(save);
    while (c_.At("UNION") || c_.At("EXCEPT") || c_.At("INTERSECT")) {
      c_.Eat(c_.PeekType(), &node);
      if (c_.At("ALL") || c_.At("DISTINCT")) c_.Eat(c_.PeekType(), &node);
      if (!ParseQueryPrimary(&node)) return Fail(save);
    }
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParseQueryPrimary(ParseNode* parent) {
    size_t save = c_.Save();
    if (c_.At("LPAREN")) {
      ParseNode node = ParseNode::Rule("query_primary");
      c_.Eat("LPAREN", &node);
      if (ParseQueryExpression(&node) && c_.Eat("RPAREN", &node)) {
        parent->AddChild(std::move(node));
        return true;
      }
      c_.Restore(save);
    }
    return ParseQuerySpecification(parent);
  }

  bool ParseQuerySpecification(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("query_specification");
    if (!c_.Eat("SELECT", &node)) return Fail(save);
    if (c_.At("DISTINCT") || c_.At("ALL")) c_.Eat(c_.PeekType(), &node);
    if (!ParseSelectList(&node)) return Fail(save);
    if (!ParseTableExpression(&node)) return Fail(save);
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParseSelectList(ParseNode* parent) {
    ParseNode node = ParseNode::Rule("select_list");
    if (c_.Eat("ASTERISK", &node)) {
      parent->AddChild(std::move(node));
      return true;
    }
    do {
      ParseNode item = ParseNode::Rule("derived_column");
      if (!ParseValueExpr(&item)) return false;
      if (c_.At("AS")) {
        c_.Eat("AS", &item);
        if (!c_.Eat("IDENTIFIER", &item)) return false;
      } else if (c_.At("IDENTIFIER")) {
        c_.Eat("IDENTIFIER", &item);
      }
      node.AddChild(std::move(item));
    } while (c_.Eat("COMMA", &node));
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParseTableExpression(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("table_expression");
    if (!c_.Eat("FROM", &node)) return Fail(save);
    if (!ParseTableReference(&node)) return Fail(save);
    while (c_.Eat("COMMA", &node)) {
      if (!ParseTableReference(&node)) return Fail(save);
    }
    if (c_.At("WHERE")) {
      ParseNode where = ParseNode::Rule("where_clause");
      c_.Eat("WHERE", &where);
      if (!ParseSearchCondition(&where)) return Fail(save);
      node.AddChild(std::move(where));
    }
    if (c_.At("GROUP")) {
      ParseNode group = ParseNode::Rule("group_by_clause");
      c_.Eat("GROUP", &group);
      if (!c_.Eat("BY", &group)) return Fail(save);
      do {
        if (!ParseValueExpr(&group)) return Fail(save);
      } while (c_.Eat("COMMA", &group));
      node.AddChild(std::move(group));
    }
    if (c_.At("HAVING")) {
      ParseNode having = ParseNode::Rule("having_clause");
      c_.Eat("HAVING", &having);
      if (!ParseSearchCondition(&having)) return Fail(save);
      node.AddChild(std::move(having));
    }
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParseTableReference(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("table_reference");
    if (!ParseTablePrimary(&node)) return Fail(save);
    while (c_.At("JOIN") || c_.At("INNER") || c_.At("LEFT") ||
           c_.At("RIGHT") || c_.At("FULL") || c_.At("CROSS") ||
           c_.At("NATURAL")) {
      ParseNode join = ParseNode::Rule("joined_table");
      if (c_.Eat("CROSS", &join)) {
        if (!c_.Eat("JOIN", &join) || !ParseTablePrimary(&join)) {
          return Fail(save);
        }
      } else {
        c_.Eat("NATURAL", &join);
        if (c_.At("INNER")) c_.Eat("INNER", &join);
        if (c_.At("LEFT") || c_.At("RIGHT") || c_.At("FULL")) {
          c_.Eat(c_.PeekType(), &join);
          c_.Eat("OUTER", &join);
        }
        if (!c_.Eat("JOIN", &join) || !ParseTablePrimary(&join)) {
          return Fail(save);
        }
        if (c_.Eat("ON", &join)) {
          if (!ParseSearchCondition(&join)) return Fail(save);
        } else if (c_.Eat("USING", &join)) {
          if (!c_.Eat("LPAREN", &join)) return Fail(save);
          do {
            if (!c_.Eat("IDENTIFIER", &join)) return Fail(save);
          } while (c_.Eat("COMMA", &join));
          if (!c_.Eat("RPAREN", &join)) return Fail(save);
        }
      }
      node.AddChild(std::move(join));
    }
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParseTablePrimary(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("table_primary");
    if (c_.At("LPAREN")) {
      // derived table
      c_.Eat("LPAREN", &node);
      if (!ParseQueryExpression(&node) || !c_.Eat("RPAREN", &node)) {
        return Fail(save);
      }
      c_.Eat("AS", &node);
      if (!c_.Eat("IDENTIFIER", &node)) return Fail(save);
      parent->AddChild(std::move(node));
      return true;
    }
    if (!ParseIdentifierChain(&node)) return Fail(save);
    if (c_.At("AS")) {
      c_.Eat("AS", &node);
      if (!c_.Eat("IDENTIFIER", &node)) return Fail(save);
    } else if (c_.At("IDENTIFIER")) {
      c_.Eat("IDENTIFIER", &node);
    }
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParseIdentifierChain(ParseNode* parent) {
    ParseNode node = ParseNode::Rule("identifier_chain");
    if (!c_.Eat("IDENTIFIER", &node)) return false;
    while (c_.At("DOT")) {
      c_.Eat("DOT", &node);
      if (!c_.Eat("IDENTIFIER", &node)) return false;
    }
    parent->AddChild(std::move(node));
    return true;
  }

  // ---- conditions ----
  bool ParseSearchCondition(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("search_condition");
    if (!ParseBooleanTerm(&node)) return Fail(save);
    while (c_.Eat("OR", &node)) {
      if (!ParseBooleanTerm(&node)) return Fail(save);
    }
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParseBooleanTerm(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("boolean_term");
    if (!ParseBooleanFactor(&node)) return Fail(save);
    while (c_.Eat("AND", &node)) {
      if (!ParseBooleanFactor(&node)) return Fail(save);
    }
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParseBooleanFactor(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("boolean_factor");
    c_.Eat("NOT", &node);
    if (ParsePredicate(&node)) {
      parent->AddChild(std::move(node));
      return true;
    }
    if (c_.Eat("LPAREN", &node) && ParseSearchCondition(&node) &&
        c_.Eat("RPAREN", &node)) {
      parent->AddChild(std::move(node));
      return true;
    }
    return Fail(save);
  }

  bool ParsePredicate(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("predicate");
    if (c_.At("EXISTS")) {
      c_.Eat("EXISTS", &node);
      if (!c_.Eat("LPAREN", &node) || !ParseQueryExpression(&node) ||
          !c_.Eat("RPAREN", &node)) {
        return Fail(save);
      }
      parent->AddChild(std::move(node));
      return true;
    }
    if (!ParseValueExpr(&node)) return Fail(save);
    if (c_.At("EQ") || c_.At("NEQ") || c_.At("LT") || c_.At("GT") ||
        c_.At("LE") || c_.At("GE")) {
      c_.Eat(c_.PeekType(), &node);
      if (c_.At("ALL") || c_.At("SOME") || c_.At("ANY")) {
        c_.Eat(c_.PeekType(), &node);
        if (!c_.Eat("LPAREN", &node) || !ParseQueryExpression(&node) ||
            !c_.Eat("RPAREN", &node)) {
          return Fail(save);
        }
      } else if (!ParseValueExpr(&node)) {
        return Fail(save);
      }
      parent->AddChild(std::move(node));
      return true;
    }
    c_.Eat("NOT", &node);
    if (c_.Eat("BETWEEN", &node)) {
      if (!ParseValueExpr(&node) || !c_.Eat("AND", &node) ||
          !ParseValueExpr(&node)) {
        return Fail(save);
      }
      parent->AddChild(std::move(node));
      return true;
    }
    if (c_.Eat("IN", &node)) {
      if (!c_.Eat("LPAREN", &node)) return Fail(save);
      size_t inner = c_.Save();
      if (ParseQueryExpression(&node)) {
        if (!c_.Eat("RPAREN", &node)) return Fail(save);
      } else {
        c_.Restore(inner);
        do {
          if (!ParseValueExpr(&node)) return Fail(save);
        } while (c_.Eat("COMMA", &node));
        if (!c_.Eat("RPAREN", &node)) return Fail(save);
      }
      parent->AddChild(std::move(node));
      return true;
    }
    if (c_.Eat("LIKE", &node)) {
      if (!ParseValueExpr(&node)) return Fail(save);
      if (c_.Eat("ESCAPE", &node)) {
        if (!ParseValueExpr(&node)) return Fail(save);
      }
      parent->AddChild(std::move(node));
      return true;
    }
    if (c_.Eat("IS", &node)) {
      c_.Eat("NOT", &node);
      if (!c_.Eat("NULL", &node)) return Fail(save);
      parent->AddChild(std::move(node));
      return true;
    }
    return Fail(save);
  }

  // ---- value expressions ----
  bool ParseValueExpr(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("value_expression");
    if (!ParseTerm(&node)) return Fail(save);
    while (c_.At("PLUS") || c_.At("MINUS") || c_.At("CONCAT")) {
      c_.Eat(c_.PeekType(), &node);
      if (!ParseTerm(&node)) return Fail(save);
    }
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParseTerm(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("term");
    if (!ParseFactor(&node)) return Fail(save);
    while (c_.At("ASTERISK") || c_.At("SLASH")) {
      c_.Eat(c_.PeekType(), &node);
      if (!ParseFactor(&node)) return Fail(save);
    }
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParseFactor(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("factor");
    if (c_.At("PLUS") || c_.At("MINUS")) c_.Eat(c_.PeekType(), &node);
    if (!ParsePrimary(&node)) return Fail(save);
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParsePrimary(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("value_primary");

    // Aggregates.
    if (c_.At("COUNT") || c_.At("SUM") || c_.At("AVG") || c_.At("MIN") ||
        c_.At("MAX") || c_.At("EVERY")) {
      c_.Eat(c_.PeekType(), &node);
      if (!c_.Eat("LPAREN", &node)) return Fail(save);
      if (!c_.Eat("ASTERISK", &node)) {
        if (c_.At("DISTINCT") || c_.At("ALL")) c_.Eat(c_.PeekType(), &node);
        if (!ParseValueExpr(&node)) return Fail(save);
      }
      if (!c_.Eat("RPAREN", &node)) return Fail(save);
      parent->AddChild(std::move(node));
      return true;
    }
    // CASE / NULLIF / COALESCE / CAST.
    if (c_.At("CASE")) {
      if (!ParseCase(&node)) return Fail(save);
      parent->AddChild(std::move(node));
      return true;
    }
    if (c_.Eat("NULLIF", &node) || c_.At("COALESCE")) {
      c_.Eat("COALESCE", &node);
      if (!c_.Eat("LPAREN", &node)) return Fail(save);
      do {
        if (!ParseValueExpr(&node)) return Fail(save);
      } while (c_.Eat("COMMA", &node));
      if (!c_.Eat("RPAREN", &node)) return Fail(save);
      parent->AddChild(std::move(node));
      return true;
    }
    if (c_.Eat("CAST", &node)) {
      if (!c_.Eat("LPAREN", &node) || !ParseValueExpr(&node) ||
          !c_.Eat("AS", &node) || !ParseDataType(&node) ||
          !c_.Eat("RPAREN", &node)) {
        return Fail(save);
      }
      parent->AddChild(std::move(node));
      return true;
    }
    // String / datetime functions.
    if (c_.At("SUBSTRING") || c_.At("UPPER") || c_.At("LOWER") ||
        c_.At("TRIM") || c_.At("CHAR_LENGTH") || c_.At("POSITION") ||
        c_.At("EXTRACT")) {
      std::string fn = c_.PeekType();
      c_.Eat(fn, &node);
      if (!c_.Eat("LPAREN", &node)) return Fail(save);
      if (fn == "EXTRACT") {
        if (!(c_.Eat("YEAR", &node) || c_.Eat("MONTH", &node) ||
              c_.Eat("DAY", &node) || c_.Eat("HOUR", &node) ||
              c_.Eat("MINUTE", &node) || c_.Eat("SECOND", &node))) {
          return Fail(save);
        }
        if (!c_.Eat("FROM", &node) || !ParseValueExpr(&node)) {
          return Fail(save);
        }
      } else {
        if (!ParseValueExpr(&node)) return Fail(save);
        if (fn == "SUBSTRING") {
          if (!c_.Eat("FROM", &node) || !ParseValueExpr(&node)) {
            return Fail(save);
          }
          if (c_.Eat("FOR", &node)) {
            if (!ParseValueExpr(&node)) return Fail(save);
          }
        } else if (fn == "POSITION") {
          if (!c_.Eat("IN", &node) || !ParseValueExpr(&node)) {
            return Fail(save);
          }
        }
      }
      if (!c_.Eat("RPAREN", &node)) return Fail(save);
      parent->AddChild(std::move(node));
      return true;
    }
    if (c_.Eat("CURRENT_DATE", &node) || c_.Eat("CURRENT_TIME", &node) ||
        c_.Eat("CURRENT_TIMESTAMP", &node)) {
      parent->AddChild(std::move(node));
      return true;
    }
    // Literals.
    if (c_.Eat("NUMBER", &node) || c_.Eat("STRING", &node) ||
        c_.Eat("NULL", &node) || c_.Eat("TRUE", &node) ||
        c_.Eat("FALSE", &node) || c_.Eat("UNKNOWN", &node)) {
      parent->AddChild(std::move(node));
      return true;
    }
    // Parenthesized expression or scalar subquery.
    if (c_.At("LPAREN")) {
      size_t inner = c_.Save();
      c_.Eat("LPAREN", &node);
      if (ParseValueExpr(&node) && c_.Eat("RPAREN", &node)) {
        parent->AddChild(std::move(node));
        return true;
      }
      c_.Restore(inner);
      c_.Eat("LPAREN", &node);
      if (ParseQueryExpression(&node) && c_.Eat("RPAREN", &node)) {
        parent->AddChild(std::move(node));
        return true;
      }
      return Fail(save);
    }
    // Column reference or routine invocation.
    if (ParseIdentifierChain(&node)) {
      if (c_.At("LPAREN")) {
        c_.Eat("LPAREN", &node);
        if (!c_.At("RPAREN")) {
          do {
            if (!ParseValueExpr(&node)) return Fail(save);
          } while (c_.Eat("COMMA", &node));
        }
        if (!c_.Eat("RPAREN", &node)) return Fail(save);
      }
      parent->AddChild(std::move(node));
      return true;
    }
    return Fail(save);
  }

  bool ParseCase(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("case_expression");
    if (!c_.Eat("CASE", &node)) return Fail(save);
    bool searched = c_.At("WHEN");
    if (!searched) {
      if (!ParseValueExpr(&node)) return Fail(save);
    }
    bool any = false;
    while (c_.Eat("WHEN", &node)) {
      if (searched) {
        if (!ParseSearchCondition(&node)) return Fail(save);
      } else {
        if (!ParseValueExpr(&node)) return Fail(save);
      }
      if (!c_.Eat("THEN", &node) || !ParseValueExpr(&node)) {
        return Fail(save);
      }
      any = true;
    }
    if (!any) return Fail(save);
    if (c_.Eat("ELSE", &node)) {
      if (!ParseValueExpr(&node)) return Fail(save);
    }
    if (!c_.Eat("END", &node)) return Fail(save);
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParseDataType(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("data_type");
    auto paren_number = [&](bool two_allowed) {
      if (!c_.At("LPAREN")) return true;
      c_.Eat("LPAREN", &node);
      if (!c_.Eat("NUMBER", &node)) return false;
      if (two_allowed && c_.Eat("COMMA", &node)) {
        if (!c_.Eat("NUMBER", &node)) return false;
      }
      return c_.Eat("RPAREN", &node);
    };
    if (c_.Eat("INTEGER", &node) || c_.Eat("INT", &node) ||
        c_.Eat("SMALLINT", &node) || c_.Eat("BIGINT", &node) ||
        c_.Eat("REAL", &node) || c_.Eat("DATE", &node) ||
        c_.Eat("BOOLEAN", &node) || c_.Eat("CLOB", &node) ||
        c_.Eat("BLOB", &node)) {
      parent->AddChild(std::move(node));
      return true;
    }
    if (c_.Eat("DOUBLE", &node)) {
      if (!c_.Eat("PRECISION", &node)) return Fail(save);
      parent->AddChild(std::move(node));
      return true;
    }
    if (c_.Eat("NUMERIC", &node) || c_.Eat("DECIMAL", &node) ||
        c_.Eat("DEC", &node)) {
      if (!paren_number(true)) return Fail(save);
      parent->AddChild(std::move(node));
      return true;
    }
    if (c_.Eat("FLOAT", &node) || c_.Eat("VARCHAR", &node) ||
        c_.Eat("TIMESTAMP", &node) || c_.Eat("TIME", &node)) {
      if (!paren_number(false)) return Fail(save);
      parent->AddChild(std::move(node));
      return true;
    }
    if (c_.Eat("CHARACTER", &node) || c_.Eat("CHAR", &node)) {
      c_.Eat("VARYING", &node);
      if (!paren_number(false)) return Fail(save);
      parent->AddChild(std::move(node));
      return true;
    }
    return Fail(save);
  }

  // ---- DML ----
  bool ParseInsert(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("insert_statement");
    if (!c_.Eat("INSERT", &node)) return Fail(save);
    if (!c_.Eat("INTO", &node) || !ParseIdentifierChain(&node)) {
      return Fail(save);
    }
    if (c_.Eat("LPAREN", &node)) {
      do {
        if (!c_.Eat("IDENTIFIER", &node)) return Fail(save);
      } while (c_.Eat("COMMA", &node));
      if (!c_.Eat("RPAREN", &node)) return Fail(save);
    }
    if (c_.Eat("DEFAULT", &node)) {
      if (!c_.Eat("VALUES", &node)) return Fail(save);
    } else if (c_.Eat("VALUES", &node)) {
      do {
        if (!c_.Eat("LPAREN", &node)) return Fail(save);
        do {
          if (!ParseValueExpr(&node)) return Fail(save);
        } while (c_.Eat("COMMA", &node));
        if (!c_.Eat("RPAREN", &node)) return Fail(save);
      } while (c_.Eat("COMMA", &node));
    } else if (!ParseQueryExpression(&node)) {
      return Fail(save);
    }
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParseUpdate(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("update_statement");
    if (!c_.Eat("UPDATE", &node)) return Fail(save);
    if (!ParseIdentifierChain(&node) || !c_.Eat("SET", &node)) {
      return Fail(save);
    }
    do {
      if (!ParseIdentifierChain(&node) || !c_.Eat("EQ", &node)) {
        return Fail(save);
      }
      if (!c_.Eat("DEFAULT", &node) && !ParseValueExpr(&node)) {
        return Fail(save);
      }
    } while (c_.Eat("COMMA", &node));
    if (c_.Eat("WHERE", &node)) {
      if (!ParseSearchCondition(&node)) return Fail(save);
    }
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParseDelete(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("delete_statement");
    if (!c_.Eat("DELETE", &node)) return Fail(save);
    if (!c_.Eat("FROM", &node) || !ParseIdentifierChain(&node)) {
      return Fail(save);
    }
    if (c_.Eat("WHERE", &node)) {
      if (!ParseSearchCondition(&node)) return Fail(save);
    }
    parent->AddChild(std::move(node));
    return true;
  }

  // ---- DDL ----
  bool ParseCreate(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("create_statement");
    if (!c_.Eat("CREATE", &node)) return Fail(save);
    if (c_.Eat("GLOBAL", &node) || c_.Eat("LOCAL", &node)) {
      if (!c_.Eat("TEMPORARY", &node)) return Fail(save);
    }
    if (c_.Eat("TABLE", &node)) {
      if (!ParseIdentifierChain(&node) || !c_.Eat("LPAREN", &node)) {
        return Fail(save);
      }
      do {
        if (!ParseTableElement(&node)) return Fail(save);
      } while (c_.Eat("COMMA", &node));
      if (!c_.Eat("RPAREN", &node)) return Fail(save);
      parent->AddChild(std::move(node));
      return true;
    }
    c_.Eat("RECURSIVE", &node);
    if (c_.Eat("VIEW", &node)) {
      if (!ParseIdentifierChain(&node)) return Fail(save);
      if (c_.Eat("LPAREN", &node)) {
        do {
          if (!c_.Eat("IDENTIFIER", &node)) return Fail(save);
        } while (c_.Eat("COMMA", &node));
        if (!c_.Eat("RPAREN", &node)) return Fail(save);
      }
      if (!c_.Eat("AS", &node) || !ParseQueryExpression(&node)) {
        return Fail(save);
      }
      if (c_.Eat("WITH", &node)) {
        if (!c_.Eat("CHECK", &node) || !c_.Eat("OPTION", &node)) {
          return Fail(save);
        }
      }
      parent->AddChild(std::move(node));
      return true;
    }
    if (c_.Eat("SCHEMA", &node)) {
      if (!c_.Eat("IDENTIFIER", &node)) return Fail(save);
      if (c_.Eat("AUTHORIZATION", &node)) {
        if (!c_.Eat("IDENTIFIER", &node)) return Fail(save);
      }
      parent->AddChild(std::move(node));
      return true;
    }
    if (c_.Eat("SEQUENCE", &node)) {
      if (!ParseIdentifierChain(&node)) return Fail(save);
      while (true) {
        if (c_.Eat("START", &node)) {
          if (!c_.Eat("WITH", &node) || !c_.Eat("NUMBER", &node)) {
            return Fail(save);
          }
        } else if (c_.Eat("INCREMENT", &node)) {
          if (!c_.Eat("BY", &node) || !c_.Eat("NUMBER", &node)) {
            return Fail(save);
          }
        } else if (c_.Eat("MAXVALUE", &node) || c_.Eat("MINVALUE", &node)) {
          if (!c_.Eat("NUMBER", &node)) return Fail(save);
        } else if (c_.Eat("NO", &node)) {
          if (!c_.Eat("CYCLE", &node)) return Fail(save);
        } else if (c_.Eat("CYCLE", &node)) {
        } else {
          break;
        }
      }
      parent->AddChild(std::move(node));
      return true;
    }
    return Fail(save);
  }

  bool ParseTableElement(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("table_element");
    // Table constraint?
    if (c_.At("CONSTRAINT") || c_.At("UNIQUE") || c_.At("PRIMARY") ||
        c_.At("FOREIGN") || c_.At("CHECK")) {
      if (c_.Eat("CONSTRAINT", &node)) {
        if (!c_.Eat("IDENTIFIER", &node)) return Fail(save);
      }
      if (c_.Eat("UNIQUE", &node) || c_.At("PRIMARY")) {
        if (c_.Eat("PRIMARY", &node)) {
          if (!c_.Eat("KEY", &node)) return Fail(save);
        }
        if (!c_.Eat("LPAREN", &node)) return Fail(save);
        do {
          if (!c_.Eat("IDENTIFIER", &node)) return Fail(save);
        } while (c_.Eat("COMMA", &node));
        if (!c_.Eat("RPAREN", &node)) return Fail(save);
      } else if (c_.Eat("FOREIGN", &node)) {
        if (!c_.Eat("KEY", &node) || !c_.Eat("LPAREN", &node)) {
          return Fail(save);
        }
        do {
          if (!c_.Eat("IDENTIFIER", &node)) return Fail(save);
        } while (c_.Eat("COMMA", &node));
        if (!c_.Eat("RPAREN", &node) || !ParseReferences(&node)) {
          return Fail(save);
        }
      } else if (c_.Eat("CHECK", &node)) {
        if (!c_.Eat("LPAREN", &node) || !ParseSearchCondition(&node) ||
            !c_.Eat("RPAREN", &node)) {
          return Fail(save);
        }
      }
      parent->AddChild(std::move(node));
      return true;
    }
    // Column definition.
    if (!c_.Eat("IDENTIFIER", &node) || !ParseDataType(&node)) {
      return Fail(save);
    }
    if (c_.Eat("DEFAULT", &node)) {
      if (!ParseValueExpr(&node)) return Fail(save);
    }
    while (true) {
      if (c_.Eat("NOT", &node)) {
        if (!c_.Eat("NULL", &node)) return Fail(save);
      } else if (c_.Eat("UNIQUE", &node)) {
      } else if (c_.Eat("PRIMARY", &node)) {
        if (!c_.Eat("KEY", &node)) return Fail(save);
      } else if (c_.At("REFERENCES")) {
        if (!ParseReferences(&node)) return Fail(save);
      } else {
        break;
      }
    }
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParseReferences(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("references_specification");
    if (!c_.Eat("REFERENCES", &node) || !ParseIdentifierChain(&node)) {
      return Fail(save);
    }
    if (c_.Eat("LPAREN", &node)) {
      do {
        if (!c_.Eat("IDENTIFIER", &node)) return Fail(save);
      } while (c_.Eat("COMMA", &node));
      if (!c_.Eat("RPAREN", &node)) return Fail(save);
    }
    while (c_.Eat("ON", &node)) {
      if (!c_.Eat("UPDATE", &node) && !c_.Eat("DELETE", &node)) {
        return Fail(save);
      }
      if (c_.Eat("CASCADE", &node) || c_.Eat("RESTRICT", &node)) {
      } else if (c_.Eat("SET", &node)) {
        if (!c_.Eat("NULL", &node) && !c_.Eat("DEFAULT", &node)) {
          return Fail(save);
        }
      } else if (c_.Eat("NO", &node)) {
        if (!c_.Eat("ACTION", &node)) return Fail(save);
      } else {
        return Fail(save);
      }
    }
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParseDrop(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("drop_statement");
    if (!c_.Eat("DROP", &node)) return Fail(save);
    if (!(c_.Eat("TABLE", &node) || c_.Eat("VIEW", &node) ||
          c_.Eat("SCHEMA", &node) || c_.Eat("SEQUENCE", &node))) {
      return Fail(save);
    }
    if (!ParseIdentifierChain(&node)) return Fail(save);
    if (c_.Eat("CASCADE", &node) || c_.Eat("RESTRICT", &node)) {
    }
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParseAlter(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("alter_table_statement");
    if (!c_.Eat("ALTER", &node)) return Fail(save);
    if (!c_.Eat("TABLE", &node) || !ParseIdentifierChain(&node)) {
      return Fail(save);
    }
    if (c_.Eat("ADD", &node)) {
      c_.Eat("COLUMN", &node);
      if (!ParseTableElement(&node)) return Fail(save);
    } else if (c_.Eat("DROP", &node)) {
      c_.Eat("COLUMN", &node);
      if (!c_.Eat("IDENTIFIER", &node)) return Fail(save);
      if (c_.Eat("CASCADE", &node) || c_.Eat("RESTRICT", &node)) {
      }
    } else if (c_.Eat("ALTER", &node)) {
      c_.Eat("COLUMN", &node);
      if (!c_.Eat("IDENTIFIER", &node)) return Fail(save);
      if (c_.Eat("SET", &node)) {
        if (!c_.Eat("DEFAULT", &node) || !ParseValueExpr(&node)) {
          return Fail(save);
        }
      } else if (c_.Eat("DROP", &node)) {
        if (!c_.Eat("DEFAULT", &node)) return Fail(save);
      } else {
        return Fail(save);
      }
    } else {
      return Fail(save);
    }
    parent->AddChild(std::move(node));
    return true;
  }

  // ---- access control, transactions, cursors ----
  bool ParseGrantRevoke(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("grant_statement");
    bool revoke = c_.At("REVOKE");
    if (!c_.Eat("GRANT", &node) && !c_.Eat("REVOKE", &node)) {
      return Fail(save);
    }
    if (revoke && c_.Eat("GRANT", &node)) {
      if (!c_.Eat("OPTION", &node) || !c_.Eat("FOR", &node)) {
        return Fail(save);
      }
    }
    if (c_.Eat("ALL", &node)) {
      if (!c_.Eat("PRIVILEGES", &node)) return Fail(save);
    } else {
      do {
        if (!(c_.Eat("SELECT", &node) || c_.Eat("INSERT", &node) ||
              c_.Eat("UPDATE", &node) || c_.Eat("DELETE", &node) ||
              c_.Eat("REFERENCES", &node) || c_.Eat("USAGE", &node) ||
              c_.Eat("TRIGGER", &node))) {
          return Fail(save);
        }
      } while (c_.Eat("COMMA", &node));
    }
    if (!c_.Eat("ON", &node)) return Fail(save);
    c_.Eat("TABLE", &node);
    if (!ParseIdentifierChain(&node)) return Fail(save);
    if (!(revoke ? c_.Eat("FROM", &node) : c_.Eat("TO", &node))) {
      return Fail(save);
    }
    do {
      if (!c_.Eat("PUBLIC", &node) && !c_.Eat("IDENTIFIER", &node)) {
        return Fail(save);
      }
    } while (c_.Eat("COMMA", &node));
    if (!revoke && c_.Eat("WITH", &node)) {
      if (!c_.Eat("GRANT", &node) || !c_.Eat("OPTION", &node)) {
        return Fail(save);
      }
    }
    if (revoke && (c_.Eat("CASCADE", &node) || c_.Eat("RESTRICT", &node))) {
    }
    parent->AddChild(std::move(node));
    return true;
  }

  bool ParseTransaction(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("transaction_statement");
    if (c_.Eat("COMMIT", &node)) {
      c_.Eat("WORK", &node);
      parent->AddChild(std::move(node));
      return true;
    }
    if (c_.Eat("ROLLBACK", &node)) {
      c_.Eat("WORK", &node);
      if (c_.Eat("TO", &node)) {
        if (!c_.Eat("SAVEPOINT", &node) || !c_.Eat("IDENTIFIER", &node)) {
          return Fail(save);
        }
      }
      parent->AddChild(std::move(node));
      return true;
    }
    if (c_.Eat("SAVEPOINT", &node)) {
      if (!c_.Eat("IDENTIFIER", &node)) return Fail(save);
      parent->AddChild(std::move(node));
      return true;
    }
    if (c_.At("START") || c_.At("SET")) {
      bool is_start = c_.At("START");
      c_.Eat(c_.PeekType(), &node);
      if (!c_.Eat("TRANSACTION", &node)) return Fail(save);
      bool need_mode = !is_start;
      bool first = true;
      while (first || c_.Eat("COMMA", &node)) {
        size_t mode_save = c_.Save();
        if (c_.Eat("ISOLATION", &node)) {
          if (!c_.Eat("LEVEL", &node)) return Fail(save);
          if (c_.Eat("READ", &node)) {
            if (!c_.Eat("UNCOMMITTED", &node) &&
                !c_.Eat("COMMITTED", &node)) {
              return Fail(save);
            }
          } else if (c_.Eat("REPEATABLE", &node)) {
            if (!c_.Eat("READ", &node)) return Fail(save);
          } else if (!c_.Eat("SERIALIZABLE", &node)) {
            return Fail(save);
          }
        } else if (c_.Eat("READ", &node)) {
          if (!c_.Eat("ONLY", &node) && !c_.Eat("WRITE", &node)) {
            return Fail(save);
          }
        } else {
          c_.Restore(mode_save);
          if (!first || need_mode) return Fail(save);
          break;
        }
        first = false;
      }
      parent->AddChild(std::move(node));
      return true;
    }
    return Fail(save);
  }

  bool ParseCursorStatement(ParseNode* parent) {
    size_t save = c_.Save();
    ParseNode node = ParseNode::Rule("cursor_statement");
    if (c_.Eat("DECLARE", &node)) {
      if (!c_.Eat("IDENTIFIER", &node)) return Fail(save);
      if (c_.Eat("SENSITIVE", &node) || c_.Eat("INSENSITIVE", &node) ||
          c_.Eat("ASENSITIVE", &node)) {
      }
      c_.Eat("SCROLL", &node);
      if (!c_.Eat("CURSOR", &node) || !c_.Eat("FOR", &node) ||
          !ParseQueryExpression(&node)) {
        return Fail(save);
      }
      parent->AddChild(std::move(node));
      return true;
    }
    if (c_.Eat("OPEN", &node) || c_.Eat("CLOSE", &node)) {
      if (!c_.Eat("IDENTIFIER", &node)) return Fail(save);
      parent->AddChild(std::move(node));
      return true;
    }
    if (c_.Eat("FETCH", &node)) {
      if (c_.Eat("NEXT", &node) || c_.Eat("PRIOR", &node) ||
          c_.Eat("FIRST", &node) || c_.Eat("LAST", &node)) {
        if (!c_.Eat("FROM", &node)) return Fail(save);
      } else if (c_.Eat("ABSOLUTE", &node) || c_.Eat("RELATIVE", &node)) {
        if (!c_.Eat("NUMBER", &node) || !c_.Eat("FROM", &node)) {
          return Fail(save);
        }
      }
      if (!c_.Eat("IDENTIFIER", &node)) return Fail(save);
      parent->AddChild(std::move(node));
      return true;
    }
    return Fail(save);
  }

  bool Fail(size_t save) {
    c_.Restore(save);
    return false;
  }

  Cursor& c_;
};

}  // namespace

const TokenSet& MonolithicTokenSet() {
  static const TokenSet& tokens = *new TokenSet(BuildMonolithicTokenSet());
  return tokens;
}

MonolithicSqlParser::MonolithicSqlParser() : lexer_(MonolithicTokenSet()) {}

Result<ParseNode> MonolithicSqlParser::Parse(std::string_view sql) const {
  SQLPL_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer_.Tokenize(sql));
  Cursor cursor(tokens);
  Rd parser(&cursor);
  ParseNode root = ParseNode::Rule("sql_statement");
  if (!parser.ParseStatement(&root) || !cursor.AtEnd()) {
    const Token& at = cursor.Current();
    return Status::ParseError("monolithic parser: syntax error at " +
                              at.location.ToString() + " near '" + at.text +
                              "'");
  }
  return root;
}

bool MonolithicSqlParser::Accepts(std::string_view sql) const {
  return Parse(sql).ok();
}

}  // namespace sqlpl
