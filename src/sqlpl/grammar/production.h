#ifndef SQLPL_GRAMMAR_PRODUCTION_H_
#define SQLPL_GRAMMAR_PRODUCTION_H_

#include <string>
#include <vector>

#include "sqlpl/grammar/expr.h"

namespace sqlpl {

/// One alternative of a production rule: an optional Bali-style label plus
/// the right-hand-side expression. Labels name alternatives so that
/// semantic-action layers and the composer can refer to them.
struct Alternative {
  std::string label;
  Expr body;

  bool operator==(const Alternative&) const = default;
};

/// A production rule: a left-hand-side nonterminal and an ordered list of
/// alternatives (`lhs : alt1 | alt2 | ... ;`). The alternative order is
/// significant — the runtime LL parser tries alternatives in order when
/// lookahead cannot decide — and the composition rules of the paper
/// (replace / retain / append) operate on this list.
class Production {
 public:
  Production() = default;
  explicit Production(std::string lhs) : lhs_(std::move(lhs)) {}
  Production(std::string lhs, Expr body) : lhs_(std::move(lhs)) {
    AddAlternative(std::move(body));
  }

  const std::string& lhs() const { return lhs_; }
  const std::vector<Alternative>& alternatives() const {
    return alternatives_;
  }
  std::vector<Alternative>* mutable_alternatives() { return &alternatives_; }

  /// Appends an alternative. If `body` is itself a top-level choice, its
  /// branches become separate alternatives (so `A : B | C` and
  /// `A : (B | C)` are the same production).
  void AddAlternative(Expr body, std::string label = "");

  /// True if some alternative equals `body` structurally.
  bool HasAlternative(const Expr& body) const;

  /// Renders as `lhs : alt1 | alt2 ;` in the grammar DSL.
  std::string ToString() const;

  bool operator==(const Production&) const = default;

 private:
  std::string lhs_;
  std::vector<Alternative> alternatives_;
};

}  // namespace sqlpl

#endif  // SQLPL_GRAMMAR_PRODUCTION_H_
