#include "sqlpl/grammar/symbol.h"

namespace sqlpl {

const char* SymbolKindToString(SymbolKind kind) {
  switch (kind) {
    case SymbolKind::kTerminal:
      return "terminal";
    case SymbolKind::kNonterminal:
      return "nonterminal";
  }
  return "unknown";
}

bool LooksLikeTerminalName(const std::string& name) {
  if (name.empty()) return false;
  bool has_upper = false;
  for (char c : name) {
    if (c >= 'a' && c <= 'z') return false;
    if (c >= 'A' && c <= 'Z') has_upper = true;
  }
  return has_upper;
}

}  // namespace sqlpl
