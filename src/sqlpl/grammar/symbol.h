#ifndef SQLPL_GRAMMAR_SYMBOL_H_
#define SQLPL_GRAMMAR_SYMBOL_H_

#include <string>

namespace sqlpl {

/// Whether a grammar symbol is a terminal (token) or a nonterminal
/// (syntactic variable). Terminology follows the paper's §3: "Terminal
/// symbols are the elementary symbols of the language ... while the
/// nonterminal symbols are sets of strings of terminals".
enum class SymbolKind {
  kTerminal,
  kNonterminal,
};

const char* SymbolKindToString(SymbolKind kind);

/// A named reference to a grammar symbol. Terminals name entries of a
/// `TokenSet` (conventionally UPPER_CASE); nonterminals name productions
/// (conventionally lower_case).
struct Symbol {
  SymbolKind kind = SymbolKind::kNonterminal;
  std::string name;

  static Symbol Terminal(std::string name) {
    return {SymbolKind::kTerminal, std::move(name)};
  }
  static Symbol Nonterminal(std::string name) {
    return {SymbolKind::kNonterminal, std::move(name)};
  }

  bool operator==(const Symbol&) const = default;
};

/// Heuristic used by the grammar text format: ALL_CAPS names denote
/// terminals, anything else a nonterminal.
bool LooksLikeTerminalName(const std::string& name);

}  // namespace sqlpl

#endif  // SQLPL_GRAMMAR_SYMBOL_H_
