#include "sqlpl/grammar/expr.h"

namespace sqlpl {

const char* ExprKindToString(ExprKind kind) {
  switch (kind) {
    case ExprKind::kToken:
      return "token";
    case ExprKind::kNonterminal:
      return "nonterminal";
    case ExprKind::kSequence:
      return "sequence";
    case ExprKind::kChoice:
      return "choice";
    case ExprKind::kOptional:
      return "optional";
    case ExprKind::kRepetition:
      return "repetition";
  }
  return "unknown";
}

Expr Expr::Tok(std::string token_name) {
  return Expr(ExprKind::kToken, std::move(token_name), {});
}

Expr Expr::NT(std::string nonterminal_name) {
  return Expr(ExprKind::kNonterminal, std::move(nonterminal_name), {});
}

Expr Expr::Seq(std::vector<Expr> children) {
  if (children.size() == 1) return std::move(children.front());
  return Expr(ExprKind::kSequence, "", std::move(children));
}

Expr Expr::Seq(std::initializer_list<Expr> children) {
  return Seq(std::vector<Expr>(children));
}

Expr Expr::Alt(std::vector<Expr> children) {
  if (children.size() == 1) return std::move(children.front());
  return Expr(ExprKind::kChoice, "", std::move(children));
}

Expr Expr::Alt(std::initializer_list<Expr> children) {
  return Alt(std::vector<Expr>(children));
}

Expr Expr::Opt(Expr child) {
  return Expr(ExprKind::kOptional, "", {std::move(child)});
}

Expr Expr::Star(Expr child) {
  return Expr(ExprKind::kRepetition, "", {std::move(child)});
}

Expr Expr::Plus(Expr child) {
  Expr star = Star(child);
  return Seq({std::move(child), std::move(star)});
}

bool Expr::operator==(const Expr& other) const {
  return kind_ == other.kind_ && symbol_ == other.symbol_ &&
         children_ == other.children_;
}

namespace {

// Renders `expr`, parenthesizing choices when they appear inside a
// surrounding sequence so that the output re-parses unambiguously.
void AppendExpr(const Expr& expr, bool parenthesize_choice,
                std::string* out) {
  switch (expr.kind()) {
    case ExprKind::kToken:
    case ExprKind::kNonterminal:
      *out += expr.symbol();
      return;
    case ExprKind::kSequence: {
      if (expr.children().empty()) {
        *out += "/*empty*/";
        return;
      }
      for (size_t i = 0; i < expr.children().size(); ++i) {
        if (i > 0) *out += ' ';
        AppendExpr(expr.children()[i], /*parenthesize_choice=*/true, out);
      }
      return;
    }
    case ExprKind::kChoice: {
      if (parenthesize_choice) *out += "( ";
      for (size_t i = 0; i < expr.children().size(); ++i) {
        if (i > 0) *out += " | ";
        AppendExpr(expr.children()[i], /*parenthesize_choice=*/false, out);
      }
      if (parenthesize_choice) *out += " )";
      return;
    }
    case ExprKind::kOptional:
      *out += "[ ";
      AppendExpr(expr.child(), /*parenthesize_choice=*/false, out);
      *out += " ]";
      return;
    case ExprKind::kRepetition:
      *out += "( ";
      AppendExpr(expr.child(), /*parenthesize_choice=*/false, out);
      *out += " )*";
      return;
  }
}

}  // namespace

std::string Expr::ToString() const {
  std::string out;
  AppendExpr(*this, /*parenthesize_choice=*/false, &out);
  return out;
}

std::vector<Expr> Expr::FlattenSequence() const {
  std::vector<Expr> out;
  if (is_sequence()) {
    for (const Expr& child : children_) {
      std::vector<Expr> nested = child.FlattenSequence();
      out.insert(out.end(), nested.begin(), nested.end());
    }
  } else {
    out.push_back(*this);
  }
  return out;
}

void Expr::CollectNonterminals(std::vector<std::string>* out) const {
  if (is_nonterminal()) out->push_back(symbol_);
  for (const Expr& child : children_) child.CollectNonterminals(out);
}

void Expr::CollectTokens(std::vector<std::string>* out) const {
  if (is_token()) out->push_back(symbol_);
  for (const Expr& child : children_) child.CollectTokens(out);
}

bool SequenceContains(const std::vector<Expr>& haystack,
                      const std::vector<Expr>& needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (size_t start = 0; start + needle.size() <= haystack.size(); ++start) {
    bool match = true;
    for (size_t i = 0; i < needle.size(); ++i) {
      if (!(haystack[start + i] == needle[i])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

bool ExprContains(const Expr& outer, const Expr& inner) {
  return SequenceContains(outer.FlattenSequence(), inner.FlattenSequence());
}

}  // namespace sqlpl
