#include "sqlpl/grammar/grammar.h"

#include <set>

namespace sqlpl {

Status Grammar::AddProduction(Production production) {
  if (index_.contains(production.lhs())) {
    return Status::AlreadyExists("production for '" + production.lhs() +
                                 "' already exists in grammar '" + name_ +
                                 "'");
  }
  index_.emplace(production.lhs(), productions_.size());
  productions_.push_back(std::move(production));
  return Status::OK();
}

void Grammar::AddRule(const std::string& lhs, Expr body, std::string label) {
  Production* existing = FindMutable(lhs);
  if (existing == nullptr) {
    Production production(lhs);
    production.AddAlternative(std::move(body), std::move(label));
    index_.emplace(lhs, productions_.size());
    productions_.push_back(std::move(production));
    return;
  }
  if (!existing->HasAlternative(body)) {
    existing->AddAlternative(std::move(body), std::move(label));
  }
}

Status Grammar::ReplaceProduction(Production production) {
  auto it = index_.find(production.lhs());
  if (it == index_.end()) {
    return Status::NotFound("no production for '" + production.lhs() +
                            "' in grammar '" + name_ + "'");
  }
  productions_[it->second] = std::move(production);
  return Status::OK();
}

Status Grammar::RemoveProduction(const std::string& lhs) {
  auto it = index_.find(lhs);
  if (it == index_.end()) {
    return Status::NotFound("no production for '" + lhs + "' in grammar '" +
                            name_ + "'");
  }
  size_t removed = it->second;
  productions_.erase(productions_.begin() + static_cast<ptrdiff_t>(removed));
  index_.erase(it);
  for (auto& [name, idx] : index_) {
    if (idx > removed) --idx;
  }
  return Status::OK();
}

bool Grammar::HasProduction(const std::string& lhs) const {
  return index_.contains(lhs);
}

const Production* Grammar::Find(const std::string& lhs) const {
  auto it = index_.find(lhs);
  return it == index_.end() ? nullptr : &productions_[it->second];
}

Production* Grammar::FindMutable(const std::string& lhs) {
  auto it = index_.find(lhs);
  return it == index_.end() ? nullptr : &productions_[it->second];
}

std::vector<std::string> Grammar::NonterminalNames() const {
  std::vector<std::string> out;
  out.reserve(productions_.size());
  for (const Production& p : productions_) out.push_back(p.lhs());
  return out;
}

size_t Grammar::NumAlternatives() const {
  size_t n = 0;
  for (const Production& p : productions_) n += p.alternatives().size();
  return n;
}

Status Grammar::Validate(DiagnosticCollector* diagnostics) const {
  const size_t initial_errors = diagnostics->error_count();

  if (start_symbol_.empty()) {
    diagnostics->AddError({}, "grammar '" + name_ + "' has no start symbol");
  } else if (!HasProduction(start_symbol_)) {
    diagnostics->AddError({}, "start symbol '" + start_symbol_ +
                                  "' has no production in grammar '" + name_ +
                                  "'");
  }

  // Resolve every referenced nonterminal and token.
  for (const Production& production : productions_) {
    for (const Alternative& alt : production.alternatives()) {
      std::vector<std::string> nts;
      std::vector<std::string> toks;
      alt.body.CollectNonterminals(&nts);
      alt.body.CollectTokens(&toks);
      for (const std::string& nt : nts) {
        if (!HasProduction(nt)) {
          diagnostics->AddError(
              {}, "undefined nonterminal '" + nt + "' referenced from '" +
                      production.lhs() + "'");
        }
      }
      for (const std::string& tok : toks) {
        if (!tokens_.Contains(tok)) {
          diagnostics->AddError({}, "undefined token '" + tok +
                                        "' referenced from '" +
                                        production.lhs() + "'");
        }
      }
    }
  }

  // Reachability from the start symbol (warning only: sub-grammars often
  // carry helper rules whose callers arrive during composition).
  if (!start_symbol_.empty() && HasProduction(start_symbol_)) {
    std::set<std::string> reachable;
    std::vector<std::string> work = {start_symbol_};
    while (!work.empty()) {
      std::string current = std::move(work.back());
      work.pop_back();
      if (!reachable.insert(current).second) continue;
      const Production* production = Find(current);
      if (production == nullptr) continue;
      for (const Alternative& alt : production->alternatives()) {
        std::vector<std::string> nts;
        alt.body.CollectNonterminals(&nts);
        for (std::string& nt : nts) work.push_back(std::move(nt));
      }
    }
    for (const Production& production : productions_) {
      if (!reachable.contains(production.lhs())) {
        diagnostics->AddWarning({}, "production '" + production.lhs() +
                                        "' unreachable from start symbol '" +
                                        start_symbol_ + "'");
      }
    }
  }

  if (diagnostics->error_count() > initial_errors) {
    return Status::ParseError("grammar '" + name_ + "' failed validation");
  }
  return Status::OK();
}

std::string Grammar::ToString() const {
  std::string out = "grammar " + name_ + ";\n";
  if (!start_symbol_.empty()) out += "start " + start_symbol_ + ";\n";
  for (const std::string& import : imports_) {
    out += "import " + import + ";\n";
  }
  if (!tokens_.empty()) {
    out += "tokens {\n";
    for (const TokenDef& def : tokens_.ToVector()) {
      out += "  " + def.ToString() + "\n";
    }
    out += "}\n";
  }
  for (const Production& production : productions_) {
    out += production.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace sqlpl
