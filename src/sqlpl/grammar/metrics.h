#ifndef SQLPL_GRAMMAR_METRICS_H_
#define SQLPL_GRAMMAR_METRICS_H_

#include <cstddef>
#include <string>

#include "sqlpl/grammar/grammar.h"

namespace sqlpl {

/// Size and shape measurements of a grammar — the footprint numbers the
/// embedded-systems comparison (experiment E8) reports per dialect.
struct GrammarMetrics {
  size_t num_productions = 0;
  size_t num_alternatives = 0;
  /// Total expression-tree nodes across all alternatives.
  size_t num_expr_nodes = 0;
  /// Largest alternative count of any single production (grammar
  /// "width"; drives worst-case choice-point cost in the LL engine).
  size_t max_alternatives = 0;
  /// Deepest right-hand-side expression nesting (grammar "depth").
  size_t max_expr_depth = 0;
  /// Productions reachable from the start symbol.
  size_t num_reachable = 0;
  size_t num_tokens = 0;
  size_t num_keywords = 0;
  /// Approximate in-memory footprint of the grammar IR in bytes
  /// (node sizes plus string capacities) — relative numbers for
  /// comparing dialects, not an allocator-exact measurement.
  size_t approx_bytes = 0;

  /// "productions=32 alternatives=42 ..." one-line rendering.
  std::string ToString() const;
};

/// Walks `grammar` computing all metrics in one pass.
GrammarMetrics ComputeGrammarMetrics(const Grammar& grammar);

}  // namespace sqlpl

#endif  // SQLPL_GRAMMAR_METRICS_H_
