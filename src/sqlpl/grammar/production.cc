#include "sqlpl/grammar/production.h"

namespace sqlpl {

void Production::AddAlternative(Expr body, std::string label) {
  if (body.is_choice()) {
    // Splice a top-level choice into separate alternatives; the label (if
    // any) attaches to the first branch.
    bool first = true;
    for (const Expr& branch : body.children()) {
      alternatives_.push_back({first ? label : std::string(), branch});
      first = false;
    }
    return;
  }
  alternatives_.push_back({std::move(label), std::move(body)});
}

bool Production::HasAlternative(const Expr& body) const {
  for (const Alternative& alt : alternatives_) {
    if (alt.body == body) return true;
  }
  return false;
}

std::string Production::ToString() const {
  std::string out = lhs_;
  out += " :";
  for (size_t i = 0; i < alternatives_.size(); ++i) {
    if (i > 0) out += " |";
    const Alternative& alt = alternatives_[i];
    if (!alt.label.empty()) {
      out += ' ';
      out += alt.label;
      out += " =";
    }
    out += ' ';
    out += alt.body.ToString();
  }
  out += " ;";
  return out;
}

}  // namespace sqlpl
