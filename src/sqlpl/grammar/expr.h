#ifndef SQLPL_GRAMMAR_EXPR_H_
#define SQLPL_GRAMMAR_EXPR_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "sqlpl/grammar/symbol.h"

namespace sqlpl {

/// Node kind of a right-hand-side grammar expression.
enum class ExprKind {
  /// Reference to a terminal token, e.g. `SELECT`, `COMMA`, `IDENTIFIER`.
  kToken,
  /// Reference to a nonterminal, e.g. `table_expression`.
  kNonterminal,
  /// Ordered concatenation of children. An empty sequence is epsilon.
  kSequence,
  /// Alternatives (`a | b | c`).
  kChoice,
  /// Optional occurrence (`[ x ]` in SQL BNF, `x?` in ANTLR notation).
  kOptional,
  /// Zero-or-more repetition (`x*`). The paper's "complex list"
  /// `<NT> [ <comma> <NT> ... ]` is `Seq(NT, Star(Seq(COMMA, NT)))`.
  kRepetition,
};

const char* ExprKindToString(ExprKind kind);

/// A right-hand-side expression of a production rule: an immutable value
/// tree of tokens, nonterminal references, sequences, choices, optionals
/// and repetitions.
///
/// `Expr` is a plain value type (copyable, comparable); the composer
/// rewrites productions by building new trees rather than mutating shared
/// state, which keeps composition steps independent and easy to trace.
class Expr {
 public:
  /// Epsilon (the empty sequence).
  Expr() : kind_(ExprKind::kSequence) {}

  /// Terminal reference.
  static Expr Tok(std::string token_name);
  /// Nonterminal reference.
  static Expr NT(std::string nonterminal_name);
  /// Sequence of children. A single-child sequence collapses to the child.
  static Expr Seq(std::vector<Expr> children);
  static Expr Seq(std::initializer_list<Expr> children);
  /// Choice among children. A single-child choice collapses to the child.
  static Expr Alt(std::vector<Expr> children);
  static Expr Alt(std::initializer_list<Expr> children);
  /// Optional occurrence of `child`.
  static Expr Opt(Expr child);
  /// Zero-or-more repetition of `child`.
  static Expr Star(Expr child);
  /// One-or-more repetition, lowered to `Seq(child, Star(child))`.
  static Expr Plus(Expr child);
  /// Epsilon.
  static Expr Epsilon() { return Expr(); }

  ExprKind kind() const { return kind_; }
  /// Symbol name; only meaningful for kToken / kNonterminal nodes.
  const std::string& symbol() const { return symbol_; }
  const std::vector<Expr>& children() const { return children_; }
  /// The single child of an optional/repetition node.
  const Expr& child() const { return children_.front(); }

  bool is_token() const { return kind_ == ExprKind::kToken; }
  bool is_nonterminal() const { return kind_ == ExprKind::kNonterminal; }
  bool is_sequence() const { return kind_ == ExprKind::kSequence; }
  bool is_choice() const { return kind_ == ExprKind::kChoice; }
  bool is_optional() const { return kind_ == ExprKind::kOptional; }
  bool is_repetition() const { return kind_ == ExprKind::kRepetition; }
  /// True for an empty sequence.
  bool is_epsilon() const {
    return kind_ == ExprKind::kSequence && children_.empty();
  }

  /// Structural equality.
  bool operator==(const Expr& other) const;

  /// Renders in the grammar DSL notation, e.g.
  /// `SELECT [ set_quantifier ] select_list`.
  std::string ToString() const;

  /// Flattens this expression into its top-level sequence elements:
  /// a sequence yields its children (recursively flattening nested
  /// sequences); any other node yields itself as a single element.
  std::vector<Expr> FlattenSequence() const;

  /// Collects the names of all nonterminals / tokens referenced anywhere
  /// in this tree (appended to the output vectors, duplicates preserved).
  void CollectNonterminals(std::vector<std::string>* out) const;
  void CollectTokens(std::vector<std::string>* out) const;

 private:
  Expr(ExprKind kind, std::string symbol, std::vector<Expr> children)
      : kind_(kind), symbol_(std::move(symbol)),
        children_(std::move(children)) {}

  ExprKind kind_;
  std::string symbol_;
  std::vector<Expr> children_;
};

/// True if the element list `needle` occurs as a contiguous subsequence of
/// the element list `haystack` (structural equality per element). This is
/// the containment test behind the paper's composition rule for
/// productions with the same nonterminal: "if the new production contains
/// the old one, the old production is replaced" (e.g. `B` is contained in
/// `B C`).
bool SequenceContains(const std::vector<Expr>& haystack,
                      const std::vector<Expr>& needle);

/// Convenience wrapper: flattens both expressions and applies
/// `SequenceContains(outer, inner)`.
bool ExprContains(const Expr& outer, const Expr& inner);

}  // namespace sqlpl

#endif  // SQLPL_GRAMMAR_EXPR_H_
