#include "sqlpl/grammar/analysis.h"

#include <algorithm>

namespace sqlpl {

namespace {

// Inserts `src` into `dst`; returns true if `dst` grew.
bool UnionInto(std::set<std::string>* dst, const std::set<std::string>& src) {
  size_t before = dst->size();
  dst->insert(src.begin(), src.end());
  return dst->size() != before;
}

std::string JoinTokens(const std::set<std::string>& tokens) {
  std::string out;
  for (const std::string& t : tokens) {
    if (!out.empty()) out += ", ";
    out += t;
  }
  return out;
}

}  // namespace

std::string Ll1Conflict::ToString() const {
  return nonterminal + ": " + description + " (on {" + JoinTokens(tokens) +
         "})";
}

Result<GrammarAnalysis> GrammarAnalysis::Analyze(const Grammar& grammar) {
  // Check that every referenced nonterminal resolves; the fixpoints below
  // assume closed references.
  for (const Production& production : grammar.productions()) {
    for (const Alternative& alt : production.alternatives()) {
      std::vector<std::string> nts;
      alt.body.CollectNonterminals(&nts);
      for (const std::string& nt : nts) {
        if (!grammar.HasProduction(nt)) {
          return Status::FailedPrecondition(
              "cannot analyze grammar '" + grammar.name() +
              "': undefined nonterminal '" + nt + "' referenced from '" +
              production.lhs() + "'");
        }
      }
    }
  }

  GrammarAnalysis analysis;
  analysis.ComputeNullable(grammar);
  analysis.ComputeFirst(grammar);
  analysis.ComputeFollow(grammar);
  analysis.DetectLeftRecursion(grammar);
  analysis.DetectConflicts(grammar);
  return analysis;
}

bool GrammarAnalysis::IsNullable(const std::string& nonterminal) const {
  auto it = nullable_.find(nonterminal);
  return it != nullable_.end() && it->second;
}

bool GrammarAnalysis::ExprNullable(const Expr& expr) const {
  switch (expr.kind()) {
    case ExprKind::kToken:
      return false;
    case ExprKind::kNonterminal:
      return IsNullable(expr.symbol());
    case ExprKind::kSequence:
      return std::all_of(
          expr.children().begin(), expr.children().end(),
          [this](const Expr& c) { return ExprNullable(c); });
    case ExprKind::kChoice:
      return std::any_of(
          expr.children().begin(), expr.children().end(),
          [this](const Expr& c) { return ExprNullable(c); });
    case ExprKind::kOptional:
    case ExprKind::kRepetition:
      return true;
  }
  return false;
}

const std::set<std::string>& GrammarAnalysis::First(
    const std::string& nonterminal) const {
  auto it = first_.find(nonterminal);
  return it == first_.end() ? empty_set_ : it->second;
}

std::set<std::string> GrammarAnalysis::FirstOf(const Expr& expr) const {
  std::set<std::string> out;
  switch (expr.kind()) {
    case ExprKind::kToken:
      out.insert(expr.symbol());
      break;
    case ExprKind::kNonterminal: {
      const std::set<std::string>& f = First(expr.symbol());
      out.insert(f.begin(), f.end());
      break;
    }
    case ExprKind::kSequence:
      for (const Expr& child : expr.children()) {
        std::set<std::string> f = FirstOf(child);
        out.insert(f.begin(), f.end());
        if (!ExprNullable(child)) break;
      }
      break;
    case ExprKind::kChoice:
      for (const Expr& child : expr.children()) {
        std::set<std::string> f = FirstOf(child);
        out.insert(f.begin(), f.end());
      }
      break;
    case ExprKind::kOptional:
    case ExprKind::kRepetition: {
      std::set<std::string> f = FirstOf(expr.child());
      out.insert(f.begin(), f.end());
      break;
    }
  }
  return out;
}

const std::set<std::string>& GrammarAnalysis::Follow(
    const std::string& nonterminal) const {
  auto it = follow_.find(nonterminal);
  return it == follow_.end() ? empty_set_ : it->second;
}

void GrammarAnalysis::ComputeNullable(const Grammar& grammar) {
  for (const Production& p : grammar.productions()) nullable_[p.lhs()] = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Production& p : grammar.productions()) {
      if (nullable_[p.lhs()]) continue;
      for (const Alternative& alt : p.alternatives()) {
        if (ExprNullable(alt.body)) {
          nullable_[p.lhs()] = true;
          changed = true;
          break;
        }
      }
    }
  }
}

void GrammarAnalysis::ComputeFirst(const Grammar& grammar) {
  for (const Production& p : grammar.productions()) first_[p.lhs()];
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Production& p : grammar.productions()) {
      for (const Alternative& alt : p.alternatives()) {
        if (UnionInto(&first_[p.lhs()], FirstOf(alt.body))) changed = true;
      }
    }
  }
}

void GrammarAnalysis::ComputeFollow(const Grammar& grammar) {
  for (const Production& p : grammar.productions()) follow_[p.lhs()];
  if (!grammar.start_symbol().empty()) {
    follow_[grammar.start_symbol()].insert(kEndOfInputToken);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Production& p : grammar.productions()) {
      const std::set<std::string>& lhs_follow = follow_[p.lhs()];
      for (const Alternative& alt : p.alternatives()) {
        if (VisitFollow(alt.body, lhs_follow)) changed = true;
      }
    }
  }
}

bool GrammarAnalysis::VisitFollow(const Expr& expr,
                                  const std::set<std::string>& ctx) {
  switch (expr.kind()) {
    case ExprKind::kToken:
      return false;
    case ExprKind::kNonterminal:
      return UnionInto(&follow_[expr.symbol()], ctx);
    case ExprKind::kSequence: {
      bool changed = false;
      const std::vector<Expr>& kids = expr.children();
      for (size_t i = 0; i < kids.size(); ++i) {
        // Follow context of kids[i]: FIRST of the remaining suffix, plus
        // `ctx` if the suffix is nullable.
        std::set<std::string> child_ctx;
        bool suffix_nullable = true;
        for (size_t j = i + 1; j < kids.size(); ++j) {
          std::set<std::string> f = FirstOf(kids[j]);
          child_ctx.insert(f.begin(), f.end());
          if (!ExprNullable(kids[j])) {
            suffix_nullable = false;
            break;
          }
        }
        if (suffix_nullable) child_ctx.insert(ctx.begin(), ctx.end());
        if (VisitFollow(kids[i], child_ctx)) changed = true;
      }
      return changed;
    }
    case ExprKind::kChoice: {
      bool changed = false;
      for (const Expr& child : expr.children()) {
        if (VisitFollow(child, ctx)) changed = true;
      }
      return changed;
    }
    case ExprKind::kOptional:
      return VisitFollow(expr.child(), ctx);
    case ExprKind::kRepetition: {
      // The repetition body can be followed by another iteration of
      // itself or by whatever follows the repetition.
      std::set<std::string> child_ctx = FirstOf(expr.child());
      child_ctx.insert(ctx.begin(), ctx.end());
      return VisitFollow(expr.child(), child_ctx);
    }
  }
  return false;
}

void GrammarAnalysis::DetectLeftRecursion(const Grammar& grammar) {
  // left_edges[A] = nonterminals that can appear leftmost in a derivation
  // step from A (taking nullable prefixes into account).
  std::map<std::string, std::set<std::string>> left_edges;

  // Collects the possible leftmost nonterminals of `expr`.
  auto collect = [&](const Expr& expr, std::set<std::string>* out,
                     auto&& self) -> void {
    switch (expr.kind()) {
      case ExprKind::kToken:
        return;
      case ExprKind::kNonterminal:
        out->insert(expr.symbol());
        return;
      case ExprKind::kSequence:
        for (const Expr& child : expr.children()) {
          self(child, out, self);
          if (!ExprNullable(child)) return;
        }
        return;
      case ExprKind::kChoice:
        for (const Expr& child : expr.children()) self(child, out, self);
        return;
      case ExprKind::kOptional:
      case ExprKind::kRepetition:
        self(expr.child(), out, self);
        return;
    }
  };

  for (const Production& p : grammar.productions()) {
    std::set<std::string>& edges = left_edges[p.lhs()];
    for (const Alternative& alt : p.alternatives()) {
      collect(alt.body, &edges, collect);
    }
  }

  // A is left-recursive iff A is reachable from A over left edges.
  for (const auto& [start, _] : left_edges) {
    std::set<std::string> seen;
    std::vector<std::string> work(left_edges[start].begin(),
                                  left_edges[start].end());
    bool recursive = false;
    while (!work.empty()) {
      std::string current = std::move(work.back());
      work.pop_back();
      if (current == start) {
        recursive = true;
        break;
      }
      if (!seen.insert(current).second) continue;
      auto it = left_edges.find(current);
      if (it == left_edges.end()) continue;
      work.insert(work.end(), it->second.begin(), it->second.end());
    }
    if (recursive) left_recursive_.push_back(start);
  }
}

void GrammarAnalysis::DetectConflicts(const Grammar& grammar) {
  for (const Production& p : grammar.productions()) {
    // Alternative-vs-alternative conflicts.
    const std::vector<Alternative>& alts = p.alternatives();
    for (size_t i = 0; i < alts.size(); ++i) {
      std::set<std::string> predict_i = FirstOf(alts[i].body);
      if (ExprNullable(alts[i].body)) {
        const std::set<std::string>& f = Follow(p.lhs());
        predict_i.insert(f.begin(), f.end());
      }
      for (size_t j = i + 1; j < alts.size(); ++j) {
        std::set<std::string> predict_j = FirstOf(alts[j].body);
        if (ExprNullable(alts[j].body)) {
          const std::set<std::string>& f = Follow(p.lhs());
          predict_j.insert(f.begin(), f.end());
        }
        std::set<std::string> overlap;
        std::set_intersection(predict_i.begin(), predict_i.end(),
                              predict_j.begin(), predict_j.end(),
                              std::inserter(overlap, overlap.begin()));
        if (!overlap.empty()) {
          conflicts_.push_back(
              {p.lhs(),
               "alternatives " + std::to_string(i + 1) + " and " +
                   std::to_string(j + 1) + " overlap",
               std::move(overlap)});
        }
      }
    }
    // Optional / repetition conflicts inside each alternative.
    for (const Alternative& alt : alts) {
      VisitConflicts(p.lhs(), alt.body, Follow(p.lhs()));
    }
  }
}

void GrammarAnalysis::VisitConflicts(const std::string& lhs, const Expr& expr,
                                     const std::set<std::string>& ctx) {
  switch (expr.kind()) {
    case ExprKind::kToken:
    case ExprKind::kNonterminal:
      return;
    case ExprKind::kSequence: {
      const std::vector<Expr>& kids = expr.children();
      for (size_t i = 0; i < kids.size(); ++i) {
        std::set<std::string> child_ctx;
        bool suffix_nullable = true;
        for (size_t j = i + 1; j < kids.size(); ++j) {
          std::set<std::string> f = FirstOf(kids[j]);
          child_ctx.insert(f.begin(), f.end());
          if (!ExprNullable(kids[j])) {
            suffix_nullable = false;
            break;
          }
        }
        if (suffix_nullable) child_ctx.insert(ctx.begin(), ctx.end());
        VisitConflicts(lhs, kids[i], child_ctx);
      }
      return;
    }
    case ExprKind::kChoice: {
      const std::vector<Expr>& kids = expr.children();
      for (size_t i = 0; i < kids.size(); ++i) {
        for (size_t j = i + 1; j < kids.size(); ++j) {
          std::set<std::string> fi = FirstOf(kids[i]);
          std::set<std::string> fj = FirstOf(kids[j]);
          std::set<std::string> overlap;
          std::set_intersection(fi.begin(), fi.end(), fj.begin(), fj.end(),
                                std::inserter(overlap, overlap.begin()));
          if (!overlap.empty()) {
            conflicts_.push_back({lhs, "nested choice branches overlap",
                                  std::move(overlap)});
          }
        }
      }
      for (const Expr& child : kids) VisitConflicts(lhs, child, ctx);
      return;
    }
    case ExprKind::kOptional:
    case ExprKind::kRepetition: {
      std::set<std::string> first = FirstOf(expr.child());
      std::set<std::string> overlap;
      std::set_intersection(first.begin(), first.end(), ctx.begin(),
                            ctx.end(), std::inserter(overlap, overlap.begin()));
      if (!overlap.empty()) {
        conflicts_.push_back(
            {lhs,
             expr.is_optional()
                 ? "optional body overlaps its follow context"
                 : "repetition body overlaps its follow context",
             std::move(overlap)});
      }
      std::set<std::string> child_ctx = ctx;
      if (expr.is_repetition()) child_ctx.insert(first.begin(), first.end());
      VisitConflicts(lhs, expr.child(), child_ctx);
      return;
    }
  }
}

}  // namespace sqlpl
