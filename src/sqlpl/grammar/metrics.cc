#include "sqlpl/grammar/metrics.h"

#include <algorithm>
#include <set>

namespace sqlpl {

namespace {

size_t ExprNodes(const Expr& expr) {
  size_t nodes = 1;
  for (const Expr& child : expr.children()) nodes += ExprNodes(child);
  return nodes;
}

size_t ExprDepth(const Expr& expr) {
  size_t deepest = 0;
  for (const Expr& child : expr.children()) {
    deepest = std::max(deepest, ExprDepth(child));
  }
  return deepest + 1;
}

size_t ExprBytes(const Expr& expr) {
  size_t bytes = sizeof(Expr) + expr.symbol().capacity();
  for (const Expr& child : expr.children()) bytes += ExprBytes(child);
  return bytes;
}

size_t CountReachable(const Grammar& grammar) {
  if (grammar.start_symbol().empty() ||
      !grammar.HasProduction(grammar.start_symbol())) {
    return 0;
  }
  std::set<std::string> reachable;
  std::vector<std::string> work = {grammar.start_symbol()};
  while (!work.empty()) {
    std::string current = std::move(work.back());
    work.pop_back();
    if (!reachable.insert(current).second) continue;
    const Production* production = grammar.Find(current);
    if (production == nullptr) continue;
    for (const Alternative& alt : production->alternatives()) {
      std::vector<std::string> refs;
      alt.body.CollectNonterminals(&refs);
      for (std::string& ref : refs) work.push_back(std::move(ref));
    }
  }
  return reachable.size();
}

}  // namespace

GrammarMetrics ComputeGrammarMetrics(const Grammar& grammar) {
  GrammarMetrics metrics;
  metrics.num_productions = grammar.NumProductions();
  metrics.num_tokens = grammar.tokens().size();
  metrics.num_keywords = grammar.tokens().KeywordTexts().size();
  metrics.num_reachable = CountReachable(grammar);

  for (const Production& production : grammar.productions()) {
    metrics.num_alternatives += production.alternatives().size();
    metrics.max_alternatives = std::max(metrics.max_alternatives,
                                        production.alternatives().size());
    metrics.approx_bytes += sizeof(Production) + production.lhs().capacity();
    for (const Alternative& alt : production.alternatives()) {
      metrics.num_expr_nodes += ExprNodes(alt.body);
      metrics.max_expr_depth =
          std::max(metrics.max_expr_depth, ExprDepth(alt.body));
      metrics.approx_bytes += ExprBytes(alt.body) + alt.label.capacity();
    }
  }
  for (const TokenDef& def : grammar.tokens().ToVector()) {
    metrics.approx_bytes +=
        sizeof(TokenDef) + def.name.capacity() + def.text.capacity();
  }
  return metrics;
}

std::string GrammarMetrics::ToString() const {
  std::string out;
  out += "productions=" + std::to_string(num_productions);
  out += " alternatives=" + std::to_string(num_alternatives);
  out += " expr_nodes=" + std::to_string(num_expr_nodes);
  out += " max_alternatives=" + std::to_string(max_alternatives);
  out += " max_depth=" + std::to_string(max_expr_depth);
  out += " reachable=" + std::to_string(num_reachable);
  out += " tokens=" + std::to_string(num_tokens);
  out += " keywords=" + std::to_string(num_keywords);
  out += " approx_bytes=" + std::to_string(approx_bytes);
  return out;
}

}  // namespace sqlpl
