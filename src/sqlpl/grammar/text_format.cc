#include "sqlpl/grammar/text_format.h"

#include <array>
#include <utility>

#include "sqlpl/util/source_location.h"
#include "sqlpl/util/strings.h"

namespace sqlpl {

namespace {

// ---------------------------------------------------------------------
// DSL tokenizer
// ---------------------------------------------------------------------

enum class DslTokKind {
  kIdent,      // rule or token name
  kLiteral,    // 'SELECT' or "SELECT"
  kColon,      // :
  kSemi,       // ;
  kPipe,       // |
  kLBracket,   // [
  kRBracket,   // ]
  kLParen,     // (
  kRParen,     // )
  kLBrace,     // {
  kRBrace,     // }
  kStar,       // *
  kPlus,       // +
  kQuestion,   // ?
  kEquals,     // =
  kEnd,
};

struct DslTok {
  DslTokKind kind = DslTokKind::kEnd;
  std::string text;
  SourceLocation loc;
};

class DslLexer {
 public:
  DslLexer(std::string_view text, std::string_view source_name)
      : text_(text), source_name_(source_name) {}

  Result<std::vector<DslTok>> Tokenize() {
    std::vector<DslTok> out;
    while (true) {
      SkipTrivia();
      if (pos_ >= text_.size()) break;
      SourceLocation loc = Here();
      char c = text_[pos_];
      if (IsIdentStart(c)) {
        size_t start = pos_;
        while (pos_ < text_.size() && IsIdentCont(text_[pos_])) ++pos_;
        out.push_back({DslTokKind::kIdent,
                       std::string(text_.substr(start, pos_ - start)), loc});
        continue;
      }
      if (c == '\'' || c == '"') {
        char quote = c;
        ++pos_;
        size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != quote) Advance();
        if (pos_ >= text_.size()) {
          return Status::ParseError(Where(loc) + ": unterminated literal");
        }
        out.push_back({DslTokKind::kLiteral,
                       std::string(text_.substr(start, pos_ - start)), loc});
        ++pos_;
        continue;
      }
      DslTokKind kind;
      switch (c) {
        case ':': kind = DslTokKind::kColon; break;
        case ';': kind = DslTokKind::kSemi; break;
        case '|': kind = DslTokKind::kPipe; break;
        case '[': kind = DslTokKind::kLBracket; break;
        case ']': kind = DslTokKind::kRBracket; break;
        case '(': kind = DslTokKind::kLParen; break;
        case ')': kind = DslTokKind::kRParen; break;
        case '{': kind = DslTokKind::kLBrace; break;
        case '}': kind = DslTokKind::kRBrace; break;
        case '*': kind = DslTokKind::kStar; break;
        case '+': kind = DslTokKind::kPlus; break;
        case '?': kind = DslTokKind::kQuestion; break;
        case '=': kind = DslTokKind::kEquals; break;
        default:
          return Status::ParseError(Where(loc) +
                                    ": unexpected character '" +
                                    std::string(1, c) + "'");
      }
      out.push_back({kind, std::string(1, c), loc});
      ++pos_;
    }
    out.push_back({DslTokKind::kEnd, "", Here()});
    return out;
  }

 private:
  SourceLocation Here() const { return {line_, column_, pos_}; }

  std::string Where(const SourceLocation& loc) const {
    return std::string(source_name_) + ":" + loc.ToString();
  }

  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void SkipTrivia() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        Advance();
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '*') {
        Advance();
        Advance();
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          Advance();
        }
        if (pos_ + 1 < text_.size()) {
          Advance();
          Advance();
        }
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::string_view source_name_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;
};

// ---------------------------------------------------------------------
// DSL parser
// ---------------------------------------------------------------------

class DslParser {
 public:
  DslParser(std::vector<DslTok> toks, std::string_view source_name)
      : toks_(std::move(toks)), source_name_(source_name) {}

  Result<Grammar> ParseGrammar() {
    Grammar grammar;
    // Optional header: grammar NAME ;
    if (PeekIdent("grammar")) {
      Next();
      if (Peek().kind != DslTokKind::kIdent) {
        return Error("expected grammar name after 'grammar'");
      }
      grammar.set_name(Next().text);
      SQLPL_RETURN_IF_ERROR(Expect(DslTokKind::kSemi, "';'"));
    }
    while (Peek().kind != DslTokKind::kEnd) {
      if (PeekIdent("start")) {
        Next();
        if (Peek().kind != DslTokKind::kIdent) {
          return Error("expected start symbol after 'start'");
        }
        grammar.set_start_symbol(Next().text);
        SQLPL_RETURN_IF_ERROR(Expect(DslTokKind::kSemi, "';'"));
        continue;
      }
      if (PeekIdent("import")) {
        Next();
        if (Peek().kind != DslTokKind::kIdent) {
          return Error("expected grammar name after 'import'");
        }
        grammar.AddImport(Next().text);
        SQLPL_RETURN_IF_ERROR(Expect(DslTokKind::kSemi, "';'"));
        continue;
      }
      if (PeekIdent("tokens") && PeekAhead(1).kind == DslTokKind::kLBrace) {
        Next();
        Next();
        while (Peek().kind != DslTokKind::kRBrace) {
          if (Peek().kind == DslTokKind::kEnd) {
            return Error("unterminated tokens block");
          }
          SQLPL_RETURN_IF_ERROR(ParseTokenDef(grammar.mutable_tokens()));
        }
        Next();  // consume '}'
        continue;
      }
      SQLPL_RETURN_IF_ERROR(ParseRule(&grammar));
    }
    // Default the start symbol to the first rule.
    if (grammar.start_symbol().empty() && !grammar.productions().empty()) {
      grammar.set_start_symbol(grammar.productions().front().lhs());
    }
    return grammar;
  }

  Result<TokenSet> ParseTokenFile() {
    TokenSet tokens;
    while (Peek().kind != DslTokKind::kEnd) {
      SQLPL_RETURN_IF_ERROR(ParseTokenDef(&tokens));
    }
    return tokens;
  }

 private:
  const DslTok& Peek() const { return toks_[pos_]; }
  const DslTok& PeekAhead(size_t n) const {
    size_t i = pos_ + n;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const DslTok& Next() { return toks_[pos_++]; }

  bool PeekIdent(std::string_view text) const {
    return Peek().kind == DslTokKind::kIdent && Peek().text == text;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(std::string(source_name_) + ":" +
                              Peek().loc.ToString() + ": " + message);
  }

  Status Expect(DslTokKind kind, const std::string& what) {
    if (Peek().kind != kind) {
      return Error("expected " + what + ", got '" + Peek().text + "'");
    }
    Next();
    return Status::OK();
  }

  // TOKEN_NAME = keyword "TEXT" ;   |  NAME = punct "," ;
  // IDENTIFIER = identifier ;       |  NUMBER = number ; STRING = string ;
  Status ParseTokenDef(TokenSet* tokens) {
    if (Peek().kind != DslTokKind::kIdent) {
      return Error("expected token name in tokens block");
    }
    std::string name = Next().text;
    SQLPL_RETURN_IF_ERROR(Expect(DslTokKind::kEquals, "'='"));
    if (Peek().kind != DslTokKind::kIdent) {
      return Error("expected token kind (keyword/punct/identifier/number/"
                   "string) for token '" + name + "'");
    }
    std::string kind_name = Next().text;
    TokenDef def;
    if (kind_name == "keyword" || kind_name == "punct") {
      if (Peek().kind != DslTokKind::kLiteral) {
        return Error("expected quoted text for " + kind_name + " token '" +
                     name + "'");
      }
      std::string text = Next().text;
      def = (kind_name == "keyword") ? TokenDef::Keyword(name, text)
                                     : TokenDef::Punct(name, text);
    } else if (kind_name == "identifier") {
      def = TokenDef::Identifier(name);
    } else if (kind_name == "number") {
      def = TokenDef::Number(name);
    } else if (kind_name == "string") {
      def = TokenDef::String(name);
    } else {
      return Error("unknown token kind '" + kind_name + "'");
    }
    SQLPL_RETURN_IF_ERROR(Expect(DslTokKind::kSemi, "';'"));
    return tokens->Add(std::move(def));
  }

  // rule : alternatives ;
  Status ParseRule(Grammar* grammar) {
    if (Peek().kind != DslTokKind::kIdent) {
      return Error("expected rule name, got '" + Peek().text + "'");
    }
    std::string lhs = Next().text;
    SQLPL_RETURN_IF_ERROR(Expect(DslTokKind::kColon, "':'"));
    while (true) {
      std::string label;
      if (Peek().kind == DslTokKind::kIdent &&
          PeekAhead(1).kind == DslTokKind::kEquals) {
        label = Next().text;
        Next();  // consume '='
      }
      SQLPL_ASSIGN_OR_RETURN(Expr body, ParseSequence(grammar));
      grammar->AddRule(lhs, std::move(body), std::move(label));
      if (Peek().kind == DslTokKind::kPipe) {
        Next();
        continue;
      }
      break;
    }
    return Expect(DslTokKind::kSemi, "';'");
  }

  // sequence := element*   (stops at | ; ] ) end)
  Result<Expr> ParseSequence(Grammar* grammar) {
    std::vector<Expr> elements;
    while (true) {
      DslTokKind k = Peek().kind;
      if (k == DslTokKind::kPipe || k == DslTokKind::kSemi ||
          k == DslTokKind::kRBracket || k == DslTokKind::kRParen ||
          k == DslTokKind::kEnd) {
        break;
      }
      SQLPL_ASSIGN_OR_RETURN(Expr element, ParseElement(grammar));
      elements.push_back(std::move(element));
    }
    return Expr::Seq(std::move(elements));
  }

  // element := primary ('*' | '+' | '?')?
  Result<Expr> ParseElement(Grammar* grammar) {
    SQLPL_ASSIGN_OR_RETURN(Expr primary, ParsePrimary(grammar));
    switch (Peek().kind) {
      case DslTokKind::kStar:
        Next();
        return Expr::Star(std::move(primary));
      case DslTokKind::kPlus:
        Next();
        return Expr::Plus(std::move(primary));
      case DslTokKind::kQuestion:
        Next();
        return Expr::Opt(std::move(primary));
      default:
        return primary;
    }
  }

  // primary := IDENT | LITERAL | '[' alternatives ']' | '(' alternatives ')'
  Result<Expr> ParsePrimary(Grammar* grammar) {
    const DslTok& tok = Peek();
    switch (tok.kind) {
      case DslTokKind::kIdent: {
        std::string name = Next().text;
        if (LooksLikeTerminalName(name)) return Expr::Tok(std::move(name));
        return Expr::NT(std::move(name));
      }
      case DslTokKind::kLiteral: {
        std::string text = Next().text;
        return InternLiteral(text, grammar);
      }
      case DslTokKind::kLBracket: {
        Next();
        SQLPL_ASSIGN_OR_RETURN(Expr inner, ParseAlternatives(grammar));
        SQLPL_RETURN_IF_ERROR(Expect(DslTokKind::kRBracket, "']'"));
        return Expr::Opt(std::move(inner));
      }
      case DslTokKind::kLParen: {
        Next();
        SQLPL_ASSIGN_OR_RETURN(Expr inner, ParseAlternatives(grammar));
        SQLPL_RETURN_IF_ERROR(Expect(DslTokKind::kRParen, "')'"));
        return inner;
      }
      default:
        return Error("expected grammar element, got '" + tok.text + "'");
    }
  }

  // alternatives := sequence ('|' sequence)*
  Result<Expr> ParseAlternatives(Grammar* grammar) {
    std::vector<Expr> branches;
    while (true) {
      SQLPL_ASSIGN_OR_RETURN(Expr branch, ParseSequence(grammar));
      branches.push_back(std::move(branch));
      if (Peek().kind == DslTokKind::kPipe) {
        Next();
        continue;
      }
      break;
    }
    return Expr::Alt(std::move(branches));
  }

  // Auto-registers a token for an inline literal and returns the token ref.
  Result<Expr> InternLiteral(const std::string& text, Grammar* grammar) {
    bool alpha = !text.empty() && IsIdentStart(text[0]);
    if (alpha) {
      TokenDef def = TokenDef::Keyword(text);
      std::string name = def.name;
      SQLPL_RETURN_IF_ERROR(grammar->mutable_tokens()->Add(std::move(def)));
      return Expr::Tok(std::move(name));
    }
    SQLPL_ASSIGN_OR_RETURN(std::string name, PunctTokenName(text));
    SQLPL_RETURN_IF_ERROR(
        grammar->mutable_tokens()->Add(TokenDef::Punct(name, text)));
    return Expr::Tok(std::move(name));
  }

  std::vector<DslTok> toks_;
  std::string_view source_name_;
  size_t pos_ = 0;
};

}  // namespace

Result<Grammar> ParseGrammarText(std::string_view text,
                                 std::string_view source_name) {
  DslLexer lexer(text, source_name);
  SQLPL_ASSIGN_OR_RETURN(std::vector<DslTok> toks, lexer.Tokenize());
  DslParser parser(std::move(toks), source_name);
  return parser.ParseGrammar();
}

Result<TokenSet> ParseTokenFileText(std::string_view text,
                                    std::string_view source_name) {
  DslLexer lexer(text, source_name);
  SQLPL_ASSIGN_OR_RETURN(std::vector<DslTok> toks, lexer.Tokenize());
  DslParser parser(std::move(toks), source_name);
  return parser.ParseTokenFile();
}

Result<std::string> PunctTokenName(std::string_view text) {
  static constexpr std::array<std::pair<std::string_view, std::string_view>,
                              24>
      kNames = {{
          {",", "COMMA"},     {"(", "LPAREN"},   {")", "RPAREN"},
          {".", "DOT"},       {"*", "ASTERISK"}, {"=", "EQ"},
          {"<>", "NEQ"},      {"!=", "BANG_NEQ"},{"<", "LT"},
          {">", "GT"},        {"<=", "LE"},      {">=", "GE"},
          {"+", "PLUS"},      {"-", "MINUS"},    {"/", "SLASH"},
          {";", "SEMI"},      {"||", "CONCAT"},  {"?", "QMARK"},
          {":", "COLON"},     {"[", "LBRACKET"}, {"]", "RBRACKET"},
          {"..", "DOTDOT"},   {"%", "PERCENT"},  {"'", "QUOTE"},
      }};
  for (const auto& [punct, name] : kNames) {
    if (punct == text) return std::string(name);
  }
  return Status::InvalidArgument("no canonical token name for punctuation '" +
                                 std::string(text) + "'");
}

}  // namespace sqlpl
