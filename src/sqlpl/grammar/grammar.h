#ifndef SQLPL_GRAMMAR_GRAMMAR_H_
#define SQLPL_GRAMMAR_GRAMMAR_H_

#include <map>
#include <string>
#include <vector>

#include "sqlpl/grammar/production.h"
#include "sqlpl/grammar/token_set.h"
#include "sqlpl/util/diagnostics.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// An LL(k) context-free grammar: a named collection of production rules
/// with a start symbol and the token set the rules reference. Sub-grammars
/// (one per feature) and composed grammars are both represented by this
/// type; composition never needs a distinct "extension grammar" class.
class Grammar {
 public:
  Grammar() = default;
  explicit Grammar(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::string& start_symbol() const { return start_symbol_; }
  void set_start_symbol(std::string start) { start_symbol_ = std::move(start); }

  const TokenSet& tokens() const { return tokens_; }
  TokenSet* mutable_tokens() { return &tokens_; }

  /// Names of grammars this grammar imports (Bali: "A Bali grammar can
  /// import definitions for nonterminals from other grammars"). Imports
  /// are resolved by `ResolveImports` before the grammar is used.
  const std::vector<std::string>& imports() const { return imports_; }
  void AddImport(std::string name) { imports_.push_back(std::move(name)); }

  const std::vector<Production>& productions() const { return productions_; }

  /// Adds a whole production. Fails with `kAlreadyExists` if a production
  /// for the same nonterminal exists (use `AddRule` to extend one).
  Status AddProduction(Production production);

  /// Adds `body` as an alternative of `lhs`, creating the production if
  /// needed. Structurally identical duplicates are ignored.
  void AddRule(const std::string& lhs, Expr body, std::string label = "");

  /// Replaces the production for `lhs`; fails if absent.
  Status ReplaceProduction(Production production);

  /// Removes the production for `lhs`; fails if absent.
  Status RemoveProduction(const std::string& lhs);

  bool HasProduction(const std::string& lhs) const;
  /// Returns the production for `lhs`, or nullptr.
  const Production* Find(const std::string& lhs) const;
  Production* FindMutable(const std::string& lhs);

  /// Names of all defined nonterminals, in definition order.
  std::vector<std::string> NonterminalNames() const;

  size_t NumProductions() const { return productions_.size(); }
  /// Total number of alternatives across all productions — the paper's
  /// rough measure of grammar size.
  size_t NumAlternatives() const;

  /// Structural well-formedness checks: a start symbol is set and defined,
  /// every referenced nonterminal has a production, every referenced token
  /// is in the token set, and every production is reachable from the start
  /// symbol (unreachable ones are warnings). Returns a parse/validation
  /// error if `diagnostics` collected any error.
  Status Validate(DiagnosticCollector* diagnostics) const;

  /// Renders the grammar DSL (`grammar N; start s; tokens {...} rules...`).
  std::string ToString() const;

  bool operator==(const Grammar& other) const {
    return name_ == other.name_ && start_symbol_ == other.start_symbol_ &&
           tokens_ == other.tokens_ && imports_ == other.imports_ &&
           productions_ == other.productions_;
  }

 private:
  std::string name_;
  std::string start_symbol_;
  TokenSet tokens_;
  std::vector<std::string> imports_;
  std::vector<Production> productions_;
  std::map<std::string, size_t> index_;  // lhs -> index into productions_
};

}  // namespace sqlpl

#endif  // SQLPL_GRAMMAR_GRAMMAR_H_
