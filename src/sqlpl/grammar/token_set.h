#ifndef SQLPL_GRAMMAR_TOKEN_SET_H_
#define SQLPL_GRAMMAR_TOKEN_SET_H_

#include <map>
#include <string>
#include <vector>

#include "sqlpl/util/status.h"

namespace sqlpl {

/// How a token's lexeme is recognized.
enum class TokenPatternKind {
  /// A case-insensitive reserved word, e.g. `SELECT`.
  kKeyword,
  /// A fixed operator or punctuation string, e.g. `<>` or `,`.
  kPunctuation,
  /// A regular identifier (`[A-Za-z_][A-Za-z0-9_$]*`) or a delimited
  /// identifier (`"name"`). At most one identifier-class token per set.
  kIdentifierClass,
  /// Numeric literal (integer or decimal with optional exponent).
  kNumberClass,
  /// Character string literal (`'...'` with `''` escaping).
  kStringClass,
};

const char* TokenPatternKindToString(TokenPatternKind kind);

/// Definition of one terminal: a name (as referenced from grammar
/// expressions) plus the pattern that recognizes it. The paper keeps "a
/// file containing various tokens used in the grammar" next to each
/// sub-grammar; `TokenSet` is the in-memory form of such a file.
struct TokenDef {
  std::string name;
  TokenPatternKind kind = TokenPatternKind::kKeyword;
  /// Keyword or punctuation text; empty for class tokens.
  std::string text;

  static TokenDef Keyword(std::string name, std::string text);
  /// Keyword whose token name equals its text (the common case).
  static TokenDef Keyword(std::string text);
  static TokenDef Punct(std::string name, std::string text);
  static TokenDef Identifier(std::string name = "IDENTIFIER");
  static TokenDef Number(std::string name = "NUMBER");
  static TokenDef String(std::string name = "STRING");

  bool operator==(const TokenDef&) const = default;

  /// Renders one token-file line, e.g. `SELECT = keyword "SELECT";`.
  std::string ToString() const;
};

/// A named collection of token definitions — the in-memory equivalent of
/// the paper's per-feature token files. Lookup is by token name;
/// iteration order is deterministic (sorted by name).
class TokenSet {
 public:
  TokenSet() = default;

  /// Adds a definition. Fails with `kAlreadyExists` if a *different*
  /// definition with the same name is present; re-adding an identical
  /// definition is a no-op (token files for related features overlap).
  Status Add(TokenDef def);

  /// Adds a definition, aborting on conflict. For static tables whose
  /// consistency is established by tests.
  void AddOrDie(TokenDef def);

  bool Contains(const std::string& name) const;
  /// Returns the definition or nullptr.
  const TokenDef* Find(const std::string& name) const;

  size_t size() const { return defs_.size(); }
  bool empty() const { return defs_.empty(); }

  /// All definitions, sorted by token name.
  std::vector<TokenDef> ToVector() const;

  /// All keyword texts (uppercased), sorted — what a lexer must reserve.
  std::vector<std::string> KeywordTexts() const;

  /// Renders the token-file format (one `ToString()` line per token).
  std::string ToString() const;

  bool operator==(const TokenSet&) const = default;

 private:
  std::map<std::string, TokenDef> defs_;
};

}  // namespace sqlpl

#endif  // SQLPL_GRAMMAR_TOKEN_SET_H_
