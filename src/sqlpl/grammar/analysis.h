#ifndef SQLPL_GRAMMAR_ANALYSIS_H_
#define SQLPL_GRAMMAR_ANALYSIS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sqlpl/grammar/grammar.h"

namespace sqlpl {

/// Pseudo-token denoting end of input in FOLLOW sets.
inline constexpr const char* kEndOfInputToken = "$";

/// A place where a single token of lookahead cannot decide how to proceed
/// — either two alternatives of a production overlap, or an optional /
/// repetition overlaps with what may follow it. The runtime parser
/// resolves such spots with ordered choice plus bounded backtracking
/// (ANTLR-style syntactic predicates); the analysis reports them so that
/// grammar authors can see where LL(1) is insufficient.
struct Ll1Conflict {
  std::string nonterminal;
  std::string description;
  std::set<std::string> tokens;

  std::string ToString() const;
};

/// Classic predictive-parsing analysis (nullable / FIRST / FOLLOW, left
/// recursion, LL(1) conflicts) over the expression-tree grammar IR.
/// Computed once per composed grammar and shared by the runtime parser
/// and the code generator.
class GrammarAnalysis {
 public:
  /// Runs the fixpoint computations. The grammar must be structurally
  /// valid (`Grammar::Validate`); undefined nonterminals yield
  /// `kFailedPrecondition`.
  static Result<GrammarAnalysis> Analyze(const Grammar& grammar);

  /// True if the nonterminal derives the empty string.
  bool IsNullable(const std::string& nonterminal) const;
  /// True if `expr` can derive the empty string.
  bool ExprNullable(const Expr& expr) const;

  /// FIRST set of a nonterminal: token names that can begin its
  /// derivations.
  const std::set<std::string>& First(const std::string& nonterminal) const;
  /// FIRST set of an arbitrary expression in this grammar's context.
  std::set<std::string> FirstOf(const Expr& expr) const;

  /// FOLLOW set of a nonterminal (may contain `kEndOfInputToken`).
  const std::set<std::string>& Follow(const std::string& nonterminal) const;

  /// Nonterminals participating in a left-recursive cycle. LL parsing
  /// requires this to be empty.
  const std::vector<std::string>& left_recursive() const {
    return left_recursive_;
  }
  bool HasLeftRecursion() const { return !left_recursive_.empty(); }

  /// All detected LL(1) prediction conflicts.
  const std::vector<Ll1Conflict>& conflicts() const { return conflicts_; }

 private:
  GrammarAnalysis() = default;

  void ComputeNullable(const Grammar& grammar);
  void ComputeFirst(const Grammar& grammar);
  void ComputeFollow(const Grammar& grammar);
  void DetectLeftRecursion(const Grammar& grammar);
  void DetectConflicts(const Grammar& grammar);

  // Adds FOLLOW contributions of `expr` given the concrete set of tokens
  // that can follow it; returns true if any FOLLOW set changed.
  bool VisitFollow(const Expr& expr, const std::set<std::string>& ctx);

  // Walks `expr` recording optional/repetition/choice conflicts; `ctx` is
  // the concrete follow context of `expr` within production `lhs`.
  void VisitConflicts(const std::string& lhs, const Expr& expr,
                      const std::set<std::string>& ctx);

  std::map<std::string, bool> nullable_;
  std::map<std::string, std::set<std::string>> first_;
  std::map<std::string, std::set<std::string>> follow_;
  std::vector<std::string> left_recursive_;
  std::vector<Ll1Conflict> conflicts_;
  std::set<std::string> empty_set_;
};

}  // namespace sqlpl

#endif  // SQLPL_GRAMMAR_ANALYSIS_H_
