#include "sqlpl/grammar/token_set.h"

#include <cstdlib>

#include "sqlpl/util/strings.h"

namespace sqlpl {

const char* TokenPatternKindToString(TokenPatternKind kind) {
  switch (kind) {
    case TokenPatternKind::kKeyword:
      return "keyword";
    case TokenPatternKind::kPunctuation:
      return "punct";
    case TokenPatternKind::kIdentifierClass:
      return "identifier";
    case TokenPatternKind::kNumberClass:
      return "number";
    case TokenPatternKind::kStringClass:
      return "string";
  }
  return "unknown";
}

TokenDef TokenDef::Keyword(std::string name, std::string text) {
  return {std::move(name), TokenPatternKind::kKeyword,
          AsciiStrToUpper(text)};
}

TokenDef TokenDef::Keyword(std::string text) {
  std::string upper = AsciiStrToUpper(text);
  return {upper, TokenPatternKind::kKeyword, upper};
}

TokenDef TokenDef::Punct(std::string name, std::string text) {
  return {std::move(name), TokenPatternKind::kPunctuation, std::move(text)};
}

TokenDef TokenDef::Identifier(std::string name) {
  return {std::move(name), TokenPatternKind::kIdentifierClass, ""};
}

TokenDef TokenDef::Number(std::string name) {
  return {std::move(name), TokenPatternKind::kNumberClass, ""};
}

TokenDef TokenDef::String(std::string name) {
  return {std::move(name), TokenPatternKind::kStringClass, ""};
}

std::string TokenDef::ToString() const {
  std::string out = name;
  out += " = ";
  out += TokenPatternKindToString(kind);
  if (!text.empty()) {
    out += " \"";
    out += text;
    out += '"';
  }
  out += ';';
  return out;
}

Status TokenSet::Add(TokenDef def) {
  auto it = defs_.find(def.name);
  if (it != defs_.end()) {
    if (it->second == def) return Status::OK();
    return Status::AlreadyExists("conflicting definitions for token '" +
                                 def.name + "': have '" +
                                 it->second.ToString() + "', adding '" +
                                 def.ToString() + "'");
  }
  defs_.emplace(def.name, std::move(def));
  return Status::OK();
}

void TokenSet::AddOrDie(TokenDef def) {
  Status status = Add(std::move(def));
  if (!status.ok()) {
    // Static token tables are program constants; a conflict is a bug.
    std::abort();
  }
}

bool TokenSet::Contains(const std::string& name) const {
  return defs_.contains(name);
}

const TokenDef* TokenSet::Find(const std::string& name) const {
  auto it = defs_.find(name);
  return it == defs_.end() ? nullptr : &it->second;
}

std::vector<TokenDef> TokenSet::ToVector() const {
  std::vector<TokenDef> out;
  out.reserve(defs_.size());
  for (const auto& [name, def] : defs_) out.push_back(def);
  return out;
}

std::vector<std::string> TokenSet::KeywordTexts() const {
  std::vector<std::string> out;
  for (const auto& [name, def] : defs_) {
    if (def.kind == TokenPatternKind::kKeyword) out.push_back(def.text);
  }
  return out;
}

std::string TokenSet::ToString() const {
  std::string out;
  for (const auto& [name, def] : defs_) {
    out += def.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace sqlpl
