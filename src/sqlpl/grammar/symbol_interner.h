#ifndef SQLPL_GRAMMAR_SYMBOL_INTERNER_H_
#define SQLPL_GRAMMAR_SYMBOL_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sqlpl {

/// Dense integer handle for an interned grammar symbol name (token type,
/// nonterminal, or alternative label). Ids are assigned contiguously from
/// 0 in interning order, so they index directly into flat per-symbol
/// tables (compiled productions, FIRST-set pools).
using SymbolId = uint32_t;

/// Sentinel for "no symbol" / lookup miss. Never a valid id.
inline constexpr SymbolId kInvalidSymbolId = 0xFFFFFFFFu;

/// Id of the end-of-input pseudo-token `$`. Every interner pre-interns
/// `$` first, so the id is a compile-time constant across all grammars.
inline constexpr SymbolId kEndOfInputId = 0;

/// String ↔ dense `SymbolId` bijection for one composed grammar — built
/// once at `BuildParser` time and shared (read-only) by the lexer, the
/// parser's compiled dispatch tables, and the arena→`ParseNode`
/// conversion. Interning the symbol alphabet turns the per-token string
/// hashing and per-prediction `std::set<std::string>` probes of the old
/// hot path into integer compares.
///
/// Lookup is a flat open-addressing probe (FNV-1a, power-of-two table,
/// linear probing): `Find` performs no allocation, which is what the
/// zero-copy tokenize path relies on.
///
/// Thread-safety: `Intern` mutates and must stay confined to the build
/// step; once the owning parser is published, the interner is immutable
/// and any number of threads may `Find`/`NameOf` concurrently.
class SymbolInterner {
 public:
  SymbolInterner();

  /// Returns the existing id for `name` or assigns the next dense one.
  SymbolId Intern(std::string_view name);

  /// Returns the id for `name`, or `kInvalidSymbolId` if never interned.
  /// Never allocates.
  SymbolId Find(std::string_view name) const;

  bool Contains(std::string_view name) const {
    return Find(name) != kInvalidSymbolId;
  }

  /// The interned spelling of `id`. `id` must be valid (`id < size()`).
  std::string_view NameOf(SymbolId id) const { return names_[id]; }

  /// Number of interned symbols; valid ids are exactly [0, size()).
  size_t size() const { return names_.size(); }

 private:
  void Rehash(size_t new_capacity);

  // Dense id -> spelling. The strings are stable: vector growth moves
  // the `std::string` objects but not their heap buffers, so
  // `string_view`s handed out by `NameOf` remain valid for the
  // interner's lifetime (small-string-optimized names are re-read
  // through `names_`, never cached across an `Intern`).
  std::vector<std::string> names_;
  // Open-addressing probe table of ids; kInvalidSymbolId marks empty.
  std::vector<SymbolId> table_;
  size_t mask_ = 0;
};

}  // namespace sqlpl

#endif  // SQLPL_GRAMMAR_SYMBOL_INTERNER_H_
