#include "sqlpl/grammar/symbol_interner.h"

namespace sqlpl {

namespace {

constexpr size_t kInitialCapacity = 64;  // power of two

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

SymbolInterner::SymbolInterner() {
  Rehash(kInitialCapacity);
  Intern("$");  // kEndOfInputId == 0 by construction
}

void SymbolInterner::Rehash(size_t new_capacity) {
  table_.assign(new_capacity, kInvalidSymbolId);
  mask_ = new_capacity - 1;
  for (SymbolId id = 0; id < names_.size(); ++id) {
    size_t slot = Fnv1a(names_[id]) & mask_;
    while (table_[slot] != kInvalidSymbolId) slot = (slot + 1) & mask_;
    table_[slot] = id;
  }
}

SymbolId SymbolInterner::Intern(std::string_view name) {
  // Keep the probe table at most half full.
  if ((names_.size() + 1) * 2 > table_.size()) Rehash(table_.size() * 2);
  size_t slot = Fnv1a(name) & mask_;
  while (table_[slot] != kInvalidSymbolId) {
    if (names_[table_[slot]] == name) return table_[slot];
    slot = (slot + 1) & mask_;
  }
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  table_[slot] = id;
  return id;
}

SymbolId SymbolInterner::Find(std::string_view name) const {
  size_t slot = Fnv1a(name) & mask_;
  while (table_[slot] != kInvalidSymbolId) {
    if (names_[table_[slot]] == name) return table_[slot];
    slot = (slot + 1) & mask_;
  }
  return kInvalidSymbolId;
}

}  // namespace sqlpl
