#ifndef SQLPL_GRAMMAR_TEXT_FORMAT_H_
#define SQLPL_GRAMMAR_TEXT_FORMAT_H_

#include <string>
#include <string_view>

#include "sqlpl/grammar/grammar.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// Parses the sub-grammar DSL. The format mirrors the files the paper
/// keeps per feature — a grammar plus its token file — in one document:
///
/// ```
/// grammar QuerySpecification;
/// start query_specification;
/// tokens {
///   SELECT = keyword "SELECT";
///   COMMA  = punct ",";
///   IDENTIFIER = identifier;
/// }
/// query_specification
///   : SELECT [ set_quantifier ] select_list table_expression
///   ;
/// set_quantifier : DISTINCT | ALL ;
/// ```
///
/// RHS notation: juxtaposition = sequence, `|` = choice, `[ x ]` = optional
/// (also `x?`), `( x )` = grouping, `x*` / `x+` = repetition, inline
/// `'SELECT'` / `','` literals auto-register keyword / punctuation tokens.
/// `lhs : ;` defines an epsilon rule. Alternatives may carry Bali-style
/// labels (`label = elements`). Comments: `//` and `/* ... */`.
Result<Grammar> ParseGrammarText(std::string_view text,
                                 std::string_view source_name = "<string>");

/// Parses a standalone token file (the body of a `tokens { ... }` block).
Result<TokenSet> ParseTokenFileText(
    std::string_view text, std::string_view source_name = "<string>");

/// Canonical token name for a punctuation text, e.g. "," -> "COMMA",
/// "<=" -> "LE". Fails for unknown punctuation.
Result<std::string> PunctTokenName(std::string_view text);

}  // namespace sqlpl

#endif  // SQLPL_GRAMMAR_TEXT_FORMAT_H_
