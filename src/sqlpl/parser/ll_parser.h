#ifndef SQLPL_PARSER_LL_PARSER_H_
#define SQLPL_PARSER_LL_PARSER_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sqlpl/grammar/analysis.h"
#include "sqlpl/grammar/grammar.h"
#include "sqlpl/lexer/lexer.h"
#include "sqlpl/parser/parse_tree.h"
#include "sqlpl/util/cancellation.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// A semantic predicate (§4 of the paper lists ANTLR's "syntactic and
/// semantic predicates" among the disambiguation constructs): a callback
/// gating one alternative of a production. It sees the token stream and
/// the current position and returns whether the alternative may be
/// attempted. Predicates must be pure (no side effects) — the engine may
/// probe and backtrack.
using SemanticPredicate =
    std::function<bool(const std::vector<Token>& tokens, size_t pos)>;

/// A runtime LL(k) parser interpreting a composed grammar — the
/// "generated parser" of the paper, realized as a table-free predictive
/// recursive-descent engine so that freshly composed grammars parse
/// without a compile step. Prediction uses the grammar's FIRST/FOLLOW
/// analysis; where one token of lookahead cannot decide (the analysis'
/// LL(1) conflicts), alternatives are tried in order with backtracking,
/// which is the role ANTLR's syntactic predicates play for the authors.
///
/// Construct through `ParserBuilder`, which validates the grammar
/// (undefined symbols, left recursion) before parsing is allowed.
///
/// Thread-safety contract (relied on by the parser service in
/// sqlpl/service/, which shares one instance across request threads):
///
///  - A built `LlParser` is immutable: `ParseText`, `Parse`, and
///    `Accepts` are `const`, keep all per-parse state in a stack-local
///    `ParseContext`, and only read the grammar, analysis, lexer,
///    prediction cache, and predicate map. Any number of threads may
///    parse on the same instance concurrently.
///  - `AttachPredicate` is the one mutator. Attach predicates while the
///    parser is still thread-private (construction/setup); calling it
///    concurrently with parses is a data race. Predicates themselves
///    must be pure and thread-safe — they run on parsing threads.
///  - Moving the parser transfers ownership and is, as usual, not
///    synchronized.
class LlParser {
 public:
  /// Lexes `sql` with the dialect's composed token set and parses it.
  /// The whole input must be consumed (up to end-of-input).
  Result<ParseNode> ParseText(std::string_view sql) const;

  /// Parses an already-lexed stream; `tokens` must end with the `$`
  /// end-of-input token.
  Result<ParseNode> Parse(const std::vector<Token>& tokens) const;

  /// Lifecycle-aware overloads (the serving path): the parse loops hit
  /// cooperative checkpoints — the cancel token on every nonterminal
  /// entry and repetition iteration (one relaxed atomic load), the
  /// deadline every `kLifecycleCheckStride`-th checkpoint (amortizing
  /// the clock read). A triggered checkpoint unwinds promptly and the
  /// parse returns `kCancelled` / `kDeadlineExceeded`. With a
  /// default-constructed (unrestricted) control the overloads cost one
  /// extra branch per checkpoint. Tokenizing is not checkpointed — it
  /// is a single linear scan.
  Result<ParseNode> ParseText(std::string_view sql,
                              const RequestControl& control) const;
  Result<ParseNode> Parse(const std::vector<Token>& tokens,
                          const RequestControl& control) const;

  /// Checkpoints between deadline (clock-read) checks; cancellation is
  /// checked at every checkpoint.
  static constexpr size_t kLifecycleCheckStride = 16;

  /// True iff `sql` is a sentence of this dialect.
  bool Accepts(std::string_view sql) const;

  const Grammar& grammar() const { return grammar_; }
  const GrammarAnalysis& analysis() const { return analysis_; }
  const Lexer& lexer() const { return lexer_; }

  /// Attaches a semantic predicate to alternative `alt_index` of
  /// `nonterminal`: the alternative is only attempted when the predicate
  /// holds at the current position. Fails if the production or index
  /// does not exist.
  Status AttachPredicate(const std::string& nonterminal, size_t alt_index,
                         SemanticPredicate predicate);
  size_t NumPredicates() const { return predicates_.size(); }

  /// The parser owns its grammar and per-node prediction cache; the
  /// cache holds pointers into the grammar, so the parser is move-only.
  LlParser(const LlParser&) = delete;
  LlParser& operator=(const LlParser&) = delete;
  LlParser(LlParser&&) = default;
  LlParser& operator=(LlParser&&) = default;

 private:
  friend class ParserBuilder;

  // Precomputed prediction data for one grammar expression node.
  struct Predict {
    bool nullable = false;
    std::set<std::string> first;
  };

  LlParser(Grammar grammar, GrammarAnalysis analysis, Lexer lexer,
           bool prune_with_first_sets);

  // Fills predict_ for `expr` and all of its descendants.
  void CachePredict(const Expr& expr);

  // Recursive-descent matching. Each Match* either succeeds — consuming
  // tokens from `*pos` and appending nodes to `out` — or fails leaving
  // `*pos`/`out` as they were, after recording the furthest failure.
  struct ParseContext {
    const std::vector<Token>* tokens = nullptr;
    // Furthest failure, for error reporting.
    size_t furthest_pos = 0;
    std::set<std::string> expected;
    // Recursion guard.
    size_t depth = 0;
    // Lifecycle: null for the unrestricted overloads. Once `aborted` is
    // non-OK every Match* returns false immediately and the parse
    // surfaces `aborted` instead of a syntax error.
    const RequestControl* control = nullptr;
    size_t checks_until_deadline = kLifecycleCheckStride;
    Status aborted;
  };

  // False when the parse must stop (cancelled / past deadline); records
  // the reason in `ctx->aborted` on first detection.
  bool LifecycleOk(ParseContext* ctx) const;

  bool MatchExpr(const Expr& expr, ParseContext* ctx, size_t* pos,
                 std::vector<ParseNode>* out) const;
  bool MatchNonterminal(const std::string& name, ParseContext* ctx,
                        size_t* pos, std::vector<ParseNode>* out) const;
  void RecordFailure(ParseContext* ctx, size_t pos,
                     const std::string& expected_token) const;

  Grammar grammar_;
  GrammarAnalysis analysis_;
  Lexer lexer_;
  // Prediction cache keyed by expression node. Pointers stay valid under
  // moves (vector buffers transfer wholesale) — hence move-only above.
  std::unordered_map<const Expr*, Predict> predict_;
  // Semantic predicates keyed by (nonterminal, alternative index).
  std::map<std::pair<std::string, size_t>, SemanticPredicate> predicates_;
  // When false, alternatives are tried by pure ordered-choice
  // backtracking without FIRST-set pruning (ablation mode).
  bool prune_with_first_sets_ = true;
};

/// Validates and analyzes a grammar, producing an `LlParser`. This is the
/// step the paper delegates to the ANTLR parser generator.
class ParserBuilder {
 public:
  /// When true, LL(1) prediction conflicts reject the grammar instead of
  /// falling back to ordered-choice backtracking. Default false.
  ParserBuilder& set_reject_conflicts(bool reject) {
    reject_conflicts_ = reject;
    return *this;
  }

  /// Ablation knob: when true, the built parser skips FIRST-set pruning
  /// and relies purely on ordered-choice backtracking. Same language,
  /// more wasted attempts — see bench_ablation. Default false.
  ParserBuilder& set_disable_first_pruning(bool disable) {
    disable_first_pruning_ = disable;
    return *this;
  }

  /// Builds a parser for `grammar`: structural validation, FIRST/FOLLOW
  /// analysis, left-recursion rejection, lexer construction.
  Result<LlParser> Build(const Grammar& grammar) const;

 private:
  bool reject_conflicts_ = false;
  bool disable_first_pruning_ = false;
};

}  // namespace sqlpl

#endif  // SQLPL_PARSER_LL_PARSER_H_
