#ifndef SQLPL_PARSER_LL_PARSER_H_
#define SQLPL_PARSER_LL_PARSER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sqlpl/grammar/analysis.h"
#include "sqlpl/grammar/grammar.h"
#include "sqlpl/grammar/symbol_interner.h"
#include "sqlpl/lexer/lexer.h"
#include "sqlpl/lexer/token_stream.h"
#include "sqlpl/parser/arena_tree.h"
#include "sqlpl/parser/parse_tree.h"
#include "sqlpl/util/cancellation.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// A semantic predicate (§4 of the paper lists ANTLR's "syntactic and
/// semantic predicates" among the disambiguation constructs): a callback
/// gating one alternative of a production. It sees the token stream and
/// the current position and returns whether the alternative may be
/// attempted. Predicates must be pure (no side effects) — the engine may
/// probe and backtrack.
///
/// Predicates see the legacy owning `Token` form. A parser with
/// predicates attached materializes that view once per parse; a parser
/// without predicates never does.
using SemanticPredicate =
    std::function<bool(const std::vector<Token>& tokens, size_t pos)>;

/// Per-parse statistics surfaced by the stats-taking `ParseText`
/// overload — the parser service's feed for throughput metrics.
struct ParseStats {
  /// Tokens the lexer produced, excluding the end-of-input marker.
  size_t tokens = 0;
  /// Bytes of arena storage the parse consumed (nodes, child spans, and
  /// backtracked garbage).
  size_t arena_bytes = 0;
};

/// A runtime LL(k) parser interpreting a composed grammar — the
/// "generated parser" of the paper, realized as a table-free predictive
/// recursive-descent engine so that freshly composed grammars parse
/// without a compile step. Prediction uses the grammar's FIRST/FOLLOW
/// analysis; where one token of lookahead cannot decide (the analysis'
/// LL(1) conflicts), alternatives are tried in order with backtracking,
/// which is the role ANTLR's syntactic predicates play for the authors.
///
/// Construct through `ParserBuilder`, which validates the grammar
/// (undefined symbols, left recursion) before parsing is allowed.
///
/// ## Interned hot path
///
/// At build time the grammar is compiled into an id space shared with
/// the lexer: every token type, nonterminal, and alternative label is
/// interned to a dense `SymbolId`, and the expression tree is flattened
/// into an index-linked `CompiledExpr` pool whose FIRST sets are sorted
/// `SymbolId` spans. The parse loop therefore never hashes or compares
/// strings — lookahead dispatch is an integer binary search, nonterminal
/// lookup indexes `productions_by_id_` directly, and tree nodes are
/// bump-allocated `ArenaNode`s referencing the zero-copy token stream.
/// The string-keyed `ParseNode` API survives as a thin conversion
/// (`ArenaToParseNode`) at the end of a successful parse.
///
/// Thread-safety contract (relied on by the parser service in
/// sqlpl/service/, which shares one instance across request threads):
///
///  - A built `LlParser` is immutable: `ParseText`, `Parse`,
///    `ParseStream`, and `Accepts` are `const`, keep all per-parse state
///    in a stack-local `ParseContext`, and only read the grammar,
///    compiled tables, lexer, and predicate map. Any number of threads
///    may parse on the same instance concurrently.
///  - `AttachPredicate` is the one mutator. Attach predicates while the
///    parser is still thread-private (construction/setup); calling it
///    concurrently with parses is a data race. Predicates themselves
///    must be pure and thread-safe — they run on parsing threads.
///  - Moving the parser transfers ownership and is, as usual, not
///    synchronized.
class LlParser {
 public:
  /// Lexes `sql` with the dialect's composed token set and parses it.
  /// The whole input must be consumed (up to end-of-input).
  Result<ParseNode> ParseText(std::string_view sql) const;

  /// Parses an already-lexed stream; `tokens` must end with the `$`
  /// end-of-input token.
  Result<ParseNode> Parse(const std::vector<Token>& tokens) const;

  /// Lifecycle-aware overloads (the serving path): the parse loops hit
  /// cooperative checkpoints — the cancel token on every nonterminal
  /// entry and repetition iteration (one relaxed atomic load), the
  /// deadline every `kLifecycleCheckStride`-th checkpoint (amortizing
  /// the clock read). A triggered checkpoint unwinds promptly and the
  /// parse returns `kCancelled` / `kDeadlineExceeded`. With a
  /// default-constructed (unrestricted) control the overloads cost one
  /// extra branch per checkpoint. Tokenizing is not checkpointed — it
  /// is a single linear scan.
  Result<ParseNode> ParseText(std::string_view sql,
                              const RequestControl& control) const;
  Result<ParseNode> Parse(const std::vector<Token>& tokens,
                          const RequestControl& control) const;

  /// Serving form: fills `stats` (always, also on failure once lexing
  /// succeeded) and, when `build_tree` is false, skips the arena-to-
  /// `ParseNode` conversion and returns a childless stub rule node for
  /// the start symbol — the accept/reject answer without tree cost.
  Result<ParseNode> ParseText(std::string_view sql,
                              const RequestControl& control,
                              ParseStats* stats, bool build_tree) const;

  /// Serving form with direct rendering: on success appends the parse
  /// tree's S-expression to `*sexpr_out` straight from the native arena
  /// tree (`AppendArenaSExpr`) — byte-identical to calling the
  /// tree-building overload and `ToSExpr()` on its result, but without
  /// materializing a `ParseNode` — and returns the same childless stub
  /// as `build_tree = false`. This is the wire server's `want_tree`
  /// path: the only consumer of the tree there is the response body.
  Result<ParseNode> ParseTextRender(std::string_view sql,
                                    const RequestControl& control,
                                    ParseStats* stats,
                                    std::string* sexpr_out) const;

  /// Native fast path: parses an already-tokenized stream into `arena`
  /// and returns the root `ArenaNode`. The returned tree lives in
  /// `arena` and references `stream` (see ArenaNode's lifetime notes).
  /// Reusing one stream + arena pair across calls (Clear/Reset between
  /// them) parses in steady state without a single heap allocation in
  /// lexer or tree construction.
  Result<const ArenaNode*> ParseStream(const TokenStream& stream,
                                       ParseArena* arena) const;
  Result<const ArenaNode*> ParseStream(const TokenStream& stream,
                                       ParseArena* arena,
                                       const RequestControl& control) const;

  /// Checkpoints between deadline (clock-read) checks; cancellation is
  /// checked at every checkpoint.
  static constexpr size_t kLifecycleCheckStride = 16;

  /// True iff `sql` is a sentence of this dialect.
  bool Accepts(std::string_view sql) const;

  const Grammar& grammar() const { return grammar_; }
  const GrammarAnalysis& analysis() const { return analysis_; }
  const Lexer& lexer() const { return lexer_; }
  /// The symbol namespace shared by this parser and its lexer.
  const SymbolInterner& interner() const { return *interner_; }

  /// Attaches a semantic predicate to alternative `alt_index` of
  /// `nonterminal`: the alternative is only attempted when the predicate
  /// holds at the current position. Fails if the production or index
  /// does not exist.
  Status AttachPredicate(const std::string& nonterminal, size_t alt_index,
                         SemanticPredicate predicate);
  size_t NumPredicates() const { return predicates_.size(); }

  /// The parser owns its grammar and compiled dispatch tables. The
  /// tables are index-linked (no interior pointers), but the parser
  /// stays move-only: copying a parser is never what callers mean.
  LlParser(const LlParser&) = delete;
  LlParser& operator=(const LlParser&) = delete;
  LlParser(LlParser&&) = default;
  LlParser& operator=(LlParser&&) = default;

 private:
  friend class ParserBuilder;

  // One grammar expression node, flattened: children and FIRST sets are
  // [begin, end) spans into the shared pools, symbols are interned ids.
  struct CompiledExpr {
    ExprKind kind = ExprKind::kSequence;
    bool nullable = false;
    SymbolId symbol = kInvalidSymbolId;   // kToken / kNonterminal only
    uint32_t children_begin = 0;          // span into child_pool_
    uint32_t children_end = 0;
    uint32_t first_begin = 0;             // span into first_pool_ (sorted)
    uint32_t first_end = 0;
  };

  struct CompiledAlt {
    uint32_t body = 0;                    // index into exprs_
    SymbolId label = kInvalidSymbolId;
  };

  struct CompiledProduction {
    SymbolId lhs = kInvalidSymbolId;
    uint32_t alts_begin = 0;              // span into alternatives_
    uint32_t alts_end = 0;
  };

  static constexpr uint32_t kNoProduction = 0xFFFFFFFFu;

  LlParser(Grammar grammar, GrammarAnalysis analysis, Lexer lexer,
           std::shared_ptr<SymbolInterner> interner,
           bool prune_with_first_sets);

  // Grammar-to-id-space compilation (build time, single-threaded).
  void Compile();
  uint32_t CompileExpr(const Expr& expr);

  // Recursive-descent matching over the compiled tables. Each Match*
  // either succeeds — consuming tokens from `*pos` and pushing nodes
  // onto the scratch stack — or fails leaving `*pos` and the stack as
  // they were, after recording the furthest failure.
  struct ParseContext {
    const LexedToken* tokens = nullptr;
    ParseArena* arena = nullptr;
    // Legacy token view for predicates and (in the legacy `Parse`
    // entry) error text; null unless needed.
    const std::vector<Token>* legacy_tokens = nullptr;
    // Node stack: a completed nonterminal pops its children off the top
    // and pushes itself. Backtracking truncates.
    std::vector<const ArenaNode*> scratch;
    // Furthest failure, for error reporting.
    size_t furthest_pos = 0;
    std::set<SymbolId> expected;
    // Recursion guard.
    size_t depth = 0;
    // Lifecycle: null for the unrestricted overloads. Once `aborted` is
    // non-OK every Match* returns false immediately and the parse
    // surfaces `aborted` instead of a syntax error.
    const RequestControl* control = nullptr;
    size_t checks_until_deadline = kLifecycleCheckStride;
    Status aborted;
  };

  // Shared driver under all public entry points: parses `tokens`
  // (length `num_tokens`, `$`-terminated) into `arena`.
  Result<const ArenaNode*> ParseLexed(
      const LexedToken* tokens, size_t num_tokens, ParseArena* arena,
      const RequestControl& control,
      const std::vector<Token>* legacy_tokens) const;

  // False when the parse must stop (cancelled / past deadline); records
  // the reason in `ctx->aborted` on first detection.
  bool LifecycleOk(ParseContext* ctx) const;

  bool MatchExpr(uint32_t expr_index, ParseContext* ctx, size_t* pos) const;
  bool MatchNonterminal(SymbolId id, ParseContext* ctx, size_t* pos) const;
  void RecordFailure(ParseContext* ctx, size_t pos, SymbolId expected) const;
  bool FirstContains(const CompiledExpr& expr, SymbolId lookahead) const;
  // Renders the legacy-format syntax error from the furthest failure.
  Status SyntaxError(const ParseContext& ctx) const;

  Grammar grammar_;
  GrammarAnalysis analysis_;
  Lexer lexer_;
  std::shared_ptr<SymbolInterner> interner_;

  // Compiled dispatch tables (see class comment). All cross-references
  // are indices, so moving the parser moves the buffers wholesale.
  std::vector<CompiledExpr> exprs_;
  std::vector<uint32_t> child_pool_;
  std::vector<SymbolId> first_pool_;
  std::vector<CompiledAlt> alternatives_;
  std::vector<CompiledProduction> productions_;
  // Nonterminal SymbolId -> index into productions_, or kNoProduction.
  std::vector<uint32_t> productions_by_id_;
  SymbolId start_id_ = kInvalidSymbolId;

  // Semantic predicates keyed by (nonterminal id, alternative index).
  std::map<std::pair<SymbolId, size_t>, SemanticPredicate> predicates_;
  // When false, alternatives are tried by pure ordered-choice
  // backtracking without FIRST-set pruning (ablation mode).
  bool prune_with_first_sets_ = true;
};

/// Validates and analyzes a grammar, producing an `LlParser`. This is the
/// step the paper delegates to the ANTLR parser generator.
class ParserBuilder {
 public:
  /// When true, LL(1) prediction conflicts reject the grammar instead of
  /// falling back to ordered-choice backtracking. Default false.
  ParserBuilder& set_reject_conflicts(bool reject) {
    reject_conflicts_ = reject;
    return *this;
  }

  /// Ablation knob: when true, the built parser skips FIRST-set pruning
  /// and relies purely on ordered-choice backtracking. Same language,
  /// more wasted attempts — see bench_ablation. Default false.
  ParserBuilder& set_disable_first_pruning(bool disable) {
    disable_first_pruning_ = disable;
    return *this;
  }

  /// Builds a parser for `grammar`: structural validation, FIRST/FOLLOW
  /// analysis, left-recursion rejection, lexer construction, and
  /// compilation of lexer and grammar into one shared symbol namespace.
  Result<LlParser> Build(const Grammar& grammar) const;

 private:
  bool reject_conflicts_ = false;
  bool disable_first_pruning_ = false;
};

}  // namespace sqlpl

#endif  // SQLPL_PARSER_LL_PARSER_H_
