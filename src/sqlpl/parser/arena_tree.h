#ifndef SQLPL_PARSER_ARENA_TREE_H_
#define SQLPL_PARSER_ARENA_TREE_H_

#include <string_view>

#include "sqlpl/grammar/symbol_interner.h"
#include "sqlpl/lexer/token_stream.h"
#include "sqlpl/parser/parse_tree.h"
#include "sqlpl/util/arena.h"

namespace sqlpl {

/// The arena the parser bump-allocates tree nodes from. One arena holds
/// exactly one statement's tree (plus the garbage of backtracked
/// attempts — bump allocators don't reclaim); `Reset()` between
/// statements reuses the chunks.
using ParseArena = Arena;

/// One node of an arena-allocated concrete syntax tree — the parser's
/// native output. Rule nodes carry the interned nonterminal id, the
/// matched alternative's label id (or `kInvalidSymbolId`), and a span of
/// child pointers in the same arena; leaf nodes reference one
/// `LexedToken` of the stream the statement was tokenized into.
///
/// Lifetime: a tree is valid while its `ParseArena`, its `TokenStream`,
/// and the SQL buffer all live and are not `Reset`/`Clear`ed. Convert
/// with `ArenaToParseNode` to an owning tree that outlives all three.
/// Trivially destructible by design (the arena never runs destructors).
struct ArenaNode {
  SymbolId symbol = kInvalidSymbolId;
  SymbolId label = kInvalidSymbolId;
  uint32_t num_children = 0;
  bool is_leaf = false;
  /// Leaf payload; null for rule nodes.
  const LexedToken* token = nullptr;
  /// Child pointers in arena storage; null when `num_children == 0`.
  const ArenaNode* const* children = nullptr;

  size_t TreeSize() const {
    size_t n = 1;
    for (uint32_t i = 0; i < num_children; ++i) n += children[i]->TreeSize();
    return n;
  }
};

/// Converts an arena tree to the legacy owning `ParseNode`, resolving
/// symbol/label ids through `interner`. The public semantics layer
/// (ast_builder, validator, pretty_printer) consumes the converted tree
/// unchanged; `ToSExpr()` output is byte-identical to the pre-arena
/// engine's (pinned by golden_equivalence_test).
ParseNode ArenaToParseNode(const ArenaNode& node,
                           const SymbolInterner& interner);

/// Appends the S-expression of an arena tree to `*out`, byte-identical
/// to `ArenaToParseNode(node, interner).ToSExpr()` but without ever
/// materializing the owning tree — the serving tier's render path for
/// callers that only want the rendered text (wire `want_tree`
/// responses). Shares the golden-equivalence guarantee of the
/// conversion above (tests/parser/golden_equivalence_test.cc).
void AppendArenaSExpr(const ArenaNode& node, const SymbolInterner& interner,
                      std::string* out);

}  // namespace sqlpl

#endif  // SQLPL_PARSER_ARENA_TREE_H_
