#ifndef SQLPL_PARSER_PARSE_TREE_H_
#define SQLPL_PARSER_PARSE_TREE_H_

#include <string>
#include <vector>

#include "sqlpl/lexer/token.h"

namespace sqlpl {

/// A concrete-syntax-tree node produced by the runtime LL parser. Rule
/// nodes carry the nonterminal name (and the matched alternative's label,
/// if any) and own their children; leaf nodes wrap one token.
class ParseNode {
 public:
  /// Creates a rule node for `nonterminal`.
  static ParseNode Rule(std::string nonterminal);
  /// Creates a leaf node for `token`.
  static ParseNode Leaf(Token token);

  bool is_leaf() const { return is_leaf_; }
  /// Nonterminal name (rule nodes) or token type (leaves).
  const std::string& symbol() const { return symbol_; }
  /// Label of the matched alternative; empty if unlabeled or a leaf.
  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  /// The wrapped token; only valid for leaves.
  const Token& token() const { return token_; }

  const std::vector<ParseNode>& children() const { return children_; }
  std::vector<ParseNode>* mutable_children() { return &children_; }
  void AddChild(ParseNode child) { children_.push_back(std::move(child)); }
  size_t NumChildren() const { return children_.size(); }

  /// Pre-order search for the first descendant (or this node) whose
  /// symbol equals `symbol`; nullptr if absent.
  const ParseNode* FindFirst(const std::string& symbol) const;

  /// All descendants (and possibly this node) with the given symbol,
  /// in pre-order.
  std::vector<const ParseNode*> FindAll(const std::string& symbol) const;

  /// Concatenates the texts of all leaf tokens below this node, separated
  /// by single spaces — a cheap "what did this subtree match" view.
  std::string TokenText() const;

  /// Number of nodes in this subtree (including this node).
  size_t TreeSize() const;

  /// S-expression rendering: `(query_specification SELECT (select_list ...))`.
  std::string ToSExpr() const;

  /// Indented multi-line rendering for debugging.
  std::string ToTreeString() const;

 private:
  ParseNode() = default;

  bool is_leaf_ = false;
  std::string symbol_;
  std::string label_;
  Token token_;
  std::vector<ParseNode> children_;
};

}  // namespace sqlpl

#endif  // SQLPL_PARSER_PARSE_TREE_H_
