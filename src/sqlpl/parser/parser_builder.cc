#include "sqlpl/obs/trace.h"
#include "sqlpl/parser/ll_parser.h"

namespace sqlpl {

Result<LlParser> ParserBuilder::Build(const Grammar& grammar) const {
  DiagnosticCollector diagnostics;
  Status valid = grammar.Validate(&diagnostics);
  if (!valid.ok()) {
    return Status::ParseError("cannot build parser: " + valid.message() +
                              "\n" + diagnostics.ToString());
  }

  obs::Span analyze_span("analyze_grammar", "build", grammar.name());
  SQLPL_ASSIGN_OR_RETURN(GrammarAnalysis analysis,
                         GrammarAnalysis::Analyze(grammar));

  if (analysis.HasLeftRecursion()) {
    std::string names;
    for (const std::string& nt : analysis.left_recursive()) {
      if (!names.empty()) names += ", ";
      names += nt;
    }
    return Status::ParseError(
        "grammar '" + grammar.name() +
        "' is left-recursive (not LL): " + names);
  }

  if (reject_conflicts_ && !analysis.conflicts().empty()) {
    std::string report;
    for (const Ll1Conflict& conflict : analysis.conflicts()) {
      report += "\n  " + conflict.ToString();
    }
    return Status::ParseError("grammar '" + grammar.name() +
                              "' has LL(1) conflicts:" + report);
  }

  // One symbol namespace for the whole parser: the lexer interns the
  // token-type names, the parser compiles nonterminals and labels into
  // the same table, and cached parsers share it with every request.
  auto interner = std::make_shared<SymbolInterner>();
  Lexer lexer(grammar.tokens(), interner);
  return LlParser(grammar, std::move(analysis), std::move(lexer),
                  std::move(interner),
                  /*prune_with_first_sets=*/!disable_first_pruning_);
}

}  // namespace sqlpl
