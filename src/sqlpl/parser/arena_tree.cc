#include "sqlpl/parser/arena_tree.h"

namespace sqlpl {

ParseNode ArenaToParseNode(const ArenaNode& node,
                           const SymbolInterner& interner) {
  if (node.is_leaf) {
    Token token;
    token.type = std::string(interner.NameOf(node.symbol));
    token.text = std::string(node.token->text);
    token.location = node.token->location;
    return ParseNode::Leaf(std::move(token));
  }
  ParseNode out = ParseNode::Rule(std::string(interner.NameOf(node.symbol)));
  if (node.label != kInvalidSymbolId) {
    out.set_label(std::string(interner.NameOf(node.label)));
  }
  std::vector<ParseNode>* children = out.mutable_children();
  children->reserve(node.num_children);
  for (uint32_t i = 0; i < node.num_children; ++i) {
    children->push_back(ArenaToParseNode(*node.children[i], interner));
  }
  return out;
}

}  // namespace sqlpl
