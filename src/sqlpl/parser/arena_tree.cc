#include "sqlpl/parser/arena_tree.h"

namespace sqlpl {

ParseNode ArenaToParseNode(const ArenaNode& node,
                           const SymbolInterner& interner) {
  if (node.is_leaf) {
    Token token;
    token.type = std::string(interner.NameOf(node.symbol));
    token.text = std::string(node.token->text);
    token.location = node.token->location;
    return ParseNode::Leaf(std::move(token));
  }
  ParseNode out = ParseNode::Rule(std::string(interner.NameOf(node.symbol)));
  if (node.label != kInvalidSymbolId) {
    out.set_label(std::string(interner.NameOf(node.label)));
  }
  std::vector<ParseNode>* children = out.mutable_children();
  children->reserve(node.num_children);
  for (uint32_t i = 0; i < node.num_children; ++i) {
    children->push_back(ArenaToParseNode(*node.children[i], interner));
  }
  return out;
}

void AppendArenaSExpr(const ArenaNode& node, const SymbolInterner& interner,
                      std::string* out) {
  if (node.is_leaf) {
    // Mirrors ParseNode::ToSExpr leaf handling: the token text, or the
    // token-type name for text-free tokens.
    std::string_view text = node.token->text;
    if (text.empty()) {
      out->append(interner.NameOf(node.symbol));
    } else {
      out->append(text);
    }
    return;
  }
  out->push_back('(');
  out->append(interner.NameOf(node.symbol));
  for (uint32_t i = 0; i < node.num_children; ++i) {
    out->push_back(' ');
    AppendArenaSExpr(*node.children[i], interner, out);
  }
  out->push_back(')');
}

}  // namespace sqlpl
