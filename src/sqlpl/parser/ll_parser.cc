#include "sqlpl/parser/ll_parser.h"

#include "sqlpl/obs/trace.h"

namespace sqlpl {

namespace {

// Hard recursion bound; composed SQL grammars stay far below this, so
// hitting it indicates a grammar bug rather than deep input.
constexpr size_t kMaxParseDepth = 2048;

std::string DescribeToken(const Token& token) {
  if (token.type == "$") return "end of input";
  return "'" + token.text + "' (" + token.type + ")";
}

}  // namespace

LlParser::LlParser(Grammar grammar, GrammarAnalysis analysis, Lexer lexer,
                   bool prune_with_first_sets)
    : grammar_(std::move(grammar)), analysis_(std::move(analysis)),
      lexer_(std::move(lexer)),
      prune_with_first_sets_(prune_with_first_sets) {
  for (const Production& production : grammar_.productions()) {
    for (const Alternative& alt : production.alternatives()) {
      CachePredict(alt.body);
    }
  }
}

Status LlParser::AttachPredicate(const std::string& nonterminal,
                                 size_t alt_index,
                                 SemanticPredicate predicate) {
  const Production* production = grammar_.Find(nonterminal);
  if (production == nullptr) {
    return Status::NotFound("no production '" + nonterminal +
                            "' to attach a predicate to");
  }
  if (alt_index >= production->alternatives().size()) {
    return Status::OutOfRange(
        "production '" + nonterminal + "' has " +
        std::to_string(production->alternatives().size()) +
        " alternatives; cannot attach predicate to index " +
        std::to_string(alt_index));
  }
  predicates_[{nonterminal, alt_index}] = std::move(predicate);
  return Status::OK();
}

void LlParser::CachePredict(const Expr& expr) {
  predict_.emplace(&expr, Predict{analysis_.ExprNullable(expr),
                                  analysis_.FirstOf(expr)});
  for (const Expr& child : expr.children()) CachePredict(child);
}

Result<ParseNode> LlParser::ParseText(std::string_view sql) const {
  static const RequestControl kUnrestricted;
  return ParseText(sql, kUnrestricted);
}

Result<ParseNode> LlParser::ParseText(std::string_view sql,
                                      const RequestControl& control) const {
  if (!control.unrestricted()) {
    SQLPL_RETURN_IF_ERROR(control.Check("parse"));
  }
  Result<std::vector<Token>> tokens = [&] {
    SQLPL_TRACE_SPAN("tokenize", "parse");
    return lexer_.Tokenize(sql);
  }();
  if (!tokens.ok()) return tokens.status();
  SQLPL_TRACE_SPAN("parse", "parse");
  return Parse(*tokens, control);
}

bool LlParser::Accepts(std::string_view sql) const {
  return ParseText(sql).ok();
}

Result<ParseNode> LlParser::Parse(const std::vector<Token>& tokens) const {
  static const RequestControl kUnrestricted;
  return Parse(tokens, kUnrestricted);
}

Result<ParseNode> LlParser::Parse(const std::vector<Token>& tokens,
                                  const RequestControl& control) const {
  if (tokens.empty() || tokens.back().type != "$") {
    return Status::InvalidArgument(
        "token stream must end with the '$' end-of-input token");
  }
  ParseContext ctx;
  ctx.tokens = &tokens;
  if (!control.unrestricted()) {
    SQLPL_RETURN_IF_ERROR(control.Check("parse"));
    ctx.control = &control;
  }

  size_t pos = 0;
  std::vector<ParseNode> out;
  bool ok = MatchNonterminal(grammar_.start_symbol(), &ctx, &pos, &out);
  // A lifecycle abort outranks whatever partial syntax failure the
  // unwinding left behind.
  if (!ctx.aborted.ok()) return ctx.aborted;
  if (ok && tokens[pos].type != "$") {
    // The start symbol matched a prefix; report the leftover token.
    RecordFailure(&ctx, pos, "$");
    ok = false;
  }
  if (!ok) {
    const Token& at = tokens[ctx.furthest_pos];
    std::string expected;
    for (const std::string& e : ctx.expected) {
      if (!expected.empty()) expected += ", ";
      expected += (e == "$") ? "end of input" : e;
    }
    return Status::ParseError("syntax error at " + at.location.ToString() +
                              ": unexpected " + DescribeToken(at) +
                              "; expected one of {" + expected + "}");
  }
  return std::move(out.front());
}

void LlParser::RecordFailure(ParseContext* ctx, size_t pos,
                             const std::string& expected_token) const {
  if (pos > ctx->furthest_pos) {
    ctx->furthest_pos = pos;
    ctx->expected.clear();
  }
  if (pos == ctx->furthest_pos) ctx->expected.insert(expected_token);
}

bool LlParser::LifecycleOk(ParseContext* ctx) const {
  if (!ctx->aborted.ok()) return false;
  if (ctx->control->cancel.cancelled()) {
    ctx->aborted = Status::Cancelled("parse cancelled by caller");
    return false;
  }
  // The deadline needs a clock read; amortize it over the stride.
  if (--ctx->checks_until_deadline == 0) {
    ctx->checks_until_deadline = kLifecycleCheckStride;
    if (ctx->control->deadline.expired()) {
      ctx->aborted =
          Status::DeadlineExceeded("parse abandoned: deadline exceeded");
      return false;
    }
  }
  return true;
}

bool LlParser::MatchNonterminal(const std::string& name, ParseContext* ctx,
                                size_t* pos,
                                std::vector<ParseNode>* out) const {
  if (ctx->control != nullptr && !LifecycleOk(ctx)) return false;
  const Production* production = grammar_.Find(name);
  if (production == nullptr) return false;  // builder guarantees this

  if (++ctx->depth > kMaxParseDepth) {
    --ctx->depth;
    return false;
  }

  const std::string& lookahead = (*ctx->tokens)[*pos].type;
  const std::vector<Alternative>& alternatives = production->alternatives();
  for (size_t alt_index = 0; alt_index < alternatives.size(); ++alt_index) {
    const Alternative& alt = alternatives[alt_index];
    // Semantic predicates gate their alternative before anything else.
    if (!predicates_.empty()) {
      auto it = predicates_.find({name, alt_index});
      if (it != predicates_.end() && !it->second(*ctx->tokens, *pos)) {
        continue;
      }
    }
    // FIRST-set pruning: skip alternatives that cannot start with the
    // lookahead token (unless they can derive epsilon).
    if (prune_with_first_sets_) {
      const Predict& predict = predict_.at(&alt.body);
      if (!predict.nullable && !predict.first.contains(lookahead)) {
        for (const std::string& t : predict.first) {
          RecordFailure(ctx, *pos, t);
        }
        continue;
      }
    }
    size_t saved_pos = *pos;
    ParseNode node = ParseNode::Rule(name);
    if (MatchExpr(alt.body, ctx, pos, node.mutable_children())) {
      if (!alt.label.empty()) node.set_label(alt.label);
      out->push_back(std::move(node));
      --ctx->depth;
      return true;
    }
    *pos = saved_pos;
  }
  --ctx->depth;
  return false;
}

bool LlParser::MatchExpr(const Expr& expr, ParseContext* ctx, size_t* pos,
                         std::vector<ParseNode>* out) const {
  switch (expr.kind()) {
    case ExprKind::kToken: {
      const Token& token = (*ctx->tokens)[*pos];
      if (token.type == expr.symbol()) {
        out->push_back(ParseNode::Leaf(token));
        ++*pos;
        return true;
      }
      RecordFailure(ctx, *pos, expr.symbol());
      return false;
    }

    case ExprKind::kNonterminal:
      return MatchNonterminal(expr.symbol(), ctx, pos, out);

    case ExprKind::kSequence: {
      size_t saved_pos = *pos;
      size_t saved_size = out->size();
      for (const Expr& child : expr.children()) {
        if (!MatchExpr(child, ctx, pos, out)) {
          *pos = saved_pos;
          out->erase(out->begin() + static_cast<ptrdiff_t>(saved_size), out->end());
          return false;
        }
      }
      return true;
    }

    case ExprKind::kChoice: {
      const std::string& lookahead = (*ctx->tokens)[*pos].type;
      for (const Expr& branch : expr.children()) {
        if (prune_with_first_sets_) {
          const Predict& predict = predict_.at(&branch);
          if (!predict.nullable && !predict.first.contains(lookahead)) {
            for (const std::string& t : predict.first) {
              RecordFailure(ctx, *pos, t);
            }
            continue;
          }
        }
        size_t saved_pos = *pos;
        size_t saved_size = out->size();
        if (MatchExpr(branch, ctx, pos, out)) return true;
        *pos = saved_pos;
        out->erase(out->begin() + static_cast<ptrdiff_t>(saved_size), out->end());
      }
      return false;
    }

    case ExprKind::kOptional: {
      // Greedy: attempt the body; on failure match epsilon.
      size_t saved_pos = *pos;
      size_t saved_size = out->size();
      if (MatchExpr(expr.child(), ctx, pos, out)) return true;
      *pos = saved_pos;
      out->erase(out->begin() + static_cast<ptrdiff_t>(saved_size), out->end());
      return true;
    }

    case ExprKind::kRepetition: {
      while (true) {
        // Token-only repetition bodies never pass through
        // MatchNonterminal, so long list tails need their own
        // checkpoint.
        if (ctx->control != nullptr && !LifecycleOk(ctx)) return false;
        size_t saved_pos = *pos;
        size_t saved_size = out->size();
        if (!MatchExpr(expr.child(), ctx, pos, out)) {
          *pos = saved_pos;
          out->erase(out->begin() + static_cast<ptrdiff_t>(saved_size), out->end());
          return true;
        }
        if (*pos == saved_pos) {
          // The body matched without consuming input; stop to guarantee
          // termination.
          out->erase(out->begin() + static_cast<ptrdiff_t>(saved_size), out->end());
          return true;
        }
      }
    }
  }
  return false;
}

}  // namespace sqlpl
