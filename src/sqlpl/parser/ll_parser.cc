#include "sqlpl/parser/ll_parser.h"

#include <algorithm>
#include <cstring>

#include "sqlpl/obs/trace.h"

namespace sqlpl {

namespace {

// Hard recursion bound; composed SQL grammars stay far below this, so
// hitting it indicates a grammar bug rather than deep input.
constexpr size_t kMaxParseDepth = 2048;

std::string DescribeToken(const Token& token) {
  if (token.type == "$") return "end of input";
  return "'" + token.text + "' (" + token.type + ")";
}

std::string DescribeLexedToken(const LexedToken& token,
                               const SymbolInterner& interner) {
  if (token.type == kEndOfInputId) return "end of input";
  return "'" + std::string(token.text) + "' (" +
         std::string(interner.NameOf(token.type)) + ")";
}

}  // namespace

LlParser::LlParser(Grammar grammar, GrammarAnalysis analysis, Lexer lexer,
                   std::shared_ptr<SymbolInterner> interner,
                   bool prune_with_first_sets)
    : grammar_(std::move(grammar)), analysis_(std::move(analysis)),
      lexer_(std::move(lexer)), interner_(std::move(interner)),
      prune_with_first_sets_(prune_with_first_sets) {
  Compile();
}

void LlParser::Compile() {
  productions_.reserve(grammar_.productions().size());
  for (const Production& production : grammar_.productions()) {
    CompiledProduction compiled;
    compiled.lhs = interner_->Intern(production.lhs());
    compiled.alts_begin = static_cast<uint32_t>(alternatives_.size());
    for (const Alternative& alt : production.alternatives()) {
      CompiledAlt compiled_alt;
      compiled_alt.body = CompileExpr(alt.body);
      if (!alt.label.empty()) {
        compiled_alt.label = interner_->Intern(alt.label);
      }
      alternatives_.push_back(compiled_alt);
    }
    compiled.alts_end = static_cast<uint32_t>(alternatives_.size());
    productions_.push_back(compiled);
  }
  productions_by_id_.assign(interner_->size(), kNoProduction);
  for (uint32_t i = 0; i < productions_.size(); ++i) {
    productions_by_id_[productions_[i].lhs] = i;
  }
  start_id_ = interner_->Intern(grammar_.start_symbol());
}

uint32_t LlParser::CompileExpr(const Expr& expr) {
  // Children first: their pool indices must exist before this node can
  // record a contiguous span of them.
  std::vector<uint32_t> child_indices;
  child_indices.reserve(expr.children().size());
  for (const Expr& child : expr.children()) {
    child_indices.push_back(CompileExpr(child));
  }

  CompiledExpr compiled;
  compiled.kind = expr.kind();
  compiled.nullable = analysis_.ExprNullable(expr);
  if (expr.is_token() || expr.is_nonterminal()) {
    compiled.symbol = interner_->Intern(expr.symbol());
  }
  compiled.children_begin = static_cast<uint32_t>(child_pool_.size());
  child_pool_.insert(child_pool_.end(), child_indices.begin(),
                     child_indices.end());
  compiled.children_end = static_cast<uint32_t>(child_pool_.size());

  std::vector<SymbolId> first_ids;
  for (const std::string& name : analysis_.FirstOf(expr)) {
    first_ids.push_back(interner_->Intern(name));
  }
  std::sort(first_ids.begin(), first_ids.end());
  compiled.first_begin = static_cast<uint32_t>(first_pool_.size());
  first_pool_.insert(first_pool_.end(), first_ids.begin(), first_ids.end());
  compiled.first_end = static_cast<uint32_t>(first_pool_.size());

  exprs_.push_back(compiled);
  return static_cast<uint32_t>(exprs_.size() - 1);
}

Status LlParser::AttachPredicate(const std::string& nonterminal,
                                 size_t alt_index,
                                 SemanticPredicate predicate) {
  const Production* production = grammar_.Find(nonterminal);
  if (production == nullptr) {
    return Status::NotFound("no production '" + nonterminal +
                            "' to attach a predicate to");
  }
  if (alt_index >= production->alternatives().size()) {
    return Status::OutOfRange(
        "production '" + nonterminal + "' has " +
        std::to_string(production->alternatives().size()) +
        " alternatives; cannot attach predicate to index " +
        std::to_string(alt_index));
  }
  SymbolId id = interner_->Find(nonterminal);
  predicates_[{id, alt_index}] = std::move(predicate);
  return Status::OK();
}

Result<ParseNode> LlParser::ParseText(std::string_view sql) const {
  static const RequestControl kUnrestricted;
  return ParseText(sql, kUnrestricted);
}

Result<ParseNode> LlParser::ParseText(std::string_view sql,
                                      const RequestControl& control) const {
  return ParseText(sql, control, nullptr, /*build_tree=*/true);
}

Result<ParseNode> LlParser::ParseText(std::string_view sql,
                                      const RequestControl& control,
                                      ParseStats* stats,
                                      bool build_tree) const {
  if (!control.unrestricted()) {
    SQLPL_RETURN_IF_ERROR(control.Check("parse"));
  }
  TokenStream stream;
  Status lexed = [&] {
    SQLPL_TRACE_SPAN("tokenize", "parse");
    return lexer_.TokenizeInto(sql, &stream);
  }();
  if (!lexed.ok()) return lexed;
  if (stats != nullptr) stats->tokens = stream.size() - 1;
  SQLPL_TRACE_SPAN("parse", "parse");
  ParseArena arena;
  Result<const ArenaNode*> root =
      ParseLexed(stream.tokens().data(), stream.size(), &arena, control,
                 nullptr);
  if (stats != nullptr) stats->arena_bytes = arena.bytes_used();
  if (!root.ok()) return root.status();
  if (!build_tree) return ParseNode::Rule(grammar_.start_symbol());
  return ArenaToParseNode(**root, *interner_);
}

Result<ParseNode> LlParser::ParseTextRender(std::string_view sql,
                                            const RequestControl& control,
                                            ParseStats* stats,
                                            std::string* sexpr_out) const {
  if (!control.unrestricted()) {
    SQLPL_RETURN_IF_ERROR(control.Check("parse"));
  }
  TokenStream stream;
  Status lexed = [&] {
    SQLPL_TRACE_SPAN("tokenize", "parse");
    return lexer_.TokenizeInto(sql, &stream);
  }();
  if (!lexed.ok()) return lexed;
  if (stats != nullptr) stats->tokens = stream.size() - 1;
  SQLPL_TRACE_SPAN("parse", "parse");
  ParseArena arena;
  Result<const ArenaNode*> root =
      ParseLexed(stream.tokens().data(), stream.size(), &arena, control,
                 nullptr);
  if (stats != nullptr) stats->arena_bytes = arena.bytes_used();
  if (!root.ok()) return root.status();
  AppendArenaSExpr(**root, *interner_, sexpr_out);
  return ParseNode::Rule(grammar_.start_symbol());
}

Result<const ArenaNode*> LlParser::ParseStream(const TokenStream& stream,
                                               ParseArena* arena) const {
  static const RequestControl kUnrestricted;
  return ParseStream(stream, arena, kUnrestricted);
}

Result<const ArenaNode*> LlParser::ParseStream(
    const TokenStream& stream, ParseArena* arena,
    const RequestControl& control) const {
  if (stream.size() == 0 || stream.tokens().back().type != kEndOfInputId) {
    return Status::InvalidArgument(
        "token stream must end with the '$' end-of-input token");
  }
  return ParseLexed(stream.tokens().data(), stream.size(), arena, control,
                    nullptr);
}

bool LlParser::Accepts(std::string_view sql) const {
  static const RequestControl kUnrestricted;
  return ParseText(sql, kUnrestricted, nullptr, /*build_tree=*/false).ok();
}

Result<ParseNode> LlParser::Parse(const std::vector<Token>& tokens) const {
  static const RequestControl kUnrestricted;
  return Parse(tokens, kUnrestricted);
}

Result<ParseNode> LlParser::Parse(const std::vector<Token>& tokens,
                                  const RequestControl& control) const {
  if (tokens.empty() || tokens.back().type != "$") {
    return Status::InvalidArgument(
        "token stream must end with the '$' end-of-input token");
  }
  // Legacy entry: re-key the owning tokens into the id space. A type
  // name the dialect never interned cannot match any token expression;
  // kInvalidSymbolId keeps it unmatched while the original tokens still
  // provide the error text.
  std::vector<LexedToken> lexed;
  lexed.reserve(tokens.size());
  for (const Token& token : tokens) {
    LexedToken lt;
    lt.type = interner_->Find(token.type);
    lt.text = token.text;
    lt.location = token.location;
    lexed.push_back(lt);
  }
  ParseArena arena;
  Result<const ArenaNode*> root =
      ParseLexed(lexed.data(), lexed.size(), &arena, control, &tokens);
  if (!root.ok()) return root.status();
  return ArenaToParseNode(**root, *interner_);
}

Result<const ArenaNode*> LlParser::ParseLexed(
    const LexedToken* tokens, size_t num_tokens, ParseArena* arena,
    const RequestControl& control,
    const std::vector<Token>* legacy_tokens) const {
  (void)num_tokens;  // the terminal `$` bounds every scan
  ParseContext ctx;
  ctx.tokens = tokens;
  ctx.arena = arena;
  ctx.legacy_tokens = legacy_tokens;
  if (!control.unrestricted()) {
    SQLPL_RETURN_IF_ERROR(control.Check("parse"));
    ctx.control = &control;
  }
  // Predicates see the owning-token view; materialize it only when some
  // predicate is attached and the caller didn't already have one.
  std::vector<Token> materialized;
  if (!predicates_.empty() && legacy_tokens == nullptr) {
    materialized.reserve(num_tokens);
    for (size_t i = 0; i < num_tokens; ++i) {
      Token token;
      token.type = std::string(interner_->NameOf(tokens[i].type));
      token.text = std::string(tokens[i].text);
      token.location = tokens[i].location;
      materialized.push_back(std::move(token));
    }
    ctx.legacy_tokens = &materialized;
  }

  size_t pos = 0;
  bool ok = MatchNonterminal(start_id_, &ctx, &pos);
  // A lifecycle abort outranks whatever partial syntax failure the
  // unwinding left behind.
  if (!ctx.aborted.ok()) return ctx.aborted;
  if (ok && tokens[pos].type != kEndOfInputId) {
    // The start symbol matched a prefix; report the leftover token.
    RecordFailure(&ctx, pos, kEndOfInputId);
    ok = false;
  }
  if (!ok) return SyntaxError(ctx);
  return ctx.scratch.front();
}

Status LlParser::SyntaxError(const ParseContext& ctx) const {
  // Expected-set rendering matches the pre-interning engine byte for
  // byte: names sorted lexicographically, `$` shown as "end of input".
  std::set<std::string_view> names;
  for (SymbolId id : ctx.expected) names.insert(interner_->NameOf(id));
  std::string expected;
  for (std::string_view name : names) {
    if (!expected.empty()) expected += ", ";
    if (name == "$") {
      expected += "end of input";
    } else {
      expected += name;
    }
  }
  std::string described;
  SourceLocation location;
  if (ctx.legacy_tokens != nullptr) {
    const Token& at = (*ctx.legacy_tokens)[ctx.furthest_pos];
    described = DescribeToken(at);
    location = at.location;
  } else {
    const LexedToken& at = ctx.tokens[ctx.furthest_pos];
    described = DescribeLexedToken(at, *interner_);
    location = at.location;
  }
  return Status::ParseError("syntax error at " + location.ToString() +
                            ": unexpected " + described +
                            "; expected one of {" + expected + "}");
}

void LlParser::RecordFailure(ParseContext* ctx, size_t pos,
                             SymbolId expected) const {
  if (pos > ctx->furthest_pos) {
    ctx->furthest_pos = pos;
    ctx->expected.clear();
  }
  if (pos == ctx->furthest_pos) ctx->expected.insert(expected);
}

bool LlParser::LifecycleOk(ParseContext* ctx) const {
  if (!ctx->aborted.ok()) return false;
  if (ctx->control->cancel.cancelled()) {
    ctx->aborted = Status::Cancelled("parse cancelled by caller");
    return false;
  }
  // The deadline needs a clock read; amortize it over the stride.
  if (--ctx->checks_until_deadline == 0) {
    ctx->checks_until_deadline = kLifecycleCheckStride;
    if (ctx->control->deadline.expired()) {
      ctx->aborted =
          Status::DeadlineExceeded("parse abandoned: deadline exceeded");
      return false;
    }
  }
  return true;
}

bool LlParser::FirstContains(const CompiledExpr& expr,
                             SymbolId lookahead) const {
  const SymbolId* begin = first_pool_.data() + expr.first_begin;
  const SymbolId* end = first_pool_.data() + expr.first_end;
  return std::binary_search(begin, end, lookahead);
}

bool LlParser::MatchNonterminal(SymbolId id, ParseContext* ctx,
                                size_t* pos) const {
  if (ctx->control != nullptr && !LifecycleOk(ctx)) return false;
  if (id >= productions_by_id_.size() ||
      productions_by_id_[id] == kNoProduction) {
    return false;  // builder guarantees this
  }
  const CompiledProduction& production = productions_[productions_by_id_[id]];

  if (++ctx->depth > kMaxParseDepth) {
    --ctx->depth;
    return false;
  }

  const SymbolId lookahead = ctx->tokens[*pos].type;
  for (uint32_t a = production.alts_begin; a < production.alts_end; ++a) {
    const CompiledAlt& alt = alternatives_[a];
    // Semantic predicates gate their alternative before anything else.
    if (!predicates_.empty()) {
      auto it = predicates_.find({id, a - production.alts_begin});
      if (it != predicates_.end() &&
          !it->second(*ctx->legacy_tokens, *pos)) {
        continue;
      }
    }
    const CompiledExpr& body = exprs_[alt.body];
    // FIRST-set pruning: skip alternatives that cannot start with the
    // lookahead token (unless they can derive epsilon).
    if (prune_with_first_sets_) {
      if (!body.nullable && !FirstContains(body, lookahead)) {
        for (uint32_t f = body.first_begin; f < body.first_end; ++f) {
          RecordFailure(ctx, *pos, first_pool_[f]);
        }
        continue;
      }
    }
    size_t saved_pos = *pos;
    size_t saved_size = ctx->scratch.size();
    if (MatchExpr(alt.body, ctx, pos)) {
      // Pop the children off the scratch stack into an arena span and
      // push the completed rule node in their place.
      size_t num_children = ctx->scratch.size() - saved_size;
      const ArenaNode** children = nullptr;
      if (num_children > 0) {
        children = ctx->arena->AllocateArray<const ArenaNode*>(num_children);
        std::memcpy(children, ctx->scratch.data() + saved_size,
                    num_children * sizeof(const ArenaNode*));
      }
      ArenaNode* node = ctx->arena->New<ArenaNode>();
      node->symbol = id;
      node->label = alt.label;
      node->num_children = static_cast<uint32_t>(num_children);
      node->is_leaf = false;
      node->children = children;
      ctx->scratch.resize(saved_size);
      ctx->scratch.push_back(node);
      --ctx->depth;
      return true;
    }
    *pos = saved_pos;
    ctx->scratch.resize(saved_size);
  }
  --ctx->depth;
  return false;
}

bool LlParser::MatchExpr(uint32_t expr_index, ParseContext* ctx,
                         size_t* pos) const {
  const CompiledExpr& expr = exprs_[expr_index];
  switch (expr.kind) {
    case ExprKind::kToken: {
      const LexedToken& token = ctx->tokens[*pos];
      if (token.type == expr.symbol) {
        ArenaNode* leaf = ctx->arena->New<ArenaNode>();
        leaf->symbol = token.type;
        leaf->is_leaf = true;
        leaf->token = &token;
        ctx->scratch.push_back(leaf);
        ++*pos;
        return true;
      }
      RecordFailure(ctx, *pos, expr.symbol);
      return false;
    }

    case ExprKind::kNonterminal:
      return MatchNonterminal(expr.symbol, ctx, pos);

    case ExprKind::kSequence: {
      size_t saved_pos = *pos;
      size_t saved_size = ctx->scratch.size();
      for (uint32_t i = expr.children_begin; i < expr.children_end; ++i) {
        if (!MatchExpr(child_pool_[i], ctx, pos)) {
          *pos = saved_pos;
          ctx->scratch.resize(saved_size);
          return false;
        }
      }
      return true;
    }

    case ExprKind::kChoice: {
      const SymbolId lookahead = ctx->tokens[*pos].type;
      for (uint32_t i = expr.children_begin; i < expr.children_end; ++i) {
        const uint32_t branch = child_pool_[i];
        const CompiledExpr& branch_expr = exprs_[branch];
        if (prune_with_first_sets_) {
          if (!branch_expr.nullable &&
              !FirstContains(branch_expr, lookahead)) {
            for (uint32_t f = branch_expr.first_begin;
                 f < branch_expr.first_end; ++f) {
              RecordFailure(ctx, *pos, first_pool_[f]);
            }
            continue;
          }
        }
        size_t saved_pos = *pos;
        size_t saved_size = ctx->scratch.size();
        if (MatchExpr(branch, ctx, pos)) return true;
        *pos = saved_pos;
        ctx->scratch.resize(saved_size);
      }
      return false;
    }

    case ExprKind::kOptional: {
      // Greedy: attempt the body; on failure match epsilon.
      size_t saved_pos = *pos;
      size_t saved_size = ctx->scratch.size();
      if (MatchExpr(child_pool_[expr.children_begin], ctx, pos)) return true;
      *pos = saved_pos;
      ctx->scratch.resize(saved_size);
      return true;
    }

    case ExprKind::kRepetition: {
      while (true) {
        // Token-only repetition bodies never pass through
        // MatchNonterminal, so long list tails need their own
        // checkpoint.
        if (ctx->control != nullptr && !LifecycleOk(ctx)) return false;
        size_t saved_pos = *pos;
        size_t saved_size = ctx->scratch.size();
        if (!MatchExpr(child_pool_[expr.children_begin], ctx, pos)) {
          *pos = saved_pos;
          ctx->scratch.resize(saved_size);
          return true;
        }
        if (*pos == saved_pos) {
          // The body matched without consuming input; stop to guarantee
          // termination.
          ctx->scratch.resize(saved_size);
          return true;
        }
      }
    }
  }
  return false;
}

}  // namespace sqlpl
