#include "sqlpl/parser/parse_tree.h"

namespace sqlpl {

ParseNode ParseNode::Rule(std::string nonterminal) {
  ParseNode node;
  node.is_leaf_ = false;
  node.symbol_ = std::move(nonterminal);
  return node;
}

ParseNode ParseNode::Leaf(Token token) {
  ParseNode node;
  node.is_leaf_ = true;
  node.symbol_ = token.type;
  node.token_ = std::move(token);
  return node;
}

const ParseNode* ParseNode::FindFirst(const std::string& symbol) const {
  if (symbol_ == symbol) return this;
  for (const ParseNode& child : children_) {
    const ParseNode* found = child.FindFirst(symbol);
    if (found != nullptr) return found;
  }
  return nullptr;
}

std::vector<const ParseNode*> ParseNode::FindAll(
    const std::string& symbol) const {
  std::vector<const ParseNode*> out;
  std::vector<const ParseNode*> stack = {this};
  while (!stack.empty()) {
    const ParseNode* node = stack.back();
    stack.pop_back();
    if (node->symbol_ == symbol) out.push_back(node);
    for (auto it = node->children_.rbegin(); it != node->children_.rend();
         ++it) {
      stack.push_back(&*it);
    }
  }
  return out;
}

std::string ParseNode::TokenText() const {
  if (is_leaf_) return token_.text;
  std::string out;
  for (const ParseNode& child : children_) {
    std::string piece = child.TokenText();
    if (piece.empty()) continue;
    if (!out.empty()) out += ' ';
    out += piece;
  }
  return out;
}

size_t ParseNode::TreeSize() const {
  size_t n = 1;
  for (const ParseNode& child : children_) n += child.TreeSize();
  return n;
}

std::string ParseNode::ToSExpr() const {
  if (is_leaf_) return token_.text.empty() ? symbol_ : token_.text;
  std::string out = "(" + symbol_;
  for (const ParseNode& child : children_) {
    out += ' ';
    out += child.ToSExpr();
  }
  out += ')';
  return out;
}

namespace {

void AppendTree(const ParseNode& node, size_t depth, std::string* out) {
  out->append(depth * 2, ' ');
  if (node.is_leaf()) {
    *out += node.symbol();
    if (!node.token().text.empty()) {
      *out += " '";
      *out += node.token().text;
      *out += '\'';
    }
  } else {
    *out += node.symbol();
    if (!node.label().empty()) {
      *out += " #";
      *out += node.label();
    }
  }
  *out += '\n';
  for (const ParseNode& child : node.children()) {
    AppendTree(child, depth + 1, out);
  }
}

}  // namespace

std::string ParseNode::ToTreeString() const {
  std::string out;
  AppendTree(*this, 0, &out);
  return out;
}

}  // namespace sqlpl
