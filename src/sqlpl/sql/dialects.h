#ifndef SQLPL_SQL_DIALECTS_H_
#define SQLPL_SQL_DIALECTS_H_

#include <vector>

#include "sqlpl/sql/product_line.h"

namespace sqlpl {

/// Preset dialect specifications — the "different SQL dialects" the paper
/// motivates. Each returns a fresh `DialectSpec` ready for
/// `SqlProductLine::BuildParser`.

/// The §3.2 worked example: SELECT of a single column from a single table
/// with optional set quantifier (DISTINCT/ALL) and optional WHERE clause.
/// Select Sublist and Table Reference cardinalities are pinned to 1.
DialectSpec WorkedExampleDialect();

/// A practical query core: multi-column select lists, aliases, asterisk,
/// arithmetic, aggregates, GROUP BY / HAVING / ORDER BY, literals.
DialectSpec CoreQueryDialect();

/// Every feature in the catalog — the "full" SQL Foundation subset this
/// product line covers. The baseline monolithic parser accepts the same
/// language.
DialectSpec FullFoundationDialect();

/// TinySQL (TinyDB, sensor networks): single table in FROM, no column or
/// table aliases, aggregation, and the acquisitional SAMPLE PERIOD /
/// EPOCH DURATION extension clauses.
DialectSpec TinySqlDialect();

/// SCQL (ISO 7816-7 smart cards): restricted SELECT / INSERT / UPDATE /
/// DELETE plus table, view and privilege definition.
DialectSpec ScqlDialect();

/// A minimal selection-projection-aggregation dialect for deeply embedded
/// devices (the PicoDBMS-style profile of the paper's motivation).
DialectSpec EmbeddedMinimalDialect();

/// All presets above, for dialect-matrix tests and benchmarks.
std::vector<DialectSpec> AllPresetDialects();

}  // namespace sqlpl

#endif  // SQLPL_SQL_DIALECTS_H_
