#ifndef SQLPL_SQL_FOUNDATION_MODEL_H_
#define SQLPL_SQL_FOUNDATION_MODEL_H_

#include "sqlpl/feature/feature_model.h"

namespace sqlpl {

/// The feature-oriented decomposition of SQL:2003 Foundation (paper §3.1):
/// a feature model with 40+ diagrams and 500+ features, organized by the
/// classification of SQL statements by function (data definition, data
/// manipulation, data control, transaction, session) plus the query and
/// value-expression constructs of SQL Foundation. The diagrams
/// `QuerySpecification` and `TableExpression` reproduce the paper's
/// Figures 1 and 2 exactly.
///
/// The model is built once on first use and lives for the program.
const FeatureModel& SqlFoundationModel();

/// Names of the two diagrams that reproduce the paper's figures.
inline constexpr const char* kQuerySpecificationDiagram =
    "QuerySpecification";
inline constexpr const char* kTableExpressionDiagram = "TableExpression";

}  // namespace sqlpl

#endif  // SQLPL_SQL_FOUNDATION_MODEL_H_
