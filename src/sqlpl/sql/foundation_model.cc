#include "sqlpl/sql/foundation_model.h"

#include <cstdlib>
#include <iostream>

#include "sqlpl/feature/text_format.h"

namespace sqlpl {

namespace {

// The feature-oriented decomposition of SQL:2003 Foundation, written in
// the feature-diagram DSL. One `diagram` block per SQL construct,
// following the classification of SQL statements by function in SQL
// Foundation (paper §3.1). The `QuerySpecification` and `TableExpression`
// diagrams reproduce the paper's Figures 1 and 2.
constexpr const char* kFoundationModelText = R"(
// ===== Statement classification (SQL Foundation, by function) =====
diagram SqlStatement {
  DataManipulationClass? {
    QueryClass?
    InsertClass?
    UpdateClass?
    DeleteClass?
    MergeClass?
  }
  DataDefinitionClass? {
    SchemaClass?
    TableClass?
    ViewClass?
    DomainClass?
    SequenceClass?
    TriggerClass?
    AlterClass?
    DropClass?
  }
  DataControlClass? {
    GrantClass?
    RevokeClass?
  }
  TransactionClass? {
    CommitClass?
    RollbackClass?
    SavepointClass?
    StartTransactionClass?
    IsolationLevelClass?
  }
  SessionClass? {
    SetSchemaClass?
    SetRoleClass?
    SetTimeZoneClass?
  }
  CursorClass? {
    DeclareCursorClass?
    OpenClass?
    CloseClass?
    FetchClass?
  }
}

// ===== Figure 1 of the paper =====
diagram QuerySpecification {
  SetQuantifier? alternative {
    ALL
    DISTINCT
  }
  SelectList {
    SelectSublist [1..*] or {
      DerivedColumn {
        As?
      }
      Asterisk
    }
  }
  TableExpression
}

// ===== Figure 2 of the paper =====
diagram TableExpression {
  From
  Where?
  GroupBy?
  Having?
  Window?
}
Having requires GroupBy;

// ===== Query constructs =====
diagram SelectList {
  Sublist [1..*] or {
    DerivedColumnEntry {
      ColumnExpression
      AsClause? {
        AsKeyword?
        ColumnAlias
      }
    }
    QualifiedAsterisk?
    AsteriskEntry
  }
}

diagram FromClause {
  TableReference [1..*] {
    TablePrimary alternative {
      BaseTable {
        CorrelationName? {
          AsKeywordOptional?
        }
      }
      DerivedTableRef {
        SubqueryBody
        MandatoryCorrelation
      }
      ParenthesizedJoin?
    }
    JoinSuffix?
  }
}

diagram JoinedTable {
  JoinKind alternative {
    QualifiedJoin {
      JoinType? alternative {
        InnerJoin
        LeftJoin
        RightJoin
        FullJoin
      }
      OuterKeyword?
      JoinSpecification alternative {
        OnCondition
        UsingColumnList
      }
    }
    CrossJoin
    NaturalJoin {
      NaturalJoinType?
    }
  }
}

diagram WhereClause {
  SearchCondition {
    BooleanTerm {
      BooleanFactor {
        NotOperator?
        BooleanPrimary alternative {
          PredicateRef
          ParenthesizedCondition
        }
      }
    }
    OrOperator?
    AndOperator?
  }
}

diagram GroupByClause {
  GroupingElementList {
    GroupingElement [1..*] alternative {
      OrdinaryGroupingSet
      RollupList
      CubeList
      GroupingSetsSpecification
      EmptyGroupingSet
    }
  }
  GroupByQuantifier? alternative {
    GroupByAll
    GroupByDistinct
  }
}

diagram HavingClause {
  HavingSearchCondition
}

diagram WindowClause {
  WindowDefinition [1..*] {
    WindowName
    WindowSpecification {
      ExistingWindowName?
      PartitionClause {
        PartitionColumn [1..*]
      }
      OrderClause?
      FrameClause? {
        FrameUnits alternative {
          RowsUnits
          RangeUnits
        }
        FrameExtent alternative {
          FrameStartOnly
          FrameBetween {
            FrameLowerBound
            FrameUpperBound
          }
        }
        FrameExclusion?
      }
    }
  }
}

diagram OrderByClause {
  SortSpecification [1..*] {
    SortKey
    OrderingSpecification? alternative {
      Ascending
      Descending
    }
    NullOrdering? alternative {
      NullsFirst
      NullsLast
    }
  }
}

diagram QueryExpression {
  WithClause? {
    RecursiveWith?
    WithListElement [1..*]
  }
  QueryExpressionBody {
    SetOperation? or {
      UnionOp
      ExceptOp
      IntersectOp
    }
    SetOpQuantifier? alternative {
      SetOpAll
      SetOpDistinct
    }
    CorrespondingSpec? {
      CorrespondingColumnList?
    }
    ParenthesizedQueryPrimary?
  }
}

diagram Subquery {
  SubqueryKind or {
    ScalarSubquery
    RowSubquery
    TableSubquery
  }
}

diagram FetchFirstClause {
  FetchFirstQuantity? {
    RowCountValue
  }
  RowsKeyword alternative {
    RowKeywordSingular
    RowsKeywordPlural
  }
}

// ===== Predicates =====
diagram Predicate or {
  ComparisonPredicateRef
  BetweenPredicateRef
  InPredicateRef
  LikePredicateRef
  SimilarPredicateRef
  NullPredicateRef
  QuantifiedComparisonRef
  ExistsPredicateRef
  UniquePredicateRef
  MatchPredicateRef
  OverlapsPredicateRef
  DistinctPredicateRef
}

diagram ComparisonPredicate {
  CompOp alternative {
    EqualsOp
    NotEqualsOp
    LessThanOp
    GreaterThanOp
    LessOrEqualsOp
    GreaterOrEqualsOp
  }
}

diagram BetweenPredicate {
  BetweenNegation?
  BetweenSymmetry? alternative {
    SymmetricBetween
    AsymmetricBetween
  }
}

diagram InPredicate {
  InNegation?
  InPredicateValue alternative {
    InValueList {
      InListElement [1..*]
    }
    InSubqueryValue
  }
}

diagram LikePredicate {
  LikeNegation?
  LikePattern
  EscapeCharacter?
}

diagram NullPredicate {
  NullNegation?
}

diagram QuantifiedComparisonPredicate {
  QuantifierKind alternative {
    AllQuantifier
    SomeQuantifier
    AnyQuantifier
  }
}

// ===== Value expressions =====
diagram ValueExpression or {
  NumericValueExpression
  StringValueExpression
  DatetimeValueExpression
  IntervalValueExpression
  BooleanValueExpression
  UserDefinedTypeValueExpression
  RowValueExpression
  CollectionValueExpression
}

diagram NumericExpression {
  AdditiveOp? or {
    PlusOp
    MinusOp
  }
  MultiplicativeOp? or {
    TimesOp
    DivideOp
  }
  SignedFactor?
  ParenthesizedExpression?
  NumericPrimary alternative {
    ColumnReferencePrimary
    LiteralPrimary
    FunctionPrimary
    SubqueryPrimary
  }
}

diagram StringExpression {
  ConcatenationOp?
  StringFunction? or {
    SubstringFunction {
      SubstringFor?
    }
    UpperFunction
    LowerFunction
    TrimFunction {
      TrimSpecification? alternative {
        LeadingTrim
        TrailingTrim
        BothTrim
      }
    }
    CharLengthFunction
    PositionFunction
    OverlayFunction
  }
}

diagram DatetimeExpression {
  DatetimeFunction or {
    CurrentDateFunction
    CurrentTimeFunction
    CurrentTimestampFunction
    LocalTimeFunction
    LocalTimestampFunction
    ExtractFunction {
      ExtractField alternative {
        YearField
        MonthField
        DayField
        HourField
        MinuteField
        SecondField
      }
    }
  }
}

diagram CaseExpression {
  CaseKind alternative {
    SimpleCase {
      SimpleWhenClause [1..*]
      CaseElseClause?
    }
    SearchedCase {
      SearchedWhenClause [1..*]
      SearchedElseClause?
    }
    NullifAbbreviation
    CoalesceAbbreviation {
      CoalesceOperand [2..*]
    }
  }
}

diagram CastSpecification {
  CastOperand alternative {
    CastValueExpression
    CastImplicitNull
  }
  CastTargetType
}

diagram SetFunction {
  SetFunctionType alternative {
    CountFunction {
      CountAsterisk?
    }
    SumFunction
    AvgFunction
    MinFunction
    MaxFunction
    EveryFunction
    StddevPopFunction
    StddevSampFunction
    VarPopFunction
    VarSampFunction
  }
  AggregateQuantifier? alternative {
    AggregateDistinct
    AggregateAll
  }
  FilterClause?
}

diagram RoutineInvocation {
  RoutineName
  ArgumentList? {
    SqlArgument [1..*]
  }
}

diagram Literal or {
  UnsignedNumericLiteral {
    ExactNumericLiteral
    ApproximateNumericLiteral?
  }
  CharacterStringLiteral
  NationalStringLiteral
  BinaryStringLiteral
  DatetimeLiteral? or {
    DateLiteral
    TimeLiteral
    TimestampLiteral
  }
  IntervalLiteral
  BooleanLiteral? or {
    TrueLiteral
    FalseLiteral
    UnknownLiteral
  }
  NullLiteral
}

diagram IdentifierChain {
  ChainElement [1..*] {
    RegularIdentifier?
    DelimitedIdentifier?
  }
}

// ===== Data types =====
diagram DataType or {
  NumericType {
    ExactNumeric? or {
      IntegerType
      SmallintType
      BigintType
      NumericParameterized {
        NumericPrecision?
        NumericScale?
      }
      DecimalParameterized
    }
    ApproximateNumeric? or {
      FloatType {
        FloatPrecision?
      }
      RealType
      DoublePrecisionType
    }
  }
  CharacterStringType {
    CharType?
    VarcharType?
    CharLengthParameter?
  }
  DatetimeType or {
    DateType
    TimeType
    TimestampType {
      TimestampPrecision?
    }
  }
  BooleanType
  LobType? or {
    ClobType
    BlobType
  }
  CollectionType? or {
    ArrayType
    MultisetType
  }
}

// ===== Data definition =====
diagram TableDefinition {
  TableScope? {
    GlobalOrLocal alternative {
      GlobalScope
      LocalScope
    }
    TemporaryKeyword
  }
  TableElementList {
    TableElement [1..*] alternative {
      ColumnDefinitionElement
      TableConstraintElement
      LikeClauseElement
    }
  }
  OnCommitClause? alternative {
    PreserveRows
    DeleteRows
  }
}

diagram ColumnDefinition {
  ColumnDataType
  DefaultClause? {
    DefaultOption alternative {
      DefaultLiteral
      DefaultDatetimeFunction
      DefaultUser
      DefaultNull
    }
  }
  IdentityColumn? {
    GeneratedAlways?
    GeneratedByDefault?
  }
  ColumnConstraint? or {
    NotNullConstraint
    UniqueColumnConstraint
    PrimaryKeyColumnConstraint
    ReferencesConstraint
    CheckColumnConstraint
  }
  CollateClause?
}

diagram TableConstraint {
  ConstraintNameDefinition?
  ConstraintKind alternative {
    UniqueConstraint {
      UniqueColumnList
    }
    PrimaryKeyConstraint {
      PrimaryKeyColumnList
    }
    ForeignKeyConstraint {
      ReferencingColumns
      ReferencedTable
      ReferencedColumns?
      MatchOption? alternative {
        MatchFull
        MatchPartial
        MatchSimple
      }
      ReferentialTriggeredAction? {
        OnUpdateAction? alternative {
          UpdateCascade
          UpdateSetNull
          UpdateSetDefault
          UpdateRestrict
          UpdateNoAction
        }
        OnDeleteAction? alternative {
          DeleteCascade
          DeleteSetNull
          DeleteSetDefault
          DeleteRestrict
          DeleteNoAction
        }
      }
    }
    CheckConstraint
  }
  ConstraintCharacteristics? {
    Deferrable?
    InitiallyDeferred?
  }
}

diagram ViewDefinition {
  RecursiveView?
  ViewColumnList?
  ViewQueryExpression
  WithCheckOption? {
    CheckOptionLevel? alternative {
      CascadedCheck
      LocalCheck
    }
  }
}

diagram SchemaDefinition {
  SchemaName
  SchemaAuthorization?
  SchemaCharacterSet?
  SchemaElement? or {
    SchemaTableDefinition
    SchemaViewDefinition
    SchemaGrantStatement
  }
}

diagram DomainDefinition {
  DomainName
  DomainDataType
  DomainDefault?
  DomainConstraint?
  DomainCollation?
}

diagram SequenceGeneratorDefinition {
  SequenceName
  SequenceOption? or {
    StartWithOption
    IncrementByOption
    MaxvalueOption
    MinvalueOption
    CycleOption alternative {
      CycleEnabled
      NoCycle
    }
  }
}

diagram TriggerDefinition {
  TriggerName
  TriggerActionTime alternative {
    BeforeTrigger
    AfterTrigger
  }
  TriggerEvent alternative {
    InsertEvent
    DeleteEvent
    UpdateEvent {
      UpdateColumnList?
    }
  }
  ReferencingClause? {
    OldRowAlias?
    NewRowAlias?
  }
  ForEachClause? alternative {
    ForEachRow
    ForEachStatement
  }
  TriggeredAction
}

diagram AlterTableStatement {
  AlterAction alternative {
    AddColumnAction
    DropColumnAction {
      DropColumnBehavior? alternative {
        DropColumnCascade
        DropColumnRestrict
      }
    }
    AlterColumnAction {
      AlterColumnKind alternative {
        SetColumnDefault
        DropColumnDefault
      }
    }
    AddConstraintAction
    DropConstraintAction
  }
}

diagram DropStatement {
  DropObjectKind alternative {
    DropTable
    DropView
    DropSchema
    DropDomain
    DropSequence
    DropTrigger
  }
  DropBehavior? alternative {
    DropCascade
    DropRestrict
  }
}

// ===== Transactions, session, access control, cursors =====
diagram TransactionStatement {
  TransactionKind alternative {
    CommitStatement {
      CommitWork?
    }
    RollbackStatement {
      RollbackWork?
      RollbackToSavepoint?
    }
    SavepointStatement
    ReleaseSavepointStatement
    StartTransactionStatement {
      TransactionMode? or {
        IsolationLevelMode alternative {
          ReadUncommitted
          ReadCommitted
          RepeatableRead
          Serializable
        }
        ReadOnlyMode
        ReadWriteMode
        DiagnosticsSize
      }
    }
    SetTransactionStatement
  }
}

diagram SessionStatement {
  SessionKind alternative {
    SetSchemaStatement
    SetRoleStatement
    SetTimeZoneStatement {
      TimeZoneValue alternative {
        LocalTimeZone
        IntervalTimeZone
      }
    }
    SetSessionCharacteristics
  }
}

diagram GrantStatement {
  PrivilegeSpecification alternative {
    AllPrivileges
    PrivilegeList {
      Privilege [1..*] or {
        SelectPrivilege
        InsertPrivilege
        UpdatePrivilege
        DeletePrivilege
        ReferencesPrivilege
        UsagePrivilege
        TriggerPrivilege
        ExecutePrivilege
      }
    }
  }
  GranteeList {
    Grantee [1..*] alternative {
      PublicGrantee
      NamedGrantee
    }
  }
  WithGrantOption?
  GrantedBy?
}

diagram RevokeStatement {
  GrantOptionFor?
  RevokeBehavior alternative {
    RevokeCascade
    RevokeRestrict
  }
}

diagram CursorStatement {
  CursorKind alternative {
    DeclareCursor {
      CursorSensitivity? alternative {
        Sensitive
        Insensitive
        Asensitive
      }
      Scrollable?
      CursorHoldability?
      CursorQuery
    }
    OpenCursor
    CloseCursor
    FetchCursor {
      FetchOrientation? alternative {
        FetchNext
        FetchPrior
        FetchFirstRow
        FetchLastRow
        FetchAbsolute
        FetchRelative
      }
    }
  }
}

// ===== Embedded / sensor-network extension features =====
diagram AcquisitionalQuery {
  SamplePeriodClause? {
    SamplePeriodValue
    SampleForDuration?
  }
  EpochDurationClause? {
    EpochDurationValue
  }
  OutputAction? alternative {
    SignalAction
    SetSnoozeAction
  }
  StorageLifetime?
}
SamplePeriodClause excludes EpochDurationClause;

diagram SmartCardProfile {
  ScqlSelect {
    ScqlSingleTable
    ScqlWhere?
  }
  ScqlInsert?
  ScqlUpdate?
  ScqlDelete?
  ScqlCreateTable?
  ScqlCreateView?
  ScqlGrant?
}
)";

}  // namespace

const FeatureModel& SqlFoundationModel() {
  static const FeatureModel& model = *[] {
    Result<FeatureModel> parsed =
        ParseFeatureModelText(kFoundationModelText, "sql_foundation_model");
    if (!parsed.ok()) {
      std::cerr << "fatal: SQL Foundation feature model failed to parse: "
                << parsed.status().ToString() << "\n";
      std::abort();
    }
    auto* model = new FeatureModel(std::move(parsed).value());
    model->set_name("SQL:2003 Foundation");
    return model;
  }();
  return model;
}

}  // namespace sqlpl
