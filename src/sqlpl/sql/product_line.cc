#include "sqlpl/sql/product_line.h"

#include <algorithm>

#include "sqlpl/feature/feature_diagram.h"
#include "sqlpl/obs/trace.h"
#include "sqlpl/sql/foundation_model.h"

namespace sqlpl {

SqlProductLine::SqlProductLine()
    : model_(SqlFoundationModel()), catalog_(SqlFeatureCatalog::Instance()) {}

Result<CompositionSequence> SqlProductLine::ResolveSequence(
    const DialectSpec& spec) const {
  // Canonical order: catalog registration order, which lists base
  // constructs before the features that refine them (and SQL clauses in
  // clause order), satisfying the paper's optional-after-core rule.
  std::map<std::string, size_t> rank;
  for (size_t i = 0; i < catalog_.modules().size(); ++i) {
    rank[catalog_.modules()[i].name] = i;
  }
  std::vector<std::string> ordered = spec.features;
  for (const std::string& feature : ordered) {
    if (!rank.contains(feature)) {
      return Status::ConfigurationError("dialect '" + spec.name +
                                        "' selects unknown feature '" +
                                        feature + "'");
    }
  }
  std::sort(ordered.begin(), ordered.end(),
            [&rank](const std::string& a, const std::string& b) {
              return rank[a] < rank[b];
            });
  return CompositionSequence::Resolve(ordered, catalog_.RequiresMap(),
                                      catalog_.ExcludesMap());
}

Result<Grammar> SqlProductLine::ComposeGrammar(const DialectSpec& spec) const {
  Result<Grammar> composed = ComposeGrammar(spec, &trace_);
  return composed;
}

Result<Grammar> SqlProductLine::ComposeGrammar(
    const DialectSpec& spec, std::vector<CompositionStep>* trace_out) const {
  obs::Span compose_span("compose_grammar", "compose", spec.name);
  Result<CompositionSequence> resolved = [&] {
    SQLPL_TRACE_SPAN("resolve_sequence", "compose");
    return ResolveSequence(spec);
  }();
  if (!resolved.ok()) return resolved.status();
  const CompositionSequence& sequence = *resolved;
  if (sequence.features().empty()) {
    return Status::ConfigurationError("dialect '" + spec.name +
                                      "' selects no features");
  }

  std::vector<Grammar> grammars;
  grammars.reserve(sequence.features().size());
  for (const std::string& feature : sequence.features()) {
    obs::Span load_span("load_feature_grammar", "compose", feature);
    auto it = spec.counts.find(feature);
    int count = (it != spec.counts.end()) ? it->second
                                          : Cardinality::kUnbounded;
    SQLPL_ASSIGN_OR_RETURN(Grammar grammar,
                           catalog_.GrammarFor(feature, count));
    grammars.push_back(std::move(grammar));
  }

  // Left fold of Compose, one span per composed feature (same semantics
  // as GrammarComposer::ComposeAll, unrolled so each feature's
  // composition step is individually visible in the trace).
  GrammarComposer composer;
  std::vector<CompositionStep> full_trace;
  Grammar composed = std::move(grammars.front());
  for (size_t i = 1; i < grammars.size(); ++i) {
    obs::Span step_span("compose_step", "compose");
    Result<Grammar> next = composer.Compose(composed, grammars[i]);
    if (!next.ok()) return next.status();
    composed = std::move(next).value();
    full_trace.insert(full_trace.end(), composer.trace().begin(),
                      composer.trace().end());
    if (step_span.active()) {
      step_span.set_detail(sequence.features()[i] + " (" +
                           std::to_string(composer.trace().size()) +
                           " composition steps)");
    }
  }
  if (trace_out != nullptr) *trace_out = std::move(full_trace);

  composed.set_name(spec.name.empty() ? "dialect" : spec.name);
  composed.set_start_symbol(spec.start_symbol);

  SQLPL_TRACE_SPAN("validate_grammar", "compose");
  DiagnosticCollector diagnostics;
  Status valid = composed.Validate(&diagnostics);
  if (!valid.ok()) {
    return Status::CompositionError(
        "dialect '" + spec.name + "' composed to an invalid grammar "
        "(missing required features?): " + diagnostics.ToString());
  }
  return composed;
}

Result<LlParser> SqlProductLine::BuildParser(const DialectSpec& spec) const {
  SQLPL_ASSIGN_OR_RETURN(Grammar grammar, ComposeGrammar(spec));
  return ParserBuilder().Build(grammar);
}

Result<LlParser> SqlProductLine::BuildParser(
    const DialectSpec& spec, std::vector<CompositionStep>* trace_out) const {
  obs::Span build_span("build_parser", "build", spec.name);
  SQLPL_ASSIGN_OR_RETURN(Grammar grammar, ComposeGrammar(spec, trace_out));
  return ParserBuilder().Build(grammar);
}

Result<GeneratedParser> SqlProductLine::GenerateParserSource(
    const DialectSpec& spec) const {
  SQLPL_ASSIGN_OR_RETURN(Grammar grammar, ComposeGrammar(spec));
  return GenerateCppParser(grammar);
}

}  // namespace sqlpl
