#include "sqlpl/sql/product_line.h"

#include <algorithm>

#include "sqlpl/feature/feature_diagram.h"
#include "sqlpl/sql/foundation_model.h"

namespace sqlpl {

SqlProductLine::SqlProductLine()
    : model_(SqlFoundationModel()), catalog_(SqlFeatureCatalog::Instance()) {}

Result<CompositionSequence> SqlProductLine::ResolveSequence(
    const DialectSpec& spec) const {
  // Canonical order: catalog registration order, which lists base
  // constructs before the features that refine them (and SQL clauses in
  // clause order), satisfying the paper's optional-after-core rule.
  std::map<std::string, size_t> rank;
  for (size_t i = 0; i < catalog_.modules().size(); ++i) {
    rank[catalog_.modules()[i].name] = i;
  }
  std::vector<std::string> ordered = spec.features;
  for (const std::string& feature : ordered) {
    if (!rank.contains(feature)) {
      return Status::ConfigurationError("dialect '" + spec.name +
                                        "' selects unknown feature '" +
                                        feature + "'");
    }
  }
  std::sort(ordered.begin(), ordered.end(),
            [&rank](const std::string& a, const std::string& b) {
              return rank[a] < rank[b];
            });
  return CompositionSequence::Resolve(ordered, catalog_.RequiresMap(),
                                      catalog_.ExcludesMap());
}

Result<Grammar> SqlProductLine::ComposeGrammar(const DialectSpec& spec) const {
  Result<Grammar> composed = ComposeGrammar(spec, &trace_);
  return composed;
}

Result<Grammar> SqlProductLine::ComposeGrammar(
    const DialectSpec& spec, std::vector<CompositionStep>* trace_out) const {
  SQLPL_ASSIGN_OR_RETURN(CompositionSequence sequence, ResolveSequence(spec));
  if (sequence.features().empty()) {
    return Status::ConfigurationError("dialect '" + spec.name +
                                      "' selects no features");
  }

  std::vector<Grammar> grammars;
  grammars.reserve(sequence.features().size());
  for (const std::string& feature : sequence.features()) {
    auto it = spec.counts.find(feature);
    int count = (it != spec.counts.end()) ? it->second
                                          : Cardinality::kUnbounded;
    SQLPL_ASSIGN_OR_RETURN(Grammar grammar,
                           catalog_.GrammarFor(feature, count));
    grammars.push_back(std::move(grammar));
  }

  GrammarComposer composer;
  SQLPL_ASSIGN_OR_RETURN(Grammar composed, composer.ComposeAll(grammars));
  if (trace_out != nullptr) *trace_out = composer.trace();

  composed.set_name(spec.name.empty() ? "dialect" : spec.name);
  composed.set_start_symbol(spec.start_symbol);

  DiagnosticCollector diagnostics;
  Status valid = composed.Validate(&diagnostics);
  if (!valid.ok()) {
    return Status::CompositionError(
        "dialect '" + spec.name + "' composed to an invalid grammar "
        "(missing required features?): " + diagnostics.ToString());
  }
  return composed;
}

Result<LlParser> SqlProductLine::BuildParser(const DialectSpec& spec) const {
  SQLPL_ASSIGN_OR_RETURN(Grammar grammar, ComposeGrammar(spec));
  return ParserBuilder().Build(grammar);
}

Result<LlParser> SqlProductLine::BuildParser(
    const DialectSpec& spec, std::vector<CompositionStep>* trace_out) const {
  SQLPL_ASSIGN_OR_RETURN(Grammar grammar, ComposeGrammar(spec, trace_out));
  return ParserBuilder().Build(grammar);
}

Result<GeneratedParser> SqlProductLine::GenerateParserSource(
    const DialectSpec& spec) const {
  SQLPL_ASSIGN_OR_RETURN(Grammar grammar, ComposeGrammar(spec));
  return GenerateCppParser(grammar);
}

}  // namespace sqlpl
