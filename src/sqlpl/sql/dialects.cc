#include "sqlpl/sql/dialects.h"

#include "sqlpl/sql/foundation_grammars.h"

namespace sqlpl {

DialectSpec WorkedExampleDialect() {
  DialectSpec spec;
  spec.name = "WorkedExample";
  spec.features = {
      "ValueExpressions", "Literals",      "SelectList",
      "DerivedColumn",    "From",          "TableExpression",
      "QuerySpecification", "SetQuantifier", "SearchConditions",
      "Where",
  };
  spec.counts = {{"SelectList", 1}, {"From", 1}};
  return spec;
}

DialectSpec CoreQueryDialect() {
  DialectSpec spec;
  spec.name = "CoreQuery";
  spec.features = {
      "ValueExpressions", "Literals",        "SelectList",
      "DerivedColumn",    "AsClause",        "Asterisk",
      "From",             "CorrelationName", "TableExpression",
      "QuerySpecification", "SetQuantifier", "SearchConditions",
      "Where",            "GroupBy",         "Having",
      "OrderBy",          "NumericExpressions", "SetFunctions",
  };
  return spec;
}

DialectSpec FullFoundationDialect() {
  DialectSpec spec;
  spec.name = "FullFoundation";
  spec.features = SqlFeatureCatalog::Instance().ModuleNames();
  return spec;
}

DialectSpec TinySqlDialect() {
  DialectSpec spec;
  spec.name = "TinySQL";
  spec.features = {
      "ValueExpressions", "Literals",     "SelectList",
      "DerivedColumn",    "Asterisk",     "From",
      "TableExpression",  "QuerySpecification", "SearchConditions",
      "Where",            "GroupBy",      "Having",
      "NumericExpressions", "SetFunctions",
      "SamplePeriod",     "EpochDuration",
  };
  // TinySQL allows only a single table in the FROM clause and no aliases
  // (no CorrelationName / AsClause features selected).
  spec.counts = {{"From", 1}};
  return spec;
}

DialectSpec ScqlDialect() {
  DialectSpec spec;
  spec.name = "SCQL";
  spec.features = {
      "ValueExpressions", "Literals",       "SelectList",
      "DerivedColumn",    "Asterisk",       "From",
      "TableExpression",  "QuerySpecification", "SearchConditions",
      "Where",            "NumericExpressions", "InsertStatement",
      "UpdateStatement",  "DeleteStatement",  "DataTypes",
      "TableDefinition",  "ViewDefinition",   "Grant",
  };
  // Smart-card SELECTs see one table (or view) at a time.
  spec.counts = {{"From", 1}};
  return spec;
}

DialectSpec EmbeddedMinimalDialect() {
  DialectSpec spec;
  spec.name = "EmbeddedMinimal";
  spec.features = {
      "ValueExpressions", "Literals",       "SelectList",
      "DerivedColumn",    "From",           "TableExpression",
      "QuerySpecification", "SearchConditions", "Where",
      "SetFunctions",
  };
  spec.counts = {{"From", 1}};
  return spec;
}

std::vector<DialectSpec> AllPresetDialects() {
  return {WorkedExampleDialect(),  CoreQueryDialect(),
          FullFoundationDialect(), TinySqlDialect(),
          ScqlDialect(),           EmbeddedMinimalDialect()};
}

}  // namespace sqlpl
