#include "sqlpl/sql/report.h"

#include <set>

#include "sqlpl/grammar/metrics.h"
#include "sqlpl/sql/classifications.h"
#include "sqlpl/sql/foundation_model.h"

namespace sqlpl {

namespace {

std::set<std::string> SelectionOf(const DialectSpec& spec) {
  return {spec.features.begin(), spec.features.end()};
}

}  // namespace

std::vector<std::string> CommonFeatures(
    const std::vector<DialectSpec>& dialects) {
  std::vector<std::string> out;
  if (dialects.empty()) return out;
  std::vector<std::set<std::string>> selections;
  selections.reserve(dialects.size());
  for (const DialectSpec& spec : dialects) {
    selections.push_back(SelectionOf(spec));
  }
  for (const SqlFeatureModule& module :
       SqlFeatureCatalog::Instance().modules()) {
    bool in_all = true;
    for (const std::set<std::string>& selection : selections) {
      if (!selection.contains(module.name)) {
        in_all = false;
        break;
      }
    }
    if (in_all) out.push_back(module.name);
  }
  return out;
}

std::vector<std::string> VariantFeatures(
    const std::vector<DialectSpec>& dialects) {
  std::vector<std::string> out;
  std::vector<std::set<std::string>> selections;
  selections.reserve(dialects.size());
  for (const DialectSpec& spec : dialects) {
    selections.push_back(SelectionOf(spec));
  }
  for (const SqlFeatureModule& module :
       SqlFeatureCatalog::Instance().modules()) {
    size_t hits = 0;
    for (const std::set<std::string>& selection : selections) {
      if (selection.contains(module.name)) ++hits;
    }
    if (hits > 0 && hits < selections.size()) out.push_back(module.name);
  }
  return out;
}

std::string GenerateProductLineReport(
    const std::vector<DialectSpec>& dialects) {
  const FeatureModel& model = SqlFoundationModel();
  const SqlFeatureCatalog& catalog = SqlFeatureCatalog::Instance();
  SqlProductLine line;

  std::string out = "# SQL:2003 Product Line Report\n\n";

  // --- model summary ---
  out += "## Feature model\n\n";
  out += "- diagrams: " + std::to_string(model.NumDiagrams()) +
         " (paper §3.1: 40)\n";
  out += "- features: " + std::to_string(model.TotalFeatures()) +
         " (paper §3.1: >500)\n";
  out += "- composable feature modules: " + std::to_string(catalog.size()) +
         "\n\n";

  // --- commonality / variability ---
  out += "## Commonality and variability across dialects\n\n";
  std::vector<std::string> common = CommonFeatures(dialects);
  std::vector<std::string> variant = VariantFeatures(dialects);
  out += "- common (in every dialect): ";
  for (size_t i = 0; i < common.size(); ++i) {
    if (i > 0) out += ", ";
    out += common[i];
  }
  out += "\n- variant (in some dialects): " +
         std::to_string(variant.size()) + " features\n\n";

  // --- dialect matrix ---
  out += "## Feature x dialect matrix\n\n";
  out += "| feature | class |";
  for (const DialectSpec& spec : dialects) out += " " + spec.name + " |";
  out += "\n|---|---|";
  for (size_t i = 0; i < dialects.size(); ++i) out += "---|";
  out += "\n";
  std::vector<std::set<std::string>> selections;
  for (const DialectSpec& spec : dialects) {
    selections.push_back(SelectionOf(spec));
  }
  for (const SqlFeatureModule& module : catalog.modules()) {
    out += "| " + module.name + " | ";
    Result<StatementClass> cls = StatementClassOf(module.name);
    out += cls.ok() ? StatementClassToString(*cls) : "?";
    out += " |";
    for (const std::set<std::string>& selection : selections) {
      out += selection.contains(module.name) ? " x |" : "   |";
    }
    out += "\n";
  }
  out += "\n";

  // --- per-dialect grammar metrics ---
  out += "## Composed grammar metrics\n\n";
  out += "| dialect | " "productions | alternatives | tokens | keywords | "
         "max width | max depth | approx bytes |\n";
  out += "|---|---|---|---|---|---|---|---|\n";
  for (const DialectSpec& spec : dialects) {
    Result<Grammar> grammar = line.ComposeGrammar(spec);
    if (!grammar.ok()) {
      out += "| " + spec.name + " | compose failed: " +
             grammar.status().message() + " |\n";
      continue;
    }
    GrammarMetrics metrics = ComputeGrammarMetrics(*grammar);
    out += "| " + spec.name + " | " +
           std::to_string(metrics.num_productions) + " | " +
           std::to_string(metrics.num_alternatives) + " | " +
           std::to_string(metrics.num_tokens) + " | " +
           std::to_string(metrics.num_keywords) + " | " +
           std::to_string(metrics.max_alternatives) + " | " +
           std::to_string(metrics.max_expr_depth) + " | " +
           std::to_string(metrics.approx_bytes) + " |\n";
  }
  out += "\n";

  // --- module inventory ---
  out += "## Module inventory (canonical composition order)\n\n";
  for (const SqlFeatureModule& module : catalog.modules()) {
    out += "- **" + module.name + "** — " + module.description;
    if (!module.requires_features.empty()) {
      out += " *(requires: ";
      for (size_t i = 0; i < module.requires_features.size(); ++i) {
        if (i > 0) out += ", ";
        out += module.requires_features[i];
      }
      out += ")*";
    }
    out += "\n";
  }
  return out;
}

}  // namespace sqlpl
