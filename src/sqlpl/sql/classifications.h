#ifndef SQLPL_SQL_CLASSIFICATIONS_H_
#define SQLPL_SQL_CLASSIFICATIONS_H_

#include <map>
#include <string>
#include <vector>

#include "sqlpl/sql/product_line.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// §5 of the paper: "In addition to decomposing SQL by statement classes,
/// it is possible to classify SQL constructs in different ways, e.g., by
/// the schema element they operate on. We propose that different
/// classifications of features lead to the same advantages."
///
/// This header provides two orthogonal classifications of the catalog's
/// feature modules — by statement class (the paper's primary
/// decomposition) and by the schema element operated on — and a way to
/// derive dialects from either, demonstrating the claim.

/// Classification of features by SQL statement class (SQL Foundation's
/// "classification of SQL statements by function").
enum class StatementClass {
  /// Query expressions and their clauses.
  kQuery,
  /// Scalar/boolean expression machinery shared by many statements.
  kExpression,
  /// Predicates of search conditions.
  kPredicate,
  /// INSERT / UPDATE / DELETE / MERGE.
  kDataManipulation,
  /// CREATE / ALTER / DROP of schema objects.
  kDataDefinition,
  /// GRANT / REVOKE.
  kDataControl,
  /// Transaction management.
  kTransaction,
  /// Session management.
  kSession,
  /// Cursor statements.
  kCursor,
  /// Non-standard extension features (TinySQL acquisitional clauses).
  kExtension,
};

const char* StatementClassToString(StatementClass cls);

/// Classification by the schema element a feature operates on.
enum class SchemaElement {
  kTable,
  kColumn,
  kView,
  kSchema,
  kDomain,
  kSequence,
  kTrigger,
  kPrivilege,
  kCursor,
  kTransactionState,
  kSession,
  /// Pure language machinery with no schema element (expressions,
  /// predicates, literals).
  kNone,
};

const char* SchemaElementToString(SchemaElement element);

/// Statement class of a catalog feature module; fails for unknown names.
Result<StatementClass> StatementClassOf(const std::string& feature);

/// Schema element of a catalog feature module; fails for unknown names.
Result<SchemaElement> SchemaElementOf(const std::string& feature);

/// All catalog features of the given statement classes, in canonical
/// order (requires-closure NOT applied).
std::vector<std::string> FeaturesOfClasses(
    const std::vector<StatementClass>& classes);

/// All catalog features operating on the given schema elements.
std::vector<std::string> FeaturesOfElements(
    const std::vector<SchemaElement>& elements);

/// Builds a dialect from statement classes: the features of the classes,
/// closed under requires. E.g. {kQuery, kExpression, kPredicate} yields a
/// pure-query dialect without ever naming an individual feature —
/// "different classifications lead to the same advantages".
Result<DialectSpec> DialectFromClasses(
    std::string name, const std::vector<StatementClass>& classes);

/// Same, from schema elements.
Result<DialectSpec> DialectFromElements(
    std::string name, const std::vector<SchemaElement>& elements);

/// Grouping of all modules keyed by class / element name, for reports.
std::map<std::string, std::vector<std::string>> GroupByStatementClass();
std::map<std::string, std::vector<std::string>> GroupBySchemaElement();

}  // namespace sqlpl

#endif  // SQLPL_SQL_CLASSIFICATIONS_H_
