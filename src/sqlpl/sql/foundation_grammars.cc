#include "sqlpl/sql/foundation_grammars.h"

#include <set>

#include "sqlpl/grammar/text_format.h"

namespace sqlpl {

// The catalog below encodes the SQL:2003 Foundation sub-grammars, one per
// composable feature, in the grammar DSL. Conventions:
//  - inline 'KEYWORD' and ',' literals auto-register keyword/punctuation
//    tokens in the module's token file;
//  - IDENTIFIER / NUMBER / STRING class tokens are declared in tokens{}
//    blocks where used;
//  - base modules define degenerate "layer" rules (e.g.
//    `numeric_value_expression : term ; term : factor ;`) that richer
//    feature modules replace via the containment rule, so that ordered
//    alternatives never hide longer matches behind shorter ones;
//  - identical rules repeated across modules (e.g. `where_clause`)
//    compose to themselves, which keeps modules self-contained.

SqlFeatureCatalog::SqlFeatureCatalog() {
  // -------------------------------------------------------------------
  // Value expression core
  // -------------------------------------------------------------------
  Register({
      .name = "ValueExpressions",
      .description = "Scalar value expression core: column references and "
                     "the degenerate precedence tower later features refine",
      .grammar_text = R"(
grammar ValueExpressions;
tokens { IDENTIFIER = identifier; }
value_expression : numeric_value_expression ;
numeric_value_expression : term ;
term : factor ;
factor : value_primary ;
value_primary : nonparenthesized_value_primary ;
nonparenthesized_value_primary : column_reference ;
column_reference : identifier_chain ;
identifier_chain : IDENTIFIER ( '.' IDENTIFIER )* ;
)",
  });

  Register({
      .name = "Literals",
      .description = "Unsigned numeric, character string and NULL literals",
      .grammar_text = R"(
grammar Literals;
tokens { NUMBER = number; STRING = string; }
nonparenthesized_value_primary : unsigned_literal ;
unsigned_literal : NUMBER | STRING | 'NULL' ;
)",
      .requires_features = {"ValueExpressions"},
  });

  Register({
      .name = "BooleanLiterals",
      .description = "TRUE / FALSE / UNKNOWN literals",
      .grammar_text = R"(
grammar BooleanLiterals;
unsigned_literal : 'TRUE' | 'FALSE' | 'UNKNOWN' ;
)",
      .requires_features = {"Literals"},
  });

  // -------------------------------------------------------------------
  // SELECT statement skeleton (Figure 1 features)
  // -------------------------------------------------------------------
  Register({
      .name = "SelectList",
      .description = "Select list; the multi-instance variant is the "
                     "Select Sublist [1..*] complex list of Figure 1",
      .grammar_text = R"(
grammar SelectList;
select_list : select_sublist ;
)",
      .multi_grammar_text = R"(
grammar SelectList;
select_list : select_sublist ( ',' select_sublist )* ;
)",
  });

  Register({
      .name = "DerivedColumn",
      .description = "Derived column: a value expression in the select list",
      .grammar_text = R"(
grammar DerivedColumn;
select_sublist : derived_column ;
derived_column : value_expression ;
)",
      .requires_features = {"SelectList", "ValueExpressions"},
  });

  Register({
      .name = "AsClause",
      .description = "Column alias ([AS] name) on derived columns "
                     "(the 'AS' feature of Figure 1)",
      .grammar_text = R"(
grammar AsClause;
tokens { IDENTIFIER = identifier; }
derived_column : value_expression [ as_clause ] ;
as_clause : [ 'AS' ] IDENTIFIER ;
)",
      .requires_features = {"DerivedColumn"},
  });

  Register({
      .name = "Asterisk",
      .description = "SELECT * (the 'Asterisk' feature of Figure 1)",
      .grammar_text = R"(
grammar Asterisk;
select_list : '*' ;
)",
      .requires_features = {"SelectList"},
  });

  Register({
      .name = "From",
      .description = "FROM clause; the multi-instance variant allows a "
                     "table reference list",
      .grammar_text = R"(
grammar From;
from_clause : 'FROM' table_reference ;
table_reference : table_primary ;
table_primary : table_name ;
table_name : identifier_chain ;
)",
      .multi_grammar_text = R"(
grammar From;
from_clause : 'FROM' table_reference ( ',' table_reference )* ;
table_reference : table_primary ;
table_primary : table_name ;
table_name : identifier_chain ;
)",
      .requires_features = {"ValueExpressions"},
  });

  Register({
      .name = "CorrelationName",
      .description = "Table alias ([AS] name) on table primaries — absent "
                     "in TinySQL, which forbids aliases",
      .grammar_text = R"(
grammar CorrelationName;
tokens { IDENTIFIER = identifier; }
table_primary : table_name [ correlation_clause ] ;
correlation_clause : [ 'AS' ] IDENTIFIER ;
)",
      .requires_features = {"From"},
  });

  Register({
      .name = "TableExpression",
      .description = "Table expression skeleton (Figure 2 root)",
      .grammar_text = R"(
grammar TableExpression;
table_expression : from_clause ;
)",
      .requires_features = {"From"},
  });

  Register({
      .name = "QuerySpecification",
      .description = "SELECT statement skeleton (Figure 1 root) plus the "
                     "degenerate query-expression tower",
      .grammar_text = R"(
grammar QuerySpecification;
start sql_statement;
sql_statement : query_statement ;
query_statement : query_expression ;
query_expression : query_primary ;
query_primary : query_specification ;
query_specification : 'SELECT' select_list table_expression ;
)",
      .requires_features = {"SelectList", "TableExpression"},
  });

  Register({
      .name = "SetQuantifier",
      .description = "DISTINCT / ALL on SELECT (Figure 1's Set Quantifier)",
      .grammar_text = R"(
grammar SetQuantifier;
query_specification : 'SELECT' [ set_quantifier ] select_list table_expression ;
set_quantifier : 'DISTINCT' | 'ALL' ;
)",
      .requires_features = {"QuerySpecification"},
  });

  // -------------------------------------------------------------------
  // Search conditions and table-expression clauses (Figure 2 features)
  // -------------------------------------------------------------------
  Register({
      .name = "SearchConditions",
      .description = "Boolean search-condition tower (OR/AND/NOT, "
                     "parentheses) and the comparison predicate",
      .grammar_text = R"(
grammar SearchConditions;
search_condition : boolean_term ( 'OR' boolean_term )* ;
boolean_term : boolean_factor ( 'AND' boolean_factor )* ;
boolean_factor : [ 'NOT' ] boolean_primary ;
boolean_primary : predicate | '(' search_condition ')' ;
predicate : comparison_predicate ;
comparison_predicate : row_value_predicand comp_op row_value_predicand ;
comp_op : '=' | '<>' | '<=' | '>=' | '<' | '>' ;
row_value_predicand : value_expression ;
)",
      .requires_features = {"ValueExpressions"},
  });

  Register({
      .name = "Where",
      .description = "WHERE clause (Figure 2)",
      .grammar_text = R"(
grammar Where;
table_expression : from_clause [ where_clause ] ;
where_clause : 'WHERE' search_condition ;
)",
      .requires_features = {"TableExpression", "SearchConditions"},
  });

  Register({
      .name = "GroupBy",
      .description = "GROUP BY clause (Figure 2)",
      .grammar_text = R"(
grammar GroupBy;
table_expression : from_clause [ group_by_clause ] ;
group_by_clause : 'GROUP' 'BY' grouping_element_list ;
grouping_element_list : grouping_element ( ',' grouping_element )* ;
grouping_element : ordinary_grouping_set ;
ordinary_grouping_set : column_reference ;
)",
      .requires_features = {"TableExpression", "ValueExpressions"},
  });

  Register({
      .name = "Rollup",
      .description = "ROLLUP grouping sets (OLAP)",
      .grammar_text = R"(
grammar Rollup;
ordinary_grouping_set : 'ROLLUP' '(' column_reference_list ')' ;
column_reference_list : column_reference ( ',' column_reference )* ;
)",
      .requires_features = {"GroupBy"},
  });

  Register({
      .name = "Cube",
      .description = "CUBE grouping sets (OLAP)",
      .grammar_text = R"(
grammar Cube;
ordinary_grouping_set : 'CUBE' '(' column_reference_list ')' ;
column_reference_list : column_reference ( ',' column_reference )* ;
)",
      .requires_features = {"GroupBy"},
  });

  Register({
      .name = "GroupingSets",
      .description = "GROUPING SETS grouping (OLAP)",
      .grammar_text = R"(
grammar GroupingSets;
ordinary_grouping_set : 'GROUPING' 'SETS' '(' grouping_element_list ')' ;
)",
      .requires_features = {"GroupBy"},
  });

  Register({
      .name = "Having",
      .description = "HAVING clause (Figure 2); requires GROUP BY in this "
                     "product line (modeled as a requires constraint)",
      .grammar_text = R"(
grammar Having;
table_expression : from_clause [ having_clause ] ;
having_clause : 'HAVING' search_condition ;
)",
      .requires_features = {"GroupBy", "SearchConditions"},
  });

  Register({
      .name = "OrderBy",
      .description = "ORDER BY with ASC/DESC and NULLS FIRST/LAST",
      .grammar_text = R"(
grammar OrderBy;
query_statement : query_expression [ order_by_clause ] ;
order_by_clause : 'ORDER' 'BY' sort_specification_list ;
sort_specification_list : sort_specification ( ',' sort_specification )* ;
sort_specification : value_expression [ ordering_specification ] [ null_ordering ] ;
ordering_specification : 'ASC' | 'DESC' ;
null_ordering : 'NULLS' 'FIRST' | 'NULLS' 'LAST' ;
)",
      .requires_features = {"QuerySpecification", "ValueExpressions"},
  });

  Register({
      .name = "FetchFirst",
      .description = "FETCH FIRST n ROWS ONLY result limiting",
      .grammar_text = R"(
grammar FetchFirst;
tokens { NUMBER = number; }
query_statement : query_expression [ fetch_first_clause ] ;
fetch_first_clause : 'FETCH' 'FIRST' NUMBER 'ROWS' 'ONLY' ;
)",
      .requires_features = {"QuerySpecification"},
  });

  Register({
      .name = "Window",
      .description = "WINDOW clause with partition / order / frame "
                     "(Figure 2's Window feature)",
      .grammar_text = R"(
grammar Window;
tokens { IDENTIFIER = identifier; NUMBER = number; }
table_expression : from_clause [ window_clause ] ;
window_clause : 'WINDOW' window_definition ( ',' window_definition )* ;
window_definition : IDENTIFIER 'AS' '(' window_specification ')' ;
window_specification : [ window_partition_clause ] [ window_order_clause ] [ window_frame_clause ] ;
window_partition_clause : 'PARTITION' 'BY' column_reference_list ;
window_order_clause : 'ORDER' 'BY' sort_specification_list ;
window_frame_clause : frame_units frame_extent ;
frame_units : 'ROWS' | 'RANGE' ;
frame_extent : frame_between | frame_start ;
frame_between : 'BETWEEN' frame_bound 'AND' frame_bound ;
frame_start : frame_bound ;
frame_bound : 'UNBOUNDED' 'PRECEDING' | 'UNBOUNDED' 'FOLLOWING' | 'CURRENT' 'ROW' | NUMBER 'PRECEDING' | NUMBER 'FOLLOWING' ;
column_reference_list : column_reference ( ',' column_reference )* ;
)",
      .requires_features = {"TableExpression", "OrderBy"},
  });

  // -------------------------------------------------------------------
  // Richer value expressions
  // -------------------------------------------------------------------
  Register({
      .name = "NumericExpressions",
      .description = "Arithmetic (+ - * /), signed factors, parentheses",
      .grammar_text = R"(
grammar NumericExpressions;
numeric_value_expression : term ( sign term )* ;
term : factor ( mul_op factor )* ;
factor : [ sign ] value_primary ;
sign : '+' | '-' ;
mul_op : '*' | '/' ;
value_primary : '(' value_expression ')' ;
)",
      .requires_features = {"ValueExpressions"},
  });

  Register({
      .name = "Concatenation",
      .description = "String concatenation (||), merged into the term layer",
      .grammar_text = R"(
grammar Concatenation;
term : factor ( concat_op factor )* ;
concat_op : '||' ;
)",
      .requires_features = {"ValueExpressions"},
  });

  Register({
      .name = "StringFunctions",
      .description = "SUBSTRING, UPPER, LOWER, TRIM, CHAR_LENGTH, POSITION",
      .grammar_text = R"(
grammar StringFunctions;
nonparenthesized_value_primary : string_value_function ;
string_value_function
  : 'SUBSTRING' '(' value_expression 'FROM' value_expression [ 'FOR' value_expression ] ')'
  | 'UPPER' '(' value_expression ')'
  | 'LOWER' '(' value_expression ')'
  | 'TRIM' '(' value_expression ')'
  | 'CHAR_LENGTH' '(' value_expression ')'
  | 'POSITION' '(' value_expression 'IN' value_expression ')'
  ;
)",
      .requires_features = {"ValueExpressions"},
  });

  Register({
      .name = "DatetimeFunctions",
      .description = "CURRENT_DATE/TIME/TIMESTAMP and EXTRACT",
      .grammar_text = R"(
grammar DatetimeFunctions;
nonparenthesized_value_primary : datetime_value_function ;
datetime_value_function
  : 'CURRENT_DATE'
  | 'CURRENT_TIME'
  | 'CURRENT_TIMESTAMP'
  | 'EXTRACT' '(' extract_field 'FROM' value_expression ')'
  ;
extract_field : 'YEAR' | 'MONTH' | 'DAY' | 'HOUR' | 'MINUTE' | 'SECOND' ;
)",
      .requires_features = {"ValueExpressions"},
  });

  Register({
      .name = "CaseExpressions",
      .description = "Simple CASE, NULLIF and COALESCE abbreviations",
      .grammar_text = R"(
grammar CaseExpressions;
nonparenthesized_value_primary : case_expression ;
case_expression : case_abbreviation | case_specification ;
case_abbreviation
  : 'NULLIF' '(' value_expression ',' value_expression ')'
  | 'COALESCE' '(' value_expression ( ',' value_expression )* ')'
  ;
case_specification : simple_case ;
simple_case : 'CASE' value_expression simple_when_clause ( simple_when_clause )* [ else_clause ] 'END' ;
simple_when_clause : 'WHEN' value_expression 'THEN' value_expression ;
else_clause : 'ELSE' value_expression ;
)",
      .requires_features = {"ValueExpressions"},
  });

  Register({
      .name = "SearchedCase",
      .description = "Searched CASE (WHEN <search condition> THEN ...)",
      .grammar_text = R"(
grammar SearchedCase;
case_specification : searched_case ;
searched_case : 'CASE' searched_when_clause ( searched_when_clause )* [ else_clause ] 'END' ;
searched_when_clause : 'WHEN' search_condition 'THEN' value_expression ;
else_clause : 'ELSE' value_expression ;
)",
      .requires_features = {"CaseExpressions", "SearchConditions"},
  });

  Register({
      .name = "DataTypes",
      .description = "SQL Foundation data types (numeric, character, "
                     "datetime, boolean, LOB)",
      .grammar_text = R"(
grammar DataTypes;
tokens { NUMBER = number; }
data_type : numeric_type | character_type | datetime_type | boolean_type | lob_type ;
numeric_type
  : 'INTEGER' | 'INT' | 'SMALLINT' | 'BIGINT'
  | exact_numeric_type
  | approximate_numeric_type
  ;
exact_numeric_type : dec_name [ '(' NUMBER [ ',' NUMBER ] ')' ] ;
dec_name : 'NUMERIC' | 'DECIMAL' | 'DEC' ;
approximate_numeric_type : 'FLOAT' [ '(' NUMBER ')' ] | 'REAL' | 'DOUBLE' 'PRECISION' ;
character_type : char_name [ '(' NUMBER ')' ] ;
char_name : 'CHARACTER' 'VARYING' | 'CHARACTER' | 'CHAR' 'VARYING' | 'CHAR' | 'VARCHAR' ;
datetime_type : 'DATE' | 'TIMESTAMP' [ '(' NUMBER ')' ] | 'TIME' ;
boolean_type : 'BOOLEAN' ;
lob_type : 'CLOB' | 'BLOB' ;
)",
  });

  Register({
      .name = "CastExpression",
      .description = "CAST (expr AS type)",
      .grammar_text = R"(
grammar CastExpression;
nonparenthesized_value_primary : cast_specification ;
cast_specification : 'CAST' '(' cast_operand 'AS' data_type ')' ;
cast_operand : value_expression ;
)",
      .requires_features = {"ValueExpressions", "DataTypes"},
  });

  Register({
      .name = "SetFunctions",
      .description = "Aggregate functions (COUNT/SUM/AVG/MIN/MAX/...) with "
                     "optional DISTINCT/ALL",
      .grammar_text = R"(
grammar SetFunctions;
nonparenthesized_value_primary : set_function_specification ;
set_function_specification : 'COUNT' '(' '*' ')' | general_set_function ;
general_set_function : set_function_type '(' [ set_quantifier ] value_expression ')' ;
set_function_type
  : 'AVG' | 'MAX' | 'MIN' | 'SUM' | 'COUNT' | 'EVERY'
  | 'STDDEV_POP' | 'STDDEV_SAMP' | 'VAR_POP' | 'VAR_SAMP'
  ;
set_quantifier : 'DISTINCT' | 'ALL' ;
)",
      .requires_features = {"ValueExpressions"},
  });

  Register({
      .name = "RoutineInvocation",
      .description = "Function-call suffix on identifier chains "
                     "(user-defined routine invocation)",
      .grammar_text = R"(
grammar RoutineInvocation;
column_reference : identifier_chain [ routine_call_suffix ] ;
routine_call_suffix : '(' [ sql_argument_list ] ')' ;
sql_argument_list : value_expression ( ',' value_expression )* ;
)",
      .requires_features = {"ValueExpressions"},
  });

  // -------------------------------------------------------------------
  // Subqueries and predicates
  // -------------------------------------------------------------------
  Register({
      .name = "Subqueries",
      .description = "Scalar and table subqueries",
      .grammar_text = R"(
grammar Subqueries;
value_primary : scalar_subquery ;
scalar_subquery : subquery ;
subquery : '(' query_expression ')' ;
table_subquery : subquery ;
)",
      .requires_features = {"QuerySpecification", "ValueExpressions"},
  });

  Register({
      .name = "DerivedTable",
      .description = "Subquery in the FROM clause (derived table with "
                     "mandatory correlation name)",
      .grammar_text = R"(
grammar DerivedTable;
table_primary : derived_table correlation_clause ;
derived_table : table_subquery ;
)",
      .requires_features = {"Subqueries", "From", "CorrelationName"},
  });

  Register({
      .name = "BetweenPredicate",
      .description = "x [NOT] BETWEEN a AND b",
      .grammar_text = R"(
grammar BetweenPredicate;
predicate : between_predicate ;
between_predicate : row_value_predicand [ 'NOT' ] 'BETWEEN' row_value_predicand 'AND' row_value_predicand ;
)",
      .requires_features = {"SearchConditions"},
  });

  Register({
      .name = "InPredicate",
      .description = "x [NOT] IN (value list)",
      .grammar_text = R"(
grammar InPredicate;
predicate : in_predicate ;
in_predicate : row_value_predicand [ 'NOT' ] 'IN' in_predicate_value ;
in_predicate_value : '(' in_value_list ')' ;
in_value_list : value_expression ( ',' value_expression )* ;
)",
      .requires_features = {"SearchConditions"},
  });

  Register({
      .name = "InSubquery",
      .description = "x [NOT] IN (subquery)",
      .grammar_text = R"(
grammar InSubquery;
in_predicate_value : table_subquery ;
)",
      .requires_features = {"InPredicate", "Subqueries"},
  });

  Register({
      .name = "LikePredicate",
      .description = "x [NOT] LIKE pattern [ESCAPE e]",
      .grammar_text = R"(
grammar LikePredicate;
predicate : like_predicate ;
like_predicate : row_value_predicand [ 'NOT' ] 'LIKE' value_expression [ 'ESCAPE' value_expression ] ;
)",
      .requires_features = {"SearchConditions"},
  });

  Register({
      .name = "NullPredicate",
      .description = "x IS [NOT] NULL",
      .grammar_text = R"(
grammar NullPredicate;
predicate : null_predicate ;
null_predicate : row_value_predicand 'IS' [ 'NOT' ] 'NULL' ;
)",
      .requires_features = {"SearchConditions"},
  });

  Register({
      .name = "ExistsPredicate",
      .description = "EXISTS (subquery)",
      .grammar_text = R"(
grammar ExistsPredicate;
predicate : exists_predicate ;
exists_predicate : 'EXISTS' table_subquery ;
)",
      .requires_features = {"SearchConditions", "Subqueries"},
  });

  Register({
      .name = "QuantifiedPredicate",
      .description = "x op ALL/SOME/ANY (subquery)",
      .grammar_text = R"(
grammar QuantifiedPredicate;
predicate : quantified_comparison_predicate ;
quantified_comparison_predicate : row_value_predicand comp_op quantifier table_subquery ;
quantifier : 'ALL' | 'SOME' | 'ANY' ;
)",
      .requires_features = {"SearchConditions", "Subqueries"},
  });

  // -------------------------------------------------------------------
  // Joins and set operations
  // -------------------------------------------------------------------
  Register({
      .name = "JoinedTable",
      .description = "Qualified joins (INNER/LEFT/RIGHT/FULL [OUTER]) with "
                     "ON / USING, plus CROSS JOIN",
      .grammar_text = R"(
grammar JoinedTable;
tokens { IDENTIFIER = identifier; }
table_reference : table_primary ( joined_table )* ;
joined_table : qualified_join | cross_join ;
qualified_join : [ join_type ] 'JOIN' table_primary join_specification ;
cross_join : 'CROSS' 'JOIN' table_primary ;
join_type : 'INNER' | outer_join_type [ 'OUTER' ] ;
outer_join_type : 'LEFT' | 'RIGHT' | 'FULL' ;
join_specification : join_condition | named_columns_join ;
join_condition : 'ON' search_condition ;
named_columns_join : 'USING' '(' join_column_list ')' ;
join_column_list : IDENTIFIER ( ',' IDENTIFIER )* ;
)",
      .requires_features = {"From", "SearchConditions"},
  });

  Register({
      .name = "NaturalJoin",
      .description = "NATURAL [join type] JOIN",
      .grammar_text = R"(
grammar NaturalJoin;
joined_table : natural_join ;
natural_join : 'NATURAL' [ join_type ] 'JOIN' table_primary ;
)",
      .requires_features = {"JoinedTable"},
  });

  Register({
      .name = "Union",
      .description = "UNION [ALL|DISTINCT] set operation and parenthesized "
                     "query primaries",
      .grammar_text = R"(
grammar Union;
query_expression : query_primary ( set_operator query_primary )* ;
set_operator : 'UNION' [ set_quantifier ] ;
set_quantifier : 'DISTINCT' | 'ALL' ;
query_primary : '(' query_expression ')' ;
)",
      .requires_features = {"QuerySpecification"},
  });

  Register({
      .name = "Except",
      .description = "EXCEPT [ALL|DISTINCT] set operation",
      .grammar_text = R"(
grammar Except;
query_expression : query_primary ( set_operator query_primary )* ;
set_operator : 'EXCEPT' [ set_quantifier ] ;
set_quantifier : 'DISTINCT' | 'ALL' ;
query_primary : '(' query_expression ')' ;
)",
      .requires_features = {"QuerySpecification"},
  });

  Register({
      .name = "Intersect",
      .description = "INTERSECT [ALL|DISTINCT] set operation",
      .grammar_text = R"(
grammar Intersect;
query_expression : query_primary ( set_operator query_primary )* ;
set_operator : 'INTERSECT' [ set_quantifier ] ;
set_quantifier : 'DISTINCT' | 'ALL' ;
query_primary : '(' query_expression ')' ;
)",
      .requires_features = {"QuerySpecification"},
  });

  // -------------------------------------------------------------------
  // Data manipulation statements
  // -------------------------------------------------------------------
  Register({
      .name = "InsertStatement",
      .description = "INSERT INTO ... VALUES / DEFAULT VALUES",
      .grammar_text = R"(
grammar InsertStatement;
tokens { IDENTIFIER = identifier; }
sql_statement : insert_statement ;
insert_statement : 'INSERT' 'INTO' table_name insert_columns_and_source ;
insert_columns_and_source
  : [ '(' column_name_list ')' ] values_clause
  | 'DEFAULT' 'VALUES'
  ;
values_clause : 'VALUES' row_value_list ;
row_value_list : row_value_constructor ( ',' row_value_constructor )* ;
row_value_constructor : '(' value_expression ( ',' value_expression )* ')' ;
column_name_list : IDENTIFIER ( ',' IDENTIFIER )* ;
)",
      .requires_features = {"From", "ValueExpressions"},
  });

  Register({
      .name = "InsertFromQuery",
      .description = "INSERT INTO ... <query expression>",
      .grammar_text = R"(
grammar InsertFromQuery;
insert_columns_and_source : [ '(' column_name_list ')' ] query_expression ;
)",
      .requires_features = {"InsertStatement", "QuerySpecification"},
  });

  Register({
      .name = "UpdateStatement",
      .description = "UPDATE ... SET ... [WHERE ...]",
      .grammar_text = R"(
grammar UpdateStatement;
sql_statement : update_statement ;
update_statement : 'UPDATE' table_name 'SET' set_clause_list [ where_clause ] ;
set_clause_list : set_clause ( ',' set_clause )* ;
set_clause : column_reference '=' update_source ;
update_source : value_expression | 'DEFAULT' ;
where_clause : 'WHERE' search_condition ;
)",
      .requires_features = {"From", "SearchConditions"},
  });

  Register({
      .name = "DeleteStatement",
      .description = "DELETE FROM ... [WHERE ...]",
      .grammar_text = R"(
grammar DeleteStatement;
sql_statement : delete_statement ;
delete_statement : 'DELETE' 'FROM' table_name [ where_clause ] ;
where_clause : 'WHERE' search_condition ;
)",
      .requires_features = {"From", "SearchConditions"},
  });

  Register({
      .name = "MergeStatement",
      .description = "MERGE INTO ... USING ... WHEN [NOT] MATCHED",
      .grammar_text = R"(
grammar MergeStatement;
sql_statement : merge_statement ;
merge_statement : 'MERGE' 'INTO' table_name [ correlation_clause ] 'USING' table_reference 'ON' search_condition merge_operation_specification ;
merge_operation_specification : merge_when_clause ( merge_when_clause )* ;
merge_when_clause : merge_when_matched_clause | merge_when_not_matched_clause ;
merge_when_matched_clause : 'WHEN' 'MATCHED' 'THEN' 'UPDATE' 'SET' set_clause_list ;
merge_when_not_matched_clause : 'WHEN' 'NOT' 'MATCHED' 'THEN' 'INSERT' [ '(' column_name_list ')' ] values_clause ;
)",
      .requires_features = {"UpdateStatement", "InsertStatement",
                            "CorrelationName"},
  });

  // -------------------------------------------------------------------
  // Data definition statements
  // -------------------------------------------------------------------
  Register({
      .name = "TableDefinition",
      .description = "CREATE [TEMPORARY] TABLE with column definitions and "
                     "column constraints",
      .grammar_text = R"(
grammar TableDefinition;
tokens { IDENTIFIER = identifier; }
sql_statement : table_definition ;
table_definition : 'CREATE' [ table_scope ] 'TABLE' table_name '(' table_element ( ',' table_element )* ')' ;
table_scope : global_or_local 'TEMPORARY' ;
global_or_local : 'GLOBAL' | 'LOCAL' ;
table_element : column_definition ;
column_definition : IDENTIFIER data_type [ default_clause ] ( column_constraint )* ;
default_clause : 'DEFAULT' value_expression ;
column_constraint : 'NOT' 'NULL' | 'UNIQUE' | 'PRIMARY' 'KEY' | references_specification ;
references_specification : 'REFERENCES' table_name [ '(' column_name_list ')' ] ;
column_name_list : IDENTIFIER ( ',' IDENTIFIER )* ;
)",
      .requires_features = {"From", "DataTypes", "ValueExpressions"},
  });

  Register({
      .name = "TableConstraints",
      .description = "Table-level UNIQUE / PRIMARY KEY / FOREIGN KEY / "
                     "CHECK constraints",
      .grammar_text = R"(
grammar TableConstraints;
tokens { IDENTIFIER = identifier; }
table_element : table_constraint_definition ;
table_constraint_definition : [ constraint_name_definition ] table_constraint ;
constraint_name_definition : 'CONSTRAINT' IDENTIFIER ;
table_constraint : unique_constraint | referential_constraint | check_constraint ;
unique_constraint : 'UNIQUE' '(' column_name_list ')' | 'PRIMARY' 'KEY' '(' column_name_list ')' ;
referential_constraint : 'FOREIGN' 'KEY' '(' column_name_list ')' references_specification ;
check_constraint : 'CHECK' '(' search_condition ')' ;
)",
      .requires_features = {"TableDefinition", "SearchConditions"},
  });

  Register({
      .name = "ReferentialActions",
      .description = "ON UPDATE / ON DELETE referential actions",
      .grammar_text = R"(
grammar ReferentialActions;
references_specification : 'REFERENCES' table_name [ '(' column_name_list ')' ] ( referential_action_clause )* ;
referential_action_clause : 'ON' update_or_delete referential_action ;
update_or_delete : 'UPDATE' | 'DELETE' ;
referential_action : 'CASCADE' | 'SET' 'NULL' | 'SET' 'DEFAULT' | 'RESTRICT' | 'NO' 'ACTION' ;
)",
      .requires_features = {"TableDefinition"},
  });

  Register({
      .name = "ViewDefinition",
      .description = "CREATE [RECURSIVE] VIEW ... AS query "
                     "[WITH CHECK OPTION]",
      .grammar_text = R"(
grammar ViewDefinition;
tokens { IDENTIFIER = identifier; }
sql_statement : view_definition ;
view_definition : 'CREATE' [ 'RECURSIVE' ] 'VIEW' table_name [ '(' column_name_list ')' ] 'AS' query_expression [ with_check_option ] ;
with_check_option : 'WITH' 'CHECK' 'OPTION' ;
column_name_list : IDENTIFIER ( ',' IDENTIFIER )* ;
)",
      .requires_features = {"From", "QuerySpecification"},
  });

  Register({
      .name = "AlterTable",
      .description = "ALTER TABLE add/drop/alter column, add constraint",
      .grammar_text = R"(
grammar AlterTable;
tokens { IDENTIFIER = identifier; }
sql_statement : alter_table_statement ;
alter_table_statement : 'ALTER' 'TABLE' table_name alter_table_action ;
alter_table_action
  : add_column_definition
  | drop_column_definition
  | alter_column_definition
  | add_table_constraint_definition
  ;
add_column_definition : 'ADD' [ 'COLUMN' ] column_definition ;
drop_column_definition : 'DROP' [ 'COLUMN' ] IDENTIFIER [ drop_behavior ] ;
alter_column_definition : 'ALTER' [ 'COLUMN' ] IDENTIFIER alter_column_action ;
alter_column_action : 'SET' default_clause | 'DROP' 'DEFAULT' ;
add_table_constraint_definition : 'ADD' table_constraint_definition ;
drop_behavior : 'CASCADE' | 'RESTRICT' ;
)",
      .requires_features = {"TableDefinition", "TableConstraints"},
  });

  Register({
      .name = "DropStatement",
      .description = "DROP TABLE / VIEW [CASCADE|RESTRICT]",
      .grammar_text = R"(
grammar DropStatement;
sql_statement : drop_statement ;
drop_statement : 'DROP' drop_object table_name [ drop_behavior ] ;
drop_object : 'TABLE' | 'VIEW' ;
drop_behavior : 'CASCADE' | 'RESTRICT' ;
)",
      .requires_features = {"From"},
  });

  Register({
      .name = "SchemaDefinition",
      .description = "CREATE SCHEMA [AUTHORIZATION]",
      .grammar_text = R"(
grammar SchemaDefinition;
tokens { IDENTIFIER = identifier; }
sql_statement : schema_definition ;
schema_definition : 'CREATE' 'SCHEMA' IDENTIFIER [ 'AUTHORIZATION' IDENTIFIER ] ;
)",
  });

  Register({
      .name = "DomainDefinition",
      .description = "CREATE DOMAIN ... AS type [DEFAULT ...]",
      .grammar_text = R"(
grammar DomainDefinition;
tokens { IDENTIFIER = identifier; }
sql_statement : domain_definition ;
domain_definition : 'CREATE' 'DOMAIN' IDENTIFIER [ 'AS' ] data_type [ default_clause ] ;
default_clause : 'DEFAULT' value_expression ;
)",
      .requires_features = {"DataTypes", "ValueExpressions"},
  });

  Register({
      .name = "SequenceGenerator",
      .description = "CREATE SEQUENCE with generator options",
      .grammar_text = R"(
grammar SequenceGenerator;
tokens { NUMBER = number; }
sql_statement : sequence_generator_definition ;
sequence_generator_definition : 'CREATE' 'SEQUENCE' table_name ( sequence_generator_option )* ;
sequence_generator_option
  : 'START' 'WITH' NUMBER
  | 'INCREMENT' 'BY' NUMBER
  | 'MAXVALUE' NUMBER
  | 'MINVALUE' NUMBER
  | 'CYCLE'
  | 'NO' 'CYCLE'
  ;
)",
      .requires_features = {"From"},
  });

  Register({
      .name = "TriggerDefinition",
      .description = "CREATE TRIGGER BEFORE/AFTER event with a triggered "
                     "SQL statement",
      .grammar_text = R"(
grammar TriggerDefinition;
tokens { IDENTIFIER = identifier; }
sql_statement : trigger_definition ;
trigger_definition : 'CREATE' 'TRIGGER' IDENTIFIER trigger_action_time trigger_event 'ON' table_name [ for_each_clause ] triggered_action ;
trigger_action_time : 'BEFORE' | 'AFTER' ;
trigger_event : 'INSERT' | 'DELETE' | 'UPDATE' [ 'OF' column_name_list ] ;
for_each_clause : 'FOR' 'EACH' row_or_statement ;
row_or_statement : 'ROW' | 'STATEMENT' ;
triggered_action : sql_statement ;
column_name_list : IDENTIFIER ( ',' IDENTIFIER )* ;
)",
      .requires_features = {"From"},
  });

  // -------------------------------------------------------------------
  // Transactions, sessions, access control, cursors
  // -------------------------------------------------------------------
  Register({
      .name = "Transactions",
      .description = "COMMIT / ROLLBACK / SAVEPOINT / START TRANSACTION / "
                     "SET TRANSACTION with isolation levels",
      .grammar_text = R"(
grammar Transactions;
tokens { IDENTIFIER = identifier; }
sql_statement : transaction_statement ;
transaction_statement
  : commit_statement
  | rollback_statement
  | savepoint_statement
  | start_transaction_statement
  | set_transaction_statement
  ;
commit_statement : 'COMMIT' [ 'WORK' ] ;
rollback_statement : 'ROLLBACK' [ 'WORK' ] [ savepoint_clause ] ;
savepoint_clause : 'TO' 'SAVEPOINT' IDENTIFIER ;
savepoint_statement : 'SAVEPOINT' IDENTIFIER ;
start_transaction_statement : 'START' 'TRANSACTION' [ transaction_mode_list ] ;
set_transaction_statement : 'SET' 'TRANSACTION' transaction_mode_list ;
transaction_mode_list : transaction_mode ( ',' transaction_mode )* ;
transaction_mode : isolation_level | 'READ' 'ONLY' | 'READ' 'WRITE' ;
isolation_level : 'ISOLATION' 'LEVEL' level_of_isolation ;
level_of_isolation : 'READ' 'UNCOMMITTED' | 'READ' 'COMMITTED' | 'REPEATABLE' 'READ' | 'SERIALIZABLE' ;
)",
  });

  Register({
      .name = "SessionStatements",
      .description = "SET SCHEMA / SET ROLE / SET TIME ZONE",
      .grammar_text = R"(
grammar SessionStatements;
tokens { IDENTIFIER = identifier; STRING = string; }
sql_statement : session_statement ;
session_statement : set_schema_statement | set_role_statement | set_time_zone_statement ;
set_schema_statement : 'SET' 'SCHEMA' IDENTIFIER ;
set_role_statement : 'SET' 'ROLE' IDENTIFIER ;
set_time_zone_statement : 'SET' 'TIME' 'ZONE' set_time_zone_value ;
set_time_zone_value : 'LOCAL' | STRING ;
)",
  });

  Register({
      .name = "Grant",
      .description = "GRANT privileges ON table TO grantees "
                     "[WITH GRANT OPTION]",
      .grammar_text = R"(
grammar Grant;
tokens { IDENTIFIER = identifier; }
sql_statement : grant_statement ;
grant_statement : 'GRANT' privileges 'ON' [ 'TABLE' ] table_name 'TO' grantee_list [ grant_option ] ;
grant_option : 'WITH' 'GRANT' 'OPTION' ;
privileges : 'ALL' 'PRIVILEGES' | privilege_list ;
privilege_list : privilege ( ',' privilege )* ;
privilege : 'SELECT' | 'INSERT' | 'UPDATE' | 'DELETE' | 'REFERENCES' | 'USAGE' | 'TRIGGER' ;
grantee_list : grantee ( ',' grantee )* ;
grantee : 'PUBLIC' | IDENTIFIER ;
)",
      .requires_features = {"From"},
  });

  Register({
      .name = "Revoke",
      .description = "REVOKE [GRANT OPTION FOR] privileges",
      .grammar_text = R"(
grammar Revoke;
sql_statement : revoke_statement ;
revoke_statement : 'REVOKE' [ grant_option_for ] privileges 'ON' [ 'TABLE' ] table_name 'FROM' grantee_list [ drop_behavior ] ;
grant_option_for : 'GRANT' 'OPTION' 'FOR' ;
drop_behavior : 'CASCADE' | 'RESTRICT' ;
)",
      .requires_features = {"Grant"},
  });

  Register({
      .name = "Cursors",
      .description = "DECLARE / OPEN / CLOSE / FETCH cursor statements",
      .grammar_text = R"(
grammar Cursors;
tokens { IDENTIFIER = identifier; NUMBER = number; }
sql_statement : cursor_statement ;
cursor_statement : declare_cursor | open_statement | close_statement | fetch_statement ;
declare_cursor : 'DECLARE' IDENTIFIER [ cursor_sensitivity ] [ 'SCROLL' ] 'CURSOR' 'FOR' query_expression ;
cursor_sensitivity : 'SENSITIVE' | 'INSENSITIVE' | 'ASENSITIVE' ;
open_statement : 'OPEN' IDENTIFIER ;
close_statement : 'CLOSE' IDENTIFIER ;
fetch_statement : 'FETCH' [ fetch_orientation 'FROM' ] IDENTIFIER ;
fetch_orientation : 'NEXT' | 'PRIOR' | 'FIRST' | 'LAST' | 'ABSOLUTE' NUMBER | 'RELATIVE' NUMBER ;
)",
      .requires_features = {"QuerySpecification"},
  });

  // -------------------------------------------------------------------
  // SQL:2003 optional / advanced constructs
  // -------------------------------------------------------------------
  Register({
      .name = "WithClause",
      .description = "WITH [RECURSIVE] common table expressions",
      .grammar_text = R"(
grammar WithClause;
tokens { IDENTIFIER = identifier; }
query_statement : [ with_clause ] query_expression ;
with_clause : 'WITH' [ 'RECURSIVE' ] with_list_element ( ',' with_list_element )* ;
with_list_element : IDENTIFIER [ '(' column_name_list ')' ] 'AS' '(' query_expression ')' ;
column_name_list : IDENTIFIER ( ',' IDENTIFIER )* ;
)",
      .requires_features = {"QuerySpecification"},
  });

  Register({
      .name = "DatetimeLiterals",
      .description = "DATE / TIME / TIMESTAMP '...' literals",
      .grammar_text = R"(
grammar DatetimeLiterals;
tokens { STRING = string; }
unsigned_literal : datetime_literal ;
datetime_literal : 'DATE' STRING | 'TIME' STRING | 'TIMESTAMP' STRING ;
)",
      .requires_features = {"Literals"},
  });

  Register({
      .name = "IntervalLiterals",
      .description = "INTERVAL '...' <qualifier> literals",
      .grammar_text = R"(
grammar IntervalLiterals;
tokens { STRING = string; }
unsigned_literal : interval_literal ;
interval_literal : 'INTERVAL' STRING interval_qualifier ;
interval_qualifier
  : 'YEAR' 'TO' 'MONTH'
  | 'DAY' 'TO' 'SECOND'
  | 'YEAR' | 'MONTH' | 'DAY' | 'HOUR' | 'MINUTE' | 'SECOND'
  ;
)",
      .requires_features = {"Literals"},
  });

  Register({
      .name = "OverlapsPredicate",
      .description = "x OVERLAPS y period predicate",
      .grammar_text = R"(
grammar OverlapsPredicate;
predicate : overlaps_predicate ;
overlaps_predicate : row_value_predicand 'OVERLAPS' row_value_predicand ;
)",
      .requires_features = {"SearchConditions"},
  });

  Register({
      .name = "SimilarPredicate",
      .description = "x [NOT] SIMILAR TO pattern regular-expression match",
      .grammar_text = R"(
grammar SimilarPredicate;
predicate : similar_predicate ;
similar_predicate : row_value_predicand [ 'NOT' ] 'SIMILAR' 'TO' value_expression [ 'ESCAPE' value_expression ] ;
)",
      .requires_features = {"SearchConditions"},
  });

  Register({
      .name = "DistinctPredicate",
      .description = "x IS [NOT] DISTINCT FROM y",
      .grammar_text = R"(
grammar DistinctPredicate;
predicate : distinct_predicate ;
distinct_predicate : row_value_predicand 'IS' [ 'NOT' ] 'DISTINCT' 'FROM' row_value_predicand ;
)",
      .requires_features = {"SearchConditions"},
  });

  Register({
      .name = "UniquePredicate",
      .description = "UNIQUE (subquery)",
      .grammar_text = R"(
grammar UniquePredicate;
predicate : unique_predicate ;
unique_predicate : 'UNIQUE' table_subquery ;
)",
      .requires_features = {"SearchConditions", "Subqueries"},
  });

  Register({
      .name = "PositionedDml",
      .description = "WHERE CURRENT OF <cursor> positioned update/delete",
      .grammar_text = R"(
grammar PositionedDml;
tokens { IDENTIFIER = identifier; }
where_clause : 'WHERE' 'CURRENT' 'OF' IDENTIFIER ;
)",
      .requires_features = {"Cursors"},
  });

  Register({
      .name = "FilterClause",
      .description = "FILTER (WHERE ...) on aggregate functions",
      .grammar_text = R"(
grammar FilterClause;
general_set_function : set_function_type '(' [ set_quantifier ] value_expression ')' [ filter_clause ] ;
filter_clause : 'FILTER' '(' 'WHERE' search_condition ')' ;
)",
      .requires_features = {"SetFunctions", "SearchConditions"},
  });

  Register({
      .name = "WindowFunctions",
      .description = "RANK / DENSE_RANK / ROW_NUMBER ... OVER (window)",
      .grammar_text = R"(
grammar WindowFunctions;
nonparenthesized_value_primary : window_function ;
window_function : window_function_type 'OVER' '(' window_specification ')' ;
window_function_type : 'RANK' '(' ')' | 'DENSE_RANK' '(' ')' | 'ROW_NUMBER' '(' ')' ;
)",
      .requires_features = {"ValueExpressions", "Window"},
  });

  Register({
      .name = "RowValueConstructors",
      .description = "Row value constructors in predicates, e.g. "
                     "(a, b) = (1, 2)",
      .grammar_text = R"(
grammar RowValueConstructors;
row_value_predicand : row_value_constructor ;
row_value_constructor : '(' value_expression ( ',' value_expression )* ')' ;
)",
      .requires_features = {"SearchConditions"},
  });

  Register({
      .name = "CollateClause",
      .description = "COLLATE on sort specifications",
      .grammar_text = R"(
grammar CollateClause;
sort_specification : value_expression [ collate_clause ] ;
collate_clause : 'COLLATE' identifier_chain ;
)",
      .requires_features = {"OrderBy"},
  });

  Register({
      .name = "BetweenSymmetric",
      .description = "SYMMETRIC / ASYMMETRIC on BETWEEN predicates",
      .grammar_text = R"(
grammar BetweenSymmetric;
between_predicate : row_value_predicand [ 'NOT' ] 'BETWEEN' [ symmetric_specification ] row_value_predicand 'AND' row_value_predicand ;
symmetric_specification : 'SYMMETRIC' | 'ASYMMETRIC' ;
)",
      .requires_features = {"BetweenPredicate"},
  });

  Register({
      .name = "Corresponding",
      .description = "CORRESPONDING [BY (columns)] on set operations",
      .grammar_text = R"(
grammar Corresponding;
tokens { IDENTIFIER = identifier; }
set_operator : 'UNION' [ set_quantifier ] [ corresponding_spec ] ;
corresponding_spec : 'CORRESPONDING' [ 'BY' '(' column_name_list ')' ] ;
column_name_list : IDENTIFIER ( ',' IDENTIFIER )* ;
set_quantifier : 'DISTINCT' | 'ALL' ;
)",
      .requires_features = {"Union"},
  });

  Register({
      .name = "EmptyGroupingSet",
      .description = "The empty grouping set `()` (grand total rows)",
      .grammar_text = R"(
grammar EmptyGroupingSet;
ordinary_grouping_set : '(' ')' ;
)",
      .requires_features = {"GroupBy"},
  });

  Register({
      .name = "CallStatement",
      .description = "CALL of an SQL-invoked routine",
      .grammar_text = R"(
grammar CallStatement;
sql_statement : call_statement ;
call_statement : 'CALL' identifier_chain '(' [ sql_argument_list ] ')' ;
sql_argument_list : value_expression ( ',' value_expression )* ;
)",
      .requires_features = {"ValueExpressions"},
  });

  Register({
      .name = "TruncateTable",
      .description = "TRUNCATE TABLE (a SQL:2008 forward-port, included "
                     "as a future-work extension feature)",
      .grammar_text = R"(
grammar TruncateTable;
sql_statement : truncate_statement ;
truncate_statement : 'TRUNCATE' 'TABLE' table_name ;
)",
      .requires_features = {"From"},
  });

  Register({
      .name = "ReleaseSavepoint",
      .description = "RELEASE SAVEPOINT",
      .grammar_text = R"(
grammar ReleaseSavepoint;
tokens { IDENTIFIER = identifier; }
transaction_statement : release_savepoint_statement ;
release_savepoint_statement : 'RELEASE' 'SAVEPOINT' IDENTIFIER ;
)",
      .requires_features = {"Transactions"},
  });

  // -------------------------------------------------------------------
  // Sensor-network (TinySQL) extension features
  // -------------------------------------------------------------------
  Register({
      .name = "SamplePeriod",
      .description = "TinySQL acquisitional SAMPLE PERIOD clause "
                     "(TinyDB sensor networks)",
      .grammar_text = R"(
grammar SamplePeriod;
tokens { NUMBER = number; }
query_specification : 'SELECT' select_list table_expression [ sample_period_clause ] ;
sample_period_clause : 'SAMPLE' 'PERIOD' NUMBER [ 'FOR' NUMBER ] ;
)",
      .requires_features = {"QuerySpecification"},
  });

  Register({
      .name = "EpochDuration",
      .description = "TinySQL EPOCH DURATION clause (TinyDB sensor "
                     "networks)",
      .grammar_text = R"(
grammar EpochDuration;
tokens { NUMBER = number; }
query_specification : 'SELECT' select_list table_expression [ epoch_duration_clause ] ;
epoch_duration_clause : 'EPOCH' 'DURATION' NUMBER ;
)",
      .requires_features = {"QuerySpecification"},
  });
}

void SqlFeatureCatalog::Register(SqlFeatureModule module) {
  index_.emplace(module.name, modules_.size());
  modules_.push_back(std::move(module));
}

const SqlFeatureCatalog& SqlFeatureCatalog::Instance() {
  static const SqlFeatureCatalog& instance = *new SqlFeatureCatalog();
  return instance;
}

const SqlFeatureModule* SqlFeatureCatalog::Find(
    const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &modules_[it->second];
}

bool SqlFeatureCatalog::Contains(const std::string& name) const {
  return index_.contains(name);
}

std::vector<std::string> SqlFeatureCatalog::ModuleNames() const {
  std::vector<std::string> out;
  out.reserve(modules_.size());
  for (const SqlFeatureModule& module : modules_) out.push_back(module.name);
  return out;
}

Result<Grammar> SqlFeatureCatalog::GrammarFor(const std::string& feature,
                                              int count) const {
  const SqlFeatureModule* module = Find(feature);
  if (module == nullptr) {
    return Status::NotFound("no sub-grammar module for feature '" + feature +
                            "'");
  }
  const std::string& text = (count != 1 && !module->multi_grammar_text.empty())
                                ? module->multi_grammar_text
                                : module->grammar_text;
  return ParseGrammarText(text, feature);
}

std::map<std::string, std::vector<std::string>>
SqlFeatureCatalog::RequiresMap() const {
  std::map<std::string, std::vector<std::string>> out;
  for (const SqlFeatureModule& module : modules_) {
    if (!module.requires_features.empty()) {
      out[module.name] = module.requires_features;
    }
  }
  return out;
}

std::map<std::string, std::vector<std::string>>
SqlFeatureCatalog::ExcludesMap() const {
  std::map<std::string, std::vector<std::string>> out;
  for (const SqlFeatureModule& module : modules_) {
    if (!module.excludes_features.empty()) {
      out[module.name] = module.excludes_features;
    }
  }
  return out;
}

Result<std::vector<std::string>> SqlFeatureCatalog::RequiredClosure(
    const std::vector<std::string>& features) const {
  std::set<std::string> closed;
  std::vector<std::string> work = features;
  while (!work.empty()) {
    std::string feature = std::move(work.back());
    work.pop_back();
    const SqlFeatureModule* module = Find(feature);
    if (module == nullptr) {
      return Status::NotFound("unknown feature '" + feature +
                              "' in required closure");
    }
    if (!closed.insert(feature).second) continue;
    for (const std::string& required : module->requires_features) {
      work.push_back(required);
    }
  }
  // Canonical catalog order.
  std::vector<std::string> out;
  for (const SqlFeatureModule& module : modules_) {
    if (closed.contains(module.name)) out.push_back(module.name);
  }
  return out;
}

Result<std::vector<std::string>> SqlFeatureCatalog::CompletedClosure(
    const std::vector<std::string>& features) const {
  SQLPL_ASSIGN_OR_RETURN(std::vector<std::string> selected,
                         RequiredClosure(features));
  // Iterate: collect nonterminals defined vs referenced by the selection;
  // for each dangling reference add the earliest defining module.
  for (size_t round = 0; round < modules_.size(); ++round) {
    std::set<std::string> defined;
    std::set<std::string> referenced;
    for (const std::string& feature : selected) {
      for (int count : {1, 2}) {
        SQLPL_ASSIGN_OR_RETURN(Grammar grammar, GrammarFor(feature, count));
        for (const std::string& nt : grammar.NonterminalNames()) {
          defined.insert(nt);
        }
        for (const Production& production : grammar.productions()) {
          for (const Alternative& alt : production.alternatives()) {
            std::vector<std::string> refs;
            alt.body.CollectNonterminals(&refs);
            referenced.insert(refs.begin(), refs.end());
          }
        }
      }
    }
    std::vector<std::string> additions;
    for (const std::string& ref : referenced) {
      if (defined.contains(ref)) continue;
      // Earliest catalog module defining `ref`.
      bool found = false;
      for (const SqlFeatureModule& module : modules_) {
        SQLPL_ASSIGN_OR_RETURN(Grammar grammar, GrammarFor(module.name));
        if (grammar.HasProduction(ref)) {
          additions.push_back(module.name);
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::ConfigurationError(
            "no catalog module defines nonterminal '" + ref + "'");
      }
    }
    if (additions.empty()) return selected;
    std::vector<std::string> next = selected;
    next.insert(next.end(), additions.begin(), additions.end());
    SQLPL_ASSIGN_OR_RETURN(selected, RequiredClosure(next));
  }
  return Status::Internal("group-choice completion did not converge");
}

}  // namespace sqlpl
