#ifndef SQLPL_SQL_PRODUCT_LINE_H_
#define SQLPL_SQL_PRODUCT_LINE_H_

#include <map>
#include <string>
#include <vector>

#include "sqlpl/codegen/cpp_codegen.h"
#include "sqlpl/compose/composer.h"
#include "sqlpl/compose/composition_sequence.h"
#include "sqlpl/feature/feature_model.h"
#include "sqlpl/parser/ll_parser.h"
#include "sqlpl/sql/foundation_grammars.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// A feature selection describing one SQL dialect — the facade-level form
/// of the paper's feature instance description. `features` names catalog
/// modules; `counts` pins cloning cardinalities (the §3.2 worked example
/// sets Select Sublist and Table Reference to 1); unset counts default to
/// unbounded, i.e. the multi-instance grammar variant.
struct DialectSpec {
  std::string name;
  std::vector<std::string> features;
  std::map<std::string, int> counts;
  /// Start symbol of the composed grammar.
  std::string start_symbol = "sql_statement";
};

/// The SQL:2003 product line: binds the feature model (`sqlpl/sql/
/// foundation_model.h`), the sub-grammar catalog, the composer, and the
/// parser builder into the workflow of the paper's §3.2:
///
///   1. select features (a `DialectSpec`),
///   2. resolve the composition sequence (requires/excludes),
///   3. compose the features' sub-grammars and token files,
///   4. generate the parser (runtime engine or C++ source).
class SqlProductLine {
 public:
  SqlProductLine();

  const FeatureModel& model() const { return model_; }
  const SqlFeatureCatalog& catalog() const { return catalog_; }

  /// Orders `spec.features` canonically (catalog order) and checks all
  /// requires/excludes constraints.
  Result<CompositionSequence> ResolveSequence(const DialectSpec& spec) const;

  /// Runs steps 2–3: returns the composed, validated grammar for the
  /// dialect. The composition trace of this call is in `last_trace()`.
  /// NOT thread-safe (it writes `last_trace()`); concurrent callers use
  /// the `trace_out` overload below.
  Result<Grammar> ComposeGrammar(const DialectSpec& spec) const;

  /// Thread-safe variant: the trace is written to `*trace_out` (pass
  /// nullptr to discard it) and `last_trace()` is left untouched, so any
  /// number of threads may compose concurrently on one instance. This is
  /// the build path of the parser service (sqlpl/service/).
  Result<Grammar> ComposeGrammar(const DialectSpec& spec,
                                 std::vector<CompositionStep>* trace_out) const;

  /// Runs the full workflow, returning a ready-to-use runtime parser.
  /// NOT thread-safe (writes `last_trace()`), like `ComposeGrammar`.
  Result<LlParser> BuildParser(const DialectSpec& spec) const;

  /// Thread-safe variant of `BuildParser`; see the `ComposeGrammar`
  /// overload for the `trace_out` contract.
  Result<LlParser> BuildParser(const DialectSpec& spec,
                               std::vector<CompositionStep>* trace_out) const;

  /// Runs the workflow but emits standalone C++ parser source instead of
  /// a runtime parser (the ANTLR-generated-code counterpart).
  Result<GeneratedParser> GenerateParserSource(const DialectSpec& spec) const;

  /// Trace of the most recent single-argument `ComposeGrammar`/
  /// `BuildParser` call. The `trace_out` overloads do not update this.
  const std::vector<CompositionStep>& last_trace() const { return trace_; }

 private:
  const FeatureModel& model_;
  const SqlFeatureCatalog& catalog_;
  // Convenience state for the legacy single-argument API only — the one
  // piece of this class that is not safe to share across threads.
  mutable std::vector<CompositionStep> trace_;
};

}  // namespace sqlpl

#endif  // SQLPL_SQL_PRODUCT_LINE_H_
