#ifndef SQLPL_SQL_REPORT_H_
#define SQLPL_SQL_REPORT_H_

#include <string>
#include <vector>

#include "sqlpl/sql/product_line.h"

namespace sqlpl {

/// Generates a Markdown report of the whole product line: the feature
/// model summary (§3.1 headline numbers), the module inventory with
/// classifications and requires edges, a feature × dialect matrix over
/// `dialects` (the commonality/variability view of SPLE), and per-dialect
/// grammar metrics. The report is what the paper's envisioned user
/// interface would present; `examples/product_line_report` writes it to
/// disk.
std::string GenerateProductLineReport(const std::vector<DialectSpec>& dialects);

/// The commonality set: features selected by every dialect in `dialects`.
std::vector<std::string> CommonFeatures(
    const std::vector<DialectSpec>& dialects);

/// The variability set: features selected by at least one but not all.
std::vector<std::string> VariantFeatures(
    const std::vector<DialectSpec>& dialects);

}  // namespace sqlpl

#endif  // SQLPL_SQL_REPORT_H_
