#include "sqlpl/sql/classifications.h"

#include "sqlpl/sql/foundation_grammars.h"

namespace sqlpl {

namespace {

struct Classification {
  const char* feature;
  StatementClass statement_class;
  SchemaElement schema_element;
};

// One row per catalog module. The table is checked for completeness and
// consistency against the catalog by tests/sql/classifications_test.cc.
constexpr Classification kClassifications[] = {
    {"ValueExpressions", StatementClass::kExpression, SchemaElement::kColumn},
    {"Literals", StatementClass::kExpression, SchemaElement::kNone},
    {"BooleanLiterals", StatementClass::kExpression, SchemaElement::kNone},
    {"SelectList", StatementClass::kQuery, SchemaElement::kColumn},
    {"DerivedColumn", StatementClass::kQuery, SchemaElement::kColumn},
    {"AsClause", StatementClass::kQuery, SchemaElement::kColumn},
    {"Asterisk", StatementClass::kQuery, SchemaElement::kColumn},
    {"From", StatementClass::kQuery, SchemaElement::kTable},
    {"CorrelationName", StatementClass::kQuery, SchemaElement::kTable},
    {"TableExpression", StatementClass::kQuery, SchemaElement::kTable},
    {"QuerySpecification", StatementClass::kQuery, SchemaElement::kTable},
    {"SetQuantifier", StatementClass::kQuery, SchemaElement::kNone},
    {"SearchConditions", StatementClass::kExpression, SchemaElement::kNone},
    {"Where", StatementClass::kQuery, SchemaElement::kNone},
    {"GroupBy", StatementClass::kQuery, SchemaElement::kColumn},
    {"Rollup", StatementClass::kQuery, SchemaElement::kColumn},
    {"Cube", StatementClass::kQuery, SchemaElement::kColumn},
    {"GroupingSets", StatementClass::kQuery, SchemaElement::kColumn},
    {"Having", StatementClass::kQuery, SchemaElement::kNone},
    {"OrderBy", StatementClass::kQuery, SchemaElement::kColumn},
    {"FetchFirst", StatementClass::kQuery, SchemaElement::kNone},
    {"Window", StatementClass::kQuery, SchemaElement::kColumn},
    {"NumericExpressions", StatementClass::kExpression,
     SchemaElement::kNone},
    {"Concatenation", StatementClass::kExpression, SchemaElement::kNone},
    {"StringFunctions", StatementClass::kExpression, SchemaElement::kNone},
    {"DatetimeFunctions", StatementClass::kExpression, SchemaElement::kNone},
    {"CaseExpressions", StatementClass::kExpression, SchemaElement::kNone},
    {"SearchedCase", StatementClass::kExpression, SchemaElement::kNone},
    {"DataTypes", StatementClass::kExpression, SchemaElement::kColumn},
    {"CastExpression", StatementClass::kExpression, SchemaElement::kNone},
    {"SetFunctions", StatementClass::kExpression, SchemaElement::kColumn},
    {"RoutineInvocation", StatementClass::kExpression, SchemaElement::kNone},
    {"Subqueries", StatementClass::kQuery, SchemaElement::kTable},
    {"DerivedTable", StatementClass::kQuery, SchemaElement::kTable},
    {"BetweenPredicate", StatementClass::kPredicate, SchemaElement::kNone},
    {"InPredicate", StatementClass::kPredicate, SchemaElement::kNone},
    {"InSubquery", StatementClass::kPredicate, SchemaElement::kNone},
    {"LikePredicate", StatementClass::kPredicate, SchemaElement::kNone},
    {"NullPredicate", StatementClass::kPredicate, SchemaElement::kNone},
    {"ExistsPredicate", StatementClass::kPredicate, SchemaElement::kNone},
    {"QuantifiedPredicate", StatementClass::kPredicate,
     SchemaElement::kNone},
    {"JoinedTable", StatementClass::kQuery, SchemaElement::kTable},
    {"NaturalJoin", StatementClass::kQuery, SchemaElement::kTable},
    {"Union", StatementClass::kQuery, SchemaElement::kNone},
    {"Except", StatementClass::kQuery, SchemaElement::kNone},
    {"Intersect", StatementClass::kQuery, SchemaElement::kNone},
    {"InsertStatement", StatementClass::kDataManipulation,
     SchemaElement::kTable},
    {"InsertFromQuery", StatementClass::kDataManipulation,
     SchemaElement::kTable},
    {"UpdateStatement", StatementClass::kDataManipulation,
     SchemaElement::kTable},
    {"DeleteStatement", StatementClass::kDataManipulation,
     SchemaElement::kTable},
    {"MergeStatement", StatementClass::kDataManipulation,
     SchemaElement::kTable},
    {"TableDefinition", StatementClass::kDataDefinition,
     SchemaElement::kTable},
    {"TableConstraints", StatementClass::kDataDefinition,
     SchemaElement::kTable},
    {"ReferentialActions", StatementClass::kDataDefinition,
     SchemaElement::kTable},
    {"ViewDefinition", StatementClass::kDataDefinition,
     SchemaElement::kView},
    {"AlterTable", StatementClass::kDataDefinition, SchemaElement::kTable},
    {"DropStatement", StatementClass::kDataDefinition,
     SchemaElement::kTable},
    {"SchemaDefinition", StatementClass::kDataDefinition,
     SchemaElement::kSchema},
    {"DomainDefinition", StatementClass::kDataDefinition,
     SchemaElement::kDomain},
    {"SequenceGenerator", StatementClass::kDataDefinition,
     SchemaElement::kSequence},
    {"TriggerDefinition", StatementClass::kDataDefinition,
     SchemaElement::kTrigger},
    {"Transactions", StatementClass::kTransaction,
     SchemaElement::kTransactionState},
    {"SessionStatements", StatementClass::kSession, SchemaElement::kSession},
    {"Grant", StatementClass::kDataControl, SchemaElement::kPrivilege},
    {"Revoke", StatementClass::kDataControl, SchemaElement::kPrivilege},
    {"Cursors", StatementClass::kCursor, SchemaElement::kCursor},
    {"SamplePeriod", StatementClass::kExtension, SchemaElement::kNone},
    {"EpochDuration", StatementClass::kExtension, SchemaElement::kNone},
    {"WithClause", StatementClass::kQuery, SchemaElement::kTable},
    {"DatetimeLiterals", StatementClass::kExpression, SchemaElement::kNone},
    {"IntervalLiterals", StatementClass::kExpression, SchemaElement::kNone},
    {"OverlapsPredicate", StatementClass::kPredicate, SchemaElement::kNone},
    {"SimilarPredicate", StatementClass::kPredicate, SchemaElement::kNone},
    {"DistinctPredicate", StatementClass::kPredicate, SchemaElement::kNone},
    {"UniquePredicate", StatementClass::kPredicate, SchemaElement::kNone},
    {"PositionedDml", StatementClass::kDataManipulation,
     SchemaElement::kCursor},
    {"FilterClause", StatementClass::kExpression, SchemaElement::kNone},
    {"WindowFunctions", StatementClass::kExpression, SchemaElement::kColumn},
    {"RowValueConstructors", StatementClass::kPredicate,
     SchemaElement::kNone},
    {"CollateClause", StatementClass::kQuery, SchemaElement::kColumn},
    {"ReleaseSavepoint", StatementClass::kTransaction,
     SchemaElement::kTransactionState},
    {"BetweenSymmetric", StatementClass::kPredicate, SchemaElement::kNone},
    {"Corresponding", StatementClass::kQuery, SchemaElement::kColumn},
    {"EmptyGroupingSet", StatementClass::kQuery, SchemaElement::kColumn},
    {"CallStatement", StatementClass::kDataManipulation,
     SchemaElement::kNone},
    {"TruncateTable", StatementClass::kDataManipulation,
     SchemaElement::kTable},
};

const Classification* FindClassification(const std::string& feature) {
  for (const Classification& entry : kClassifications) {
    if (feature == entry.feature) return &entry;
  }
  return nullptr;
}

}  // namespace

const char* StatementClassToString(StatementClass cls) {
  switch (cls) {
    case StatementClass::kQuery:
      return "query";
    case StatementClass::kExpression:
      return "expression";
    case StatementClass::kPredicate:
      return "predicate";
    case StatementClass::kDataManipulation:
      return "data-manipulation";
    case StatementClass::kDataDefinition:
      return "data-definition";
    case StatementClass::kDataControl:
      return "data-control";
    case StatementClass::kTransaction:
      return "transaction";
    case StatementClass::kSession:
      return "session";
    case StatementClass::kCursor:
      return "cursor";
    case StatementClass::kExtension:
      return "extension";
  }
  return "unknown";
}

const char* SchemaElementToString(SchemaElement element) {
  switch (element) {
    case SchemaElement::kTable:
      return "table";
    case SchemaElement::kColumn:
      return "column";
    case SchemaElement::kView:
      return "view";
    case SchemaElement::kSchema:
      return "schema";
    case SchemaElement::kDomain:
      return "domain";
    case SchemaElement::kSequence:
      return "sequence";
    case SchemaElement::kTrigger:
      return "trigger";
    case SchemaElement::kPrivilege:
      return "privilege";
    case SchemaElement::kCursor:
      return "cursor";
    case SchemaElement::kTransactionState:
      return "transaction-state";
    case SchemaElement::kSession:
      return "session";
    case SchemaElement::kNone:
      return "none";
  }
  return "unknown";
}

Result<StatementClass> StatementClassOf(const std::string& feature) {
  const Classification* entry = FindClassification(feature);
  if (entry == nullptr) {
    return Status::NotFound("feature '" + feature + "' is not classified");
  }
  return entry->statement_class;
}

Result<SchemaElement> SchemaElementOf(const std::string& feature) {
  const Classification* entry = FindClassification(feature);
  if (entry == nullptr) {
    return Status::NotFound("feature '" + feature + "' is not classified");
  }
  return entry->schema_element;
}

std::vector<std::string> FeaturesOfClasses(
    const std::vector<StatementClass>& classes) {
  std::vector<std::string> out;
  // Iterate the catalog (not the table) to keep canonical order.
  for (const SqlFeatureModule& module :
       SqlFeatureCatalog::Instance().modules()) {
    const Classification* entry = FindClassification(module.name);
    if (entry == nullptr) continue;
    for (StatementClass cls : classes) {
      if (entry->statement_class == cls) {
        out.push_back(module.name);
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> FeaturesOfElements(
    const std::vector<SchemaElement>& elements) {
  std::vector<std::string> out;
  for (const SqlFeatureModule& module :
       SqlFeatureCatalog::Instance().modules()) {
    const Classification* entry = FindClassification(module.name);
    if (entry == nullptr) continue;
    for (SchemaElement element : elements) {
      if (entry->schema_element == element) {
        out.push_back(module.name);
        break;
      }
    }
  }
  return out;
}

Result<DialectSpec> DialectFromClasses(
    std::string name, const std::vector<StatementClass>& classes) {
  DialectSpec spec;
  spec.name = std::move(name);
  SQLPL_ASSIGN_OR_RETURN(
      spec.features,
      SqlFeatureCatalog::Instance().CompletedClosure(
          FeaturesOfClasses(classes)));
  return spec;
}

Result<DialectSpec> DialectFromElements(
    std::string name, const std::vector<SchemaElement>& elements) {
  DialectSpec spec;
  spec.name = std::move(name);
  SQLPL_ASSIGN_OR_RETURN(
      spec.features,
      SqlFeatureCatalog::Instance().CompletedClosure(
          FeaturesOfElements(elements)));
  return spec;
}

std::map<std::string, std::vector<std::string>> GroupByStatementClass() {
  std::map<std::string, std::vector<std::string>> out;
  for (const Classification& entry : kClassifications) {
    out[StatementClassToString(entry.statement_class)].push_back(
        entry.feature);
  }
  return out;
}

std::map<std::string, std::vector<std::string>> GroupBySchemaElement() {
  std::map<std::string, std::vector<std::string>> out;
  for (const Classification& entry : kClassifications) {
    out[SchemaElementToString(entry.schema_element)].push_back(entry.feature);
  }
  return out;
}

}  // namespace sqlpl
