#ifndef SQLPL_SQL_FOUNDATION_GRAMMARS_H_
#define SQLPL_SQL_FOUNDATION_GRAMMARS_H_

#include <map>
#include <string>
#include <vector>

#include "sqlpl/grammar/grammar.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// One composable SQL feature: the unit the paper maps to "an LL(k)
/// sub-grammar plus a token file". A module's grammar text is written in
/// the grammar DSL (tokens are declared inline or in a `tokens {}`
/// block). Modules with a cloning cardinality (e.g. `SelectSublist
/// [1..*]`) carry a second grammar variant used when more than one
/// instance is configured — the paper's worked example composes the
/// single-instance variant ("Select Sublist (with cardinality 1)").
struct SqlFeatureModule {
  std::string name;
  std::string description;
  /// Sub-grammar in DSL form (single-instance variant).
  std::string grammar_text;
  /// Multi-instance variant; empty when the feature is not cloned.
  std::string multi_grammar_text;
  /// Features that must be selected and composed before this one.
  std::vector<std::string> requires_features;
  /// Features that cannot be co-selected with this one.
  std::vector<std::string> excludes_features;
};

/// Registry of every SQL Foundation feature that contributes a
/// sub-grammar. Module order is the canonical composition order: base
/// constructs first, then clause features in SQL clause order, then
/// predicates, expressions, statements, and dialect extensions — so that
/// optional specifications always compose after their non-optional cores
/// (§3.2's ordering restriction).
class SqlFeatureCatalog {
 public:
  /// The process-wide catalog, built once on first use.
  static const SqlFeatureCatalog& Instance();

  const SqlFeatureModule* Find(const std::string& name) const;
  bool Contains(const std::string& name) const;

  /// All modules in canonical composition order.
  const std::vector<SqlFeatureModule>& modules() const { return modules_; }
  std::vector<std::string> ModuleNames() const;
  size_t size() const { return modules_.size(); }

  /// Parses the sub-grammar of `feature`. `count` selects the cloning
  /// variant: the multi-instance grammar when `count != 1` and the module
  /// has one, else the base grammar.
  Result<Grammar> GrammarFor(const std::string& feature, int count = 1) const;

  /// `requires`/`excludes` edges of all modules, keyed by feature name —
  /// the inputs of `CompositionSequence::Resolve`.
  std::map<std::string, std::vector<std::string>> RequiresMap() const;
  std::map<std::string, std::vector<std::string>> ExcludesMap() const;

  /// Expands `features` with every transitively required feature, in
  /// canonical catalog order. Unknown names fail.
  Result<std::vector<std::string>> RequiredClosure(
      const std::vector<std::string>& features) const;

  /// `RequiredClosure` plus group-choice completion: if the closed
  /// selection still references a nonterminal no selected module defines
  /// (an OR-group choice point such as `select_sublist`, filled by
  /// DerivedColumn or Asterisk), the earliest catalog module defining it
  /// is added and the closure re-run. The result always composes to a
  /// closed grammar. Fails if some reference has no provider at all.
  Result<std::vector<std::string>> CompletedClosure(
      const std::vector<std::string>& features) const;

 private:
  SqlFeatureCatalog();

  void Register(SqlFeatureModule module);

  std::vector<SqlFeatureModule> modules_;
  std::map<std::string, size_t> index_;
};

}  // namespace sqlpl

#endif  // SQLPL_SQL_FOUNDATION_GRAMMARS_H_
