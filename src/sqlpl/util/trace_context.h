#ifndef SQLPL_UTIL_TRACE_CONTEXT_H_
#define SQLPL_UTIL_TRACE_CONTEXT_H_

#include <cstdint>

namespace sqlpl {

/// Request-scoped trace identity, stamped by the client and threaded
/// through every layer a request touches (wire frame -> RequestControl
/// -> service spans -> flight-recorder events -> histogram exemplars).
/// Zero means "untraced": every consumer treats a zero trace_id as
/// absence, so untraced requests pay nothing beyond two u64 copies.
///
/// `trace_id` names the end-to-end request; `span_id` names the
/// client-side span that issued it (for clients stitching server-side
/// events into their own trace tree). The server never interprets
/// span_id — it only echoes and records it.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool traced() const { return trace_id != 0; }

  bool operator==(const TraceContext&) const = default;
};

}  // namespace sqlpl

#endif  // SQLPL_UTIL_TRACE_CONTEXT_H_
