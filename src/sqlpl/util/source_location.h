#ifndef SQLPL_UTIL_SOURCE_LOCATION_H_
#define SQLPL_UTIL_SOURCE_LOCATION_H_

#include <cstddef>
#include <string>

namespace sqlpl {

/// A position in an input text (SQL statement, grammar file, feature-model
/// file). Lines and columns are 1-based; `offset` is the 0-based byte index.
struct SourceLocation {
  size_t line = 1;
  size_t column = 1;
  size_t offset = 0;

  bool operator==(const SourceLocation&) const = default;

  /// "line:column" — the form used in diagnostics.
  std::string ToString() const {
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

}  // namespace sqlpl

#endif  // SQLPL_UTIL_SOURCE_LOCATION_H_
