#ifndef SQLPL_UTIL_ARENA_H_
#define SQLPL_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace sqlpl {

/// Monotonic bump allocator. Allocation is a pointer increment into the
/// current chunk; nothing is freed until `Reset()` or destruction, which
/// is exactly the lifetime of a parse: every token text and tree node of
/// one statement dies together. Objects placed in the arena must be
/// trivially destructible — destructors are never run.
///
/// Chunks grow geometrically from `initial_chunk_bytes` up to
/// `kMaxChunkBytes`, so a large statement costs O(log n) mallocs instead
/// of O(nodes). `Reset()` keeps the first chunk, making a reused arena
/// allocation-free in steady state (the property the zero-alloc tokenize
/// test pins down).
///
/// Not thread-safe; confine an arena to one request/thread.
class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = 4096;
  static constexpr size_t kMaxChunkBytes = 256 * 1024;

  explicit Arena(size_t initial_chunk_bytes = kDefaultChunkBytes)
      : next_chunk_bytes_(initial_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Raw aligned allocation. `align` must be a power of two.
  void* Allocate(size_t bytes, size_t align) {
    uintptr_t p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    if (p + bytes > limit_) {
      AddChunk(bytes + align);
      p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    }
    cursor_ = p + bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Constructs a `T` in the arena. `T` must be trivially destructible —
  /// the arena never runs destructors.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    return ::new (Allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Uninitialized array of `n` `T`s (trivially destructible).
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Copies `data[0..len)` into the arena and returns the stable copy.
  const char* CopyString(const char* data, size_t len) {
    char* out = AllocateArray<char>(len);
    std::memcpy(out, data, len);
    return out;
  }

  /// Drops every allocation but keeps the first chunk for reuse, so a
  /// warm arena serves a similarly-sized parse without touching malloc.
  void Reset();

  /// Bytes handed out since construction / the last `Reset()`.
  size_t bytes_used() const { return bytes_used_ + CurrentChunkUsed(); }
  /// Bytes of chunk capacity currently held.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  size_t CurrentChunkUsed() const {
    return chunks_.empty()
               ? 0
               : cursor_ - reinterpret_cast<uintptr_t>(
                               chunks_.back().data.get());
  }

  void AddChunk(size_t min_bytes);

  std::vector<Chunk> chunks_;
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  size_t next_chunk_bytes_;
  size_t bytes_used_ = 0;      // in full (non-current) chunks
  size_t bytes_reserved_ = 0;
};

}  // namespace sqlpl

#endif  // SQLPL_UTIL_ARENA_H_
