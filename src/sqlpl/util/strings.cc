#include "sqlpl/util/strings.h"

namespace sqlpl {

char AsciiToUpper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

char AsciiToLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string AsciiStrToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiToUpper(c);
  return out;
}

std::string AsciiStrToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiToLower(c);
  return out;
}

bool AsciiCaseEqual(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiToLower(a[i]) != AsciiToLower(b[i])) return false;
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

namespace {
bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsAsciiSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsAsciiSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> StrSplit(std::string_view s, char sep,
                                  bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    std::string_view piece = (pos == std::string_view::npos)
                                 ? s.substr(start)
                                 : s.substr(start, pos - start);
    if (!skip_empty || !piece.empty()) out.emplace_back(piece);
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool IsIdentCont(char c) { return IsIdentStart(c) || (c >= '0' && c <= '9'); }

std::string CEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace sqlpl
