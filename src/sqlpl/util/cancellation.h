#ifndef SQLPL_UTIL_CANCELLATION_H_
#define SQLPL_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "sqlpl/util/status.h"
#include "sqlpl/util/trace_context.h"

namespace sqlpl {

/// A point in time after which a request is no longer worth serving.
/// Value type, cheap to copy; the default-constructed deadline never
/// expires, so code paths that don't care pay one comparison.
///
/// Deadlines are absolute (`steady_clock`), not durations: a deadline
/// threaded through queueing, cache resolution, and parsing keeps one
/// meaning the whole way down — "done by T" — instead of restarting a
/// budget at every layer.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() : when_(Clock::time_point::max()) {}

  static Deadline Never() { return Deadline(); }
  static Deadline At(Clock::time_point when) { return Deadline(when); }
  /// Expires `budget` from now. A zero or negative budget is already
  /// expired — useful in tests and for "fail fast" probes.
  static Deadline After(Clock::duration budget) {
    return Deadline(Clock::now() + budget);
  }

  bool is_never() const { return when_ == Clock::time_point::max(); }
  /// One clock read unless `is_never()` (then no clock read at all).
  bool expired() const { return !is_never() && Clock::now() >= when_; }

  /// Time left; zero when expired, `Clock::duration::max()` when never.
  Clock::duration remaining() const {
    if (is_never()) return Clock::duration::max();
    Clock::time_point now = Clock::now();
    return now >= when_ ? Clock::duration::zero() : when_ - now;
  }

  Clock::time_point time() const { return when_; }

  /// The sooner of the two (for composing a request deadline with an
  /// operation-level timeout).
  static Deadline Earlier(Deadline a, Deadline b) {
    return a.when_ <= b.when_ ? a : b;
  }

  bool operator==(const Deadline& other) const {
    return when_ == other.when_;
  }

 private:
  explicit Deadline(Clock::time_point when) : when_(when) {}

  Clock::time_point when_;
};

/// Read side of a cancellation handshake. Default-constructed tokens
/// can never be cancelled and carry no allocation; tokens minted by a
/// `CancelSource` observe that source's flag. Copying a token shares
/// the flag. Thread-safe: `cancelled()` is one relaxed atomic load.
class CancelToken {
 public:
  /// A token that can never be cancelled.
  CancelToken() = default;

  bool can_be_cancelled() const { return state_ != nullptr; }
  bool cancelled() const {
    return state_ != nullptr && state_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const std::atomic<bool>> state_;
};

/// Write side: the owner (client connection, test, supervisor) keeps the
/// source and hands tokens to the work it may later abandon.
/// Cancellation is level-triggered and one-way — once requested it
/// cannot be withdrawn.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  CancelToken token() const { return CancelToken(state_); }
  void RequestCancel() { state_->store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return state_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// The per-request lifecycle controls threaded from the service API
/// down through cache resolution and the parse loops. Default state is
/// fully unrestricted (never-deadline, non-cancellable token), which
/// every hot path can detect with two null-ish checks.
struct RequestControl {
  Deadline deadline;
  CancelToken cancel;
  /// Who this request is, for observability: carried alongside the
  /// lifecycle controls so every layer that already receives a
  /// RequestControl can attribute its spans, flight-recorder events,
  /// and exemplars to the originating wire request. Zero = untraced.
  TraceContext trace;

  bool unrestricted() const {
    return deadline.is_never() && !cancel.can_be_cancelled();
  }

  /// First lifecycle violation, or OK. Cancellation wins over deadline
  /// expiry (the caller explicitly gave up; report that, not the
  /// clock). `what` names the operation in the error message.
  Status Check(const char* what) const;
};

}  // namespace sqlpl

#endif  // SQLPL_UTIL_CANCELLATION_H_
