#include "sqlpl/util/status.h"

namespace sqlpl {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kCompositionError:
      return "composition_error";
    case StatusCode::kConfigurationError:
      return "configuration_error";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInvalidConfig:
      return "invalid_config";
    case StatusCode::kFeatureUnsupported:
      return "feature_unsupported";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace sqlpl
