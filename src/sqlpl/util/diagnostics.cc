#include "sqlpl/util/diagnostics.h"

namespace sqlpl {

const char* SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out = SeverityToString(severity);
  out += " at ";
  out += location.ToString();
  out += ": ";
  out += message;
  return out;
}

void DiagnosticCollector::AddNote(SourceLocation loc, std::string message) {
  Add({Severity::kNote, loc, std::move(message)});
}

void DiagnosticCollector::AddWarning(SourceLocation loc, std::string message) {
  Add({Severity::kWarning, loc, std::move(message)});
}

void DiagnosticCollector::AddError(SourceLocation loc, std::string message) {
  Add({Severity::kError, loc, std::move(message)});
}

void DiagnosticCollector::Add(Diagnostic diagnostic) {
  if (diagnostic.severity == Severity::kError) ++error_count_;
  diagnostics_.push_back(std::move(diagnostic));
}

std::string DiagnosticCollector::ToString() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

void DiagnosticCollector::Clear() {
  diagnostics_.clear();
  error_count_ = 0;
}

}  // namespace sqlpl
