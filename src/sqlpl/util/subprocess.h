#ifndef SQLPL_UTIL_SUBPROCESS_H_
#define SQLPL_UTIL_SUBPROCESS_H_

#include <string>
#include <vector>

#include "sqlpl/util/status.h"

namespace sqlpl {

/// Result of a finished subprocess: its exit code and captured output.
/// `exit_code` is the wait status decoded: the code passed to exit() for
/// a normal exit, or 128 + signal number when the child was killed.
struct SubprocessResult {
  int exit_code = -1;
  /// Combined stdout + stderr of the child (stderr is dup'd onto the
  /// same pipe, so ordering between the two streams is the kernel's).
  std::string output;

  bool ok() const { return exit_code == 0; }
};

/// Runs `argv` (argv[0] is resolved via PATH) with stdin closed and
/// stdout/stderr captured, and waits for it to finish. No shell is
/// involved — arguments are passed as-is, so callers never need to
/// quote. This is the compile-sandbox primitive of the native tier
/// (docs/NATIVE_TIER.md): the child inherits a scrubbed-by-construction
/// argument list, not a shell command line.
///
/// Fails with InternalError if the process could not be spawned at all
/// (fork/exec failure); a child that runs and exits non-zero is a
/// successful `RunSubprocess` whose result has `exit_code != 0`.
Result<SubprocessResult> RunSubprocess(const std::vector<std::string>& argv);

/// RAII mkdtemp(3) directory: created under $TMPDIR (or /tmp) with mode
/// 0700 — readable by nobody else, which is what lets the native tier
/// treat it as a private compile sandbox — and recursively deleted on
/// destruction. A default-constructed or moved-from instance owns
/// nothing. Check `ok()` before use: creation can fail (ENOSPC, EROFS).
class ScopedTempDir {
 public:
  /// Creates `<tmp>/<prefix>XXXXXX`.
  explicit ScopedTempDir(const std::string& prefix = "sqlpl_");
  ~ScopedTempDir();

  ScopedTempDir(ScopedTempDir&& other) noexcept;
  ScopedTempDir& operator=(ScopedTempDir&& other) noexcept;
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  bool ok() const { return !path_.empty(); }
  /// Absolute directory path; empty when creation failed.
  const std::string& path() const { return path_; }

 private:
  void Remove();

  std::string path_;
};

/// Writes `content` to `path`, replacing any existing file. Fails with
/// InternalError on any I/O error (short write included).
Status WriteFileContents(const std::string& path, const std::string& content);

}  // namespace sqlpl

#endif  // SQLPL_UTIL_SUBPROCESS_H_
