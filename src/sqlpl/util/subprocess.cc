#include "sqlpl/util/subprocess.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sqlpl {

Result<SubprocessResult> RunSubprocess(const std::vector<std::string>& argv) {
  if (argv.empty()) {
    return Status::InvalidArgument("subprocess: empty argv");
  }
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    return Status::Internal(std::string("subprocess: pipe: ") +
                                 std::strerror(errno));
  }

  pid_t pid = fork();
  if (pid < 0) {
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    return Status::Internal(std::string("subprocess: fork: ") +
                                 std::strerror(errno));
  }

  if (pid == 0) {
    // Child: stdin from /dev/null, stdout+stderr onto the pipe.
    close(pipe_fds[0]);
    int devnull = open("/dev/null", O_RDONLY);
    if (devnull >= 0) {
      dup2(devnull, STDIN_FILENO);
      if (devnull != STDIN_FILENO) close(devnull);
    }
    dup2(pipe_fds[1], STDOUT_FILENO);
    dup2(pipe_fds[1], STDERR_FILENO);
    if (pipe_fds[1] != STDOUT_FILENO && pipe_fds[1] != STDERR_FILENO) {
      close(pipe_fds[1]);
    }
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& arg : argv) {
      args.push_back(const_cast<char*>(arg.c_str()));
    }
    args.push_back(nullptr);
    execvp(args[0], args.data());
    // exec failed; 127 is the shell convention for "command not found".
    std::fprintf(stderr, "exec %s: %s\n", args[0], std::strerror(errno));
    _exit(127);
  }

  // Parent: drain the pipe until the child closes its end.
  close(pipe_fds[1]);
  SubprocessResult result;
  char buffer[4096];
  for (;;) {
    ssize_t n = read(pipe_fds[0], buffer, sizeof(buffer));
    if (n > 0) {
      result.output.append(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  close(pipe_fds[0]);

  int wait_status = 0;
  pid_t waited;
  do {
    waited = waitpid(pid, &wait_status, 0);
  } while (waited < 0 && errno == EINTR);
  if (waited < 0) {
    return Status::Internal(std::string("subprocess: waitpid: ") +
                                 std::strerror(errno));
  }
  if (WIFEXITED(wait_status)) {
    result.exit_code = WEXITSTATUS(wait_status);
  } else if (WIFSIGNALED(wait_status)) {
    result.exit_code = 128 + WTERMSIG(wait_status);
  } else {
    result.exit_code = -1;
  }
  return result;
}

namespace {

// Recursive unlink. Only descends into real directories (never follows
// symlinks) so a link planted inside the tree cannot redirect the
// delete outside it.
void RemoveTree(const std::string& path) {
  struct stat st;
  if (lstat(path.c_str(), &st) != 0) return;
  if (!S_ISDIR(st.st_mode)) {
    unlink(path.c_str());
    return;
  }
  if (DIR* dir = opendir(path.c_str())) {
    while (struct dirent* entry = readdir(dir)) {
      const char* name = entry->d_name;
      if (std::strcmp(name, ".") == 0 || std::strcmp(name, "..") == 0) {
        continue;
      }
      RemoveTree(path + "/" + name);
    }
    closedir(dir);
  }
  rmdir(path.c_str());
}

}  // namespace

ScopedTempDir::ScopedTempDir(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = (base != nullptr && base[0] != '\0')
                         ? std::string(base)
                         : std::string("/tmp");
  if (tmpl.back() != '/') tmpl += '/';
  tmpl += prefix + "XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (mkdtemp(buf.data()) != nullptr) {
    path_.assign(buf.data());
  }
}

ScopedTempDir::~ScopedTempDir() { Remove(); }

ScopedTempDir::ScopedTempDir(ScopedTempDir&& other) noexcept
    : path_(std::move(other.path_)) {
  other.path_.clear();
}

ScopedTempDir& ScopedTempDir::operator=(ScopedTempDir&& other) noexcept {
  if (this != &other) {
    Remove();
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

void ScopedTempDir::Remove() {
  if (!path_.empty()) {
    RemoveTree(path_);
    path_.clear();
  }
}

Status WriteFileContents(const std::string& path,
                         const std::string& content) {
  int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
  if (fd < 0) {
    return Status::Internal("write " + path + ": " +
                                 std::strerror(errno));
  }
  size_t written = 0;
  while (written < content.size()) {
    ssize_t n =
        write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status error = Status::Internal("write " + path + ": " +
                                           std::strerror(errno));
      close(fd);
      return error;
    }
    written += static_cast<size_t>(n);
  }
  if (close(fd) != 0) {
    return Status::Internal("close " + path + ": " +
                                 std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace sqlpl
