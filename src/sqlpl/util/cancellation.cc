#include "sqlpl/util/cancellation.h"

namespace sqlpl {

Status RequestControl::Check(const char* what) const {
  if (cancel.cancelled()) {
    return Status::Cancelled(std::string(what) + " cancelled by caller");
  }
  if (deadline.expired()) {
    return Status::DeadlineExceeded(std::string(what) +
                                    " abandoned: deadline exceeded");
  }
  return Status::OK();
}

}  // namespace sqlpl
