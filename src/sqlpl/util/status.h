#ifndef SQLPL_UTIL_STATUS_H_
#define SQLPL_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace sqlpl {

/// Machine-readable classification of an error.
///
/// The library does not throw exceptions across API boundaries; fallible
/// operations return `Status` (or `Result<T>` when they produce a value).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  /// A grammar, token, feature-model, or SQL text failed to parse.
  kParseError,
  /// Grammar composition failed (conflicting rules, unsatisfied ordering).
  kCompositionError,
  /// A feature configuration violates the feature model.
  kConfigurationError,
  /// The request's deadline passed before the operation completed (or
  /// before it started — see docs/ROBUSTNESS.md for the stages).
  kDeadlineExceeded,
  /// The caller cancelled the request via its `CancelToken`.
  kCancelled,
  /// The service refused the request to protect itself: admission limit
  /// reached or a bounded queue full. Retrying later may succeed.
  kResourceExhausted,
  /// The serving endpoint cannot take the request at all right now:
  /// the server is draining for shutdown, the connection is closed or
  /// broken, or no server is listening. Unlike `kResourceExhausted`
  /// (a per-request shed on a healthy server), retrying the same
  /// endpoint is unlikely to help until it comes back.
  kUnavailable,
  /// The requested feature configuration is unsatisfiable under the
  /// feature model: the configurator's solver (sqlpl/fm/) proved the
  /// selection violates a require/exclude or group constraint. The
  /// message carries a minimal conflict explanation naming the smallest
  /// set of mutually incompatible selections. Unlike the compose-time
  /// `kConfigurationError` (unknown feature, cyclic requires found
  /// during sequencing), this is a typed pre-admission rejection — the
  /// request never reached a parser build.
  kInvalidConfig,
  /// The statement parsed, but lowering it to an executable plan needs
  /// a clause whose feature the active dialect does not include — the
  /// execution tier's feature-attributed rejection (docs/EXECUTION.md).
  /// The message names the clause, the missing feature, and the
  /// dialect, so a client knows exactly which feature to add to its
  /// spec. Distinct from `kParseError`: the statement is well-formed
  /// SQL, just outside this variant of the product line.
  kFeatureUnsupported,
};

/// Returns the canonical lowercase name of `code` (e.g. "invalid_argument").
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail: a code plus a human-readable
/// message. `Status::OK()` carries no message and is cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status CompositionError(std::string msg) {
    return Status(StatusCode::kCompositionError, std::move(msg));
  }
  static Status ConfigurationError(std::string msg) {
    return Status(StatusCode::kConfigurationError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status InvalidConfig(std::string msg) {
    return Status(StatusCode::kInvalidConfig, std::move(msg));
  }
  static Status FeatureUnsupported(std::string msg) {
    return Status(StatusCode::kFeatureUnsupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type `T` or a non-OK `Status` explaining why the value
/// could not be produced. Accessing `value()` on an error aborts in debug
/// builds; callers must check `ok()` first.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit so functions can `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit so functions can
  /// `return Status::...;`). Passing an OK status is a programming error
  /// and is converted to an internal error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  /// The error status; `Status::OK()` when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok() && "Result::value() called on error Result");
    return *value_;
  }
  T& value() & {
    assert(ok() && "Result::value() called on error Result");
    return *value_;
  }
  T&& value() && {
    assert(ok() && "Result::value() called on error Result");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK `Status` from an expression to the caller.
#define SQLPL_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::sqlpl::Status _sqlpl_status = (expr);          \
    if (!_sqlpl_status.ok()) return _sqlpl_status;   \
  } while (false)

/// Evaluates `rexpr` (a Result<T>), propagating its error or binding the
/// value to `lhs`.
#define SQLPL_ASSIGN_OR_RETURN(lhs, rexpr)              \
  SQLPL_ASSIGN_OR_RETURN_IMPL_(                         \
      SQLPL_MACRO_CONCAT_(_sqlpl_result, __LINE__), lhs, rexpr)

#define SQLPL_MACRO_CONCAT_INNER_(x, y) x##y
#define SQLPL_MACRO_CONCAT_(x, y) SQLPL_MACRO_CONCAT_INNER_(x, y)
#define SQLPL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr)  \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

}  // namespace sqlpl

#endif  // SQLPL_UTIL_STATUS_H_
