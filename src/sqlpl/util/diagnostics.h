#ifndef SQLPL_UTIL_DIAGNOSTICS_H_
#define SQLPL_UTIL_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "sqlpl/util/source_location.h"

namespace sqlpl {

/// Severity of a diagnostic emitted by a lexer, parser, composer, or
/// configuration validator.
enum class Severity {
  kNote,
  kWarning,
  kError,
};

const char* SeverityToString(Severity severity);

/// One message tied to a position in some input.
struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLocation location;
  std::string message;

  /// "error at 3:7: unexpected token" style rendering.
  std::string ToString() const;
};

/// Accumulates diagnostics during a multi-step operation so that callers
/// can report every problem at once instead of failing on the first.
class DiagnosticCollector {
 public:
  void AddNote(SourceLocation loc, std::string message);
  void AddWarning(SourceLocation loc, std::string message);
  void AddError(SourceLocation loc, std::string message);
  void Add(Diagnostic diagnostic);

  bool has_errors() const { return error_count_ > 0; }
  size_t error_count() const { return error_count_; }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  /// All diagnostics, one per line.
  std::string ToString() const;

  void Clear();

 private:
  std::vector<Diagnostic> diagnostics_;
  size_t error_count_ = 0;
};

}  // namespace sqlpl

#endif  // SQLPL_UTIL_DIAGNOSTICS_H_
