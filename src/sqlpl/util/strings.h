#ifndef SQLPL_UTIL_STRINGS_H_
#define SQLPL_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace sqlpl {

/// ASCII-only case helpers. SQL keywords are case-insensitive, so the lexer
/// and composer normalize through these rather than locale-dependent APIs.
char AsciiToUpper(char c);
char AsciiToLower(char c);
std::string AsciiStrToUpper(std::string_view s);
std::string AsciiStrToLower(std::string_view s);

/// Case-insensitive ASCII comparison.
bool AsciiCaseEqual(std::string_view a, std::string_view b);

/// True if `s` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Splits `s` on `sep`, optionally dropping empty pieces.
std::vector<std::string> StrSplit(std::string_view s, char sep,
                                  bool skip_empty = false);

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// True if `c` may start / continue a grammar identifier
/// (`[A-Za-z_][A-Za-z0-9_]*`).
bool IsIdentStart(char c);
bool IsIdentCont(char c);

/// Escapes `s` for embedding inside a double-quoted C++ string literal.
std::string CEscape(std::string_view s);

}  // namespace sqlpl

#endif  // SQLPL_UTIL_STRINGS_H_
