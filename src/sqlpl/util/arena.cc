#include "sqlpl/util/arena.h"

#include <algorithm>

namespace sqlpl {

void Arena::AddChunk(size_t min_bytes) {
  bytes_used_ += CurrentChunkUsed();
  size_t size = std::max(next_chunk_bytes_, min_bytes);
  Chunk chunk;
  chunk.data = std::make_unique<char[]>(size);
  chunk.size = size;
  cursor_ = reinterpret_cast<uintptr_t>(chunk.data.get());
  limit_ = cursor_ + size;
  bytes_reserved_ += size;
  chunks_.push_back(std::move(chunk));
  next_chunk_bytes_ = std::min(next_chunk_bytes_ * 2, kMaxChunkBytes);
}

void Arena::Reset() {
  if (chunks_.empty()) {
    bytes_used_ = 0;
    return;
  }
  // Keep only the first chunk; a steady-state consumer re-fills it
  // without new allocations.
  chunks_.resize(1);
  cursor_ = reinterpret_cast<uintptr_t>(chunks_.front().data.get());
  limit_ = cursor_ + chunks_.front().size;
  bytes_reserved_ = chunks_.front().size;
  bytes_used_ = 0;
}

}  // namespace sqlpl
