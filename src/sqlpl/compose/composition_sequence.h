#ifndef SQLPL_COMPOSE_COMPOSITION_SEQUENCE_H_
#define SQLPL_COMPOSE_COMPOSITION_SEQUENCE_H_

#include <map>
#include <string>
#include <vector>

#include "sqlpl/util/status.h"

namespace sqlpl {

/// "A feature may require other features for correct composition. Such
/// feature constraints are expressed as requires or excludes conditions
/// on features. We use the notion of composition sequence that indicates
/// how various features are included or excluded." (§3.2)
///
/// `CompositionSequence::Resolve` turns an unordered feature selection
/// plus requires/excludes constraints into the order in which the
/// features' sub-grammars must be composed: every required feature is
/// composed before its dependents, mutually exclusive features reject the
/// selection, and the input order is preserved where constraints permit
/// (so optional specifications land after their non-optional cores).
class CompositionSequence {
 public:
  /// Computes a composition order for `selected`.
  ///
  /// `requires[f]` lists features that must be present *and* composed
  /// before `f`; a missing requirement is a configuration error.
  /// `excludes[f]` lists features that must not be co-selected with `f`
  /// (symmetric). Cyclic requirements are a configuration error.
  static Result<CompositionSequence> Resolve(
      const std::vector<std::string>& selected,
      const std::map<std::string, std::vector<std::string>>& requires_map,
      const std::map<std::string, std::vector<std::string>>& excludes_map);

  /// Sequence usable without constraints (keeps the given order).
  static CompositionSequence FromOrdered(std::vector<std::string> features);

  const std::vector<std::string>& features() const { return features_; }
  bool Contains(const std::string& feature) const;

  /// Space-separated feature names, in composition order.
  std::string ToString() const;

 private:
  std::vector<std::string> features_;
};

}  // namespace sqlpl

#endif  // SQLPL_COMPOSE_COMPOSITION_SEQUENCE_H_
