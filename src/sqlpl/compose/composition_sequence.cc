#include "sqlpl/compose/composition_sequence.h"

#include <algorithm>
#include <set>

namespace sqlpl {

Result<CompositionSequence> CompositionSequence::Resolve(
    const std::vector<std::string>& selected,
    const std::map<std::string, std::vector<std::string>>& requires_map,
    const std::map<std::string, std::vector<std::string>>& excludes_map) {
  std::set<std::string> selected_set(selected.begin(), selected.end());

  // Excludes: symmetric rejection.
  for (const std::string& feature : selected) {
    auto it = excludes_map.find(feature);
    if (it == excludes_map.end()) continue;
    for (const std::string& excluded : it->second) {
      if (selected_set.contains(excluded)) {
        return Status::ConfigurationError("feature '" + feature +
                                          "' excludes co-selected feature '" +
                                          excluded + "'");
      }
    }
  }

  // Requires: presence.
  for (const std::string& feature : selected) {
    auto it = requires_map.find(feature);
    if (it == requires_map.end()) continue;
    for (const std::string& required : it->second) {
      if (!selected_set.contains(required)) {
        return Status::ConfigurationError(
            "feature '" + feature + "' requires feature '" + required +
            "', which is not selected");
      }
    }
  }

  // Stable topological order: repeatedly emit the first not-yet-emitted
  // feature whose requirements are all emitted. Preserves input order
  // among unconstrained features.
  std::vector<std::string> order;
  std::set<std::string> emitted;
  std::vector<std::string> pending = selected;
  // Drop duplicates while preserving first occurrence.
  {
    std::set<std::string> seen;
    std::vector<std::string> unique;
    for (std::string& f : pending) {
      if (seen.insert(f).second) unique.push_back(std::move(f));
    }
    pending = std::move(unique);
  }

  while (!pending.empty()) {
    bool progressed = false;
    for (auto it = pending.begin(); it != pending.end();) {
      const std::string& feature = *it;
      bool ready = true;
      auto rit = requires_map.find(feature);
      if (rit != requires_map.end()) {
        for (const std::string& required : rit->second) {
          if (!emitted.contains(required)) {
            ready = false;
            break;
          }
        }
      }
      if (ready) {
        emitted.insert(feature);
        order.push_back(feature);
        it = pending.erase(it);
        progressed = true;
      } else {
        ++it;
      }
    }
    if (!progressed) {
      std::string cycle;
      for (const std::string& f : pending) {
        if (!cycle.empty()) cycle += ", ";
        cycle += f;
      }
      return Status::ConfigurationError(
          "cyclic requires constraints among features: " + cycle);
    }
  }

  CompositionSequence sequence;
  sequence.features_ = std::move(order);
  return sequence;
}

CompositionSequence CompositionSequence::FromOrdered(
    std::vector<std::string> features) {
  CompositionSequence sequence;
  sequence.features_ = std::move(features);
  return sequence;
}

bool CompositionSequence::Contains(const std::string& feature) const {
  return std::find(features_.begin(), features_.end(), feature) !=
         features_.end();
}

std::string CompositionSequence::ToString() const {
  std::string out;
  for (const std::string& f : features_) {
    if (!out.empty()) out += ' ';
    out += f;
  }
  return out;
}

}  // namespace sqlpl
