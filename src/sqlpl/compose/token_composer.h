#ifndef SQLPL_COMPOSE_TOKEN_COMPOSER_H_
#define SQLPL_COMPOSE_TOKEN_COMPOSER_H_

#include "sqlpl/grammar/token_set.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// Composes two token files into one, mirroring the paper's
/// "corresponding token files are composed to a single token file".
/// Identical definitions merge; a name bound to two different patterns is
/// a composition error.
Result<TokenSet> ComposeTokenSets(const TokenSet& base,
                                  const TokenSet& extension);

/// Left-fold of `ComposeTokenSets` over any number of sets.
Result<TokenSet> ComposeAllTokenSets(const std::vector<TokenSet>& sets);

}  // namespace sqlpl

#endif  // SQLPL_COMPOSE_TOKEN_COMPOSER_H_
