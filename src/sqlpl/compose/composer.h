#ifndef SQLPL_COMPOSE_COMPOSER_H_
#define SQLPL_COMPOSE_COMPOSER_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sqlpl/grammar/grammar.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// What one composition step did to the evolving grammar. Mirrors the
/// three cases of the paper's §3.2 plus additions/removals.
enum class CompositionAction {
  /// The extension defined a nonterminal the base lacked.
  kAddedProduction,
  /// New production contains the old one -> old replaced by new
  /// (paper: "in composing A: BC with A: B, B is replaced with BC").
  kReplacedAlternative,
  /// New production is contained in the old one -> old retained
  /// (paper: "in composing A: B with A: BC, BC is retained").
  kRetainedAlternative,
  /// New and old differ -> appended as choices
  /// (paper: "composing A: B with A: C gives A : B | C").
  kAppendedAlternative,
  /// The replacement merged a sublist into a complex list
  /// (`A: B` + `A: B [, B]...`).
  kMergedComplexList,
  /// Two optional specifications over the same non-optional core merged
  /// into one alternative (`A: B [C]` + `A: B [D]` -> `A: B [C] [D]`) —
  /// the paper's "composition of optional nonterminals".
  kMergedOptionals,
  /// A production was removed by an extension's removal directive.
  kRemovedProduction,
};

const char* CompositionActionToString(CompositionAction action);

/// One entry of the composition trace.
struct CompositionStep {
  CompositionAction action;
  std::string nonterminal;
  std::string detail;

  std::string ToString() const;
};

/// Options controlling `GrammarComposer`.
struct CompositionOptions {
  /// Enforce the paper's ordering restriction for optional specifications:
  /// "A: B and A: B[C] ... can be composed in that order only". When true,
  /// composing an alternative that is the optional-free core of an existing
  /// richer alternative fails instead of being silently retained.
  bool strict_optional_order = false;
  /// Ablation knob: skip the optional-merge mechanism, so optional
  /// decorations of a shared core append as choices instead of fusing.
  /// Produces larger, conflict-ridden grammars that cannot parse
  /// combined-clause statements — see bench_ablation.
  bool disable_optional_merge = false;
};

/// Composes feature sub-grammars into one LL(k) grammar following the
/// production-rule composition mechanisms of §3.2 of the paper. The
/// composer is stateless between `Compose` calls except for the trace of
/// the most recent call.
class GrammarComposer {
 public:
  explicit GrammarComposer(CompositionOptions options = {})
      : options_(options) {}

  /// Composes `extension` into `base` and returns the result; neither
  /// input is modified. Token files are composed alongside the rules
  /// (conflicting token definitions fail). `removals` optionally names
  /// nonterminals the extension removes from the base (the paper's
  /// "mechanisms of adding, removing and modifying the production rules").
  Result<Grammar> Compose(const Grammar& base, const Grammar& extension,
                          const std::vector<std::string>& removals = {});

  /// Left-fold of `Compose` over `grammars`; requires at least one input.
  /// The first grammar is the base (the paper composes the base feature's
  /// grammar first, then each extension in composition-sequence order).
  Result<Grammar> ComposeAll(const std::vector<Grammar>& grammars);

  /// Trace of the most recent `Compose`/`ComposeAll` call.
  const std::vector<CompositionStep>& trace() const { return trace_; }

 private:
  // Composes one extension alternative into an existing production,
  // applying replace / retain / append.
  Status ComposeAlternative(Production* production, const Alternative& alt);

  CompositionOptions options_;
  std::vector<CompositionStep> trace_;
};

/// True if `expr` has the paper's "complex list" shape
/// `<X> [ <sep> <X> ... ]` — i.e. `Seq(X, Star(Seq(SEP, X)))` (or the
/// optional variant) — and `element` receives `X` when non-null.
bool IsComplexList(const Expr& expr, Expr* element = nullptr);

/// True if replacing flat alternative `older` by `newer` only *adds*
/// optional elements around the old elements (the paper's "optional
/// specification" refinement, e.g. `B` -> `B [C]` or `[C] B`).
bool IsOptionalExtensionOf(const Expr& newer, const Expr& older);

/// Resolves a grammar by name for import resolution.
using GrammarLoader = std::function<Result<Grammar>(const std::string&)>;

/// Resolves the `import` declarations of `grammar` (Bali-style grammar
/// reuse: "A Bali grammar can import definitions for nonterminals from
/// other grammars"). Each imported grammar is loaded through `loader`,
/// recursively resolved, and composed as a base beneath `grammar` (in
/// declaration order), so the importing grammar's rules refine the
/// imported ones under the usual composition mechanisms. Import cycles
/// and unknown names are composition errors. The result carries no
/// unresolved imports.
Result<Grammar> ResolveImports(const Grammar& grammar,
                               const GrammarLoader& loader);

/// Attempts the optional-merge mechanism: if `a` and `b` are both
/// optional decorations of the same non-optional core (e.g.
/// `from_clause [ where_clause ]` and `from_clause [ group_by_clause ]`),
/// returns the interleaved merge that keeps every optional element of
/// both, with `b`'s new optionals slotted at their positions relative to
/// the shared core (`from_clause [ where_clause ] [ group_by_clause ]`).
/// Returns nullopt when the cores differ or either input has no optional
/// decoration to merge.
std::optional<Expr> MergeOptionalDecorations(const Expr& a, const Expr& b);

}  // namespace sqlpl

#endif  // SQLPL_COMPOSE_COMPOSER_H_
