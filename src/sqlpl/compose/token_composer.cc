#include "sqlpl/compose/token_composer.h"

namespace sqlpl {

Result<TokenSet> ComposeTokenSets(const TokenSet& base,
                                  const TokenSet& extension) {
  TokenSet composed = base;
  for (const TokenDef& def : extension.ToVector()) {
    Status status = composed.Add(def);
    if (!status.ok()) {
      return Status::CompositionError("token files conflict: " +
                                      status.message());
    }
  }
  return composed;
}

Result<TokenSet> ComposeAllTokenSets(const std::vector<TokenSet>& sets) {
  TokenSet composed;
  for (const TokenSet& set : sets) {
    SQLPL_ASSIGN_OR_RETURN(composed, ComposeTokenSets(composed, set));
  }
  return composed;
}

}  // namespace sqlpl
