#include "sqlpl/compose/composer.h"

#include "sqlpl/compose/token_composer.h"

namespace sqlpl {

const char* CompositionActionToString(CompositionAction action) {
  switch (action) {
    case CompositionAction::kAddedProduction:
      return "added";
    case CompositionAction::kReplacedAlternative:
      return "replaced";
    case CompositionAction::kRetainedAlternative:
      return "retained";
    case CompositionAction::kAppendedAlternative:
      return "appended";
    case CompositionAction::kMergedComplexList:
      return "merged-complex-list";
    case CompositionAction::kMergedOptionals:
      return "merged-optionals";
    case CompositionAction::kRemovedProduction:
      return "removed";
  }
  return "unknown";
}

std::string CompositionStep::ToString() const {
  std::string out = CompositionActionToString(action);
  out += ' ';
  out += nonterminal;
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

bool IsComplexList(const Expr& expr, Expr* element) {
  // Shape: Seq(X, rest) where rest is Star(Seq(SEP, X)) or Opt(Seq(SEP, X)).
  std::vector<Expr> flat = expr.FlattenSequence();
  if (flat.size() != 2) return false;
  const Expr& head = flat[0];
  const Expr& tail = flat[1];
  if (!tail.is_repetition() && !tail.is_optional()) return false;
  std::vector<Expr> tail_elems = tail.child().FlattenSequence();
  if (tail_elems.size() != 2) return false;
  if (!tail_elems[0].is_token()) return false;  // the separator
  if (!(tail_elems[1] == head)) return false;
  if (element != nullptr) *element = head;
  return true;
}

bool IsOptionalExtensionOf(const Expr& newer, const Expr& older) {
  std::vector<Expr> new_flat = newer.FlattenSequence();
  std::vector<Expr> old_flat = older.FlattenSequence();
  // Greedily match old elements in order; every unmatched new element
  // must be optional (or a repetition, which also derives epsilon).
  size_t oi = 0;
  for (const Expr& element : new_flat) {
    if (oi < old_flat.size() && element == old_flat[oi]) {
      ++oi;
      continue;
    }
    if (!element.is_optional() && !element.is_repetition()) return false;
  }
  return oi == old_flat.size() && new_flat.size() > old_flat.size();
}

namespace {

// True if `element` can derive epsilon purely structurally (optional or
// repetition node) — the "decoration" elements of an alternative.
bool IsDecoration(const Expr& element) {
  return element.is_optional() || element.is_repetition();
}

// The non-decoration elements of a flattened alternative.
std::vector<Expr> CoreOf(const std::vector<Expr>& flat) {
  std::vector<Expr> core;
  for (const Expr& element : flat) {
    if (!IsDecoration(element)) core.push_back(element);
  }
  return core;
}

bool ContainsElement(const std::vector<Expr>& haystack, const Expr& needle) {
  for (const Expr& element : haystack) {
    if (element == needle) return true;
  }
  return false;
}

}  // namespace

namespace {

// Splits a flattened alternative into the decoration runs between core
// elements: for N core elements the result has N+1 segments, where
// segment k holds the decorations before core element k (and segment N
// the trailing ones).
std::vector<std::vector<Expr>> DecorationSegments(
    const std::vector<Expr>& flat) {
  std::vector<std::vector<Expr>> segments(1);
  for (const Expr& element : flat) {
    if (IsDecoration(element)) {
      segments.back().push_back(element);
    } else {
      segments.emplace_back();
    }
  }
  return segments;
}

}  // namespace

std::optional<Expr> MergeOptionalDecorations(const Expr& a, const Expr& b) {
  std::vector<Expr> fa = a.FlattenSequence();
  std::vector<Expr> fb = b.FlattenSequence();
  std::vector<Expr> core = CoreOf(fa);
  if (core.empty() || core != CoreOf(fb)) return std::nullopt;

  std::vector<std::vector<Expr>> seg_a = DecorationSegments(fa);
  std::vector<std::vector<Expr>> seg_b = DecorationSegments(fb);

  // Per segment: a's decorations keep their order; b's novel decorations
  // follow them (the optional specification composes after what is
  // already there).
  std::vector<Expr> merged;
  for (size_t k = 0; k < seg_a.size(); ++k) {
    for (const Expr& element : seg_a[k]) merged.push_back(element);
    for (const Expr& element : seg_b[k]) {
      if (!ContainsElement(fa, element)) merged.push_back(element);
    }
    if (k < core.size()) merged.push_back(core[k]);
  }
  return Expr::Seq(std::move(merged));
}

Result<Grammar> GrammarComposer::Compose(
    const Grammar& base, const Grammar& extension,
    const std::vector<std::string>& removals) {
  trace_.clear();
  Grammar composed = base;

  if (composed.name().empty()) {
    composed.set_name(extension.name());
  } else if (!extension.name().empty()) {
    composed.set_name(composed.name() + "+" + extension.name());
  }

  // Token files compose first so rule composition sees a closed token set.
  SQLPL_ASSIGN_OR_RETURN(
      TokenSet merged_tokens,
      ComposeTokenSets(composed.tokens(), extension.tokens()));
  *composed.mutable_tokens() = std::move(merged_tokens);

  for (const Production& extension_production : extension.productions()) {
    Production* existing = composed.FindMutable(extension_production.lhs());
    if (existing == nullptr) {
      SQLPL_RETURN_IF_ERROR(composed.AddProduction(extension_production));
      trace_.push_back({CompositionAction::kAddedProduction,
                        extension_production.lhs(),
                        extension_production.ToString()});
      continue;
    }
    for (const Alternative& alt : extension_production.alternatives()) {
      SQLPL_RETURN_IF_ERROR(ComposeAlternative(existing, alt));
    }
  }

  for (const std::string& lhs : removals) {
    Status status = composed.RemoveProduction(lhs);
    if (!status.ok()) {
      return Status::CompositionError("removal of '" + lhs +
                                      "' failed: " + status.message());
    }
    trace_.push_back({CompositionAction::kRemovedProduction, lhs, ""});
  }

  if (composed.start_symbol().empty()) {
    composed.set_start_symbol(extension.start_symbol());
  }
  return composed;
}

Status GrammarComposer::ComposeAlternative(Production* production,
                                           const Alternative& alt) {
  std::vector<Alternative>* alternatives = production->mutable_alternatives();

  // Identical rules compose to themselves — checked against *all*
  // existing alternatives before any containment rule fires, so that
  // composing `NO CYCLE` into `CYCLE | NO CYCLE` does not replace the
  // contained `CYCLE` and duplicate the identical alternative.
  for (const Alternative& old : *alternatives) {
    if (old.body == alt.body) {
      trace_.push_back({CompositionAction::kRetainedAlternative,
                        production->lhs(),
                        "identical: " + alt.body.ToString()});
      return Status::OK();
    }
  }

  for (size_t i = 0; i < alternatives->size(); ++i) {
    Alternative& old = (*alternatives)[i];
    if (ExprContains(alt.body, old.body)) {
      // New contains old -> replace old with new.
      Expr list_element;
      bool complex_list = IsComplexList(alt.body, &list_element) &&
                          old.body == list_element;
      trace_.push_back({complex_list
                            ? CompositionAction::kMergedComplexList
                            : CompositionAction::kReplacedAlternative,
                        production->lhs(),
                        old.body.ToString() + "  ->  " +
                            alt.body.ToString()});
      old.body = alt.body;
      if (!alt.label.empty()) old.label = alt.label;
      return Status::OK();
    }
    if (ExprContains(old.body, alt.body)) {
      // New contained in old -> retain old. Under the strict ordering of
      // the paper, an optional specification must be composed *after* its
      // non-optional core, so hitting the core afterwards is an error.
      if (options_.strict_optional_order &&
          IsOptionalExtensionOf(old.body, alt.body)) {
        return Status::CompositionError(
            "optional specification '" + old.body.ToString() +
            "' for '" + production->lhs() +
            "' must be composed after its non-optional core '" +
            alt.body.ToString() + "'");
      }
      trace_.push_back({CompositionAction::kRetainedAlternative,
                        production->lhs(),
                        "kept " + old.body.ToString() + " over " +
                            alt.body.ToString()});
      return Status::OK();
    }
  }

  // Optional-merge mechanism: two optional decorations of one core fuse
  // into a single alternative rather than exploding into choices.
  if (!options_.disable_optional_merge) {
    for (size_t i = 0; i < alternatives->size(); ++i) {
      Alternative& old = (*alternatives)[i];
      std::optional<Expr> merged =
          MergeOptionalDecorations(old.body, alt.body);
      if (merged.has_value()) {
        trace_.push_back({CompositionAction::kMergedOptionals,
                          production->lhs(),
                          old.body.ToString() + "  (+)  " +
                              alt.body.ToString() + "  ->  " +
                              merged->ToString()});
        old.body = std::move(*merged);
        return Status::OK();
      }
    }
  }

  // New and old defer -> append as choice.
  trace_.push_back({CompositionAction::kAppendedAlternative,
                    production->lhs(), alt.body.ToString()});
  alternatives->push_back(alt);
  return Status::OK();
}

namespace {

// Recursive worker for ResolveImports; `resolving` holds the names on the
// current DFS path for cycle detection.
Result<Grammar> ResolveImportsImpl(const Grammar& grammar,
                                   const GrammarLoader& loader,
                                   std::vector<std::string>* resolving) {
  if (grammar.imports().empty()) return grammar;

  for (const std::string& name : *resolving) {
    if (name == grammar.name()) {
      std::string cycle;
      for (const std::string& n : *resolving) {
        if (!cycle.empty()) cycle += " -> ";
        cycle += n;
      }
      return Status::CompositionError("import cycle: " + cycle + " -> " +
                                      grammar.name());
    }
  }
  resolving->push_back(grammar.name());

  // Compose the (recursively resolved) imports as the base, in order.
  GrammarComposer composer;
  Grammar base;
  bool have_base = false;
  for (const std::string& import : grammar.imports()) {
    Result<Grammar> loaded = loader(import);
    if (!loaded.ok()) {
      resolving->pop_back();
      return Status::CompositionError("cannot import '" + import +
                                      "' into '" + grammar.name() +
                                      "': " + loaded.status().message());
    }
    Result<Grammar> resolved =
        ResolveImportsImpl(*loaded, loader, resolving);
    if (!resolved.ok()) {
      resolving->pop_back();
      return resolved.status();
    }
    if (!have_base) {
      base = std::move(resolved).value();
      have_base = true;
    } else {
      Result<Grammar> merged = composer.Compose(base, *resolved);
      if (!merged.ok()) {
        resolving->pop_back();
        return merged.status();
      }
      base = std::move(merged).value();
    }
  }
  resolving->pop_back();

  // The importing grammar refines the imported base.
  Grammar top = grammar;
  // Strip imports (they are resolved now) before composing so the result
  // is import-free.
  Grammar stripped(top.name());
  stripped.set_start_symbol(top.start_symbol());
  *stripped.mutable_tokens() = top.tokens();
  for (const Production& production : top.productions()) {
    SQLPL_RETURN_IF_ERROR(stripped.AddProduction(production));
  }
  SQLPL_ASSIGN_OR_RETURN(Grammar result, composer.Compose(base, stripped));
  result.set_name(grammar.name());
  if (!grammar.start_symbol().empty()) {
    result.set_start_symbol(grammar.start_symbol());
  }
  return result;
}

}  // namespace

Result<Grammar> ResolveImports(const Grammar& grammar,
                               const GrammarLoader& loader) {
  std::vector<std::string> resolving;
  return ResolveImportsImpl(grammar, loader, &resolving);
}

Result<Grammar> GrammarComposer::ComposeAll(
    const std::vector<Grammar>& grammars) {
  if (grammars.empty()) {
    return Status::InvalidArgument("ComposeAll requires at least one grammar");
  }
  Grammar composed = grammars.front();
  std::vector<CompositionStep> full_trace;
  for (size_t i = 1; i < grammars.size(); ++i) {
    SQLPL_ASSIGN_OR_RETURN(composed, Compose(composed, grammars[i]));
    full_trace.insert(full_trace.end(), trace_.begin(), trace_.end());
  }
  trace_ = std::move(full_trace);
  return composed;
}

}  // namespace sqlpl
