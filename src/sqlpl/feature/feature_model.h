#ifndef SQLPL_FEATURE_FEATURE_MODEL_H_
#define SQLPL_FEATURE_FEATURE_MODEL_H_

#include <map>
#include <string>
#include <vector>

#include "sqlpl/feature/feature_diagram.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// A feature model: a named collection of feature diagrams plus
/// model-level constraints that may span diagrams. The paper's
/// decomposition of SQL Foundation is one `FeatureModel` holding 40
/// diagrams with more than 500 features (§3.1); see
/// `sqlpl/sql/foundation_model.h` for that instance.
class FeatureModel {
 public:
  FeatureModel() = default;
  explicit FeatureModel(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds a diagram; fails on duplicate diagram names.
  Status AddDiagram(FeatureDiagram diagram);

  const FeatureDiagram* Find(const std::string& diagram_name) const;
  bool Contains(const std::string& diagram_name) const;

  const std::vector<FeatureDiagram>& diagrams() const { return diagrams_; }
  size_t NumDiagrams() const { return diagrams_.size(); }

  /// Sum of `NumFeatures()` over all diagrams — the paper's
  /// "more than 500 features" metric.
  size_t TotalFeatures() const;

  /// Names of all diagrams, in insertion order.
  std::vector<std::string> DiagramNames() const;

  /// Locates the diagram containing a feature name; nullptr if the name
  /// is unknown or ambiguous across diagrams (`ambiguous` reports which).
  const FeatureDiagram* FindDiagramOfFeature(const std::string& feature,
                                             bool* ambiguous = nullptr) const;

  /// Adds a constraint between features of any diagrams in this model.
  void AddConstraint(FeatureConstraint constraint);
  const std::vector<FeatureConstraint>& constraints() const {
    return constraints_;
  }

  /// Validates every diagram and every model-level constraint.
  Status Validate(DiagnosticCollector* diagnostics) const;

 private:
  std::string name_;
  std::vector<FeatureDiagram> diagrams_;
  std::map<std::string, size_t> index_;
  std::vector<FeatureConstraint> constraints_;
};

}  // namespace sqlpl

#endif  // SQLPL_FEATURE_FEATURE_MODEL_H_
