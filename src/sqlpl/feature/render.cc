#include "sqlpl/feature/render.h"

namespace sqlpl {

namespace {

std::string NodeLabel(const FeatureDiagram& diagram,
                      FeatureDiagram::NodeId node) {
  std::string label = diagram.NameOf(node);
  std::string card = diagram.CardinalityOf(node).ToString();
  if (!card.empty()) {
    label += ' ';
    label += card;
  }
  return label;
}

std::string GroupSuffix(const FeatureDiagram& diagram,
                        FeatureDiagram::NodeId node) {
  switch (diagram.GroupOf(node)) {
    case GroupKind::kAnd:
      return "";
    case GroupKind::kAlternative:
      return "  <1-1>";
    case GroupKind::kOr:
      return "  <1-*>";
  }
  return "";
}

void RenderNode(const FeatureDiagram& diagram, FeatureDiagram::NodeId node,
                const std::string& prefix, bool last, bool is_root,
                std::string* out) {
  if (is_root) {
    *out += NodeLabel(diagram, node);
    *out += GroupSuffix(diagram, node);
    *out += '\n';
  } else {
    *out += prefix;
    *out += last ? "`-- " : "|-- ";
    *out += (diagram.VariabilityOf(node) == FeatureVariability::kMandatory)
                ? "[x] "
                : "(o) ";
    *out += NodeLabel(diagram, node);
    *out += GroupSuffix(diagram, node);
    *out += '\n';
  }
  const std::vector<FeatureDiagram::NodeId>& children =
      diagram.ChildrenOf(node);
  for (size_t i = 0; i < children.size(); ++i) {
    std::string child_prefix =
        is_root ? "" : prefix + (last ? "    " : "|   ");
    RenderNode(diagram, children[i], child_prefix, i + 1 == children.size(),
               /*is_root=*/false, out);
  }
}

}  // namespace

std::string RenderAsciiTree(const FeatureDiagram& diagram) {
  std::string out;
  if (diagram.empty()) return out;
  RenderNode(diagram, diagram.root(), "", /*last=*/true, /*is_root=*/true,
             &out);
  if (!diagram.constraints().empty()) {
    out += "constraints:\n";
    for (const FeatureConstraint& constraint : diagram.constraints()) {
      out += "  " + constraint.ToString() + "\n";
    }
  }
  return out;
}

std::string RenderDot(const FeatureDiagram& diagram) {
  std::string out = "digraph \"" + diagram.name() + "\" {\n";
  out += "  node [shape=box];\n";
  for (FeatureDiagram::NodeId id = 0; id < diagram.NumFeatures(); ++id) {
    std::string label = NodeLabel(diagram, id);
    switch (diagram.GroupOf(id)) {
      case GroupKind::kAlternative:
        label += "\\n<alternative>";
        break;
      case GroupKind::kOr:
        label += "\\n<or>";
        break;
      case GroupKind::kAnd:
        break;
    }
    out += "  n" + std::to_string(id) + " [label=\"" + label + "\"];\n";
  }
  for (FeatureDiagram::NodeId id = 0; id < diagram.NumFeatures(); ++id) {
    for (FeatureDiagram::NodeId child : diagram.ChildrenOf(id)) {
      const char* head =
          (diagram.VariabilityOf(child) == FeatureVariability::kMandatory)
              ? "dot"
              : "odot";
      out += "  n" + std::to_string(id) + " -> n" + std::to_string(child) +
             " [arrowhead=" + head + "];\n";
    }
  }
  for (const FeatureConstraint& constraint : diagram.constraints()) {
    FeatureDiagram::NodeId from = diagram.Find(constraint.from);
    FeatureDiagram::NodeId to = diagram.Find(constraint.to);
    if (from == FeatureDiagram::kInvalidNode ||
        to == FeatureDiagram::kInvalidNode) {
      continue;
    }
    out += "  n" + std::to_string(from) + " -> n" + std::to_string(to) +
           " [style=dashed, label=\"" +
           std::string(ConstraintKindToString(constraint.kind)) + "\"];\n";
  }
  out += "}\n";
  return out;
}

namespace {

void RenderInventoryNode(const FeatureDiagram& diagram,
                         FeatureDiagram::NodeId node, size_t depth,
                         std::string* out) {
  out->append(depth * 2, ' ');
  *out += diagram.NameOf(node);
  *out += "  (";
  *out += FeatureVariabilityToString(diagram.VariabilityOf(node));
  if (diagram.GroupOf(node) != GroupKind::kAnd) {
    *out += ", ";
    *out += GroupKindToString(diagram.GroupOf(node));
    *out += "-group";
  }
  std::string card = diagram.CardinalityOf(node).ToString();
  if (!card.empty()) {
    *out += ", ";
    *out += card;
  }
  *out += ")\n";
  for (FeatureDiagram::NodeId child : diagram.ChildrenOf(node)) {
    RenderInventoryNode(diagram, child, depth + 1, out);
  }
}

}  // namespace

std::string RenderInventory(const FeatureDiagram& diagram) {
  std::string out;
  if (diagram.empty()) return out;
  RenderInventoryNode(diagram, diagram.root(), 0, &out);
  return out;
}

}  // namespace sqlpl
