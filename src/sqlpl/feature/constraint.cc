#include "sqlpl/feature/constraint.h"

namespace sqlpl {

const char* ConstraintKindToString(ConstraintKind kind) {
  switch (kind) {
    case ConstraintKind::kRequires:
      return "requires";
    case ConstraintKind::kExcludes:
      return "excludes";
  }
  return "unknown";
}

std::string FeatureConstraint::ToString() const {
  return from + " " + ConstraintKindToString(kind) + " " + to;
}

}  // namespace sqlpl
