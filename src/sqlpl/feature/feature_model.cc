#include "sqlpl/feature/feature_model.h"

namespace sqlpl {

Status FeatureModel::AddDiagram(FeatureDiagram diagram) {
  if (index_.contains(diagram.name())) {
    return Status::AlreadyExists("feature model '" + name_ +
                                 "' already has a diagram named '" +
                                 diagram.name() + "'");
  }
  index_.emplace(diagram.name(), diagrams_.size());
  diagrams_.push_back(std::move(diagram));
  return Status::OK();
}

const FeatureDiagram* FeatureModel::Find(
    const std::string& diagram_name) const {
  auto it = index_.find(diagram_name);
  return it == index_.end() ? nullptr : &diagrams_[it->second];
}

bool FeatureModel::Contains(const std::string& diagram_name) const {
  return index_.contains(diagram_name);
}

size_t FeatureModel::TotalFeatures() const {
  size_t total = 0;
  for (const FeatureDiagram& diagram : diagrams_) {
    total += diagram.NumFeatures();
  }
  return total;
}

std::vector<std::string> FeatureModel::DiagramNames() const {
  std::vector<std::string> out;
  out.reserve(diagrams_.size());
  for (const FeatureDiagram& diagram : diagrams_) {
    out.push_back(diagram.name());
  }
  return out;
}

const FeatureDiagram* FeatureModel::FindDiagramOfFeature(
    const std::string& feature, bool* ambiguous) const {
  const FeatureDiagram* found = nullptr;
  if (ambiguous != nullptr) *ambiguous = false;
  for (const FeatureDiagram& diagram : diagrams_) {
    if (diagram.Contains(feature)) {
      if (found != nullptr) {
        if (ambiguous != nullptr) *ambiguous = true;
        return nullptr;
      }
      found = &diagram;
    }
  }
  return found;
}

void FeatureModel::AddConstraint(FeatureConstraint constraint) {
  constraints_.push_back(std::move(constraint));
}

Status FeatureModel::Validate(DiagnosticCollector* diagnostics) const {
  const size_t initial_errors = diagnostics->error_count();
  for (const FeatureDiagram& diagram : diagrams_) {
    // Collect all diagnostics; the summary status is computed below.
    (void)diagram.Validate(diagnostics);
  }
  for (const FeatureConstraint& constraint : constraints_) {
    bool from_known = false;
    bool to_known = false;
    for (const FeatureDiagram& diagram : diagrams_) {
      if (diagram.Contains(constraint.from)) from_known = true;
      if (diagram.Contains(constraint.to)) to_known = true;
    }
    if (!from_known) {
      diagnostics->AddError({}, "model constraint references unknown "
                                "feature '" + constraint.from + "'");
    }
    if (!to_known) {
      diagnostics->AddError({}, "model constraint references unknown "
                                "feature '" + constraint.to + "'");
    }
  }
  if (diagnostics->error_count() > initial_errors) {
    return Status::ConfigurationError("feature model '" + name_ +
                                      "' failed validation");
  }
  return Status::OK();
}

}  // namespace sqlpl
