#ifndef SQLPL_FEATURE_RENDER_H_
#define SQLPL_FEATURE_RENDER_H_

#include <string>

#include "sqlpl/feature/feature_diagram.h"

namespace sqlpl {

/// Renders a feature diagram as an ASCII tree. Notation: `[x]` marks a
/// mandatory feature, `(o)` an optional one; `<1-1>`/`<1-*>` introduce an
/// alternative / OR group; cloning cardinalities append `[m..n]`. Used by
/// `examples/paper_figures` to regenerate Figures 1 and 2 of the paper.
std::string RenderAsciiTree(const FeatureDiagram& diagram);

/// Renders a feature diagram in Graphviz DOT. Mandatory features get a
/// filled dot edge head, optional features a hollow one (modeled with
/// `arrowhead=dot/odot`); OR and alternative groups are annotated on the
/// parent node.
std::string RenderDot(const FeatureDiagram& diagram);

/// One-line-per-feature inventory: indentation shows depth, columns show
/// variability, group and cardinality. Handy for model reports.
std::string RenderInventory(const FeatureDiagram& diagram);

}  // namespace sqlpl

#endif  // SQLPL_FEATURE_RENDER_H_
