#include "sqlpl/feature/feature_diagram.h"

#include <functional>
#include <set>

namespace sqlpl {

const char* FeatureVariabilityToString(FeatureVariability variability) {
  switch (variability) {
    case FeatureVariability::kMandatory:
      return "mandatory";
    case FeatureVariability::kOptional:
      return "optional";
  }
  return "unknown";
}

const char* GroupKindToString(GroupKind kind) {
  switch (kind) {
    case GroupKind::kAnd:
      return "and";
    case GroupKind::kOr:
      return "or";
    case GroupKind::kAlternative:
      return "alternative";
  }
  return "unknown";
}

std::string Cardinality::ToString() const {
  if (IsDefault()) return "";
  std::string out = "[" + std::to_string(min) + "..";
  out += (max == kUnbounded) ? "*" : std::to_string(max);
  out += "]";
  return out;
}

FeatureDiagram::FeatureDiagram(std::string concept_name)
    : name_(concept_name) {
  Node root;
  root.name = std::move(concept_name);
  by_name_.emplace(root.name, 0);
  nodes_.push_back(std::move(root));
}

FeatureDiagram::NodeId FeatureDiagram::AddChild(NodeId parent,
                                                std::string name,
                                                FeatureVariability variability,
                                                Cardinality cardinality) {
  if (parent >= nodes_.size() || by_name_.contains(name)) {
    return kInvalidNode;
  }
  NodeId id = nodes_.size();
  Node node;
  node.name = std::move(name);
  node.variability = variability;
  node.cardinality = cardinality;
  node.parent = parent;
  by_name_.emplace(node.name, id);
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(id);
  return id;
}

FeatureDiagram::NodeId FeatureDiagram::AddMandatory(NodeId parent,
                                                    std::string name,
                                                    Cardinality cardinality) {
  return AddChild(parent, std::move(name), FeatureVariability::kMandatory,
                  cardinality);
}

FeatureDiagram::NodeId FeatureDiagram::AddOptional(NodeId parent,
                                                   std::string name,
                                                   Cardinality cardinality) {
  return AddChild(parent, std::move(name), FeatureVariability::kOptional,
                  cardinality);
}

void FeatureDiagram::SetGroup(NodeId node, GroupKind kind) {
  if (node < nodes_.size()) nodes_[node].group = kind;
}

void FeatureDiagram::AddConstraint(FeatureConstraint constraint) {
  constraints_.push_back(std::move(constraint));
}

FeatureDiagram::NodeId FeatureDiagram::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidNode : it->second;
}

bool FeatureDiagram::Contains(const std::string& name) const {
  return by_name_.contains(name);
}

const std::string& FeatureDiagram::NameOf(NodeId node) const {
  return nodes_[node].name;
}

FeatureVariability FeatureDiagram::VariabilityOf(NodeId node) const {
  return nodes_[node].variability;
}

GroupKind FeatureDiagram::GroupOf(NodeId node) const {
  return nodes_[node].group;
}

const Cardinality& FeatureDiagram::CardinalityOf(NodeId node) const {
  return nodes_[node].cardinality;
}

FeatureDiagram::NodeId FeatureDiagram::ParentOf(NodeId node) const {
  return nodes_[node].parent;
}

const std::vector<FeatureDiagram::NodeId>& FeatureDiagram::ChildrenOf(
    NodeId node) const {
  return nodes_[node].children;
}

std::vector<std::string> FeatureDiagram::FeatureNames() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  if (nodes_.empty()) return out;
  std::vector<NodeId> stack = {root()};
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    out.push_back(nodes_[id].name);
    const std::vector<NodeId>& children = nodes_[id].children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

Status FeatureDiagram::Validate(DiagnosticCollector* diagnostics) const {
  const size_t initial_errors = diagnostics->error_count();
  if (nodes_.empty()) {
    diagnostics->AddError({}, "feature diagram '" + name_ + "' is empty");
    return Status::ConfigurationError("empty feature diagram");
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    if (node.group != GroupKind::kAnd && node.children.size() < 2) {
      diagnostics->AddWarning(
          {}, "feature '" + node.name + "' in diagram '" + name_ +
                  "' declares an " + GroupKindToString(node.group) +
                  " group with fewer than two children");
    }
    if (node.cardinality.min > node.cardinality.max) {
      diagnostics->AddError({}, "feature '" + node.name +
                                    "' has inverted cardinality bounds");
    }
  }
  for (const FeatureConstraint& constraint : constraints_) {
    if (!Contains(constraint.from)) {
      diagnostics->AddError({}, "constraint references unknown feature '" +
                                    constraint.from + "'");
    }
    if (!Contains(constraint.to)) {
      diagnostics->AddError({}, "constraint references unknown feature '" +
                                    constraint.to + "'");
    }
  }
  if (diagnostics->error_count() > initial_errors) {
    return Status::ConfigurationError("feature diagram '" + name_ +
                                      "' failed validation");
  }
  return Status::OK();
}

namespace {

// Enumerates selections of `diagram` rooted at `node` (assumed selected),
// invoking `yield` with each complete selection set built in `current`.
// Used only by CountConfigurations; exponential by nature.
void EnumerateNode(const FeatureDiagram& diagram, FeatureDiagram::NodeId node,
                   std::set<std::string>* current,
                   const std::function<void()>& yield);

// Enumerates all admissible child subsets of `node` (whose selection is
// already in `current`), then calls `yield`.
void EnumerateChildren(const FeatureDiagram& diagram,
                       FeatureDiagram::NodeId node,
                       std::set<std::string>* current,
                       const std::function<void()>& yield) {
  const std::vector<FeatureDiagram::NodeId>& children =
      diagram.ChildrenOf(node);
  switch (diagram.GroupOf(node)) {
    case GroupKind::kAnd: {
      // Recurse child-by-child; optional children fork on include/skip.
      std::function<void(size_t)> step = [&](size_t index) {
        if (index == children.size()) {
          yield();
          return;
        }
        FeatureDiagram::NodeId child = children[index];
        auto include = [&]() {
          EnumerateNode(diagram, child, current,
                        [&]() { step(index + 1); });
        };
        if (diagram.VariabilityOf(child) == FeatureVariability::kMandatory) {
          include();
        } else {
          include();
          step(index + 1);  // skip the optional child
        }
      };
      step(0);
      return;
    }
    case GroupKind::kAlternative: {
      for (FeatureDiagram::NodeId child : children) {
        EnumerateNode(diagram, child, current, yield);
      }
      return;
    }
    case GroupKind::kOr: {
      // Every non-empty subset of children.
      std::function<void(size_t, size_t)> step = [&](size_t index,
                                                     size_t taken) {
        if (index == children.size()) {
          if (taken > 0) yield();
          return;
        }
        EnumerateNode(diagram, children[index], current,
                      [&]() { step(index + 1, taken + 1); });
        step(index + 1, taken);
      };
      step(0, 0);
      return;
    }
  }
}

void EnumerateNode(const FeatureDiagram& diagram, FeatureDiagram::NodeId node,
                   std::set<std::string>* current,
                   const std::function<void()>& yield) {
  current->insert(diagram.NameOf(node));
  EnumerateChildren(diagram, node, current, yield);
  current->erase(diagram.NameOf(node));
}

bool SatisfiesConstraints(const FeatureDiagram& diagram,
                          const std::set<std::string>& selection) {
  for (const FeatureConstraint& constraint : diagram.constraints()) {
    bool has_from = selection.contains(constraint.from);
    bool has_to = selection.contains(constraint.to);
    if (constraint.kind == ConstraintKind::kRequires && has_from && !has_to) {
      return false;
    }
    if (constraint.kind == ConstraintKind::kExcludes && has_from && has_to) {
      return false;
    }
  }
  return true;
}

}  // namespace

uint64_t FeatureDiagram::CountConfigurations() const {
  if (nodes_.empty()) return 0;
  uint64_t count = 0;
  std::set<std::string> current;
  EnumerateNode(*this, root(), &current, [&]() {
    if (SatisfiesConstraints(*this, current)) ++count;
  });
  return count;
}

}  // namespace sqlpl
