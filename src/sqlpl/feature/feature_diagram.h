#ifndef SQLPL_FEATURE_FEATURE_DIAGRAM_H_
#define SQLPL_FEATURE_FEATURE_DIAGRAM_H_

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "sqlpl/feature/constraint.h"
#include "sqlpl/util/diagnostics.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// Whether a feature is required or optional relative to its parent.
enum class FeatureVariability {
  kMandatory,
  kOptional,
};

/// How the children of a feature relate to each other (FODA feature-
/// diagram semantics): AND — each child governed by its own variability;
/// OR — at least one child must be selected when the parent is; XOR
/// ("alternative") — exactly one child must be selected when the parent is.
enum class GroupKind {
  kAnd,
  kOr,
  kAlternative,
};

const char* FeatureVariabilityToString(FeatureVariability variability);
const char* GroupKindToString(GroupKind kind);

/// Instance-count bounds for cloned features, e.g. the paper's Figure 1
/// `Select Sublist [1..*]`. `kUnbounded` denotes `*`.
struct Cardinality {
  static constexpr int kUnbounded = std::numeric_limits<int>::max();

  int min = 1;
  int max = 1;

  static Cardinality Exactly(int n) { return {n, n}; }
  static Cardinality AtLeast(int n) { return {n, kUnbounded}; }

  bool IsDefault() const { return min == 1 && max == 1; }
  bool Allows(int count) const { return count >= min && count <= max; }

  bool operator==(const Cardinality&) const = default;

  /// "[1..*]"-style rendering; empty for the default [1..1].
  std::string ToString() const;
};

/// A feature diagram: a tree of named features with FODA variability,
/// grouping, cloning cardinalities, and cross-tree requires/excludes
/// constraints. Feature names are unique within a diagram. The paper's
/// Figures 1 and 2 are instances of this type (see `sqlpl/sql`).
class FeatureDiagram {
 public:
  using NodeId = size_t;
  static constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

  FeatureDiagram() = default;
  /// Creates a diagram whose root concept is named `concept_name`.
  explicit FeatureDiagram(std::string concept_name);

  const std::string& name() const { return name_; }
  NodeId root() const { return 0; }
  bool empty() const { return nodes_.empty(); }
  /// Total number of features including the root concept. The paper's
  /// "more than 500 features" counts nodes of all 40 diagrams this way.
  size_t NumFeatures() const { return nodes_.size(); }

  /// Adds a child feature under `parent`. Fails (returns `kInvalidNode`
  /// and records nothing) if the name is already used in this diagram.
  NodeId AddChild(NodeId parent, std::string name,
                  FeatureVariability variability,
                  Cardinality cardinality = {});
  NodeId AddMandatory(NodeId parent, std::string name,
                      Cardinality cardinality = {});
  NodeId AddOptional(NodeId parent, std::string name,
                     Cardinality cardinality = {});

  /// Sets how the children of `node` are grouped (default `kAnd`).
  void SetGroup(NodeId node, GroupKind kind);

  /// Adds a cross-tree constraint between two features of this diagram.
  void AddConstraint(FeatureConstraint constraint);
  const std::vector<FeatureConstraint>& constraints() const {
    return constraints_;
  }

  NodeId Find(const std::string& name) const;
  bool Contains(const std::string& name) const;

  const std::string& NameOf(NodeId node) const;
  FeatureVariability VariabilityOf(NodeId node) const;
  GroupKind GroupOf(NodeId node) const;
  const Cardinality& CardinalityOf(NodeId node) const;
  NodeId ParentOf(NodeId node) const;  // kInvalidNode for the root
  const std::vector<NodeId>& ChildrenOf(NodeId node) const;
  bool IsLeaf(NodeId node) const { return ChildrenOf(node).empty(); }

  /// All feature names in pre-order (root first).
  std::vector<std::string> FeatureNames() const;

  /// Structural checks: non-empty, OR/XOR groups have >= 2 children
  /// (warning), constraints reference existing features (error).
  Status Validate(DiagnosticCollector* diagnostics) const;

  /// Number of distinct valid feature-instance descriptions of this
  /// diagram, ignoring cardinalities (each cloned feature counted once)
  /// but honoring variability, groups, and cross-tree constraints.
  /// Exponential in diagram size; intended for tests and reporting.
  uint64_t CountConfigurations() const;

 private:
  struct Node {
    std::string name;
    FeatureVariability variability = FeatureVariability::kMandatory;
    GroupKind group = GroupKind::kAnd;
    Cardinality cardinality;
    NodeId parent = kInvalidNode;
    std::vector<NodeId> children;
  };

  std::string name_;
  std::vector<Node> nodes_;
  std::map<std::string, NodeId> by_name_;
  std::vector<FeatureConstraint> constraints_;
};

}  // namespace sqlpl

#endif  // SQLPL_FEATURE_FEATURE_DIAGRAM_H_
