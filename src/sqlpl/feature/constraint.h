#ifndef SQLPL_FEATURE_CONSTRAINT_H_
#define SQLPL_FEATURE_CONSTRAINT_H_

#include <string>

namespace sqlpl {

/// Kind of a cross-tree feature constraint (paper §3.2: "Such features
/// constraints are expressed as requires or excludes conditions on
/// features").
enum class ConstraintKind {
  /// Selecting `from` forces `to` to be selected.
  kRequires,
  /// Selecting `from` forbids selecting `to` (symmetric).
  kExcludes,
};

const char* ConstraintKindToString(ConstraintKind kind);

/// A cross-tree constraint between two features, identified by name.
struct FeatureConstraint {
  ConstraintKind kind = ConstraintKind::kRequires;
  std::string from;
  std::string to;

  static FeatureConstraint Requires(std::string from, std::string to) {
    return {ConstraintKind::kRequires, std::move(from), std::move(to)};
  }
  static FeatureConstraint Excludes(std::string from, std::string to) {
    return {ConstraintKind::kExcludes, std::move(from), std::move(to)};
  }

  bool operator==(const FeatureConstraint&) const = default;

  /// "A requires B" / "A excludes B".
  std::string ToString() const;
};

}  // namespace sqlpl

#endif  // SQLPL_FEATURE_CONSTRAINT_H_
