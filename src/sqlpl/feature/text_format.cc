#include "sqlpl/feature/text_format.h"

#include "sqlpl/util/source_location.h"
#include "sqlpl/util/strings.h"

namespace sqlpl {

namespace {

enum class FTokKind {
  kIdent,
  kLBrace,    // {
  kRBrace,    // }
  kQuestion,  // ?
  kLBracket,  // [
  kRBracket,  // ]
  kDotDot,    // ..
  kStar,      // *
  kNumber,
  kSemi,  // ;
  kEnd,
};

struct FTok {
  FTokKind kind = FTokKind::kEnd;
  std::string text;
  SourceLocation loc;
};

Result<std::vector<FTok>> TokenizeFeatureDsl(std::string_view text,
                                             std::string_view source_name) {
  std::vector<FTok> out;
  size_t pos = 0;
  size_t line = 1;
  size_t column = 1;
  auto advance = [&]() {
    if (text[pos] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    ++pos;
  };
  while (pos < text.size()) {
    char c = text[pos];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '/' && pos + 1 < text.size() && text[pos + 1] == '/') {
      while (pos < text.size() && text[pos] != '\n') advance();
      continue;
    }
    SourceLocation loc{line, column, pos};
    if (IsIdentStart(c)) {
      size_t start = pos;
      while (pos < text.size() && IsIdentCont(text[pos])) advance();
      out.push_back(
          {FTokKind::kIdent, std::string(text.substr(start, pos - start)),
           loc});
      continue;
    }
    if (c >= '0' && c <= '9') {
      size_t start = pos;
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
        advance();
      }
      out.push_back(
          {FTokKind::kNumber, std::string(text.substr(start, pos - start)),
           loc});
      continue;
    }
    if (c == '.' && pos + 1 < text.size() && text[pos + 1] == '.') {
      advance();
      advance();
      out.push_back({FTokKind::kDotDot, "..", loc});
      continue;
    }
    FTokKind kind;
    switch (c) {
      case '{': kind = FTokKind::kLBrace; break;
      case '}': kind = FTokKind::kRBrace; break;
      case '?': kind = FTokKind::kQuestion; break;
      case '[': kind = FTokKind::kLBracket; break;
      case ']': kind = FTokKind::kRBracket; break;
      case '*': kind = FTokKind::kStar; break;
      case ';': kind = FTokKind::kSemi; break;
      default:
        return Status::ParseError(std::string(source_name) + ":" +
                                  loc.ToString() +
                                  ": unexpected character '" +
                                  std::string(1, c) + "' in feature DSL");
    }
    out.push_back({kind, std::string(1, c), loc});
    advance();
  }
  out.push_back({FTokKind::kEnd, "", {line, column, pos}});
  return out;
}

class FeatureDslParser {
 public:
  FeatureDslParser(std::vector<FTok> toks, std::string_view source_name)
      : toks_(std::move(toks)), source_name_(source_name) {}

  Result<FeatureDiagram> ParseDiagram() {
    SQLPL_ASSIGN_OR_RETURN(FeatureDiagram diagram, ParseDiagramBlock());
    SQLPL_RETURN_IF_ERROR(ParseConstraints(&diagram));
    if (Peek().kind != FTokKind::kEnd) {
      return Error("trailing input after feature diagram");
    }
    return diagram;
  }

  Result<FeatureModel> ParseModel() {
    FeatureModel model;
    while (Peek().kind != FTokKind::kEnd) {
      SQLPL_ASSIGN_OR_RETURN(FeatureDiagram diagram, ParseDiagramBlock());
      SQLPL_RETURN_IF_ERROR(ParseConstraints(&diagram));
      SQLPL_RETURN_IF_ERROR(model.AddDiagram(std::move(diagram)));
    }
    return model;
  }

 private:
  const FTok& Peek() const { return toks_[pos_]; }
  const FTok& PeekAhead(size_t n) const {
    size_t i = pos_ + n;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const FTok& Next() { return toks_[pos_++]; }

  Status Error(const std::string& message) const {
    return Status::ParseError(std::string(source_name_) + ":" +
                              Peek().loc.ToString() + ": " + message);
  }

  Result<FeatureDiagram> ParseDiagramBlock() {
    if (!(Peek().kind == FTokKind::kIdent && Peek().text == "diagram")) {
      return Error("expected 'diagram'");
    }
    Next();
    if (Peek().kind != FTokKind::kIdent) {
      return Error("expected diagram name");
    }
    FeatureDiagram diagram(Next().text);
    // Optional group keyword for the root's children.
    SQLPL_RETURN_IF_ERROR(ParseGroupAndChildren(&diagram, diagram.root()));
    return diagram;
  }

  // Parses the optional group keyword and the braced child list of `node`.
  Status ParseGroupAndChildren(FeatureDiagram* diagram,
                               FeatureDiagram::NodeId node) {
    if (Peek().kind == FTokKind::kIdent &&
        (Peek().text == "or" || Peek().text == "alternative" ||
         Peek().text == "alt" || Peek().text == "and")) {
      const std::string& g = Next().text;
      if (g == "or") {
        diagram->SetGroup(node, GroupKind::kOr);
      } else if (g == "and") {
        diagram->SetGroup(node, GroupKind::kAnd);
      } else {
        diagram->SetGroup(node, GroupKind::kAlternative);
      }
    }
    if (Peek().kind != FTokKind::kLBrace) return Status::OK();
    Next();  // consume '{'
    while (Peek().kind != FTokKind::kRBrace) {
      if (Peek().kind == FTokKind::kEnd) {
        return Error("unterminated feature block");
      }
      SQLPL_RETURN_IF_ERROR(ParseFeature(diagram, node));
    }
    Next();  // consume '}'
    return Status::OK();
  }

  // NAME '?'? ('[' m '..' (n|'*') ']')? group? ('{' children '}')?
  Status ParseFeature(FeatureDiagram* diagram,
                      FeatureDiagram::NodeId parent) {
    if (Peek().kind != FTokKind::kIdent) {
      return Error("expected feature name, got '" + Peek().text + "'");
    }
    std::string name = Next().text;
    FeatureVariability variability = FeatureVariability::kMandatory;
    if (Peek().kind == FTokKind::kQuestion) {
      Next();
      variability = FeatureVariability::kOptional;
    }
    Cardinality cardinality;
    if (Peek().kind == FTokKind::kLBracket) {
      Next();
      if (Peek().kind != FTokKind::kNumber) {
        return Error("expected lower cardinality bound");
      }
      cardinality.min = std::stoi(Next().text);
      if (Peek().kind != FTokKind::kDotDot) {
        return Error("expected '..' in cardinality");
      }
      Next();
      if (Peek().kind == FTokKind::kStar) {
        Next();
        cardinality.max = Cardinality::kUnbounded;
      } else if (Peek().kind == FTokKind::kNumber) {
        cardinality.max = std::stoi(Next().text);
      } else {
        return Error("expected upper cardinality bound or '*'");
      }
      if (Peek().kind != FTokKind::kRBracket) {
        return Error("expected ']' after cardinality");
      }
      Next();
    }
    FeatureDiagram::NodeId node =
        diagram->AddChild(parent, name, variability, cardinality);
    if (node == FeatureDiagram::kInvalidNode) {
      return Error("duplicate feature name '" + name + "' in diagram '" +
                   diagram->name() + "'");
    }
    return ParseGroupAndChildren(diagram, node);
  }

  // `A requires B ;` / `A excludes B ;` lines following the block.
  Status ParseConstraints(FeatureDiagram* diagram) {
    while (Peek().kind == FTokKind::kIdent &&
           (PeekAhead(1).kind == FTokKind::kIdent &&
            (PeekAhead(1).text == "requires" ||
             PeekAhead(1).text == "excludes"))) {
      std::string from = Next().text;
      std::string kind = Next().text;
      if (Peek().kind != FTokKind::kIdent) {
        return Error("expected feature name after '" + kind + "'");
      }
      std::string to = Next().text;
      if (Peek().kind != FTokKind::kSemi) {
        return Error("expected ';' after constraint");
      }
      Next();
      diagram->AddConstraint(kind == "requires"
                                 ? FeatureConstraint::Requires(from, to)
                                 : FeatureConstraint::Excludes(from, to));
    }
    return Status::OK();
  }

  std::vector<FTok> toks_;
  std::string_view source_name_;
  size_t pos_ = 0;
};

void WriteFeatureNode(const FeatureDiagram& diagram,
                      FeatureDiagram::NodeId node, size_t depth,
                      std::string* out) {
  out->append(depth * 2, ' ');
  *out += diagram.NameOf(node);
  if (diagram.VariabilityOf(node) == FeatureVariability::kOptional) {
    *out += '?';
  }
  std::string card = diagram.CardinalityOf(node).ToString();
  if (!card.empty()) {
    *out += ' ';
    *out += card;
  }
  switch (diagram.GroupOf(node)) {
    case GroupKind::kOr:
      *out += " or";
      break;
    case GroupKind::kAlternative:
      *out += " alternative";
      break;
    case GroupKind::kAnd:
      break;
  }
  const std::vector<FeatureDiagram::NodeId>& children =
      diagram.ChildrenOf(node);
  if (children.empty()) {
    *out += '\n';
    return;
  }
  *out += " {\n";
  for (FeatureDiagram::NodeId child : children) {
    WriteFeatureNode(diagram, child, depth + 1, out);
  }
  out->append(depth * 2, ' ');
  *out += "}\n";
}

}  // namespace

Result<FeatureDiagram> ParseFeatureDiagramText(std::string_view text,
                                               std::string_view source_name) {
  SQLPL_ASSIGN_OR_RETURN(std::vector<FTok> toks,
                         TokenizeFeatureDsl(text, source_name));
  FeatureDslParser parser(std::move(toks), source_name);
  return parser.ParseDiagram();
}

Result<FeatureModel> ParseFeatureModelText(std::string_view text,
                                           std::string_view source_name) {
  SQLPL_ASSIGN_OR_RETURN(std::vector<FTok> toks,
                         TokenizeFeatureDsl(text, source_name));
  FeatureDslParser parser(std::move(toks), source_name);
  return parser.ParseModel();
}

std::string WriteFeatureDiagramText(const FeatureDiagram& diagram) {
  std::string out = "diagram " + diagram.name();
  if (diagram.empty()) {
    out += " {\n}\n";
    return out;
  }
  switch (diagram.GroupOf(diagram.root())) {
    case GroupKind::kOr:
      out += " or";
      break;
    case GroupKind::kAlternative:
      out += " alternative";
      break;
    case GroupKind::kAnd:
      break;
  }
  out += " {\n";
  for (FeatureDiagram::NodeId child : diagram.ChildrenOf(diagram.root())) {
    WriteFeatureNode(diagram, child, 1, &out);
  }
  out += "}\n";
  for (const FeatureConstraint& constraint : diagram.constraints()) {
    out += constraint.ToString() + ";\n";
  }
  return out;
}

}  // namespace sqlpl
