#include "sqlpl/feature/configuration.h"

namespace sqlpl {

void Configuration::Select(const std::string& feature) {
  selected_.insert(feature);
}

void Configuration::SelectWithCount(const std::string& feature, int count) {
  selected_.insert(feature);
  counts_[feature] = count;
}

void Configuration::Deselect(const std::string& feature) {
  selected_.erase(feature);
  counts_.erase(feature);
}

bool Configuration::IsSelected(const std::string& feature) const {
  return selected_.contains(feature);
}

int Configuration::CountOf(const std::string& feature) const {
  if (!IsSelected(feature)) return 0;
  auto it = counts_.find(feature);
  return it == counts_.end() ? 1 : it->second;
}

size_t Configuration::Normalize(const FeatureDiagram& diagram) {
  size_t added = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    // Root concept.
    if (!diagram.empty() &&
        !selected_.contains(diagram.NameOf(diagram.root()))) {
      selected_.insert(diagram.NameOf(diagram.root()));
      ++added;
      changed = true;
    }
    // Ancestors and mandatory children of everything selected.
    std::vector<std::string> to_add;
    for (const std::string& name : selected_) {
      FeatureDiagram::NodeId node = diagram.Find(name);
      if (node == FeatureDiagram::kInvalidNode) continue;
      FeatureDiagram::NodeId parent = diagram.ParentOf(node);
      if (parent != FeatureDiagram::kInvalidNode &&
          !selected_.contains(diagram.NameOf(parent))) {
        to_add.push_back(diagram.NameOf(parent));
      }
      // Mandatory children apply only under AND grouping; OR/alternative
      // groups are explicit user choices.
      if (diagram.GroupOf(node) == GroupKind::kAnd) {
        for (FeatureDiagram::NodeId child : diagram.ChildrenOf(node)) {
          if (diagram.VariabilityOf(child) ==
                  FeatureVariability::kMandatory &&
              !selected_.contains(diagram.NameOf(child))) {
            to_add.push_back(diagram.NameOf(child));
          }
        }
      }
    }
    for (const std::string& name : to_add) {
      if (selected_.insert(name).second) {
        ++added;
        changed = true;
      }
    }
  }
  return added;
}

Status Configuration::Validate(const FeatureDiagram& diagram,
                               DiagnosticCollector* diagnostics) const {
  const size_t initial_errors = diagnostics->error_count();

  for (const std::string& name : selected_) {
    if (!diagram.Contains(name)) {
      diagnostics->AddError({}, "selected feature '" + name +
                                    "' does not exist in diagram '" +
                                    diagram.name() + "'");
    }
  }

  if (!diagram.empty()) {
    const std::string& root_name = diagram.NameOf(diagram.root());
    if (!selected_.contains(root_name)) {
      diagnostics->AddError({}, "concept feature '" + root_name +
                                    "' must be selected");
    }
  }

  for (const std::string& name : selected_) {
    FeatureDiagram::NodeId node = diagram.Find(name);
    if (node == FeatureDiagram::kInvalidNode) continue;

    // Parent must be selected.
    FeatureDiagram::NodeId parent = diagram.ParentOf(node);
    if (parent != FeatureDiagram::kInvalidNode &&
        !selected_.contains(diagram.NameOf(parent))) {
      diagnostics->AddError({}, "feature '" + name +
                                    "' selected without its parent '" +
                                    diagram.NameOf(parent) + "'");
    }

    // Cardinality.
    const Cardinality& cardinality = diagram.CardinalityOf(node);
    int count = CountOf(name);
    if (!cardinality.Allows(count)) {
      diagnostics->AddError(
          {}, "feature '" + name + "' selected with count " +
                  std::to_string(count) + " outside cardinality " +
                  (cardinality.ToString().empty() ? "[1..1]"
                                                  : cardinality.ToString()));
    }

    // Group semantics over the children of each selected feature.
    const std::vector<FeatureDiagram::NodeId>& children =
        diagram.ChildrenOf(node);
    size_t selected_children = 0;
    for (FeatureDiagram::NodeId child : children) {
      if (selected_.contains(diagram.NameOf(child))) ++selected_children;
    }
    switch (diagram.GroupOf(node)) {
      case GroupKind::kAnd:
        for (FeatureDiagram::NodeId child : children) {
          if (diagram.VariabilityOf(child) ==
                  FeatureVariability::kMandatory &&
              !selected_.contains(diagram.NameOf(child))) {
            diagnostics->AddError(
                {}, "mandatory feature '" + diagram.NameOf(child) +
                        "' missing under selected '" + name + "'");
          }
        }
        break;
      case GroupKind::kAlternative:
        if (selected_children != 1) {
          diagnostics->AddError(
              {}, "alternative group under '" + name + "' needs exactly one "
                      "selected child, got " +
                      std::to_string(selected_children));
        }
        break;
      case GroupKind::kOr:
        if (selected_children == 0) {
          diagnostics->AddError({}, "OR group under '" + name +
                                        "' needs at least one selected child");
        }
        break;
    }
  }

  // Cross-tree constraints.
  for (const FeatureConstraint& constraint : diagram.constraints()) {
    bool has_from = selected_.contains(constraint.from);
    bool has_to = selected_.contains(constraint.to);
    if (constraint.kind == ConstraintKind::kRequires && has_from && !has_to) {
      diagnostics->AddError({}, "constraint violated: " +
                                    constraint.ToString());
    }
    if (constraint.kind == ConstraintKind::kExcludes && has_from && has_to) {
      diagnostics->AddError({}, "constraint violated: " +
                                    constraint.ToString());
    }
  }

  if (diagnostics->error_count() > initial_errors) {
    return Status::ConfigurationError(
        "feature instance description is invalid for diagram '" +
        diagram.name() + "'");
  }
  return Status::OK();
}

std::string Configuration::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const std::string& name : selected_) {
    if (!first) out += ", ";
    first = false;
    out += name;
    int count = CountOf(name);
    if (count != 1) out += "[" + std::to_string(count) + "]";
  }
  out += "}";
  return out;
}

}  // namespace sqlpl
