#ifndef SQLPL_FEATURE_CONFIGURATION_H_
#define SQLPL_FEATURE_CONFIGURATION_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sqlpl/feature/feature_diagram.h"
#include "sqlpl/util/diagnostics.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// A feature instance description (paper §2.2): a concrete selection of
/// features from one feature diagram, "obtained by including the concept
/// node of the feature diagram and traversing the diagram from the
/// concept". Cloned features (non-default cardinality) may carry an
/// instance count, e.g. `Select Sublist` with cardinality 1 in the §3.2
/// worked example.
class Configuration {
 public:
  Configuration() = default;
  /// Creates a configuration for the named diagram with only its concept
  /// (root) selected.
  explicit Configuration(std::string diagram_name)
      : diagram_name_(std::move(diagram_name)) {}

  const std::string& diagram_name() const { return diagram_name_; }

  /// Selects a feature (idempotent).
  void Select(const std::string& feature);
  /// Selects a cloned feature with an instance count.
  void SelectWithCount(const std::string& feature, int count);
  void Deselect(const std::string& feature);

  bool IsSelected(const std::string& feature) const;
  /// Instance count of a selected feature (1 unless set), 0 if unselected.
  int CountOf(const std::string& feature) const;

  const std::set<std::string>& selected() const { return selected_; }
  size_t size() const { return selected_.size(); }

  /// Adds every feature that the current selection implies: the root
  /// concept, all ancestors of selected features, and the mandatory-child
  /// closure of everything selected. Returns the number of features added.
  /// Group choices (OR / alternative) are never made automatically.
  size_t Normalize(const FeatureDiagram& diagram);

  /// Checks this instance description against diagram semantics:
  ///  - every selected feature exists in the diagram,
  ///  - the root concept is selected,
  ///  - parents of selected features are selected,
  ///  - mandatory children of selected features are selected,
  ///  - alternative groups have exactly one selected child,
  ///  - OR groups have at least one selected child,
  ///  - instance counts satisfy cardinalities,
  ///  - cross-tree requires/excludes hold.
  Status Validate(const FeatureDiagram& diagram,
                  DiagnosticCollector* diagnostics) const;

  /// Sorted "feature" / "feature[n]" list, e.g. the paper's
  /// `{Query Specification, Select List, Select Sublist[1], ...}`.
  std::string ToString() const;

  bool operator==(const Configuration&) const = default;

 private:
  std::string diagram_name_;
  std::set<std::string> selected_;
  std::map<std::string, int> counts_;
};

}  // namespace sqlpl

#endif  // SQLPL_FEATURE_CONFIGURATION_H_
