#ifndef SQLPL_FEATURE_TEXT_FORMAT_H_
#define SQLPL_FEATURE_TEXT_FORMAT_H_

#include <string>
#include <string_view>

#include "sqlpl/feature/feature_diagram.h"
#include "sqlpl/feature/feature_model.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// Parses the feature-diagram DSL:
///
/// ```
/// diagram QuerySpecification {
///   SetQuantifier? alternative {
///     ALL
///     DISTINCT
///   }
///   SelectList {
///     SelectSublist [1..*] or {
///       DerivedColumn { As? }
///       Asterisk
///     }
///   }
/// }
/// SetQuantifier requires SelectList;
/// ```
///
/// A feature is `NAME` with optional `?` (optional feature), `[m..n]` or
/// `[m..*]` cloning cardinality, a group keyword (`or` / `alternative` /
/// `and`) applying to its children, and a braced child list. Cross-tree
/// `A requires B;` / `A excludes B;` constraints follow the diagram.
/// Comments: `//` to end of line.
Result<FeatureDiagram> ParseFeatureDiagramText(
    std::string_view text, std::string_view source_name = "<string>");

/// Parses a document holding several `diagram` blocks into a model.
Result<FeatureModel> ParseFeatureModelText(
    std::string_view text, std::string_view source_name = "<string>");

/// Renders a diagram in the DSL accepted by `ParseFeatureDiagramText`
/// (round-trip safe for names without whitespace).
std::string WriteFeatureDiagramText(const FeatureDiagram& diagram);

}  // namespace sqlpl

#endif  // SQLPL_FEATURE_TEXT_FORMAT_H_
