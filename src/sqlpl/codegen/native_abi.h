#ifndef SQLPL_CODEGEN_NATIVE_ABI_H_
#define SQLPL_CODEGEN_NATIVE_ABI_H_

#include <cstdint>

/// The stable `extern "C"` ABI between the serving process and a
/// dlopen'ed native parser produced by `GenerateNativeParserSource` +
/// the system C++ compiler (docs/NATIVE_TIER.md).
///
/// The generated shared object re-declares these structs verbatim (it
/// must stay self-contained — it is compiled without the sqlpl source
/// tree on the include path), so any layout change here is an ABI break
/// and MUST bump `kNativeAbiVersion`; the loader refuses handles whose
/// embedded version differs.
extern "C" {

/// One host-lexed token, mirroring `sqlpl::LexedToken`: the interned
/// type id (the host's `SymbolInterner` id space — the .so embeds the
/// same table, verified via `symbol_table_hash`), a borrowed lexeme
/// view, and the 1-based source position. `reserved` pads `text` to an
/// 8-byte boundary explicitly so the layout is identical everywhere.
typedef struct SqlplNativeTokenV1 {
  uint32_t type;
  uint32_t reserved;
  const char* text;
  uint64_t text_len;
  uint64_t line;
  uint64_t column;
} SqlplNativeTokenV1;

/// Parse output: `data` points at a buffer owned by the shared object
/// (the S-expression on accept, the syntax-error message on reject) —
/// a per-thread render buffer the library reuses, so the pointer is
/// valid only until the *calling thread's* next `parse` through the
/// same handle. Callers copy out immediately and then clear the struct
/// with the handle's `free_result` — never the host's `free`. The
/// reuse is what keeps the hot path allocation-free; see
/// docs/NATIVE_TIER.md.
typedef struct SqlplNativeResultV1 {
  char* data;
  uint64_t size;
} SqlplNativeResultV1;

/// Parses `tokens` (length `num_tokens`, `$`-terminated: the last token
/// has `type == 0`). Returns 0 = accepted (result holds the rendered
/// S-expression when `want_render` != 0, else an empty buffer), 1 =
/// syntax error (result holds the engine-byte-identical message), 2 =
/// internal error (malformed input stream, allocation failure; result
/// is empty and the caller must fall back to the interpreter).
typedef int (*SqlplNativeParseFn)(const SqlplNativeTokenV1* tokens,
                                  uint64_t num_tokens, int want_render,
                                  SqlplNativeResultV1* result);
typedef void (*SqlplNativeFreeFn)(SqlplNativeResultV1* result);

/// The handle returned by the library's single exported entry point.
/// `grammar_fingerprint` is the `SpecFingerprint` the library was
/// generated for and `symbol_table_hash` covers the embedded symbol
/// name table (see `sqlpl::SymbolTableHash`); the loader checks both
/// before the handle may serve.
typedef struct SqlplNativeParserV1 {
  uint32_t abi_version;
  uint32_t num_symbols;
  uint64_t grammar_fingerprint;
  uint64_t symbol_table_hash;
  SqlplNativeParseFn parse;
  SqlplNativeFreeFn free_result;
} SqlplNativeParserV1;

}  // extern "C"

namespace sqlpl {

inline constexpr uint32_t kNativeAbiVersion = 1;

/// dlsym name of the entry point: `const SqlplNativeParserV1* (*)(void)`.
inline constexpr char kNativeEntrySymbol[] = "sqlpl_native_entry_v1";
using NativeEntryFn = const SqlplNativeParserV1* (*)();

/// `SqlplNativeParseFn` return codes.
inline constexpr int kNativeParseAccepted = 0;
inline constexpr int kNativeParseSyntaxError = 1;
inline constexpr int kNativeParseInternalError = 2;

}  // namespace sqlpl

#endif  // SQLPL_CODEGEN_NATIVE_ABI_H_
