#include "sqlpl/codegen/cpp_codegen.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "sqlpl/grammar/analysis.h"
#include "sqlpl/parser/ll_parser.h"
#include "sqlpl/util/strings.h"

namespace sqlpl {

namespace {

// ---------------------------------------------------------------------
// Shared emitter core
//
// Both generator flavors (the standalone header of `GenerateCppParser`
// and the `.so` source of `GenerateNativeParserSource`) emit the same
// parser core: a set of `Parse_<rule>(Ctx&, std::size_t&)` functions
// whose control flow is a statement-level unrolling of the interpreter
// (LlParser::MatchNonterminal / MatchExpr in ll_parser.cc). Every
// save/restore, FIRST-set prune, failure recording, and node
// construction mirrors the interpreter line for line — that is what
// makes the generated parsers' S-expressions and error messages
// byte-identical to the engine, the property the native tier's
// promotion gate relies on. Change ll_parser.cc semantics and this
// emitter must change in lockstep (the codegen differential test and
// the native promotion gate both enforce it).
// ---------------------------------------------------------------------

// State for one emission run: the source grammar artifacts plus the
// output buffers (FIRST-set arrays are emitted to a separate buffer so
// they can precede the functions that reference them) and a counter for
// unique local-variable names.
struct Emitter {
  const Grammar* grammar = nullptr;
  const GrammarAnalysis* analysis = nullptr;
  const SymbolInterner* interner = nullptr;
  std::string arrays;    // FIRST-set id arrays
  std::string fns;       // rule functions
  int next_id = 0;

  int Fresh() { return next_id++; }
};

std::string Num(size_t value) { return std::to_string(value); }

// The sorted interned FIRST set of `expr` — exactly the span the
// interpreter compiles into `first_pool_` (CompileExpr sorts per-expr).
std::vector<SymbolId> FirstIds(const Emitter& em, const Expr& expr) {
  std::vector<SymbolId> ids;
  for (const std::string& name : em.analysis->FirstOf(expr)) {
    SymbolId id = em.interner->Find(name);
    if (id != kInvalidSymbolId) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

// Emits a FIRST-set array definition and returns its name; empty sets
// return an empty name (the call sites skip the alternative entirely,
// matching the interpreter's silent prune of a non-nullable expression
// with an empty FIRST set).
std::string EmitFirstArray(Emitter* em, const std::vector<SymbolId>& ids) {
  if (ids.empty()) return "";
  std::string name = "kFirst" + Num(em->Fresh());
  em->arrays += "inline constexpr unsigned " + name + "[] = {";
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) em->arrays += ", ";
    em->arrays += Num(ids[i]) + "u";
  }
  em->arrays += "};\n";
  return name;
}

void EmitExprCode(Emitter* em, const Expr& expr, const std::string& res,
                  const std::string& indent);

// Emits one pruned attempt — the body shared by choice branches and
// production alternatives: FIRST-gate the attempt (recording the set on
// a prune, as the interpreter does), save position and scratch, run
// `body`, and on failure restore both. `on_success` runs with the saved
// scratch size available as `ss<k>`; it must set the caller's result.
void EmitPrunedAttempt(Emitter* em, const Expr& body,
                       const std::string& lookahead_var,
                       const std::string& indent,
                       const std::string& on_success,
                       const std::string& on_failure) {
  const bool nullable = em->analysis->ExprNullable(body);
  std::vector<SymbolId> first = FirstIds(*em, body);
  std::string first_array = EmitFirstArray(em, first);
  std::string inner = indent;
  if (!nullable) {
    if (first_array.empty()) {
      // Non-nullable with an empty FIRST set: the interpreter prunes it
      // silently (binary_search over an empty span) and records nothing.
      em->fns += indent + "// alternative pruned: empty FIRST set\n";
      return;
    }
    em->fns += indent + "if (FirstHas(" + first_array + ", " +
               Num(first.size()) + "u, " + lookahead_var + ")) {\n";
    inner += "  ";
  }
  int k = em->Fresh();
  std::string sp = "sp" + Num(k);
  std::string ss = "ss" + Num(k);
  std::string m = "m" + Num(k);
  em->fns += inner + "const std::size_t " + sp + " = pos;\n";
  em->fns += inner + "const std::size_t " + ss + " = c.scratch.size();\n";
  em->fns += inner + "bool " + m + ";\n";
  EmitExprCode(em, body, m, inner);
  std::string success = on_success;
  // The attempt helpers splice in the saved scratch size where needed.
  size_t at = success.find("$SS");
  while (at != std::string::npos) {
    success.replace(at, 3, ss);
    at = success.find("$SS");
  }
  em->fns += inner + "if (" + m + ") {\n";
  em->fns += inner + "  " + success + "\n";
  em->fns += inner + "} else {\n";
  em->fns += inner + "  pos = " + sp + ";\n";
  em->fns += inner + "  c.scratch.resize(" + ss + ");\n";
  if (!on_failure.empty()) em->fns += inner + "  " + on_failure + "\n";
  em->fns += inner + "}\n";
  if (!nullable) {
    em->fns += indent + "} else {\n";
    em->fns += indent + "  RecordAll<TRACK>(c, pos, " + first_array + ", " +
               Num(first.size()) + "u);\n";
    em->fns += indent + "}\n";
  }
}

// Statement-level emission of one grammar expression: code that sets
// bool `res`, consuming tokens and pushing nodes on success and leaving
// `pos`/scratch untouched on failure — the MatchExpr contract.
void EmitExprCode(Emitter* em, const Expr& expr, const std::string& res,
                  const std::string& indent) {
  switch (expr.kind()) {
    case ExprKind::kToken: {
      SymbolId id = em->interner->Find(expr.symbol());
      em->fns += indent + "if (c.toks[pos].type == " + Num(id) +
                 "u) {  // " + expr.symbol() + "\n";
      em->fns += indent + "  PushLeaf(c, pos);\n";
      em->fns += indent + "  ++pos;\n";
      em->fns += indent + "  " + res + " = true;\n";
      em->fns += indent + "} else {\n";
      em->fns += indent + "  RecordFailure<TRACK>(c, pos, " + Num(id) +
                 "u);\n";
      em->fns += indent + "  " + res + " = false;\n";
      em->fns += indent + "}\n";
      return;
    }

    case ExprKind::kNonterminal:
      em->fns += indent + res + " = Parse_" + expr.symbol() +
                 "<TRACK>(c, pos);\n";
      return;

    case ExprKind::kSequence: {
      if (expr.children().empty()) {
        em->fns += indent + res + " = true;\n";
        return;
      }
      int k = em->Fresh();
      std::string sp = "sp" + Num(k);
      std::string ss = "ss" + Num(k);
      em->fns += indent + "{\n";
      std::string inner = indent + "  ";
      em->fns += inner + "const std::size_t " + sp + " = pos;\n";
      em->fns += inner + "const std::size_t " + ss + " = c.scratch.size();\n";
      em->fns += inner + res + " = true;\n";
      for (size_t i = 0; i < expr.children().size(); ++i) {
        std::string m = "m" + Num(em->Fresh());
        std::string body_indent = inner;
        if (i > 0) {
          em->fns += inner + "if (" + res + ") {\n";
          body_indent += "  ";
        }
        em->fns += body_indent + "bool " + m + ";\n";
        EmitExprCode(em, expr.children()[i], m, body_indent);
        em->fns += body_indent + "if (!" + m + ") " + res + " = false;\n";
        if (i > 0) em->fns += inner + "}\n";
      }
      em->fns += inner + "if (!" + res + ") {\n";
      em->fns += inner + "  pos = " + sp + ";\n";
      em->fns += inner + "  c.scratch.resize(" + ss + ");\n";
      em->fns += inner + "}\n";
      em->fns += indent + "}\n";
      return;
    }

    case ExprKind::kChoice: {
      int k = em->Fresh();
      std::string la = "la" + Num(k);
      em->fns += indent + "{\n";
      std::string inner = indent + "  ";
      em->fns += inner + res + " = false;\n";
      em->fns += inner + "const unsigned " + la +
                 " = c.toks[pos].type;\n";
      em->fns += inner + "(void)" + la + ";\n";
      for (const Expr& branch : expr.children()) {
        em->fns += inner + "if (!" + res + ") {\n";
        EmitPrunedAttempt(em, branch, la, inner + "  ",
                          res + " = true;", "");
        em->fns += inner + "}\n";
      }
      em->fns += indent + "}\n";
      return;
    }

    case ExprKind::kOptional: {
      int k = em->Fresh();
      std::string sp = "sp" + Num(k);
      std::string ss = "ss" + Num(k);
      std::string m = "m" + Num(k);
      em->fns += indent + "{  // optional (greedy)\n";
      std::string inner = indent + "  ";
      em->fns += inner + "const std::size_t " + sp + " = pos;\n";
      em->fns += inner + "const std::size_t " + ss + " = c.scratch.size();\n";
      em->fns += inner + "bool " + m + ";\n";
      EmitExprCode(em, expr.child(), m, inner);
      em->fns += inner + "if (!" + m + ") {\n";
      em->fns += inner + "  pos = " + sp + ";\n";
      em->fns += inner + "  c.scratch.resize(" + ss + ");\n";
      em->fns += inner + "}\n";
      em->fns += indent + "}\n";
      em->fns += indent + res + " = true;\n";
      return;
    }

    case ExprKind::kRepetition: {
      int k = em->Fresh();
      std::string sp = "sp" + Num(k);
      std::string ss = "ss" + Num(k);
      std::string m = "m" + Num(k);
      em->fns += indent + "while (true) {  // repetition\n";
      std::string inner = indent + "  ";
      em->fns += inner + "const std::size_t " + sp + " = pos;\n";
      em->fns += inner + "const std::size_t " + ss + " = c.scratch.size();\n";
      em->fns += inner + "bool " + m + ";\n";
      EmitExprCode(em, expr.child(), m, inner);
      em->fns += inner + "if (!" + m + ") {\n";
      em->fns += inner + "  pos = " + sp + ";\n";
      em->fns += inner + "  c.scratch.resize(" + ss + ");\n";
      em->fns += inner + "  break;\n";
      em->fns += inner + "}\n";
      em->fns += inner + "if (pos == " + sp + ") {\n";
      em->fns += inner + "  // Matched without consuming input; stop to\n";
      em->fns += inner + "  // guarantee termination.\n";
      em->fns += inner + "  c.scratch.resize(" + ss + ");\n";
      em->fns += inner + "  break;\n";
      em->fns += inner + "}\n";
      em->fns += indent + "}\n";
      em->fns += indent + res + " = true;\n";
      return;
    }
  }
}

// Emits the rule function of one production: depth guard, then each
// alternative as a pruned attempt that finishes a rule node on success.
// Templated on TRACK (see RecordFailure) so the hot success path runs
// free of failure bookkeeping.
void EmitRuleFunction(Emitter* em, const Production& production) {
  SymbolId lhs_id = em->interner->Find(production.lhs());
  em->fns += "/// " + production.ToString() + "\n";
  em->fns += "template <bool TRACK>\n";
  em->fns += "inline bool Parse_" + production.lhs() +
             "(Ctx& c, std::size_t& pos) {\n";
  em->fns += "  if (++c.depth > kMaxParseDepth) {\n";
  em->fns += "    --c.depth;\n";
  em->fns += "    return false;\n";
  em->fns += "  }\n";
  em->fns += "  const unsigned la = c.toks[pos].type;\n";
  em->fns += "  (void)la;\n";
  for (size_t a = 0; a < production.alternatives().size(); ++a) {
    const Alternative& alt = production.alternatives()[a];
    SymbolId label_id = alt.label.empty() ? kInvalidSymbolId
                                          : em->interner->Find(alt.label);
    std::string label_expr = label_id == kInvalidSymbolId
                                 ? "kInvalidSymbol"
                                 : Num(label_id) + "u";
    em->fns += "  // alternative " + Num(a) +
               (alt.label.empty() ? "" : " (" + alt.label + ")") + "\n";
    em->fns += "  {\n";
    EmitPrunedAttempt(em, alt.body, "la", "    ",
                      "FinishNode(c, " + Num(lhs_id) + "u, " + label_expr +
                          ", $SS);\n      --c.depth;\n      return true;",
                      "");
    em->fns += "  }\n";
  }
  em->fns += "  --c.depth;\n";
  em->fns += "  return false;\n";
  em->fns += "}\n\n";
}

// Emits the flavor-independent core into `*out`: constants, the symbol
// name table, node/context types, the interpreter-mirroring helpers,
// the FIRST arrays, and the rule functions. `token_definition` supplies
// the `GenToken` type (a struct for the standalone header, an alias of
// the ABI token for the native flavor).
void EmitCore(const Grammar& grammar, const GrammarAnalysis& analysis,
              const SymbolInterner& interner,
              const std::string& token_definition, std::string* out) {
  Emitter em;
  em.grammar = &grammar;
  em.analysis = &analysis;
  em.interner = &interner;

  size_t num_symbols = interner.size();
  *out += "constexpr unsigned kNumSymbols = " + Num(num_symbols) + "u;\n";
  *out += "constexpr unsigned kInvalidSymbol = 0xFFFFFFFFu;\n";
  *out += "constexpr std::size_t kMaxParseDepth = 2048;\n";
  *out += "constexpr std::size_t kExpectedWords = (kNumSymbols + 63) / 64;\n";
  *out += "\n";
  *out += "/// Interned symbol names in id order — the engine's\n";
  *out += "/// SymbolInterner table for this grammar.\n";
  *out += "inline constexpr std::string_view kSymbolNames[kNumSymbols] = {\n";
  for (SymbolId id = 0; id < num_symbols; ++id) {
    *out += "    \"" + CEscape(std::string(interner.NameOf(id))) + "\",\n";
  }
  *out += "};\n\n";

  // Ids sorted by name, for the name -> id binary search the standalone
  // wrapper uses to intern caller token types.
  std::vector<SymbolId> by_name(num_symbols);
  std::iota(by_name.begin(), by_name.end(), 0u);
  std::sort(by_name.begin(), by_name.end(), [&](SymbolId a, SymbolId b) {
    return interner.NameOf(a) < interner.NameOf(b);
  });
  *out += "/// Symbol ids sorted by name (binary-search index).\n";
  *out += "inline constexpr unsigned kSymbolsByName[kNumSymbols] = {\n    ";
  for (size_t i = 0; i < by_name.size(); ++i) {
    if (i > 0) *out += (i % 10 == 0) ? ",\n    " : ", ";
    *out += Num(by_name[i]) + "u";
  }
  *out += "};\n\n";

  *out += token_definition;
  *out += R"gen(
/// One name -> id lookup over the embedded symbol table.
inline unsigned LookupSymbol(std::string_view name) {
  unsigned lo = 0;
  unsigned hi = kNumSymbols;
  while (lo < hi) {
    unsigned mid = (lo + hi) / 2;
    if (kSymbolNames[kSymbolsByName[mid]] < name) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < kNumSymbols && kSymbolNames[kSymbolsByName[lo]] == name) {
    return kSymbolsByName[lo];
  }
  return kInvalidSymbol;
}

/// One parse-tree node in the pooled equivalent of the engine's arena
/// tree: rule nodes span child indices in `Ctx::children`, leaves
/// reference a token by stream index. `sexpr_len` carries the exact
/// rendered size of the node's subtree, maintained incrementally so a
/// successful parse renders with one exact-size allocation and raw
/// cursor writes instead of per-node append calls.
struct GenNode {
  unsigned symbol;
  unsigned label;
  unsigned token;
  unsigned child_begin;
  unsigned child_count;
  unsigned sexpr_len;
  bool is_leaf;
};

/// Per-parse state, mirroring the interpreter's ParseContext: node and
/// child-span pools, the scratch node stack (backtracking truncates),
/// and the furthest-failure position with its expected-symbol set (a
/// bitmap here; membership equals the interpreter's std::set).
struct Ctx {
  const GenToken* toks = nullptr;
  std::vector<GenNode> nodes;
  std::vector<unsigned> children;
  std::vector<unsigned> scratch;
  std::size_t furthest = 0;
  unsigned long long expected[kExpectedWords] = {};
  std::size_t depth = 0;
};

/// LlParser::RecordFailure: a failure past the furthest position resets
/// the expected set; one at the furthest position joins it. Templated
/// on TRACK so the optimistic pass (see ParseStart) compiles the
/// bookkeeping out entirely; the TRACK=true re-parse reproduces the
/// interpreter's furthest-failure state bit for bit.
template <bool TRACK>
inline void RecordFailure(Ctx& c, std::size_t pos, unsigned id) {
  if (!TRACK) return;
  if (pos > c.furthest) {
    c.furthest = pos;
    for (std::size_t w = 0; w < kExpectedWords; ++w) c.expected[w] = 0;
  }
  if (pos == c.furthest) {
    c.expected[id >> 6] |= 1ull << (id & 63u);
  }
}

inline bool FirstHas(const unsigned* first, unsigned n, unsigned la) {
  for (unsigned i = 0; i < n; ++i) {
    if (first[i] == la) return true;
  }
  return false;
}

template <bool TRACK>
inline void RecordAll(Ctx& c, std::size_t pos, const unsigned* first,
                      unsigned n) {
  if (!TRACK) return;
  for (unsigned i = 0; i < n; ++i) RecordFailure<TRACK>(c, pos, first[i]);
}

inline void PushLeaf(Ctx& c, std::size_t pos) {
  GenNode n;
  n.symbol = c.toks[pos].type;
  n.label = kInvalidSymbol;
  n.token = static_cast<unsigned>(pos);
  n.child_begin = 0;
  n.child_count = 0;
  n.sexpr_len = c.toks[pos].text_len
                    ? static_cast<unsigned>(c.toks[pos].text_len)
                    : static_cast<unsigned>(
                          kSymbolNames[c.toks[pos].type].size());
  n.is_leaf = true;
  c.scratch.push_back(static_cast<unsigned>(c.nodes.size()));
  c.nodes.push_back(n);
}

/// Pops the children a matched alternative pushed (everything above
/// `scratch_base`) into a child span and pushes the finished rule node.
inline void FinishNode(Ctx& c, unsigned symbol, unsigned label,
                       std::size_t scratch_base) {
  GenNode n;
  n.symbol = symbol;
  n.label = label;
  n.token = 0;
  n.child_begin = static_cast<unsigned>(c.children.size());
  n.child_count = static_cast<unsigned>(c.scratch.size() - scratch_base);
  n.is_leaf = false;
  // "(name" + ")" + one " " per child, plus the children themselves.
  unsigned len = 2u + static_cast<unsigned>(kSymbolNames[symbol].size()) +
                 n.child_count;
  for (std::size_t i = scratch_base; i < c.scratch.size(); ++i) {
    len += c.nodes[c.scratch[i]].sexpr_len;
  }
  n.sexpr_len = len;
  c.children.insert(c.children.end(), c.scratch.begin() + scratch_base,
                    c.scratch.end());
  c.scratch.resize(scratch_base);
  c.scratch.push_back(static_cast<unsigned>(c.nodes.size()));
  c.nodes.push_back(n);
}

/// Renders `node` at cursor `p` (the caller sized the buffer from
/// `sexpr_len`) and returns the cursor past the subtree.
inline char* RenderSExprTo(const Ctx& c, unsigned node, char* p) {
  const GenNode& n = c.nodes[node];
  if (n.is_leaf) {
    const GenToken& t = c.toks[n.token];
    if (t.text_len == 0) {
      std::string_view name = kSymbolNames[n.symbol];
      std::memcpy(p, name.data(), name.size());
      return p + name.size();
    }
    std::memcpy(p, t.text, static_cast<std::size_t>(t.text_len));
    return p + t.text_len;
  }
  *p++ = '(';
  std::string_view name = kSymbolNames[n.symbol];
  std::memcpy(p, name.data(), name.size());
  p += name.size();
  for (unsigned i = 0; i < n.child_count; ++i) {
    *p++ = ' ';
    p = RenderSExprTo(c, c.children[n.child_begin + i], p);
  }
  *p++ = ')';
  return p;
}

/// AppendArenaSExpr, byte for byte: leaves render their text (or the
/// type name when the text is empty), rules render
/// `(name child child...)`; labels are not rendered. One exact-size
/// resize (`sexpr_len`), then raw cursor writes.
inline void RenderSExpr(const Ctx& c, unsigned node, std::string* out) {
  std::size_t base = out->size();
  out->resize(base + c.nodes[node].sexpr_len);
  char* p = RenderSExprTo(c, node, &(*out)[base]);
  (void)p;
}

/// The expected-set half of LlParser::SyntaxError: names sorted
/// lexicographically, `$` shown as "end of input", joined with ", ".
inline std::string ExpectedList(const Ctx& c) {
  std::vector<std::string_view> names;
  for (unsigned id = 0; id < kNumSymbols; ++id) {
    if (c.expected[id >> 6] & (1ull << (id & 63u))) {
      names.push_back(kSymbolNames[id]);
    }
  }
  std::sort(names.begin(), names.end());
  std::string out;
  for (std::string_view name : names) {
    if (!out.empty()) out += ", ";
    if (name == "$") {
      out += "end of input";
    } else {
      out.append(name);
    }
  }
  return out;
}

)gen";

  // Forward declarations so rule bodies can reference any nonterminal.
  for (const Production& production : grammar.productions()) {
    em.fns += "template <bool TRACK>\n";
    em.fns += "inline bool Parse_" + production.lhs() +
              "(Ctx& c, std::size_t& pos);\n";
  }
  em.fns += "\n";
  for (const Production& production : grammar.productions()) {
    EmitRuleFunction(&em, production);
  }

  // The start-symbol driver: parse, then require end of input exactly
  // as ParseLexed does (recording `$` as expected on leftover tokens).
  em.fns += "template <bool TRACK>\n";
  em.fns += "inline bool ParseStartT(Ctx& c) {\n";
  em.fns += "  std::size_t pos = 0;\n";
  em.fns +=
      "  bool ok = Parse_" + grammar.start_symbol() + "<TRACK>(c, pos);\n";
  em.fns += "  if (ok && c.toks[pos].type != 0u) {\n";
  em.fns += "    RecordFailure<TRACK>(c, pos, 0u);\n";
  em.fns += "    ok = false;\n";
  em.fns += "  }\n";
  em.fns += "  return ok;\n";
  em.fns += "}\n\n";
  em.fns += "/// Parses the start symbol '" + grammar.start_symbol() +
            "' and requires all input consumed.\n";
  em.fns += R"gen(/// Two-pass scheme: the first pass parses with failure
/// bookkeeping compiled out — the common successful parse pays nothing
/// for diagnostics. Only on failure does a second, tracking pass re-run
/// the identical deterministic parse to rebuild the furthest-failure
/// position and expected set the interpreter would have produced.
inline bool ParseStart(Ctx& c) {
  if (ParseStartT<false>(c)) return true;
  c.nodes.clear();
  c.children.clear();
  c.scratch.clear();
  c.furthest = 0;
  for (std::size_t w = 0; w < kExpectedWords; ++w) c.expected[w] = 0;
  c.depth = 0;
  return ParseStartT<true>(c);
}
)gen";

  *out += em.arrays;
  *out += "\n";
  *out += em.fns;
}

std::string ToSnakeCase(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (c >= 'A' && c <= 'Z') {
      if (!out.empty() && out.back() != '_') out += '_';
      out += AsciiToLower(c);
    } else if (IsIdentCont(c)) {
      out += c;
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  return out;
}

// Shared front-door checks: the generators refuse exactly what
// ParserBuilder refuses, with codegen-flavored messages.
Status ValidateForCodegen(const Grammar& grammar) {
  DiagnosticCollector diagnostics;
  Status valid = grammar.Validate(&diagnostics);
  if (!valid.ok()) {
    return Status::InvalidArgument("cannot generate parser: " +
                                   valid.message() + "\n" +
                                   diagnostics.ToString());
  }
  SQLPL_ASSIGN_OR_RETURN(GrammarAnalysis analysis,
                         GrammarAnalysis::Analyze(grammar));
  if (analysis.HasLeftRecursion()) {
    return Status::InvalidArgument("cannot generate parser: grammar '" +
                                   grammar.name() + "' is left-recursive");
  }
  return Status::OK();
}

}  // namespace

uint64_t SymbolTableHash(const SymbolInterner& interner) {
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (SymbolId id = 0; id < interner.size(); ++id) {
    std::string_view name = interner.NameOf(id);
    for (char ch : name) {
      hash ^= static_cast<unsigned char>(ch);
      hash *= 1099511628211ull;
    }
    hash ^= 0xFFu;  // name separator (never a name byte)
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string SanitizeClassName(const std::string& grammar_name) {
  std::string out;
  bool upper_next = true;
  for (char c : grammar_name) {
    if (!IsIdentCont(c)) {
      upper_next = true;
      continue;
    }
    out += upper_next ? AsciiToUpper(c) : c;
    upper_next = false;
  }
  if (out.empty()) out = "Anonymous";
  return out;
}

Result<GeneratedParser> GenerateCppParser(const Grammar& grammar,
                                          const CodegenOptions& options) {
  SQLPL_RETURN_IF_ERROR(ValidateForCodegen(grammar));
  // Build the real engine for this grammar: its interner is the id
  // space the generated parser embeds, so both assign identical ids
  // (lexer token names first, then productions in compile order).
  SQLPL_ASSIGN_OR_RETURN(LlParser parser, ParserBuilder().Build(grammar));

  std::string class_name = options.class_name.empty()
                               ? SanitizeClassName(grammar.name()) + "Parser"
                               : options.class_name;
  std::string guard = AsciiStrToUpper(ToSnakeCase(class_name)) + "_H_";

  std::string code;
  code += "// Generated by sqlpl from grammar '" + grammar.name() + "'.\n";
  code += "// " + Num(grammar.NumProductions()) + " productions, " +
          Num(grammar.NumAlternatives()) + " alternatives, " +
          Num(grammar.tokens().size()) + " tokens, " +
          Num(parser.interner().size()) + " interned symbols. Do not "
          "edit.\n";
  code += "//\n";
  code += "// The parser mirrors the runtime engine's interned\n";
  code += "// architecture: symbol-id dispatch, FIRST-set pruning, and\n";
  code += "// pooled tree construction. sexpr()/error() output is\n";
  code += "// byte-identical to the engine for the same token stream.\n";
  code += "#ifndef " + guard + "\n#define " + guard + "\n\n";
  code += "#include <algorithm>\n#include <cstddef>\n";
  code += "#include <cstring>\n";
  code += "#include <string>\n#include <string_view>\n";
  code += "#include <vector>\n\n";
  code += "namespace " + options.namespace_name + " {\n\n";
  code += "/// Pre-lexed input token; the stream must end with type "
          "\"$\".\n";
  code += "struct Token {\n";
  code += "  std::string type;\n";
  code += "  std::string text;\n";
  code += "  std::size_t line = 1;\n";
  code += "  std::size_t column = 1;\n";
  code += "};\n\n";
  code += "namespace gen_detail {\n\n";

  std::string token_definition;
  token_definition += "/// Id-keyed token view the core parses over.\n";
  token_definition += "struct GenToken {\n";
  token_definition += "  unsigned type;\n";
  token_definition += "  const char* text;\n";
  token_definition += "  std::size_t text_len;\n";
  token_definition += "  std::size_t line;\n";
  token_definition += "  std::size_t column;\n";
  token_definition += "};\n";
  EmitCore(grammar, parser.analysis(), parser.interner(), token_definition,
           &code);

  code += "\n}  // namespace gen_detail\n\n";
  code += "class " + class_name + " {\n public:\n";
  code += "  explicit " + class_name + "(std::vector<Token> tokens)\n";
  code += "      : tokens_(std::move(tokens)) {}\n\n";
  code += "  /// Parses the start symbol '" + grammar.start_symbol() +
          "' and requires all input consumed.\n";
  code += "  bool Parse() { return Run_(nullptr); }\n\n";
  code += "  /// S-expression of the last successful parse;\n";
  code += "  /// byte-identical to the runtime engine's rendering.\n";
  code += "  const std::string& sexpr() const { return sexpr_; }\n\n";
  code += "  /// Message of the last failed parse; byte-identical to\n";
  code += "  /// the runtime engine's syntax error.\n";
  code += "  const std::string& error() const { return error_; }\n\n";

  for (const Production& production : grammar.productions()) {
    code += "  /// " + production.ToString() + "\n";
    code += "  bool Parse_" + production.lhs() + "() {\n";
    code += "    return Run_(&gen_detail::Parse_" + production.lhs() +
            "<true>);\n  }\n\n";
  }

  code += R"gen( private:
  // Runs the full-input start parse (rule == nullptr) or one rule.
  bool Run_(bool (*rule)(gen_detail::Ctx&, std::size_t&)) {
    sexpr_.clear();
    error_.clear();
    if (tokens_.empty() || tokens_.back().type != "$") {
      error_ = "token stream must end with the '$' end-of-input token";
      return false;
    }
    gen_detail::Ctx c;
    std::vector<gen_detail::GenToken> toks;
    toks.reserve(tokens_.size());
    for (const Token& t : tokens_) {
      gen_detail::GenToken g;
      g.type = gen_detail::LookupSymbol(t.type);
      g.text = t.text.data();
      g.text_len = t.text.size();
      g.line = t.line;
      g.column = t.column;
      toks.push_back(g);
    }
    c.toks = toks.data();
    bool ok;
    if (rule == nullptr) {
      ok = gen_detail::ParseStart(c);
    } else {
      std::size_t pos = 0;
      ok = rule(c, pos);
    }
    if (!ok) {
      // The engine's legacy-token error path: the offending token is
      // described with the caller's original type/text strings.
      const Token& at = tokens_[c.furthest];
      std::string described =
          at.type == "$" ? std::string("end of input")
                         : "'" + at.text + "' (" + at.type + ")";
      error_ = "syntax error at " + std::to_string(at.line) + ":" +
               std::to_string(at.column) + ": unexpected " + described +
               "; expected one of {" + gen_detail::ExpectedList(c) + "}";
      return false;
    }
    gen_detail::RenderSExpr(c, c.scratch.front(), &sexpr_);
    return true;
  }

  std::vector<Token> tokens_;
  std::string sexpr_;
  std::string error_;
};

)gen";
  code += "}  // namespace " + options.namespace_name + "\n\n";
  code += "#endif  // " + guard + "\n";

  GeneratedParser out;
  out.file_name = ToSnakeCase(class_name) + ".h";
  out.code = std::move(code);
  return out;
}

Result<GeneratedParser> GenerateNativeParserSource(
    const LlParser& parser, const NativeCodegenOptions& options) {
  if (parser.NumPredicates() > 0) {
    return Status::InvalidArgument(
        "cannot generate native parser: semantic predicates are host "
        "callbacks and cannot cross the ABI");
  }
  const Grammar& grammar = parser.grammar();
  std::string class_name = SanitizeClassName(grammar.name());
  uint64_t symbols_hash = SymbolTableHash(parser.interner());

  std::string code;
  code += "// Generated by sqlpl native codegen from grammar '" +
          grammar.name() + "'.\n";
  code += "// fingerprint 0x";
  {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      options.grammar_fingerprint));
    code += buf;
  }
  code += ", " + Num(parser.interner().size()) +
          " symbols. Do not edit.\n";
  code += "//\n";
  code += "// Self-contained implementation of the sqlpl native-parser\n";
  code += "// ABI (sqlpl/codegen/native_abi.h). Compile with\n";
  code += "//   c++ -std=c++17 -O2 -fPIC -shared -fvisibility=hidden\n";
  code += "// and dlopen; the only exported symbol is\n";
  code += "// sqlpl_native_entry_v1.\n";
  code += R"gen(#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

extern "C" {

typedef struct SqlplNativeTokenV1 {
  uint32_t type;
  uint32_t reserved;
  const char* text;
  uint64_t text_len;
  uint64_t line;
  uint64_t column;
} SqlplNativeTokenV1;

typedef struct SqlplNativeResultV1 {
  char* data;
  uint64_t size;
} SqlplNativeResultV1;

typedef int (*SqlplNativeParseFn)(const SqlplNativeTokenV1* tokens,
                                  uint64_t num_tokens, int want_render,
                                  SqlplNativeResultV1* result);
typedef void (*SqlplNativeFreeFn)(SqlplNativeResultV1* result);

typedef struct SqlplNativeParserV1 {
  uint32_t abi_version;
  uint32_t num_symbols;
  uint64_t grammar_fingerprint;
  uint64_t symbol_table_hash;
  SqlplNativeParseFn parse;
  SqlplNativeFreeFn free_result;
} SqlplNativeParserV1;

const SqlplNativeParserV1* sqlpl_native_entry_v1(void);

}  // extern "C"

namespace {

/// The ABI token doubles as the core's token type: the field names the
/// core reads (type/text/text_len/line/column) are the ABI's.
using GenToken = ::SqlplNativeTokenV1;
)gen";

  EmitCore(grammar, parser.analysis(), parser.interner(), "", &code);

  code += R"gen(
int NativeParse(const SqlplNativeTokenV1* tokens, uint64_t num_tokens,
                int want_render, SqlplNativeResultV1* result) noexcept {
  if (result == nullptr) return 2;
  result->data = nullptr;
  result->size = 0;
  if (tokens == nullptr || num_tokens == 0 ||
      tokens[num_tokens - 1].type != 0u) {
    return 2;  // malformed stream; the host falls back to the interpreter
  }
  try {
    // Reused per thread: pools keep their capacity across parses, the
    // same allocation-free steady state the interpreter gets from its
    // reused arena. (TLS in a dlopen'ed library is fine — glibc uses
    // dynamic TLS for it.)
    thread_local Ctx c;
    c.toks = tokens;
    c.nodes.clear();
    c.children.clear();
    c.scratch.clear();
    c.furthest = 0;
    for (std::size_t w = 0; w < kExpectedWords; ++w) c.expected[w] = 0;
    c.depth = 0;
    bool ok = ParseStart(c);
    // The result body is rendered into a per-thread buffer and returned
    // by pointer: valid until the thread's next NativeParse call, with
    // NativeFree a no-op marker (the v1 ABI contract only requires that
    // the host balance every parse with free_result — it does not
    // promise malloc'd storage). Saves a malloc+copy per parse.
    thread_local std::string body;
    body.clear();
    if (!ok) {
      // LlParser::SyntaxError, byte for byte.
      const GenToken& at = c.toks[c.furthest];
      std::string described;
      if (at.type == 0u) {
        described = "end of input";
      } else if (at.type < kNumSymbols) {
        described = "'" + std::string(at.text,
                                      static_cast<std::size_t>(at.text_len)) +
                    "' (" + std::string(kSymbolNames[at.type]) + ")";
      } else {
        return 2;  // id outside the embedded table: host/library mismatch
      }
      body = "syntax error at " + std::to_string(at.line) + ":" +
             std::to_string(at.column) + ": unexpected " + described +
             "; expected one of {" + ExpectedList(c) + "}";
    } else if (want_render != 0) {
      RenderSExpr(c, c.scratch.front(), &body);
    }
    result->data = body.empty() ? const_cast<char*>("") : body.data();
    result->size = body.size();
    return ok ? 0 : 1;
  } catch (...) {
    return 2;  // never let an exception cross the dlopen boundary
  }
}

void NativeFree(SqlplNativeResultV1* result) noexcept {
  // Storage is the calling thread's reusable render buffer (see
  // NativeParse); releasing is just forgetting the pointer.
  if (result != nullptr) {
    result->data = nullptr;
    result->size = 0;
  }
}

}  // namespace

extern "C" __attribute__((visibility("default")))
const SqlplNativeParserV1* sqlpl_native_entry_v1(void) {
  static const SqlplNativeParserV1 kEntry = {
      1u,
      kNumSymbols,
)gen";
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "      0x%016llxull,\n",
                  static_cast<unsigned long long>(
                      options.grammar_fingerprint));
    code += buf;
    std::snprintf(buf, sizeof(buf), "      0x%016llxull,\n",
                  static_cast<unsigned long long>(symbols_hash));
    code += buf;
  }
  code += R"gen(      &NativeParse,
      &NativeFree,
  };
  return &kEntry;
}
)gen";

  GeneratedParser out;
  out.file_name = ToSnakeCase(class_name) + "_native.cc";
  out.code = std::move(code);
  return out;
}

}  // namespace sqlpl
