#ifndef SQLPL_CODEGEN_CPP_CODEGEN_H_
#define SQLPL_CODEGEN_CPP_CODEGEN_H_

#include <cstdint>
#include <string>

#include "sqlpl/grammar/grammar.h"
#include "sqlpl/grammar/symbol_interner.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

class LlParser;

/// Options for the C++ parser generator.
struct CodegenOptions {
  /// Class name of the generated parser; derived from the grammar name
  /// when empty (e.g. "Core+Where" -> "CoreWhereParser").
  std::string class_name;
  /// Namespace the generated code lives in.
  std::string namespace_name = "sqlpl_gen";
};

/// Output of the generator: one self-contained C++ file.
struct GeneratedParser {
  /// Suggested file name, e.g. "core_where_parser.h".
  std::string file_name;
  /// Complete file contents.
  std::string code;
};

/// Emits a standalone recursive-descent C++ parser for `grammar` — the
/// counterpart of the ANTLR-generated parser in the paper's prototype,
/// kept in lockstep with the runtime engine's architecture: the grammar's
/// symbol alphabet is interned into the same dense id table the engine
/// builds (embedded as a static name array), FIRST-set pruning uses the
/// same sorted id sets, and a successful parse builds the pooled
/// equivalent of the engine's arena tree. `Parse()` consumes a pre-lexed
/// `$`-terminated token stream; afterwards `sexpr()` (on success) and
/// `error()` (on failure) are byte-identical to the runtime engine's
/// S-expression rendering and syntax-error message for the same stream.
/// One `Parse_<rule>()` method per nonterminal parses that rule alone.
/// The file depends only on the standard library.
///
/// Fails if the grammar does not validate or is left-recursive.
Result<GeneratedParser> GenerateCppParser(const Grammar& grammar,
                                          const CodegenOptions& options = {});

/// Options for native (.so) parser generation.
struct NativeCodegenOptions {
  /// The dialect's `SpecFingerprint` value, embedded in the handle so
  /// the loader can verify it loaded the library it meant to build.
  uint64_t grammar_fingerprint = 0;
};

/// Emits a self-contained C++ translation unit implementing the
/// `extern "C"` native-parser ABI of sqlpl/codegen/native_abi.h for
/// `parser`'s grammar: compile it with
/// `c++ -O2 -fPIC -shared -fvisibility=hidden`, `dlopen` the result,
/// and resolve `sqlpl_native_entry_v1`. The emitted recursive-descent
/// parser replicates the interpreter's observable semantics exactly —
/// FIRST-set pruning, furthest-failure recording, the depth limit, the
/// S-expression rendering, and the syntax-error format — so its output
/// is byte-identical to `LlParser::ParseTextRender` on the same token
/// stream (the property the native tier's promotion gate enforces; see
/// docs/NATIVE_TIER.md). Symbol ids are taken from `parser`'s interner,
/// so host-lexed token streams feed the library directly.
///
/// Fails if the parser has semantic predicates attached (predicates are
/// host callbacks and cannot cross the ABI).
Result<GeneratedParser> GenerateNativeParserSource(
    const LlParser& parser, const NativeCodegenOptions& options = {});

/// FNV-1a hash over an interner's dense name table, order-sensitive.
/// Embedded in generated native parsers (`symbol_table_hash`) and
/// recomputed by the loader to prove that the serving parser and the
/// shared object agree on the symbol id space.
uint64_t SymbolTableHash(const SymbolInterner& interner);

/// Sanitizes an arbitrary grammar name into a C++ identifier in
/// UpperCamelCase ("Core+Where" -> "CoreWhere").
std::string SanitizeClassName(const std::string& grammar_name);

}  // namespace sqlpl

#endif  // SQLPL_CODEGEN_CPP_CODEGEN_H_
