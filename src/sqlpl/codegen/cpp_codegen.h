#ifndef SQLPL_CODEGEN_CPP_CODEGEN_H_
#define SQLPL_CODEGEN_CPP_CODEGEN_H_

#include <string>

#include "sqlpl/grammar/grammar.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// Options for the C++ parser generator.
struct CodegenOptions {
  /// Class name of the generated parser; derived from the grammar name
  /// when empty (e.g. "Core+Where" -> "CoreWhereParser").
  std::string class_name;
  /// Namespace the generated code lives in.
  std::string namespace_name = "sqlpl_gen";
};

/// Output of the generator: one self-contained header-only C++ file.
struct GeneratedParser {
  /// Suggested file name, e.g. "core_where_parser.h".
  std::string file_name;
  /// Complete file contents.
  std::string code;
};

/// Emits a standalone recursive-descent C++ parser for `grammar` — the
/// counterpart of the ANTLR-generated parser in the paper's prototype.
/// The generated class consumes a pre-lexed token stream (type/text
/// pairs, `$`-terminated), exposes one `Parse_<rule>()` method per
/// nonterminal plus `Parse()` for the start symbol, and resolves
/// alternatives by ordered choice with backtracking, mirroring the
/// runtime engine's semantics. The file depends only on the standard
/// library.
///
/// Fails if the grammar does not validate or is left-recursive.
Result<GeneratedParser> GenerateCppParser(const Grammar& grammar,
                                          const CodegenOptions& options = {});

/// Sanitizes an arbitrary grammar name into a C++ identifier in
/// UpperCamelCase ("Core+Where" -> "CoreWhere").
std::string SanitizeClassName(const std::string& grammar_name);

}  // namespace sqlpl

#endif  // SQLPL_CODEGEN_CPP_CODEGEN_H_
