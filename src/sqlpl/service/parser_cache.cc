#include "sqlpl/service/parser_cache.h"

#include <algorithm>
#include <bit>

#include "sqlpl/obs/trace.h"

namespace sqlpl {

ParserCache::ParserCache(size_t capacity, size_t num_shards) {
  size_t shards = std::bit_ceil(std::max<size_t>(num_shards, 1));
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = shards - 1;
  per_shard_capacity_ = std::max<size_t>(1, capacity / shards);
}

std::shared_ptr<const LlParser> ParserCache::Lookup(SpecFingerprint key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    return nullptr;
  }
  ++shard.stats.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->parser;
}

Result<std::shared_ptr<const LlParser>> ParserCache::GetOrBuild(
    SpecFingerprint key, const BuildFn& build) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<InFlight> flight;
  bool owner = false;
  {
    SQLPL_TRACE_SPAN("cache.lookup", "cache");
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      ++shard.stats.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->parser;
    }
    ++shard.stats.misses;
    auto in = shard.inflight.find(key);
    if (in != shard.inflight.end()) {
      flight = in->second;
      ++shard.stats.coalesced_waits;
    } else {
      flight = std::make_shared<InFlight>();
      shard.inflight.emplace(key, flight);
      owner = true;
    }
  }

  if (!owner) {
    SQLPL_TRACE_SPAN("cache.singleflight_wait", "cache");
    std::unique_lock<std::mutex> wait_lock(flight->mu);
    flight->cv.wait(wait_lock, [&] { return flight->done; });
    if (flight->parser != nullptr) return flight->parser;
    return flight->error;
  }

  // Sole builder for this key: compose outside every lock.
  Result<LlParser> built = [&]() -> Result<LlParser> {
    SQLPL_TRACE_SPAN("cache.build", "cache");
    return build();
  }();

  std::shared_ptr<const LlParser> parser;
  if (built.ok()) {
    parser = std::make_shared<const LlParser>(std::move(built).value());
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (parser != nullptr) {
      ++shard.stats.builds;
      Insert(shard, key, parser);
    } else {
      ++shard.stats.build_failures;
    }
    shard.inflight.erase(key);
  }
  {
    std::lock_guard<std::mutex> flight_lock(flight->mu);
    flight->done = true;
    flight->parser = parser;
    if (parser == nullptr) flight->error = built.status();
  }
  flight->cv.notify_all();

  if (parser != nullptr) return parser;
  return built.status();
}

void ParserCache::Insert(Shard& shard, SpecFingerprint key,
                         std::shared_ptr<const LlParser> parser) {
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // A Clear()+rebuild race can land here; refresh in place.
    it->second->parser = std::move(parser);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(parser)});
  shard.index.emplace(key, shard.lru.begin());
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
}

void ParserCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

size_t ParserCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

ParserCacheStats ParserCache::stats() const {
  ParserCacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.builds += shard->stats.builds;
    total.build_failures += shard->stats.build_failures;
    total.evictions += shard->stats.evictions;
    total.coalesced_waits += shard->stats.coalesced_waits;
  }
  return total;
}

}  // namespace sqlpl
