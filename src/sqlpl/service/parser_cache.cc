#include "sqlpl/service/parser_cache.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <thread>

#include "sqlpl/obs/trace.h"

namespace sqlpl {

const char* CacheDispositionToString(CacheDisposition disposition) {
  switch (disposition) {
    case CacheDisposition::kUnresolved:
      return "unresolved";
    case CacheDisposition::kHit:
      return "hit";
    case CacheDisposition::kBuilt:
      return "built";
    case CacheDisposition::kCoalesced:
      return "coalesced";
    case CacheDisposition::kNative:
      return "native";
  }
  return "unknown";
}

bool ParserCache::IsTransientBuildFailure(const Status& status) {
  return status.code() == StatusCode::kInternal ||
         status.code() == StatusCode::kResourceExhausted;
}

ParserCache::ParserCache(size_t capacity, size_t num_shards) {
  size_t shards = std::bit_ceil(std::max<size_t>(num_shards, 1));
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = shards - 1;
  per_shard_capacity_ = std::max<size_t>(1, capacity / shards);
}

std::shared_ptr<const LlParser> ParserCache::Lookup(SpecFingerprint key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    return nullptr;
  }
  ++shard.stats.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->parser;
}

Result<std::shared_ptr<const LlParser>> ParserCache::GetOrBuild(
    SpecFingerprint key, const BuildFn& build) {
  static const GetOptions kDefault;
  return GetOrBuild(key, build, kDefault, nullptr);
}

Result<std::shared_ptr<const LlParser>> ParserCache::GetOrBuild(
    SpecFingerprint key, const BuildFn& build, const GetOptions& options,
    CacheDisposition* disposition) {
  if (disposition != nullptr) *disposition = CacheDisposition::kUnresolved;
  Shard& shard = ShardFor(key);
  std::shared_ptr<InFlight> flight;
  bool owner = false;
  {
    SQLPL_TRACE_SPAN("cache.lookup", "cache");
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      ++shard.stats.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      if (disposition != nullptr) *disposition = CacheDisposition::kHit;
      return it->second->parser;
    }
    ++shard.stats.misses;
    auto in = shard.inflight.find(key);
    if (in != shard.inflight.end()) {
      flight = in->second;
      ++shard.stats.coalesced_waits;
    } else {
      flight = std::make_shared<InFlight>();
      shard.inflight.emplace(key, flight);
      owner = true;
    }
  }

  if (!owner) {
    SQLPL_TRACE_SPAN("cache.singleflight_wait", "cache");
    std::unique_lock<std::mutex> wait_lock(flight->mu);
    if (options.control.unrestricted()) {
      flight->cv.wait(wait_lock, [&] { return flight->done; });
    } else {
      // The cv is only notified on completion, so a cancel request has
      // nothing to wake us; poll on a short period (bounded by the
      // deadline). Abandoning the wait does not abandon the build — the
      // owner finishes and caches for everyone else.
      while (!flight->done) {
        SQLPL_RETURN_IF_ERROR(
            options.control.Check("coalesced parser build wait"));
        auto wake = Deadline::Clock::now() + std::chrono::milliseconds(5);
        if (!options.control.deadline.is_never()) {
          wake = std::min(wake, options.control.deadline.time());
        }
        flight->cv.wait_until(wait_lock, wake);
      }
    }
    if (flight->parser != nullptr) {
      if (disposition != nullptr) *disposition = CacheDisposition::kCoalesced;
      return flight->parser;
    }
    return flight->error;
  }

  // Sole builder for this key: compose outside every lock, retrying
  // transient failures with exponential backoff so one blip (an
  // injected fault, an exhausted resource) doesn't fail every coalesced
  // waiter. Deterministic spec errors are returned immediately.
  auto run_build = [&]() -> Result<LlParser> {
    SQLPL_TRACE_SPAN("cache.build", "cache");
    return build();
  };
  uint64_t failed_attempts = 0;
  uint64_t retries = 0;
  Result<LlParser> built = run_build();
  while (!built.ok()) {
    ++failed_attempts;
    if (static_cast<int>(retries) + 1 >= options.max_build_attempts) break;
    if (!IsTransientBuildFailure(built.status())) break;
    if (!options.control.Check("parser build retry").ok()) break;
    auto backoff = options.retry_backoff * (int64_t{1} << retries);
    if (!options.control.deadline.is_never()) {
      backoff = std::min(
          backoff, std::chrono::duration_cast<std::chrono::microseconds>(
                       options.control.deadline.remaining()));
    }
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    ++retries;
    built = run_build();
  }

  std::shared_ptr<const LlParser> parser;
  if (built.ok()) {
    parser = std::make_shared<const LlParser>(std::move(built).value());
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.stats.build_failures += failed_attempts;
    shard.stats.build_retries += retries;
    if (parser != nullptr) {
      ++shard.stats.builds;
      Insert(shard, key, parser);
    }
    shard.inflight.erase(key);
  }
  {
    std::lock_guard<std::mutex> flight_lock(flight->mu);
    flight->done = true;
    flight->parser = parser;
    if (parser == nullptr) flight->error = built.status();
  }
  flight->cv.notify_all();

  if (parser != nullptr) {
    if (disposition != nullptr) *disposition = CacheDisposition::kBuilt;
    return parser;
  }
  return built.status();
}

void ParserCache::Insert(Shard& shard, SpecFingerprint key,
                         std::shared_ptr<const LlParser> parser) {
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // A Clear()+rebuild race can land here; refresh in place.
    it->second->parser = std::move(parser);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(parser)});
  shard.index.emplace(key, shard.lru.begin());
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
}

void ParserCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

size_t ParserCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

ParserCacheStats ParserCache::stats() const {
  ParserCacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.builds += shard->stats.builds;
    total.build_failures += shard->stats.build_failures;
    total.evictions += shard->stats.evictions;
    total.coalesced_waits += shard->stats.coalesced_waits;
    total.build_retries += shard->stats.build_retries;
  }
  return total;
}

}  // namespace sqlpl
