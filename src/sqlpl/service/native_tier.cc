#include "sqlpl/service/native_tier.h"

#include <dlfcn.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "sqlpl/codegen/cpp_codegen.h"
#include "sqlpl/lexer/token_stream.h"
#include "sqlpl/obs/flight_recorder.h"
#include "sqlpl/obs/trace.h"
#include "sqlpl/parser/parse_tree.h"
#include "sqlpl/service/dialect_service.h"
#include "sqlpl/testing/golden_corpus.h"
#include "sqlpl/util/subprocess.h"

namespace sqlpl {

namespace {

// splitmix64 finisher: SpecFingerprints are already FNV products, but
// the open-addressing tables index by low bits, so spread them.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string FingerprintHex(uint64_t fingerprint) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

// Flight-recorder event for one background compile/promotion interval,
// backdated like the service events so dumps line up (the compile
// itself has no wire trace — trace_id 0 marks tier-initiated work).
void RecordNativeFlightEvent(obs::FlightStage stage, uint64_t dur_micros,
                             bool ok) {
  obs::FlightEvent event;
  uint64_t now = obs::TraceNowMicros();
  event.ts_micros = now > dur_micros ? now - dur_micros : 0;
  event.dur_micros = dur_micros > UINT32_MAX
                         ? UINT32_MAX
                         : static_cast<uint32_t>(dur_micros);
  event.stage = static_cast<uint8_t>(stage);
  event.status = ok ? 0 : 1;
  obs::FlightRecorder::Global().Record(event);
}

uint64_t ElapsedMicrosSince(uint64_t start) {
  uint64_t now = obs::TraceNowMicros();
  return now > start ? now - start : 0;
}

}  // namespace

const char* NativeDemotionReasonName(NativeDemotionReason reason) {
  switch (reason) {
    case NativeDemotionReason::kCompileError: return "compile_error";
    case NativeDemotionReason::kDlopenError: return "dlopen_error";
    case NativeDemotionReason::kAbiMismatch: return "abi_mismatch";
    case NativeDemotionReason::kEquivalenceMismatch:
      return "equivalence_mismatch";
    case NativeDemotionReason::kRuntimeError: return "runtime_error";
    case NativeDemotionReason::kUnsupported: return "unsupported";
  }
  return "unknown";
}

NativeTier::NativeTier(NativeTierOptions options,
                       obs::MetricsRegistry* registry)
    : options_(std::move(options)), registry_(registry) {
  if (!enabled()) return;
  traffic_ = std::make_unique<TrafficSlot[]>(kTrafficSlots);
  poisoned_ = std::make_unique<std::atomic<uint64_t>[]>(kPoisonSlots);
  for (size_t i = 0; i < kPoisonSlots; ++i) {
    poisoned_[i].store(0, std::memory_order_relaxed);
  }
  if (registry_ != nullptr) {
    promotions_counter_ = registry_->GetCounter(
        "sqlpl_native_promotions_total", {},
        "Fingerprints promoted to the AOT native parser tier");
    parse_counter_ = registry_->GetCounter(
        "sqlpl_native_parse_total", {},
        "Parses answered by a promoted native parser");
  }
  worker_ = std::thread([this] { WorkerLoop(); });
}

NativeTier::~NativeTier() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      stopping_ = true;
    }
    queue_cv_.notify_all();
    worker_.join();
  }
  // No caller can be inside TryServe once the owning service is being
  // destroyed, so this is the one place a library may be unloaded.
  for (Entry& entry : entries_) {
    if (entry.dl_handle != nullptr) dlclose(entry.dl_handle);
  }
}

obs::Counter* NativeTier::DemotionCounter(NativeDemotionReason reason) {
  if (registry_ == nullptr) return nullptr;
  size_t index = static_cast<size_t>(reason);
  std::lock_guard<std::mutex> lock(demotion_counters_mu_);
  if (demotion_counters_[index] == nullptr) {
    demotion_counters_[index] = registry_->GetCounter(
        "sqlpl_native_demotions_total",
        {{"reason", NativeDemotionReasonName(reason)}},
        "Native-tier promotions refused or revoked, by reason");
  }
  return demotion_counters_[index];
}

void NativeTier::Poison(uint64_t fingerprint) {
  uint64_t h = Mix(fingerprint);
  for (size_t probe = 0; probe < kPoisonProbeLimit; ++probe) {
    std::atomic<uint64_t>& slot = poisoned_[(h + probe) & (kPoisonSlots - 1)];
    uint64_t cur = slot.load(std::memory_order_relaxed);
    if (cur == fingerprint) return;
    if (cur == 0) {
      uint64_t expected = 0;
      if (slot.compare_exchange_strong(expected, fingerprint,
                                       std::memory_order_relaxed)) {
        return;
      }
      if (expected == fingerprint) return;
    }
  }
  // Probe window full: the fingerprint stays unpoisoned, but it also
  // never gets another compile attempt (attempted_ is insert-only), so
  // the only cost is a redundant runtime demotion check.
}

bool NativeTier::IsPoisoned(SpecFingerprint fingerprint) const {
  if (!enabled()) return false;
  uint64_t h = Mix(fingerprint.value);
  for (size_t probe = 0; probe < kPoisonProbeLimit; ++probe) {
    uint64_t cur = poisoned_[(h + probe) & (kPoisonSlots - 1)].load(
        std::memory_order_relaxed);
    if (cur == fingerprint.value) return true;
    if (cur == 0) return false;
  }
  return false;
}

bool NativeTier::IsPromoted(SpecFingerprint fingerprint) const {
  if (!enabled()) return false;
  for (const Entry& entry : entries_) {
    if (entry.active.load(std::memory_order_acquire) &&
        entry.fingerprint.load(std::memory_order_relaxed) ==
            fingerprint.value) {
      return true;
    }
  }
  return false;
}

void NativeTier::Demote(uint64_t fingerprint, NativeDemotionReason reason,
                        const std::string& detail) {
  for (Entry& entry : entries_) {
    if (entry.fingerprint.load(std::memory_order_relaxed) == fingerprint) {
      entry.active.store(false, std::memory_order_release);
    }
  }
  Poison(fingerprint);
  demotions_.fetch_add(1, std::memory_order_relaxed);
  if (obs::Counter* counter = DemotionCounter(reason)) counter->Increment();
  obs::Span span("native_tier.demote", "service",
                 std::string(NativeDemotionReasonName(reason)) + " " +
                     FingerprintHex(fingerprint) +
                     (detail.empty() ? "" : ": " + detail));
}

void NativeTier::RecordTraffic(SpecFingerprint fingerprint,
                               const std::shared_ptr<const LlParser>& parser) {
  if (!enabled() || fingerprint.value == 0 || parser == nullptr) return;
  uint64_t h = Mix(fingerprint.value);
  for (size_t probe = 0; probe < kTrafficProbeLimit; ++probe) {
    TrafficSlot& slot = traffic_[(h + probe) & (kTrafficSlots - 1)];
    uint64_t cur = slot.fingerprint.load(std::memory_order_relaxed);
    if (cur == 0) {
      uint64_t expected = 0;
      if (!slot.fingerprint.compare_exchange_strong(
              expected, fingerprint.value, std::memory_order_relaxed)) {
        if (expected != fingerprint.value) continue;
      }
      cur = fingerprint.value;
    }
    if (cur != fingerprint.value) continue;
    uint64_t count = slot.count.fetch_add(1, std::memory_order_relaxed) + 1;
    if (count != options_.hot_threshold) return;
    // Crossed the threshold exactly once: queue a compile attempt —
    // unless the fingerprint already failed one, or the tier is full.
    if (IsPoisoned(fingerprint)) return;
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) return;
    if (std::find(attempted_.begin(), attempted_.end(), fingerprint.value) !=
        attempted_.end()) {
      return;
    }
    if (attempted_.size() >= std::min(options_.max_native, kMaxSlots)) return;
    attempted_.push_back(fingerprint.value);
    queue_.push_back(CompileJob{fingerprint, parser});
    queue_cv_.notify_one();
    return;
  }
  // Traffic table saturated around this hash: the fingerprint simply
  // is not counted; the interpreter keeps serving it.
}

void NativeTier::WorkerLoop() {
  for (;;) {
    CompileJob job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      worker_busy_ = true;
    }
    Compile(job);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      worker_busy_ = false;
    }
    idle_cv_.notify_all();
  }
}

void NativeTier::WaitIdle() {
  if (!enabled()) return;
  std::unique_lock<std::mutex> lock(queue_mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !worker_busy_; });
}

void NativeTier::Compile(const CompileJob& job) {
  uint64_t compile_start = obs::TraceNowMicros();
  obs::Span span("native_tier.compile", "service",
                 FingerprintHex(job.fingerprint.value));
  const LlParser& parser = *job.parser;

  if (parser.NumPredicates() > 0) {
    // Semantic predicates are host callbacks; they cannot cross the ABI.
    Demote(job.fingerprint.value, NativeDemotionReason::kUnsupported,
           "parser has semantic predicates");
    RecordNativeFlightEvent(obs::FlightStage::kNativeCompile,
                            ElapsedMicrosSince(compile_start), false);
    return;
  }

  NativeCodegenOptions codegen_options;
  codegen_options.grammar_fingerprint = job.fingerprint.value;
  Result<GeneratedParser> generated =
      GenerateNativeParserSource(parser, codegen_options);
  if (!generated.ok()) {
    Demote(job.fingerprint.value, NativeDemotionReason::kUnsupported,
           generated.status().message());
    RecordNativeFlightEvent(obs::FlightStage::kNativeCompile,
                            ElapsedMicrosSince(compile_start), false);
    return;
  }
  std::string source = std::move(generated->code);
  if (options_.transform_source_for_testing) {
    source = options_.transform_source_for_testing(source);
  }

  // Sandbox: a private mode-0700 temp dir; the compiler reads exactly
  // one generated file from it and writes exactly one .so into it.
  ScopedTempDir workdir;
  if (!workdir.ok()) {
    Demote(job.fingerprint.value, NativeDemotionReason::kCompileError,
           "cannot create compile work dir");
    RecordNativeFlightEvent(obs::FlightStage::kNativeCompile,
                            ElapsedMicrosSince(compile_start), false);
    return;
  }
  std::string source_path = workdir.path() + "/" + generated->file_name;
  std::string so_path = workdir.path() + "/parser.so";
  Status written = WriteFileContents(source_path, source);
  if (!written.ok()) {
    Demote(job.fingerprint.value, NativeDemotionReason::kCompileError,
           written.message());
    RecordNativeFlightEvent(obs::FlightStage::kNativeCompile,
                            ElapsedMicrosSince(compile_start), false);
    return;
  }

  std::vector<std::string> argv = {options_.compiler, "-std=c++17", "-O2",
                                   "-fPIC",           "-shared",
                                   "-fvisibility=hidden"};
  argv.insert(argv.end(), options_.extra_cflags.begin(),
              options_.extra_cflags.end());
  argv.push_back("-o");
  argv.push_back(so_path);
  argv.push_back(source_path);
  // The subprocess dominates the compile span's wall time; a nested
  // span separates the compiler's own cost from emission + dlopen +
  // equivalence gating when reading a trace.
  Result<SubprocessResult> compiled = [&] {
    obs::Span cc_span("native_tier.cc", "service", options_.compiler);
    return RunSubprocess(argv);
  }();
  if (!compiled.ok() || !compiled->ok()) {
    Demote(job.fingerprint.value, NativeDemotionReason::kCompileError,
           compiled.ok() ? compiled->output : compiled.status().message());
    RecordNativeFlightEvent(obs::FlightStage::kNativeCompile,
                            ElapsedMicrosSince(compile_start), false);
    return;
  }

  void* dl_handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (dl_handle == nullptr) {
    const char* err = dlerror();
    Demote(job.fingerprint.value, NativeDemotionReason::kDlopenError,
           err != nullptr ? err : "dlopen failed");
    RecordNativeFlightEvent(obs::FlightStage::kNativeCompile,
                            ElapsedMicrosSince(compile_start), false);
    return;
  }
  auto entry_fn = reinterpret_cast<NativeEntryFn>(
      dlsym(dl_handle, kNativeEntrySymbol));
  const SqlplNativeParserV1* handle =
      entry_fn != nullptr ? entry_fn() : nullptr;
  if (handle == nullptr) {
    dlclose(dl_handle);
    Demote(job.fingerprint.value, NativeDemotionReason::kDlopenError,
           "entry symbol missing or returned null");
    RecordNativeFlightEvent(obs::FlightStage::kNativeCompile,
                            ElapsedMicrosSince(compile_start), false);
    return;
  }
  if (handle->abi_version != kNativeAbiVersion ||
      handle->grammar_fingerprint != job.fingerprint.value ||
      handle->num_symbols != parser.interner().size() ||
      handle->symbol_table_hash != SymbolTableHash(parser.interner()) ||
      handle->parse == nullptr || handle->free_result == nullptr) {
    dlclose(dl_handle);
    Demote(job.fingerprint.value, NativeDemotionReason::kAbiMismatch,
           "library metadata disagrees with the serving parser");
    RecordNativeFlightEvent(obs::FlightStage::kNativeCompile,
                            ElapsedMicrosSince(compile_start), false);
    return;
  }
  RecordNativeFlightEvent(obs::FlightStage::kNativeCompile,
                          ElapsedMicrosSince(compile_start), true);

  // Promotion gate: the full golden corpus must replay byte-identically
  // (S-expressions AND error messages) through interpreter and library.
  uint64_t gate_start = obs::TraceNowMicros();
  obs::Span gate_span("native_tier.promote", "service",
                      FingerprintHex(job.fingerprint.value));
  std::string divergence = EquivalenceGate(parser, *handle);
  if (!divergence.empty()) {
    dlclose(dl_handle);
    Demote(job.fingerprint.value, NativeDemotionReason::kEquivalenceMismatch,
           divergence);
    RecordNativeFlightEvent(obs::FlightStage::kNativePromotion,
                            ElapsedMicrosSince(gate_start), false);
    return;
  }

  // Publish. Non-atomic fields first; `active` last with release so a
  // TryServe that acquires `active == true` sees a complete entry.
  Entry* slot = nullptr;
  for (Entry& entry : entries_) {
    if (entry.fingerprint.load(std::memory_order_relaxed) == 0) {
      slot = &entry;
      break;
    }
  }
  if (slot == nullptr) {
    dlclose(dl_handle);
    Demote(job.fingerprint.value, NativeDemotionReason::kUnsupported,
           "no free native slot");
    RecordNativeFlightEvent(obs::FlightStage::kNativePromotion,
                            ElapsedMicrosSince(gate_start), false);
    return;
  }
  slot->dl_handle = dl_handle;
  slot->handle = handle;
  slot->pinned_parser = job.parser;
  slot->verified_parser.store(job.parser.get(), std::memory_order_relaxed);
  slot->fingerprint.store(job.fingerprint.value, std::memory_order_relaxed);
  slot->active.store(true, std::memory_order_release);
  promotions_.fetch_add(1, std::memory_order_relaxed);
  if (promotions_counter_ != nullptr) promotions_counter_->Increment();
  RecordNativeFlightEvent(obs::FlightStage::kNativePromotion,
                          ElapsedMicrosSince(gate_start), true);
}

std::string NativeTier::EquivalenceGate(const LlParser& parser,
                                        const SqlplNativeParserV1& handle) {
  TokenStream stream;
  std::vector<SqlplNativeTokenV1> native_tokens;
  ParseStats stats;
  for (const GoldenCase& c : GoldenCorpus()) {
    stream.Clear();
    // A statement this dialect cannot even lex never reaches the native
    // parser at serve time (TryServe falls back), so it is out of gate
    // scope. That is what lets the gate run the FULL corpus against
    // every dialect: equivalence is a property of identical token
    // streams, not of the statement's home dialect.
    if (!parser.lexer().TokenizeInto(c.sql, &stream).ok()) continue;
    native_tokens.clear();
    native_tokens.reserve(stream.size());
    for (const LexedToken& t : stream.tokens()) {
      native_tokens.push_back(SqlplNativeTokenV1{
          t.type, 0, t.text.data(), t.text.size(),
          static_cast<uint64_t>(t.location.line),
          static_cast<uint64_t>(t.location.column)});
    }

    std::string want_sexpr;
    Result<ParseNode> want =
        parser.ParseTextRender(c.sql, RequestControl{}, &stats, &want_sexpr);

    SqlplNativeResultV1 result{};
    int rc = handle.parse(native_tokens.data(), native_tokens.size(), 1,
                          &result);
    std::string got(result.data != nullptr ? result.data : "", result.size);
    handle.free_result(&result);

    if (want.ok()) {
      if (rc != kNativeParseAccepted) {
        return std::string("case '") + c.sql + "': interpreter accepts, " +
               "native returns rc=" + std::to_string(rc) + " (" + got + ")";
      }
      if (got != want_sexpr) {
        return std::string("case '") + c.sql + "': S-expression mismatch";
      }
    } else {
      if (rc != kNativeParseSyntaxError) {
        return std::string("case '") + c.sql + "': interpreter rejects, " +
               "native returns rc=" + std::to_string(rc);
      }
      if (got != want.status().message()) {
        return std::string("case '") + c.sql + "': error message mismatch";
      }
    }
  }
  return {};
}

bool NativeTier::TryServe(SpecFingerprint fingerprint, const LlParser& parser,
                          std::string_view sql, ParseResponse* response,
                          size_t* tokens_out) {
  if (!enabled()) return false;
  Entry* found = nullptr;
  for (Entry& entry : entries_) {
    if (entry.active.load(std::memory_order_acquire) &&
        entry.fingerprint.load(std::memory_order_relaxed) ==
            fingerprint.value) {
      found = &entry;
      break;
    }
  }
  if (found == nullptr) return false;

  // Parser identity: the cache may rebuild the LlParser after eviction.
  // A fast pointer compare recognizes the instance the entry last
  // proved; any other instance is re-proved by symbol-table hash (same
  // fingerprint => deterministic build => identical interner, so this
  // is expected to pass — the hash check is the safety net, not the
  // common path).
  const LlParser* verified =
      found->verified_parser.load(std::memory_order_acquire);
  if (verified != &parser) {
    if (SymbolTableHash(parser.interner()) !=
        found->handle->symbol_table_hash) {
      return false;
    }
    found->verified_parser.store(&parser, std::memory_order_release);
  }

  thread_local TokenStream stream;
  thread_local std::vector<SqlplNativeTokenV1> native_tokens;
  stream.Clear();
  if (!parser.lexer().TokenizeInto(sql, &stream).ok()) {
    // Lexing errors keep the interpreter's exact diagnostics.
    return false;
  }
  native_tokens.clear();
  native_tokens.reserve(stream.size());
  for (const LexedToken& t : stream.tokens()) {
    native_tokens.push_back(SqlplNativeTokenV1{
        t.type, 0, t.text.data(), t.text.size(),
        static_cast<uint64_t>(t.location.line),
        static_cast<uint64_t>(t.location.column)});
  }

  SqlplNativeResultV1 result{};
  int rc = found->handle->parse(native_tokens.data(), native_tokens.size(), 1,
                                &result);
  if (rc == kNativeParseAccepted) {
    response->rendered.assign(result.data, result.size);
    found->handle->free_result(&result);
    response->result = ParseNode::Rule(parser.grammar().start_symbol());
    if (tokens_out != nullptr) *tokens_out = stream.size() - 1;
    native_parses_.fetch_add(1, std::memory_order_relaxed);
    if (parse_counter_ != nullptr) parse_counter_->Increment();
    return true;
  }
  if (rc == kNativeParseSyntaxError) {
    std::string message(result.data != nullptr ? result.data : "",
                        result.size);
    found->handle->free_result(&result);
    response->result = Status::ParseError(std::move(message));
    if (tokens_out != nullptr) *tokens_out = stream.size() - 1;
    native_parses_.fetch_add(1, std::memory_order_relaxed);
    if (parse_counter_ != nullptr) parse_counter_->Increment();
    return true;
  }
  // Internal anomaly (rc == 2 or unknown): fail closed — demote the
  // fingerprint and let the interpreter answer this and every later
  // request.
  if (result.data != nullptr) found->handle->free_result(&result);
  Demote(fingerprint.value, NativeDemotionReason::kRuntimeError,
         "native parser reported rc=" + std::to_string(rc));
  return false;
}

NativeTierStats NativeTier::stats() const {
  NativeTierStats out;
  out.promotions = promotions_.load(std::memory_order_relaxed);
  out.demotions = demotions_.load(std::memory_order_relaxed);
  out.native_parses = native_parses_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace sqlpl
