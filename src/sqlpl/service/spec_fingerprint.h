#ifndef SQLPL_SERVICE_SPEC_FINGERPRINT_H_
#define SQLPL_SERVICE_SPEC_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "sqlpl/sql/product_line.h"

namespace sqlpl {

/// Canonical 64-bit fingerprint of a `DialectSpec` — the cache key of the
/// parser service. Two specs that build the same parser hash equally:
///
///  - `features` are canonicalized to catalog composition order and
///    deduplicated, so `{Where, From}` and `{From, From, Where}` collide;
///  - `counts` entries for unselected features or with the default
///    unbounded cardinality are dropped (an explicit `kUnbounded` equals
///    an absent entry);
///  - `start_symbol` participates; `name` does NOT — the dialect name
///    only decorates diagnostics and must not split the cache.
///
/// Features unknown to the catalog are kept (appended lexicographically
/// after known ones) so invalid specs still fingerprint deterministically
/// and a failed build is attributed to one key.
struct SpecFingerprint {
  uint64_t value = 0;

  bool operator==(const SpecFingerprint&) const = default;

  /// Lowercase hex, for logs and reports.
  std::string ToString() const;
};

/// Computes the fingerprint. Pure function of `spec` and the process-wide
/// feature catalog; safe to call concurrently.
SpecFingerprint FingerprintSpec(const DialectSpec& spec);

}  // namespace sqlpl

template <>
struct std::hash<sqlpl::SpecFingerprint> {
  size_t operator()(const sqlpl::SpecFingerprint& fp) const noexcept {
    return static_cast<size_t>(fp.value);
  }
};

#endif  // SQLPL_SERVICE_SPEC_FINGERPRINT_H_
