#ifndef SQLPL_SERVICE_THREAD_POOL_H_
#define SQLPL_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sqlpl/obs/metrics.h"

namespace sqlpl {

/// Fixed-size worker pool backing `DialectService::ParseBatch`. Plain
/// mutex + condition-variable work queue: batch parsing hands the pool a
/// few coarse tasks (whole statements), so queue contention is noise next
/// to parse cost and a lock-free queue would buy nothing yet.
///
/// Observability: bind a `MetricsRegistry` to get a queue-depth gauge
/// (`sqlpl_pool_queue_depth`), task count and latency
/// (`sqlpl_pool_tasks_total`, `sqlpl_pool_task_micros`), and queue-wait
/// histogram (`sqlpl_pool_queue_wait_micros`). With tracing enabled
/// (obs/trace.h), every dequeue additionally emits a `pool.queue_wait`
/// trace event spanning enqueue → dequeue on the worker's timeline.
///
/// Tasks must not throw (the library is exception-free across API
/// boundaries); a throwing task terminates the process.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1; 0 means
  /// hardware_concurrency). `metrics`, when non-null, must outlive the
  /// pool; pass nullptr for an uninstrumented pool.
  explicit ThreadPool(size_t num_threads,
                      obs::MetricsRegistry* metrics = nullptr);

  /// Equivalent to `Shutdown()`.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Returns false —
  /// without running or storing the task — once `Shutdown()` has begun.
  bool Submit(std::function<void()> task);

  /// Drains the queue and joins the workers: every task enqueued before
  /// this call runs to completion; tasks submitted after it are
  /// rejected. Idempotent and callable from any thread (but not from a
  /// worker task — a worker joining itself deadlocks).
  void Shutdown();

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until all
  /// complete. The calling thread participates, so a 1-thread pool still
  /// makes progress even while workers are busy with other batches (and
  /// a shut-down pool degrades to sequential execution on the caller).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return num_threads_; }

 private:
  struct Task {
    std::function<void()> fn;
    /// TraceNowMicros() at enqueue, for the queue-wait measurement.
    uint64_t enqueue_micros = 0;
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  // Serializes Shutdown callers; guards workers_ during the join.
  std::mutex join_mu_;
  std::vector<std::thread> workers_;
  size_t num_threads_ = 0;

  // Instruments (all nullptr when the pool is uninstrumented).
  obs::Gauge* queue_depth_ = nullptr;
  obs::Counter* tasks_total_ = nullptr;
  obs::Histogram* task_micros_ = nullptr;
  obs::Histogram* queue_wait_micros_ = nullptr;
};

}  // namespace sqlpl

#endif  // SQLPL_SERVICE_THREAD_POOL_H_
