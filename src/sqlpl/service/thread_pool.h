#ifndef SQLPL_SERVICE_THREAD_POOL_H_
#define SQLPL_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sqlpl {

/// Fixed-size worker pool backing `DialectService::ParseBatch`. Plain
/// mutex + condition-variable work queue: batch parsing hands the pool a
/// few coarse tasks (whole statements), so queue contention is noise next
/// to parse cost and a lock-free queue would buy nothing yet.
///
/// Tasks must not throw (the library is exception-free across API
/// boundaries); a throwing task terminates the process.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1; 0 means
  /// hardware_concurrency).
  explicit ThreadPool(size_t num_threads);

  /// Drains nothing: pending tasks are completed before shutdown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until all
  /// complete. The calling thread participates, so a 1-thread pool still
  /// makes progress even while workers are busy with other batches.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sqlpl

#endif  // SQLPL_SERVICE_THREAD_POOL_H_
