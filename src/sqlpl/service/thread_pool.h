#ifndef SQLPL_SERVICE_THREAD_POOL_H_
#define SQLPL_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sqlpl/obs/metrics.h"
#include "sqlpl/util/cancellation.h"
#include "sqlpl/util/status.h"

namespace sqlpl {

/// What `Submit` does when the bounded queue is full.
enum class OverflowPolicy {
  /// Fail fast with `kResourceExhausted` (load shedding) — the serving
  /// default: callers get an honest signal instead of silent latency.
  kReject,
  /// Block the submitter until a slot frees (backpressure). A blocked
  /// submitter still fails cleanly when the pool shuts down.
  kBlock,
};

/// Tuning knobs of a `ThreadPool`.
struct ThreadPoolOptions {
  /// Worker threads (minimum 1; 0 means hardware_concurrency).
  size_t num_threads = 4;
  /// Maximum queued (not yet running) tasks; 0 = unbounded, preserving
  /// the pre-lifecycle behavior.
  size_t max_queue_depth = 0;
  OverflowPolicy overflow = OverflowPolicy::kReject;
};

/// Fixed-size worker pool backing `DialectService::ParseBatch`. Plain
/// mutex + condition-variable work queue: batch parsing hands the pool a
/// few coarse tasks (whole statements), so queue contention is noise next
/// to parse cost and a lock-free queue would buy nothing yet.
///
/// Request-lifecycle v2 additions (docs/ROBUSTNESS.md):
///  - a bounded queue (`max_queue_depth`) with a load-shedding policy —
///    `kReject` sheds with `kResourceExhausted`, `kBlock` applies
///    backpressure;
///  - per-task deadlines: an expired deadline is rejected at submit
///    without enqueueing, and re-checked when a worker dequeues the
///    task — a task that waited out its deadline in the queue is
///    dropped (its `on_expired` callback runs instead of the task).
///
/// Observability: bind a `MetricsRegistry` to get a queue-depth gauge
/// (`sqlpl_pool_queue_depth`), task count and latency
/// (`sqlpl_pool_tasks_total`, `sqlpl_pool_task_micros`), queue-wait
/// histogram (`sqlpl_pool_queue_wait_micros`), shed counter
/// (`sqlpl_pool_sheds_total`), and deadline-drop counters
/// (`sqlpl_pool_deadline_drops_total{stage="submit"|"queue"}`). With
/// tracing enabled (obs/trace.h), every dequeue additionally emits a
/// `pool.queue_wait` trace event spanning enqueue → dequeue.
///
/// Tasks must not throw (the library is exception-free across API
/// boundaries); a throwing task terminates the process.
class ThreadPool {
 public:
  explicit ThreadPool(ThreadPoolOptions options,
                      obs::MetricsRegistry* metrics = nullptr);

  /// Legacy positional form: unbounded queue, `kReject` (moot without a
  /// bound). `metrics`, when non-null, must outlive the pool.
  explicit ThreadPool(size_t num_threads,
                      obs::MetricsRegistry* metrics = nullptr);

  /// Equivalent to `Shutdown()`.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` under the request lifecycle. Returns:
  ///  - `kFailedPrecondition` once `Shutdown()` has begun (also wakes
  ///    `kBlock` submitters parked on a full queue);
  ///  - `kDeadlineExceeded` when `deadline` has already passed — the
  ///    task is not enqueued and will never run;
  ///  - `kResourceExhausted` when the queue is full under `kReject`;
  ///  - OK otherwise. If the deadline then expires while the task is
  ///    still queued, the worker drops it and runs `on_expired`
  ///    (when provided) instead.
  Status Submit(std::function<void()> task, Deadline deadline,
                std::function<void()> on_expired = nullptr);

  /// Legacy positional form: no deadline. Returns false — without
  /// running or storing the task — iff the lifecycle form would fail
  /// (shutdown or a full `kReject` queue).
  bool Submit(std::function<void()> task);

  /// Drains the queue and joins the workers: every task enqueued before
  /// this call runs to completion (deadline-dropped tasks excepted);
  /// tasks submitted after it are rejected. Idempotent and callable
  /// from any thread (but not from a worker task — a worker joining
  /// itself deadlocks).
  void Shutdown();

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until all
  /// complete. The calling thread participates, so a 1-thread pool still
  /// makes progress even while workers are busy with other batches (and
  /// a shut-down pool degrades to sequential execution on the caller).
  /// Helper submission never blocks: with a full `kBlock` queue the
  /// caller simply runs more of the iterations itself.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return num_threads_; }
  size_t max_queue_depth() const { return options_.max_queue_depth; }

 private:
  struct Task {
    std::function<void()> fn;
    std::function<void()> on_expired;
    Deadline deadline;
    /// TraceNowMicros() at enqueue, for the queue-wait measurement.
    uint64_t enqueue_micros = 0;
  };

  /// Never blocks: used by ParallelFor helpers regardless of policy.
  Status TrySubmitLocked(Task task);

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  /// Signals a freed slot to `kBlock` submitters.
  std::condition_variable space_cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  // Serializes Shutdown callers; guards workers_ during the join.
  std::mutex join_mu_;
  std::vector<std::thread> workers_;
  size_t num_threads_ = 0;
  ThreadPoolOptions options_;

  // Instruments (all nullptr when the pool is uninstrumented).
  obs::Gauge* queue_depth_ = nullptr;
  obs::Counter* tasks_total_ = nullptr;
  obs::Counter* sheds_total_ = nullptr;
  obs::Counter* deadline_drops_submit_ = nullptr;
  obs::Counter* deadline_drops_queue_ = nullptr;
  obs::Histogram* task_micros_ = nullptr;
  obs::Histogram* queue_wait_micros_ = nullptr;
};

}  // namespace sqlpl

#endif  // SQLPL_SERVICE_THREAD_POOL_H_
