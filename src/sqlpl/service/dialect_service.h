#ifndef SQLPL_SERVICE_DIALECT_SERVICE_H_
#define SQLPL_SERVICE_DIALECT_SERVICE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sqlpl/exec/executor.h"
#include "sqlpl/fm/configurator.h"
#include "sqlpl/parser/parse_tree.h"
#include "sqlpl/service/native_tier.h"
#include "sqlpl/service/parser_cache.h"
#include "sqlpl/service/service_stats.h"
#include "sqlpl/service/spec_fingerprint.h"
#include "sqlpl/service/thread_pool.h"
#include "sqlpl/sql/product_line.h"
#include "sqlpl/util/cancellation.h"

namespace sqlpl {

/// Tuning knobs of a `DialectService`.
struct DialectServiceOptions {
  /// Total parser-cache entries across all shards.
  size_t cache_capacity = 64;
  /// Lock shards in the cache (rounded up to a power of two).
  size_t cache_shards = 8;
  /// Worker threads for `ParseBatch`; 0 = hardware concurrency.
  size_t num_threads = 4;
  /// Admission control: requests (single parses or whole batches)
  /// allowed inside the service concurrently; one over the limit is
  /// shed with `kResourceExhausted`. 0 = unlimited (legacy behavior).
  size_t max_inflight_requests = 0;
  /// Bound on the internal pool's queue (0 = unbounded) and the policy
  /// when it fills. `ParseBatch` helper fan-out never blocks, so the
  /// policy matters to direct pool users; admission control above is
  /// the service-level shed valve.
  size_t max_queue_depth = 0;
  OverflowPolicy overflow = OverflowPolicy::kReject;
  /// Cold-build retry for *transient* failures (see
  /// `ParserCache::IsTransientBuildFailure`): total attempts per
  /// single-flight build, with exponential backoff from
  /// `build_retry_backoff`. 1 = no retry.
  int max_build_attempts = 2;
  std::chrono::microseconds build_retry_backoff{500};
  /// AOT native-parser tier (service/native_tier.h): off by default
  /// (`hot_threshold == 0`). When enabled, render-mode parses of hot
  /// fingerprints are answered by a background-compiled, dlopen'ed,
  /// equivalence-gated native parser and report
  /// `CacheDisposition::kNative`.
  NativeTierOptions native;
};

/// One parse under the request-lifecycle API: what to parse (`spec` +
/// `sql`) and how long the service may work on it (`deadline`,
/// `cancel`). The spec is borrowed, not owned — it must outlive the
/// call (batch callers keep their specs alongside the request array).
struct ParseRequest {
  /// Required. Dialect to parse in; resolved per request, so one batch
  /// may mix dialects freely.
  const DialectSpec* spec = nullptr;
  std::string_view sql;
  /// Absolute give-up point. Checked at admission, again when a batch
  /// statement's turn comes up, and cooperatively inside the parse
  /// loops. Default: never.
  Deadline deadline;
  /// Caller-side abandonment. Default: non-cancellable.
  CancelToken cancel;
  /// When false the caller only wants accept/reject + status: the
  /// response's tree is left empty. (The parse still runs in full —
  /// acceptance *is* the parse — but the tree is not returned.)
  bool want_tree = true;
  /// Serving-tier render mode: when true (and the parse succeeds) the
  /// response's `rendered` field carries the tree's S-expression,
  /// produced straight from the parser's native arena tree, and
  /// `result` holds only the childless acceptance stub — the owning
  /// `ParseNode` is never materialized. Byte-identical to
  /// `result.value().ToSExpr()` under `want_tree`, at a fraction of the
  /// cost; the wire server's `want_tree` responses use this. Takes
  /// precedence over `want_tree` when both are set.
  bool render_sexpr = false;
  /// Trace identity of the originating request (wire clients stamp it;
  /// in-process callers may leave it zero = untraced). Attributes the
  /// request's spans, flight-recorder events, and latency exemplars.
  TraceContext trace;
};

/// Outcome of one `ParseRequest`: the tree (or the lifecycle/syntax
/// error), where the parser came from, and timing.
struct ParseResponse {
  Result<ParseNode> result{Status::Internal("response not filled")};
  /// How the dialect's parser was obtained (hit / built / coalesced),
  /// or `kUnresolved` when the request never got one (shed, expired,
  /// cancelled, build failure).
  CacheDisposition cache_disposition = CacheDisposition::kUnresolved;
  /// Parse time proper (lex + match), excluding parser resolution.
  uint64_t parse_micros = 0;
  /// Admission → response, including cache resolution and (for batch
  /// statements) time spent waiting for a worker.
  uint64_t total_micros = 0;
  /// The tree's S-expression when the request asked for
  /// `render_sexpr` and the parse succeeded; empty otherwise.
  std::string rendered;

  bool ok() const { return result.ok(); }
  const Status& status() const { return result.status(); }
};

/// One execution under the request-lifecycle API: parse + lower + run
/// `sql` against the service's registered tables (docs/EXECUTION.md).
/// Lifecycle fields behave exactly like `ParseRequest`'s.
struct ExecuteRequest {
  /// Required; the dialect whose feature selection gates lowering.
  const DialectSpec* spec = nullptr;
  std::string_view sql;
  Deadline deadline;
  CancelToken cancel;
  /// Result row cap (a `Limit` plan node); 0 = unlimited.
  uint64_t max_rows = 0;
  TraceContext trace;
};

/// Outcome of one `ExecuteRequest`.
struct ExecuteResponse {
  Status status = Status::Internal("response not filled");
  /// The row batches (valid iff `status.ok()`).
  exec::QueryResult result;
  /// Rendered logical plan (`LogicalPlan::ToString`), for inspection
  /// and tests; empty when lowering failed.
  std::string plan_text;
  CacheDisposition cache_disposition = CacheDisposition::kUnresolved;
  /// Parse + AST build + semantic lowering.
  uint64_t lower_micros = 0;
  /// The vectorized run proper.
  uint64_t exec_micros = 0;
  /// Admission → response.
  uint64_t total_micros = 0;

  bool ok() const { return status.ok(); }
};

/// Long-lived, concurrent front-end over `SqlProductLine` — the serving
/// tier of the product line. Where the library workflow composes and
/// builds a parser per call, the service treats a validated feature
/// selection as a canonical artifact: the spec is fingerprinted
/// (`FingerprintSpec`), the built parser is cached under that key, and
/// every later request for an equivalent spec — any feature order, any
/// redundant counts — reuses the same immutable parser instance.
///
/// ## Request lifecycle (v2)
///
/// `ParseRequest`/`ParseResponse` are the primary API. Every request
/// passes three gates, each with a first-class status code and metric
/// (docs/ROBUSTNESS.md):
///
///   1. **Admission** — already-cancelled → `kCancelled`; expired
///      deadline → `kDeadlineExceeded`; `max_inflight_requests`
///      reached → `kResourceExhausted` (load shedding).
///   2. **Resolution** — the cache lookup / single-flight build, with
///      deadline-bounded coalesced waits and transient-failure retry.
///   3. **Execution** — batch statements re-check the lifecycle when
///      their turn comes up; the parse loops hit cooperative
///      cancellation/deadline checkpoints (`LlParser`).
///
/// The positional `Parse`/`Accepts`/`ParseBatch`/`GetParser` forms are
/// **legacy** thin wrappers over the request API (kept for source
/// compatibility and for callers that genuinely want unbounded
/// best-effort behavior).
///
/// Thread-safety: every public method may be called concurrently from
/// any number of threads. Shared state is confined to the sharded
/// `ParserCache` (mutex per shard, single-flight builds), the atomic
/// `ServiceStats`, and the admission counter; parsing itself runs on
/// immutable `const LlParser` instances (see the contract in
/// ll_parser.h).
class DialectService {
 public:
  explicit DialectService(DialectServiceOptions options = {});

  DialectService(const DialectService&) = delete;
  DialectService& operator=(const DialectService&) = delete;

  /// Parses one statement under the full request lifecycle.
  ParseResponse Parse(const ParseRequest& request);

  /// Executes one statement end to end: resolve the dialect's parser
  /// (same admission/cache/lifecycle gates as `Parse`), parse, lower
  /// feature-keyed (`exec::LowerSelect`), and run the vectorized
  /// executor over the registered tables. Statements that use clauses
  /// outside the dialect's feature selection fail with
  /// `kFeatureUnsupported` and a feature-attributed diagnostic — even
  /// when the variant's parser itself rejects the text, the service
  /// re-parses under the full-foundation grammar to attribute the
  /// offending clause to its feature (docs/EXECUTION.md).
  ExecuteResponse ExecuteQuery(const ExecuteRequest& request);

  /// The in-memory tables queries execute against. Pre-registered with
  /// the demo fixture set (`exec::RegisterDemoTables`); tests and
  /// benchmarks register their own.
  exec::TableRegistry& tables() { return tables_; }

  /// Parses a batch of independent requests concurrently on the
  /// internal pool, preserving order (response i ↔ requests[i]). Each
  /// request resolves its own dialect's parser — batches may mix
  /// dialects — with one resolution per distinct fingerprint per batch.
  /// Admission control charges the batch as one request; per-request
  /// deadlines/cancellation still apply statement by statement.
  std::vector<ParseResponse> ParseBatch(std::span<const ParseRequest> requests);

  /// Resolves (builds or fetches) the parser for `spec` under
  /// `control`, reporting how through `disposition` (optional) —
  /// cache warm-up, or direct use of the shared instance.
  /// `fingerprint_out` (optional) receives the spec's fingerprint — the
  /// cache key, computed here anyway — so request paths don't hash the
  /// spec twice.
  Result<std::shared_ptr<const LlParser>> GetParser(
      const DialectSpec& spec, const RequestControl& control,
      CacheDisposition* disposition = nullptr,
      SpecFingerprint* fingerprint_out = nullptr);

  /// Legacy positional form of `Parse`: no deadline, no cancellation,
  /// no admission control bypass — equivalent to a `ParseRequest` with
  /// default lifecycle fields.
  Result<ParseNode> Parse(const DialectSpec& spec, std::string_view sql);

  /// Legacy: true iff `sql` is a sentence of the dialect.
  bool Accepts(const DialectSpec& spec, std::string_view sql);

  /// Legacy positional form of `ParseBatch`: one dialect for the whole
  /// batch, no lifecycle fields.
  std::vector<Result<ParseNode>> ParseBatch(
      const DialectSpec& spec, std::span<const std::string> statements);

  /// Legacy unrestricted form of `GetParser`.
  Result<std::shared_ptr<const LlParser>> GetParser(const DialectSpec& spec);

  /// Runs the feature-model configurator on `spec` without parsing
  /// anything: the same closed-world check every parse request passes
  /// before admission to the compose path, exposed for negotiation
  /// (`ValidateSpec` wire frames). On rejection the result carries the
  /// structured minimal conflict.
  fm::ValidationResult ValidateSpec(const DialectSpec& spec) const;

  /// Auto-completes a partial spec through the configurator (forced
  /// inclusions, deterministic group choices); the result is canonical
  /// and ready to parse with. See `fm::Configurator::Complete`.
  Result<DialectSpec> CompleteSpec(const DialectSpec& spec) const;

  /// The service's configurator (shared feature-model clause form).
  const fm::Configurator& configurator() const { return configurator_; }

  /// Counters since construction (or the last `ResetStats`).
  ServiceStatsSnapshot Stats() const;
  /// `RenderServiceStats(Stats())`.
  std::string StatsReport() const;
  /// Resets request/latency counters. Cache counters (hits, builds,
  /// evictions) are lifetime totals and are not reset.
  void ResetStats();

  /// The service's metrics registry: request counters and latency
  /// histograms (`ServiceStats`), lifecycle counters (sheds, deadline
  /// misses, cancellations), pool instruments, and — refreshed on each
  /// export call below — cache gauges. See docs/OBSERVABILITY.md for
  /// the metric inventory.
  obs::MetricsRegistry& metrics() { return stats_.registry(); }

  /// Prometheus text exposition of `metrics()`, with the cache gauges
  /// synced to the cache's current counters first.
  std::string MetricsPrometheus();
  /// The same inventory as JSON.
  std::string MetricsJson();

  const SqlProductLine& product_line() const { return line_; }
  const ParserCache& cache() const { return cache_; }
  const DialectServiceOptions& options() const { return options_; }
  /// The AOT native-parser tier (inert unless
  /// `options().native.hot_threshold > 0`). Exposed for tests and
  /// benchmarks: `WaitIdle` / `IsPromoted` / `stats`.
  NativeTier& native_tier() { return native_tier_; }

 private:
  /// RAII admission slot; `admitted()` false means the service is at
  /// `max_inflight_requests` and the request must be shed.
  class AdmissionSlot {
   public:
    explicit AdmissionSlot(DialectService* service);
    ~AdmissionSlot();
    AdmissionSlot(const AdmissionSlot&) = delete;
    AdmissionSlot& operator=(const AdmissionSlot&) = delete;
    bool admitted() const { return admitted_; }

   private:
    DialectService* service_;
    bool admitted_;
  };

  /// Admission gate shared by Parse and ParseBatch: fills `response`
  /// and returns false when the request must be rejected (cancelled /
  /// expired / shed). `slot` must outlive the request's execution.
  bool Admit(const RequestControl& control, const AdmissionSlot& slot,
             ParseResponse* response);

  /// Executes one admitted request against `parser` (checkpointed
  /// parse, stats, response assembly). `queue_stage` selects which
  /// deadline-miss stage a pre-parse expiry counts under. The parser
  /// arrives as the cache's shared_ptr (not a reference) and with its
  /// `fingerprint` so the native tier can count traffic, pin the
  /// instance for background compilation, and serve promoted
  /// fingerprints natively.
  ParseResponse Execute(const ParseRequest& request,
                        const std::shared_ptr<const LlParser>& parser,
                        SpecFingerprint fingerprint,
                        CacheDisposition disposition,
                        std::chrono::steady_clock::time_point admitted_at,
                        bool queue_stage);

  /// Mirrors `cache_.stats()` into gauges on the stats registry so one
  /// exposition covers requests, latencies, pool, and cache.
  void SyncCacheMetrics();

  /// True iff `fingerprint` was recorded by `MarkValidated` — i.e. a
  /// spec with this exact fingerprint already passed the configurator.
  /// False negatives (full set, eviction-free overflow) merely cost a
  /// redundant `Validate`; false positives are impossible because the
  /// set stores the full 64-bit fingerprint value and matches exactly.
  bool IsValidated(uint64_t fingerprint) const;
  /// Records a fingerprint whose spec just passed validation. Lock-free
  /// insert-only open addressing over `validated_`; drops the insert
  /// (not the request) when the probe window is saturated.
  void MarkValidated(uint64_t fingerprint);

  DialectServiceOptions options_;
  SqlProductLine line_;
  ParserCache cache_;
  ServiceStats stats_;
  /// Declared after stats_: its sqlpl_fm_* instruments register on the
  /// stats registry at construction so they are visible in expositions
  /// from the first export on.
  fm::Configurator configurator_;
  ThreadPool pool_;
  /// Declared after stats_: its counters register on the stats registry.
  NativeTier native_tier_;
  std::atomic<size_t> inflight_requests_{0};

  /// Validated-fingerprint fast path (ISSUE 8 cache-hit fix): specs
  /// that already passed the configurator are remembered by fingerprint
  /// so repeat requests — the cache-hit steady state — skip the ~1µs
  /// `Validate` entirely. Insert-only; sized for far more distinct
  /// dialects than the parser cache holds.
  static constexpr size_t kValidatedSlots = 4096;
  static constexpr size_t kValidatedProbeLimit = 16;
  std::unique_ptr<std::atomic<uint64_t>[]> validated_;
  /// `sqlpl_fm_validate_skips_total`: proof the fast path is taken.
  obs::Counter* validate_skips_ = nullptr;

  /// Execution tier (docs/EXECUTION.md): the registered tables and the
  /// sqlpl_exec_* instruments.
  exec::TableRegistry tables_;
  obs::Counter* exec_statements_ = nullptr;
  obs::Counter* exec_lowering_failures_ = nullptr;
  obs::Counter* exec_rows_ = nullptr;
  obs::Counter* exec_batches_ = nullptr;
  obs::Histogram* exec_lower_micros_ = nullptr;
  obs::Histogram* exec_run_micros_ = nullptr;
};

}  // namespace sqlpl

#endif  // SQLPL_SERVICE_DIALECT_SERVICE_H_
