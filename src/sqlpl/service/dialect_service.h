#ifndef SQLPL_SERVICE_DIALECT_SERVICE_H_
#define SQLPL_SERVICE_DIALECT_SERVICE_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sqlpl/parser/parse_tree.h"
#include "sqlpl/service/parser_cache.h"
#include "sqlpl/service/service_stats.h"
#include "sqlpl/service/spec_fingerprint.h"
#include "sqlpl/service/thread_pool.h"
#include "sqlpl/sql/product_line.h"

namespace sqlpl {

/// Tuning knobs of a `DialectService`.
struct DialectServiceOptions {
  /// Total parser-cache entries across all shards.
  size_t cache_capacity = 64;
  /// Lock shards in the cache (rounded up to a power of two).
  size_t cache_shards = 8;
  /// Worker threads for `ParseBatch`; 0 = hardware concurrency.
  size_t num_threads = 4;
};

/// Long-lived, concurrent front-end over `SqlProductLine` — the serving
/// tier of the product line. Where the library workflow composes and
/// builds a parser per call, the service treats a validated feature
/// selection as a canonical artifact: the spec is fingerprinted
/// (`FingerprintSpec`), the built parser is cached under that key, and
/// every later request for an equivalent spec — any feature order, any
/// redundant counts — reuses the same immutable parser instance.
///
/// Thread-safety: every public method may be called concurrently from
/// any number of threads. Shared state is confined to the sharded
/// `ParserCache` (mutex per shard, single-flight builds) and the atomic
/// `ServiceStats`; parsing itself runs on immutable `const LlParser`
/// instances (see the contract in ll_parser.h).
class DialectService {
 public:
  explicit DialectService(DialectServiceOptions options = {});

  DialectService(const DialectService&) = delete;
  DialectService& operator=(const DialectService&) = delete;

  /// Parses one statement in the dialect of `spec`. Cold path composes
  /// and builds the dialect's parser (once, even under concurrent
  /// demand); warm path is a cache lookup plus the parse.
  Result<ParseNode> Parse(const DialectSpec& spec, std::string_view sql);

  /// True iff `sql` is a sentence of the dialect.
  bool Accepts(const DialectSpec& spec, std::string_view sql);

  /// Parses `statements` concurrently on the internal pool, preserving
  /// order: result i corresponds to statements[i]. The parser is
  /// resolved once for the whole batch.
  std::vector<Result<ParseNode>> ParseBatch(
      const DialectSpec& spec, std::span<const std::string> statements);

  /// Resolves (builds or fetches) the parser for `spec` without parsing
  /// anything — cache warm-up, or direct use of the shared instance.
  Result<std::shared_ptr<const LlParser>> GetParser(const DialectSpec& spec);

  /// Counters since construction (or the last `ResetStats`).
  ServiceStatsSnapshot Stats() const;
  /// `RenderServiceStats(Stats())`.
  std::string StatsReport() const;
  /// Resets request/latency counters. Cache counters (hits, builds,
  /// evictions) are lifetime totals and are not reset.
  void ResetStats();

  /// The service's metrics registry: request counters and latency
  /// histograms (`ServiceStats`), pool instruments, and — refreshed on
  /// each export call below — cache gauges. See docs/OBSERVABILITY.md
  /// for the metric inventory.
  obs::MetricsRegistry& metrics() { return stats_.registry(); }

  /// Prometheus text exposition of `metrics()`, with the cache gauges
  /// synced to the cache's current counters first.
  std::string MetricsPrometheus();
  /// The same inventory as JSON.
  std::string MetricsJson();

  const SqlProductLine& product_line() const { return line_; }
  const ParserCache& cache() const { return cache_; }

 private:
  /// Mirrors `cache_.stats()` into gauges on the stats registry so one
  /// exposition covers requests, latencies, pool, and cache.
  void SyncCacheMetrics();

  SqlProductLine line_;
  ParserCache cache_;
  ServiceStats stats_;
  ThreadPool pool_;
};

}  // namespace sqlpl

#endif  // SQLPL_SERVICE_DIALECT_SERVICE_H_
