#ifndef SQLPL_SERVICE_FAULT_INJECTOR_H_
#define SQLPL_SERVICE_FAULT_INJECTOR_H_

#include <chrono>
#include <cstdint>
#include <mutex>

#include "sqlpl/util/status.h"

/// Compile-time switch: build with -DSQLPL_FAULT_INJECT=ON (CMake
/// option) to compile the fault-injection hooks in. Default off: the
/// class below degenerates to inline no-ops and the hook call sites
/// cost nothing. Production builds therefore cannot be fault-injected
/// by accident; robustness tests (tests/service/fault_injection_test.cc,
/// run by scripts/check.sh in the ASan tree) turn it on.
#ifndef SQLPL_FAULT_INJECT
#define SQLPL_FAULT_INJECT 0
#endif

namespace sqlpl {

#if SQLPL_FAULT_INJECT

/// Test-only chaos hook for the serving path (docs/ROBUSTNESS.md).
/// Faults are armed by tests and consumed by the cold-build path in
/// `DialectService::GetParser`: the next `fail_count` builds return the
/// armed status instead of composing, and every build first sleeps
/// `build_delay` (latency injection, e.g. to widen race/deadline
/// windows deterministically).
///
/// Thread-safe; state is process-global (`Global()`) because the hook
/// sits below code that doesn't know which test owns the service.
/// Tests must `Reset()` in teardown.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms the next `n` builds to fail with `error` (consumed
  /// first-come-first-served across threads).
  void FailBuilds(int n, Status error);

  /// Every subsequent build sleeps this long before running (or before
  /// failing, when armed). Zero disables.
  void SetBuildDelay(std::chrono::microseconds delay);

  /// Every executor batch sleeps this long (injected into the operator
  /// loop via `OnExecBatch`) — the "slow operator" fault used to widen
  /// deadline/cancel windows inside a running Scan+Filter (tests/exec/
  /// exec_fault_injection_test.cc). Zero disables.
  void SetExecBatchDelay(std::chrono::microseconds delay);

  /// Disarms everything. Counters survive until the next `Reset`.
  void Reset();

  /// The build-path hook: sleeps the armed delay, then either consumes
  /// one armed failure (returning its status) or returns OK.
  Status OnBuildStart();

  /// The executor hook, called once per batch by the scan loop: sleeps
  /// the armed exec-batch delay.
  void OnExecBatch();

  /// Failures injected since the last `Reset` — lets tests assert the
  /// fault actually fired.
  uint64_t injected_failures() const;

 private:
  FaultInjector() = default;

  mutable std::mutex mu_;
  int fail_count_ = 0;
  Status fail_status_;
  std::chrono::microseconds build_delay_{0};
  std::chrono::microseconds exec_batch_delay_{0};
  uint64_t injected_failures_ = 0;
};

#else  // !SQLPL_FAULT_INJECT

/// No-op stub compiled when fault injection is off: same interface,
/// zero state, every call inlines away.
class FaultInjector {
 public:
  static FaultInjector& Global() {
    static FaultInjector injector;
    return injector;
  }
  void FailBuilds(int, Status) {}
  void SetBuildDelay(std::chrono::microseconds) {}
  void SetExecBatchDelay(std::chrono::microseconds) {}
  void Reset() {}
  Status OnBuildStart() { return Status::OK(); }
  void OnExecBatch() {}
  uint64_t injected_failures() const { return 0; }
};

#endif  // SQLPL_FAULT_INJECT

}  // namespace sqlpl

#endif  // SQLPL_SERVICE_FAULT_INJECTOR_H_
