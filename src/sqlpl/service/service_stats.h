#ifndef SQLPL_SERVICE_SERVICE_STATS_H_
#define SQLPL_SERVICE_SERVICE_STATS_H_

#include <cstdint>
#include <string>

#include "sqlpl/obs/metrics.h"
#include "sqlpl/service/parser_cache.h"

namespace sqlpl {

/// Lock-free latency histogram with fixed power-of-two microsecond
/// buckets — the µs-named view of the general `obs::Histogram`: bucket 0
/// counts samples in [0, 2) µs and bucket i >= 1 counts
/// [2^i, 2^(i+1)) µs. 32 buckets span 1 µs to ~1.2 h, ample for parse
/// latencies. Recording is a single relaxed fetch_add, so the hot parse
/// path never serializes on a stats lock; percentile queries pay the
/// (small) accuracy cost of bucketing instead.
class LatencyHistogram : public obs::Histogram {
 public:
  uint64_t TotalMicros() const { return Sum(); }

  /// Bucket upper bound (µs) holding the p-th percentile sample, p in
  /// [0,100]. Edge semantics (see `obs::Histogram::Percentile`): 0 when
  /// the histogram is empty; 1 for bucket 0 (sub-2 µs samples); the
  /// exclusive bound 2^(i+1) for bucket i >= 1; the top bucket saturates
  /// at 2^32 µs regardless of the true sample magnitude.
  uint64_t PercentileMicros(double p) const { return Percentile(p); }

  double MeanMicros() const { return Mean(); }
};

/// Point-in-time copy of every service counter, safe to read field by
/// field. Produced by `ServiceStats::Snapshot()`.
struct ServiceStatsSnapshot {
  uint64_t parses = 0;
  uint64_t parse_errors = 0;
  uint64_t batches = 0;
  uint64_t batch_statements = 0;
  /// Request-lifecycle counters (docs/ROBUSTNESS.md). Not rendered by
  /// `RenderServiceStats` (whose format is frozen); the same numbers
  /// are in the Prometheus/JSON exports.
  uint64_t requests_shed = 0;
  /// Requests refused with `kUnavailable` — the serving endpoint (e.g.
  /// a draining network front-end) could not take them at all. Unlike
  /// the other lifecycle counters this one *is* rendered by
  /// `RenderServiceStats`, as an extra row appended to the Requests
  /// table only when nonzero, so the frozen pre-network report lines
  /// are unchanged.
  uint64_t requests_unavailable = 0;
  /// Requests rejected with `kInvalidConfig` by the feature-model
  /// configurator before any compose/build work. Rendered like
  /// `requests_unavailable`: an extra Requests row, only when nonzero.
  uint64_t requests_invalid_config = 0;
  uint64_t deadline_misses_admission = 0;
  uint64_t deadline_misses_queue = 0;
  uint64_t deadline_misses_parse = 0;
  uint64_t cancellations = 0;
  /// Throughput feed from the interned hot path: tokens lexed and parse-
  /// arena bytes consumed by successful and failed parses alike. Like the
  /// lifecycle counters, exported but not rendered by
  /// `RenderServiceStats`.
  uint64_t tokens = 0;
  uint64_t arena_bytes = 0;
  ParserCacheStats cache;
  uint64_t parse_p50_micros = 0;
  uint64_t parse_p99_micros = 0;
  double parse_mean_micros = 0;
  uint64_t build_p50_micros = 0;
  uint64_t build_p99_micros = 0;
  double build_mean_micros = 0;
};

/// Counters of a running `DialectService`, backed by an
/// `obs::MetricsRegistry` the stats object owns: every record lands in a
/// registered instrument (`sqlpl_parses_total{result=...}`,
/// `sqlpl_parse_latency_micros`, …), so the same numbers are available
/// as this class's snapshot/Markdown view *and* as Prometheus/JSON
/// exposition through `registry()`. All mutators are single relaxed
/// atomic operations — counters are monitoring data, not
/// synchronization — so any number of worker threads record
/// concurrently.
class ServiceStats {
 public:
  ServiceStats();

  ServiceStats(const ServiceStats&) = delete;
  ServiceStats& operator=(const ServiceStats&) = delete;

  /// `trace_id`, when nonzero, becomes the latency bucket's exemplar —
  /// the concrete request a dashboard can link from a tail bucket to a
  /// flight-recorder dump (docs/OBSERVABILITY.md).
  void RecordParse(bool ok, uint64_t micros, uint64_t trace_id = 0) {
    (ok ? parses_ok_ : parses_error_)->Increment();
    parse_latency_->RecordWithExemplar(micros, trace_id);
  }
  void RecordBuild(uint64_t micros) { build_latency_->Record(micros); }
  void RecordBatch(size_t statements) {
    batches_->Increment();
    batch_statements_->Increment(statements);
  }

  /// Request-lifecycle events. `stage` of a deadline miss is where the
  /// expiry was detected: admission (before any work), queue (a batch
  /// statement's turn came up too late), or parse (a checkpoint inside
  /// the parse loops fired).
  enum class DeadlineStage { kAdmission, kQueue, kParse };
  void RecordShed() { requests_shed_->Increment(); }
  void RecordDeadlineMiss(DeadlineStage stage) {
    switch (stage) {
      case DeadlineStage::kAdmission:
        deadline_miss_admission_->Increment();
        break;
      case DeadlineStage::kQueue:
        deadline_miss_queue_->Increment();
        break;
      case DeadlineStage::kParse:
        deadline_miss_parse_->Increment();
        break;
    }
  }
  void RecordCancellation() { cancellations_->Increment(); }
  /// A request refused with `kUnavailable` (connection-level failure or
  /// a draining server). Feeds `sqlpl_requests_unavailable_total`.
  void RecordUnavailable() { requests_unavailable_->Increment(); }
  /// A request rejected with `kInvalidConfig` — the configurator proved
  /// the spec unsatisfiable before admission to the compose path. Feeds
  /// `sqlpl_requests_invalid_config_total`.
  void RecordInvalidConfig() { requests_invalid_config_->Increment(); }

  /// Per-statement throughput sample from the parser's `ParseStats`:
  /// tokens the lexer produced and bytes of parse-arena storage used.
  /// Feeds `sqlpl_tokens_total` / `sqlpl_arena_bytes_total`, from which
  /// a scraper derives tokens/sec and bytes-per-statement.
  void RecordThroughput(size_t tokens, size_t arena_bytes) {
    tokens_->Increment(tokens);
    arena_bytes_->Increment(arena_bytes);
  }

  /// `cache` contributes the cache half of the snapshot; the service
  /// passes its own cache's counters.
  ServiceStatsSnapshot Snapshot(const ParserCacheStats& cache) const;

  void Reset();

  /// The backing registry — request counters and latency histograms
  /// live here; `DialectService` adds cache/pool instruments and exports
  /// the whole thing.
  obs::MetricsRegistry& registry() { return registry_; }
  const obs::MetricsRegistry& registry() const { return registry_; }

 private:
  obs::MetricsRegistry registry_;
  obs::Counter* parses_ok_;
  obs::Counter* parses_error_;
  obs::Counter* batches_;
  obs::Counter* batch_statements_;
  obs::Counter* requests_shed_;
  obs::Counter* requests_unavailable_;
  obs::Counter* requests_invalid_config_;
  obs::Counter* deadline_miss_admission_;
  obs::Counter* deadline_miss_queue_;
  obs::Counter* deadline_miss_parse_;
  obs::Counter* cancellations_;
  obs::Counter* tokens_;
  obs::Counter* arena_bytes_;
  obs::Histogram* parse_latency_;
  obs::Histogram* build_latency_;
};

/// Renders a snapshot as the same Markdown style as
/// `GenerateProductLineReport` (sqlpl/sql/report.h) — the service's
/// monitoring page.
std::string RenderServiceStats(const ServiceStatsSnapshot& snapshot);

}  // namespace sqlpl

#endif  // SQLPL_SERVICE_SERVICE_STATS_H_
