#ifndef SQLPL_SERVICE_SERVICE_STATS_H_
#define SQLPL_SERVICE_SERVICE_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "sqlpl/service/parser_cache.h"

namespace sqlpl {

/// Lock-free latency histogram with fixed power-of-two microsecond
/// buckets: bucket i counts samples in [2^i, 2^(i+1)) µs (bucket 0 also
/// takes sub-microsecond samples). 32 buckets span 1 µs to ~1.2 h, ample
/// for parse latencies. Recording is a single relaxed fetch_add, so the
/// hot parse path never serializes on a stats lock; percentile queries
/// pay the (small) accuracy cost of bucketing instead.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 32;

  void Record(uint64_t micros);

  uint64_t TotalCount() const;
  uint64_t TotalMicros() const {
    return sum_micros_.load(std::memory_order_relaxed);
  }

  /// Upper bound (µs) of the bucket holding the p-th percentile sample,
  /// p in [0,100]. Returns 0 when empty.
  uint64_t PercentileMicros(double p) const;

  double MeanMicros() const;

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_micros_{0};
};

/// Point-in-time copy of every service counter, safe to read field by
/// field. Produced by `ServiceStats::Snapshot()`.
struct ServiceStatsSnapshot {
  uint64_t parses = 0;
  uint64_t parse_errors = 0;
  uint64_t batches = 0;
  uint64_t batch_statements = 0;
  ParserCacheStats cache;
  uint64_t parse_p50_micros = 0;
  uint64_t parse_p99_micros = 0;
  double parse_mean_micros = 0;
  uint64_t build_p50_micros = 0;
  uint64_t build_p99_micros = 0;
  double build_mean_micros = 0;
};

/// Counters of a running `DialectService`. All mutators are atomic
/// (relaxed order — counters are monitoring data, not synchronization),
/// so any number of worker threads record concurrently.
class ServiceStats {
 public:
  void RecordParse(bool ok, uint64_t micros) {
    (ok ? parses_ : parse_errors_).fetch_add(1, std::memory_order_relaxed);
    parse_latency_.Record(micros);
  }
  void RecordBuild(uint64_t micros) { build_latency_.Record(micros); }
  void RecordBatch(size_t statements) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    batch_statements_.fetch_add(statements, std::memory_order_relaxed);
  }

  /// `cache` contributes the cache half of the snapshot; the service
  /// passes its own cache's counters.
  ServiceStatsSnapshot Snapshot(const ParserCacheStats& cache) const;

  void Reset();

 private:
  std::atomic<uint64_t> parses_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batch_statements_{0};
  LatencyHistogram parse_latency_;
  LatencyHistogram build_latency_;
};

/// Renders a snapshot as the same Markdown style as
/// `GenerateProductLineReport` (sqlpl/sql/report.h) — the service's
/// monitoring page.
std::string RenderServiceStats(const ServiceStatsSnapshot& snapshot);

}  // namespace sqlpl

#endif  // SQLPL_SERVICE_SERVICE_STATS_H_
