#ifndef SQLPL_SERVICE_NATIVE_TIER_H_
#define SQLPL_SERVICE_NATIVE_TIER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sqlpl/codegen/native_abi.h"
#include "sqlpl/obs/metrics.h"
#include "sqlpl/parser/ll_parser.h"
#include "sqlpl/service/spec_fingerprint.h"

namespace sqlpl {

struct ParseResponse;

/// Why a fingerprint was demoted (or refused promotion). Every value is
/// also the `reason` label of `sqlpl_native_demotions_total`.
enum class NativeDemotionReason {
  kCompileError = 0,
  kDlopenError,
  kAbiMismatch,
  kEquivalenceMismatch,
  kRuntimeError,
  kUnsupported,
};

const char* NativeDemotionReasonName(NativeDemotionReason reason);

/// Tuning knobs of the native compilation tier.
struct NativeTierOptions {
  /// Parses of one fingerprint before its parser is queued for native
  /// compilation. 0 disables the tier entirely (no thread, no counting).
  size_t hot_threshold = 0;
  /// Maximum fingerprints holding a native slot at once (promoted or
  /// burned by a failed attempt); clamped to the tier's slot array.
  size_t max_native = 8;
  /// C++ compiler binary, resolved via PATH.
  std::string compiler = "c++";
  /// Extra flags appended to the compile line (tests pass "-O0" to keep
  /// promotion latency out of their budget).
  std::vector<std::string> extra_cflags;
  /// Test seam: rewrites the generated source before it is compiled.
  /// This is how the test suite produces a deliberately-miscompiled
  /// library that still builds and loads — the byte-equivalence gate
  /// must catch it.
  std::function<std::string(const std::string&)> transform_source_for_testing;
};

/// Counter snapshot of the tier (all lifetime totals).
struct NativeTierStats {
  uint64_t promotions = 0;
  uint64_t demotions = 0;
  uint64_t native_parses = 0;
};

/// Background native-compilation tier: the "generated artifact per
/// variant" half of the paper, applied to serving. Hot dialect
/// fingerprints (ranked by per-fingerprint traffic counts) have their
/// generated parser (`GenerateNativeParserSource`) compiled to a shared
/// object with the system toolchain inside a private `ScopedTempDir`,
/// loaded with `dlopen` behind the versioned `extern "C"` ABI of
/// native_abi.h, and — only after the full golden corpus replays
/// byte-identically through the interpreter and the library — published
/// for serving. `DialectService::Execute` then answers render requests
/// for that fingerprint from the native parser instead of the
/// interpreter, reporting `CacheDisposition::kNative` on the wire.
///
/// ## Fail-closed contract
///
/// Every failure leaves the interpreter serving and is counted:
/// compile/dlopen/ABI/equivalence failures burn the attempt, demote the
/// fingerprint, and add it to a poisoned set so it is never retried; a
/// runtime anomaly (ABI return code 2) demotes a live entry the same
/// way. `sqlpl_native_promotions_total`, `sqlpl_native_demotions_total
/// {reason}`, and `sqlpl_native_parse_total` prove which tier answered.
/// See docs/NATIVE_TIER.md for the full lifecycle and failure matrix.
///
/// ## Concurrency
///
/// `RecordTraffic`/`TryServe` are lock-free on the serving path
/// (atomic open-addressing traffic table, atomic entry publication with
/// acquire/release ordering); compilation runs on one background
/// thread. A published library is never `dlclose`d while the tier is
/// alive — demotion only clears the `active` flag — so an in-flight
/// native parse can never race a library unload; handles are released
/// in the destructor, after the worker is joined and no caller may
/// serve.
class NativeTier {
 public:
  /// `registry` may be null (counters are then process-local only).
  explicit NativeTier(NativeTierOptions options,
                      obs::MetricsRegistry* registry = nullptr);
  ~NativeTier();

  NativeTier(const NativeTier&) = delete;
  NativeTier& operator=(const NativeTier&) = delete;

  bool enabled() const { return options_.hot_threshold > 0; }

  /// Counts one parse of `fingerprint`; at `hot_threshold` the parser
  /// is queued for background compilation (once — later calls are
  /// no-ops for that fingerprint). The shared_ptr keeps the exact
  /// serving parser alive for source generation and the equivalence
  /// gate even if the cache evicts it meanwhile. Parsers with semantic
  /// predicates are refused (`kUnsupported`) — predicates are host
  /// callbacks and cannot cross the ABI.
  void RecordTraffic(SpecFingerprint fingerprint,
                     const std::shared_ptr<const LlParser>& parser);

  /// Serves one render-mode parse from the promoted native library for
  /// `fingerprint`, if there is one. On success fills
  /// `response->result` (accept stub or engine-byte-identical syntax
  /// error), `response->rendered`, and `tokens_out` (for throughput
  /// accounting) and returns true. Returns false — caller falls back to
  /// the interpreter — when there is no active entry, the statement
  /// does not lex, `parser` disagrees with the library's embedded
  /// symbol table, or the library reports an internal anomaly (which
  /// also demotes it with `kRuntimeError`).
  bool TryServe(SpecFingerprint fingerprint, const LlParser& parser,
                std::string_view sql, ParseResponse* response,
                size_t* tokens_out);

  /// True iff `fingerprint` currently has an active native entry.
  bool IsPromoted(SpecFingerprint fingerprint) const;
  /// True iff `fingerprint` is poisoned (failed a promotion or was
  /// demoted) and will never be retried.
  bool IsPoisoned(SpecFingerprint fingerprint) const;

  /// Blocks until the compile queue is drained and the worker is idle.
  /// Test synchronization only.
  void WaitIdle();

  NativeTierStats stats() const;

 private:
  struct Entry {
    std::atomic<uint64_t> fingerprint{0};
    std::atomic<bool> active{false};
    /// Last parser instance proven to share the library's symbol table;
    /// compared by address only (never dereferenced), re-proven via
    /// `SymbolTableHash` whenever the cache hands out a new instance.
    std::atomic<const LlParser*> verified_parser{nullptr};
    void* dl_handle = nullptr;
    const SqlplNativeParserV1* handle = nullptr;
    /// The parser the entry was gated against; pinned so the library's
    /// id space always has a live interner behind it.
    std::shared_ptr<const LlParser> pinned_parser;
  };

  struct CompileJob {
    SpecFingerprint fingerprint;
    std::shared_ptr<const LlParser> parser;
  };

  /// One slot in the lock-free traffic table.
  struct TrafficSlot {
    std::atomic<uint64_t> fingerprint{0};
    std::atomic<uint64_t> count{0};
  };

  void WorkerLoop();
  void Compile(const CompileJob& job);
  /// Replays the full golden corpus through `parser` and `handle`;
  /// returns a description of the first divergence, or empty on pass.
  std::string EquivalenceGate(const LlParser& parser,
                              const SqlplNativeParserV1& handle);
  void Demote(uint64_t fingerprint, NativeDemotionReason reason,
              const std::string& detail);
  void Poison(uint64_t fingerprint);
  obs::Counter* DemotionCounter(NativeDemotionReason reason);

  NativeTierOptions options_;
  obs::MetricsRegistry* registry_;

  static constexpr size_t kMaxSlots = 16;
  std::array<Entry, kMaxSlots> entries_;

  static constexpr size_t kTrafficSlots = 1024;  // power of two
  static constexpr size_t kTrafficProbeLimit = 8;
  std::unique_ptr<TrafficSlot[]> traffic_;

  static constexpr size_t kPoisonSlots = 256;  // power of two
  static constexpr size_t kPoisonProbeLimit = 16;
  std::unique_ptr<std::atomic<uint64_t>[]> poisoned_;

  /// Fingerprints already queued or attempted (guarded by queue_mu_):
  /// each fingerprint gets exactly one compile attempt, ever.
  std::vector<uint64_t> attempted_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<CompileJob> queue_;
  bool worker_busy_ = false;
  bool stopping_ = false;
  std::thread worker_;

  std::atomic<uint64_t> promotions_{0};
  std::atomic<uint64_t> demotions_{0};
  std::atomic<uint64_t> native_parses_{0};

  obs::Counter* promotions_counter_ = nullptr;
  obs::Counter* parse_counter_ = nullptr;
  std::mutex demotion_counters_mu_;
  std::array<obs::Counter*, 6> demotion_counters_{};
};

}  // namespace sqlpl

#endif  // SQLPL_SERVICE_NATIVE_TIER_H_
