#include "sqlpl/service/thread_pool.h"

#include <atomic>

#include "sqlpl/obs/trace.h"

namespace sqlpl {

ThreadPool::ThreadPool(size_t num_threads, obs::MetricsRegistry* metrics) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
  }
  if (num_threads == 0) num_threads = 1;
  num_threads_ = num_threads;
  if (metrics != nullptr) {
    queue_depth_ = metrics->GetGauge("sqlpl_pool_queue_depth", {},
                                     "Tasks waiting in the pool queue");
    tasks_total_ =
        metrics->GetCounter("sqlpl_pool_tasks_total", {}, "Tasks executed");
    task_micros_ = metrics->GetHistogram("sqlpl_pool_task_micros", {},
                                         "Task execution time (µs)");
    queue_wait_micros_ = metrics->GetHistogram(
        "sqlpl_pool_queue_wait_micros", {},
        "Time tasks spent queued before a worker picked them up (µs)");
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Every caller serializes on the join: whoever arrives first joins the
  // workers, later callers (including ~ThreadPool after an explicit
  // Shutdown) find the vector empty and return once the join is done —
  // no caller returns while workers are still running.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    queue_.push_back(Task{std::move(task), obs::TraceNowMicros()});
  }
  if (queue_depth_ != nullptr) queue_depth_->Add(1);
  cv_.notify_one();
  return true;
}

void ThreadPool::WorkerLoop() {
  // Whether per-task timing is wanted at all; tracing state is
  // re-checked per task (it can toggle at runtime).
  const bool metered = task_micros_ != nullptr;
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (queue_depth_ != nullptr) queue_depth_->Add(-1);
    const bool timing = metered || obs::Tracing::enabled();
    uint64_t start = 0;
    if (timing) {
      start = obs::TraceNowMicros();
      uint64_t wait = start - task.enqueue_micros;
      if (queue_wait_micros_ != nullptr) queue_wait_micros_->Record(wait);
      // Attributed to the worker's timeline, spanning enqueue → dequeue.
      obs::EmitEvent("pool.queue_wait", "pool", task.enqueue_micros, wait);
    }
    task.fn();
    if (timing) {
      if (task_micros_ != nullptr) {
        task_micros_->Record(obs::TraceNowMicros() - start);
      }
      if (tasks_total_ != nullptr) tasks_total_->Increment();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Work-stealing by shared index: each participant claims the next
  // unclaimed iteration. Completion is tracked with a counter + condvar
  // so the caller can block without joining threads.
  struct BatchState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<BatchState>();

  auto run_chunk = [state, n, &fn]() {
    while (true) {
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  size_t helpers = std::min(n > 0 ? n - 1 : 0, num_threads_);
  for (size_t i = 0; i < helpers; ++i) {
    // A rejected Submit (pool shutting down) just means the caller's
    // own run_chunk below picks up the iterations.
    Submit(run_chunk);
  }
  run_chunk();  // caller participates

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == n;
  });
}

}  // namespace sqlpl
