#include "sqlpl/service/thread_pool.h"

#include <atomic>

namespace sqlpl {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
  }
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Work-stealing by shared index: each participant claims the next
  // unclaimed iteration. Completion is tracked with a counter + condvar
  // so the caller can block without joining threads.
  struct BatchState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<BatchState>();

  auto run_chunk = [state, n, &fn]() {
    while (true) {
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  size_t helpers = std::min(n > 0 ? n - 1 : 0, workers_.size());
  for (size_t i = 0; i < helpers; ++i) Submit(run_chunk);
  run_chunk();  // caller participates

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == n;
  });
}

}  // namespace sqlpl
